"""Unit tests of the threaded backend's machinery.

The conformance suite (tests/conformance/) establishes behavioral
equivalence across all backends; these tests pin the machinery
around it: backend selection and fallback, the pickle shell, plan
op-table caching, slot-table validation, and the reconstruction
schedule's equivalence with the rule solver.
"""

import os
import pickle

import pytest

from repro import compile_source, smart_program_plan
from repro.fastexec import (
    LoweringError,
    ThreadedBackend,
    backend_for,
    lower_counter_plan,
    plan_fingerprint,
    plan_slot_tables,
    validate_slot_table,
)
from repro.pipeline import _select_backend, run_program
from repro.profiling import (
    PlanExecutor,
    reconstruction_schedule,
)
from repro.profiling.runtime import HookChain
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.threaded

SRC = """      PROGRAM MAIN
      INTEGER I, N, X
      N = INPUT(1)
      X = 0
      DO 10 I = 1, N
        X = X + I
10    CONTINUE
      PRINT *, X
      END
"""


@pytest.fixture()
def program():
    return compile_source(SRC)


class TestSelection:
    def test_auto_uses_codegen_first(self, program):
        name, engine = _select_backend(program, None, "auto")
        assert name == "codegen" and engine is not None

    def test_forced_threaded(self, program):
        name, engine = _select_backend(program, None, "threaded")
        assert name == "threaded"
        assert isinstance(engine, ThreadedBackend)

    def test_reference_opts_out(self, program):
        assert _select_backend(program, None, "reference") == (
            "reference",
            None,
        )

    def test_unknown_backend_rejected(self, program):
        with pytest.raises(ValueError):
            run_program(program, backend="turbo")

    def test_non_planexecutor_hooks_fall_back(self, program):
        chain = HookChain([PlanExecutor(smart_program_plan(program))])
        assert _select_backend(program, chain, "auto") == (
            "reference",
            None,
        )

    def test_forced_threaded_rejects_foreign_hooks(self, program):
        chain = HookChain([PlanExecutor(smart_program_plan(program))])
        with pytest.raises(LoweringError):
            _select_backend(program, chain, "threaded")

    def test_planexecutor_subclass_falls_back(self, program):
        class Custom(PlanExecutor):
            pass

        hooks = Custom(smart_program_plan(program))
        assert _select_backend(program, hooks, "auto") == (
            "reference",
            None,
        )

    def test_env_var_overrides_auto(self, program, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        assert _select_backend(program, None, "auto") == (
            "reference",
            None,
        )
        monkeypatch.setenv("REPRO_BACKEND", "threaded")
        name, _engine = _select_backend(program, None, "auto")
        assert name == "threaded"
        # An explicit argument beats the environment.
        name, engine = _select_backend(program, None, "codegen")
        assert name == "codegen" and engine is not None


class TestBackendCache:
    def test_backend_cached_per_program(self, program):
        assert backend_for(program) is backend_for(program)

    def test_plan_tables_cached_by_fingerprint(self, program):
        backend = backend_for(program)
        backend.ensure_lowered()
        plan = smart_program_plan(program)
        first = backend._lowered_plan(plan)
        # A structurally identical but distinct plan hits the cache.
        again = smart_program_plan(program)
        assert plan_fingerprint(plan) == plan_fingerprint(again)
        assert backend._lowered_plan(again) is first

    def test_pickle_shell_round_trip(self, program):
        backend = backend_for(program)
        backend.ensure_lowered()
        clone = pickle.loads(pickle.dumps(backend))
        assert clone._procs is None  # closures are rebuilt lazily
        result = clone.run(seed=5, inputs=(6.0,))
        expected = run_program(
            program, seed=5, inputs=(6.0,), backend="reference"
        )
        assert result.outputs == expected.outputs
        assert result.node_counts == expected.node_counts


class TestSlotTables:
    def test_clean_plan_validates(self, program):
        plan = smart_program_plan(program)
        for name, table in plan_slot_tables(plan).items():
            assert validate_slot_table(plan.plans[name], table) == []

    def test_orphan_write_detected(self, program):
        plan = smart_program_plan(program).plans["MAIN"]
        table = lower_counter_plan(plan)
        free = plan.id_space - 1
        del plan.counter_measures[free]
        kinds = {f.kind for f in validate_slot_table(plan, table)}
        assert "orphan" in kinds

    def test_unmapped_counter_detected(self, program):
        plan = smart_program_plan(program).plans["MAIN"]
        table = lower_counter_plan(plan)
        table.node_slots.clear()
        kinds = {f.kind for f in validate_slot_table(plan, table)}
        assert "unmapped" in kinds

    def test_duplicate_sites_detected(self, program):
        proc = smart_program_plan(program).plans["MAIN"]
        table = lower_counter_plan(proc)
        node, slot = next(iter(table.node_slots.items()))
        table.edge_slots[(node, "T")] = slot
        kinds = {f.kind for f in validate_slot_table(proc, table)}
        assert "duplicate" in kinds

    def test_out_of_range_slot_detected(self, program):
        proc = smart_program_plan(program).plans["MAIN"]
        table = lower_counter_plan(proc)
        node = next(iter(table.node_slots))
        table.node_slots[node] = proc.id_space + 3
        kinds = {f.kind for f in validate_slot_table(proc, table)}
        assert "range" in kinds

    def test_checker_reports_rep4xx(self, program):
        from repro.checker import check_slot_tables

        plan = smart_program_plan(program)
        assert check_slot_tables(plan) == []
        proc = plan.plans["MAIN"]
        node = next(iter(proc.node_counters))
        proc.node_counters[node] = proc.id_space + 7
        codes = {d.code for d in check_slot_tables(plan)}
        assert "REP404" in codes  # range fault
        assert "REP402" in codes  # original slot now unwritten


class TestReconstructionSchedule:
    def test_replay_matches_solver(self):
        program = compile_source(PAPER_SOURCE)
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        run_program(program, hooks=executor, seed=0)
        for name, proc_plan in plan.plans.items():
            counter_values = executor.counter_values(name)
            values = {
                measure: counter_values[cid]
                for cid, measure in proc_plan.counter_measures.items()
            }
            schedule = reconstruction_schedule(proc_plan)
            assert schedule.replay(values) == proc_plan.rules.solve(values)

    def test_schedule_is_cached(self):
        program = compile_source(PAPER_SOURCE)
        proc_plan = smart_program_plan(program).plans["MAIN"]
        assert reconstruction_schedule(proc_plan) is reconstruction_schedule(
            proc_plan
        )
