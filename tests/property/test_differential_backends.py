"""Differential testing of the threaded backend against the reference.

The threaded backend (:mod:`repro.fastexec`) is only allowed to exist
because it is *observationally identical* to the tree-walking
interpreter: same outputs, same node/edge counts, same float-exact
``total_cost``/``counter_cost``, same counter values, and therefore
bit-identical reconstructed ``FREQ``/``NODE_FREQ``.  This suite pins
that contract over every builtin workload and 50 seeded generator
programs — any divergence, down to an error message, is a bug in the
lowering.
"""

import pytest

from repro import SCALAR_MACHINE, compile_source, smart_program_plan
from repro.analysis.freq import compute_frequencies
from repro.errors import ReproError
from repro.pipeline import run_program
from repro.profiling import PlanExecutor, reconstruct_profile
from repro.workloads import builtin_sources
from repro.workloads.generators import ProgramGenerator

pytestmark = [pytest.mark.threaded, pytest.mark.differential]

N_PROGRAMS = 50

#: Enough INPUT() values for every builtin that reads them.
INPUTS = (2.25, 9.0, 16.0)

_CACHE: dict[object, object] = {}


def _builtin(name: str):
    if name not in _CACHE:
        source = dict(builtin_sources())[name]
        _CACHE[name] = compile_source(source)
    return _CACHE[name]


def _generated(gen_seed: int):
    if gen_seed not in _CACHE:
        _CACHE[gen_seed] = compile_source(ProgramGenerator(gen_seed).source())
    return _CACHE[gen_seed]


def _run(program, backend: str, *, hooks=None, **kwargs):
    """A run's full observable behavior, errors included."""
    try:
        result = run_program(program, backend=backend, hooks=hooks, **kwargs)
    except ReproError as exc:
        return {"error": (type(exc).__name__, str(exc))}
    return {
        "halted": result.halted,
        "steps": result.steps,
        "outputs": result.outputs,
        "total_cost": result.total_cost,
        "counter_ops": result.counter_ops,
        "counter_cost": result.counter_cost,
        "node_counts": result.node_counts,
        "edge_counts": result.edge_counts,
        "call_counts": result.call_counts,
        "main_vars": result.main_vars,
    }


def _assert_backends_agree(program, **kwargs):
    """Both backends, plain and profiled, must be indistinguishable."""
    # 1. Plain runs (with a cost model: total_cost must match too).
    plain_threaded = _run(program, "threaded", model=SCALAR_MACHINE, **kwargs)
    plain_reference = _run(program, "reference", model=SCALAR_MACHINE, **kwargs)
    assert plain_threaded == plain_reference

    # 2. Profiled runs: RunResult, live counter state, update count.
    plan = smart_program_plan(program)
    executors = {}
    results = {}
    for backend in ("threaded", "reference"):
        executors[backend] = PlanExecutor(plan)
        results[backend] = _run(
            program,
            backend,
            hooks=executors[backend],
            model=SCALAR_MACHINE,
            **kwargs,
        )
    assert results["threaded"] == results["reference"]
    assert executors["threaded"].counters == executors["reference"].counters
    assert executors["threaded"].updates == executors["reference"].updates

    # 3. Reconstruction: identical FREQ / NODE_FREQ / TOTAL_FREQ.
    if "error" in results["threaded"]:
        return  # both runs failed identically; nothing to reconstruct
    profiles = {
        backend: reconstruct_profile(plan, executor, runs=1)
        for backend, executor in executors.items()
    }
    for name in program.cfgs:
        fcdg = program.fcdgs[name]
        threaded_freqs = compute_frequencies(
            fcdg, profiles["threaded"].proc(name)
        )
        reference_freqs = compute_frequencies(
            fcdg, profiles["reference"].proc(name)
        )
        assert threaded_freqs.total_freq == reference_freqs.total_freq, name
        assert threaded_freqs.freq == reference_freqs.freq, name
        assert threaded_freqs.node_freq == reference_freqs.node_freq, name


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_with_inputs(name):
    _assert_backends_agree(_builtin(name), seed=3, inputs=INPUTS)


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_without_inputs(name):
    """No INPUT() vector: programs that read one must fail identically."""
    _assert_backends_agree(_builtin(name), seed=3)


@pytest.mark.parametrize("gen_seed", range(N_PROGRAMS))
def test_generated_program(gen_seed):
    program = _generated(gen_seed)
    run_seed = 7919 * (gen_seed + 1)  # deterministic, distinct per program
    _assert_backends_agree(program, seed=run_seed, max_steps=200_000)


@pytest.mark.parametrize("gen_seed", [0, 17, 42])
def test_step_limit_parity(gen_seed):
    """A max_steps abort happens at the same step with the same message."""
    program = _generated(gen_seed)
    _assert_backends_agree(program, seed=11, max_steps=50)
