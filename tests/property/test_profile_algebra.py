"""Property tests for the algebra of accumulated profiles.

The paper notes TOTAL_FREQ values are only ever used as *ratios*, so
profiles may be accumulated freely across runs.  Consequences tested
here on random programs:

* TIME over a merged profile equals the run-count-weighted mean of
  the per-run TIMEs (linearity);
* merging is order-independent;
* a profile scaled by duplicating its runs yields identical FREQ
  values and therefore identical TIME/VAR.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SCALAR_MACHINE, analyze, compile_source
from repro.pipeline import oracle_program_profile
from repro.profiling.database import ProgramProfile
from repro.workloads.generators import ProgramGenerator

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CACHE: dict[int, object] = {}


def program_for(gen_seed: int):
    if gen_seed not in _CACHE:
        _CACHE[gen_seed] = compile_source(
            ProgramGenerator(gen_seed, allow_calls=False).source()
        )
    return _CACHE[gen_seed]


gen_seeds = st.integers(min_value=100, max_value=140)
run_seeds = st.integers(min_value=0, max_value=500)


class TestMergeAlgebra:
    @given(gen_seed=gen_seeds, seed_a=run_seeds, seed_b=run_seeds)
    @_SETTINGS
    def test_time_is_linear_in_runs(self, gen_seed, seed_a, seed_b):
        program = program_for(gen_seed)
        profile_a = oracle_program_profile(program, runs=[{"seed": seed_a}])
        profile_b = oracle_program_profile(program, runs=[{"seed": seed_b}])
        time_a = analyze(program, profile_a, SCALAR_MACHINE).total_time
        time_b = analyze(program, profile_b, SCALAR_MACHINE).total_time

        merged = ProgramProfile()
        merged.merge(profile_a)
        merged.merge(profile_b)
        merged_time = analyze(program, merged, SCALAR_MACHINE).total_time
        assert merged_time == pytest.approx((time_a + time_b) / 2, rel=1e-9)

    @given(gen_seed=gen_seeds, seed_a=run_seeds, seed_b=run_seeds)
    @_SETTINGS
    def test_merge_order_irrelevant(self, gen_seed, seed_a, seed_b):
        program = program_for(gen_seed)
        profile_a = oracle_program_profile(program, runs=[{"seed": seed_a}])
        profile_b = oracle_program_profile(program, runs=[{"seed": seed_b}])
        ab = ProgramProfile()
        ab.merge(profile_a)
        ab.merge(profile_b)
        ba = ProgramProfile()
        ba.merge(profile_b)
        ba.merge(profile_a)
        res_ab = analyze(program, ab, SCALAR_MACHINE)
        res_ba = analyze(program, ba, SCALAR_MACHINE)
        assert res_ab.total_time == pytest.approx(res_ba.total_time)
        assert res_ab.total_var == pytest.approx(res_ba.total_var)

    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_duplicated_profile_invariant(self, gen_seed, run_seed):
        # Counts are only used as ratios: doubling every count leaves
        # FREQ, TIME and VAR unchanged.
        program = program_for(gen_seed)
        single = oracle_program_profile(program, runs=[{"seed": run_seed}])
        doubled = ProgramProfile()
        doubled.merge(single)
        doubled.merge(single)
        a = analyze(program, single, SCALAR_MACHINE)
        b = analyze(program, doubled, SCALAR_MACHINE)
        assert a.total_time == pytest.approx(b.total_time, rel=1e-12)
        assert a.total_var == pytest.approx(b.total_var, rel=1e-9)
        assert a.main.freqs.freq == pytest.approx(b.main.freqs.freq)

    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_serialization_roundtrip_preserves_analysis(
        self, gen_seed, run_seed
    ):
        program = program_for(gen_seed)
        profile = oracle_program_profile(program, runs=[{"seed": run_seed}])
        restored = ProgramProfile.from_dict(profile.to_dict())
        a = analyze(program, profile, SCALAR_MACHINE)
        b = analyze(program, restored, SCALAR_MACHINE)
        assert a.total_time == b.total_time
        assert a.total_var == b.total_var
