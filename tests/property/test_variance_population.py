"""Population-level validation of the Section-5 variance model.

On *loop-free* programs whose branches are driven by independent
RAND() draws, the Case-2 model is statistically exact: over a
population of generated programs, the modeled VAR(START) must track
the Monte-Carlo sample variance closely.  (Loops require a VAR(FREQ)
model and are validated separately in
``benchmarks/bench_variance_validation.py``.)
"""

import statistics

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.workloads.generators import ProgramGenerator

N_PROGRAMS = 10
N_RUNS = 300


def _loop_free_program(seed):
    source = ProgramGenerator(
        seed,
        allow_loops=False,
        allow_calls=False,
        allow_gotos=False,
        max_depth=3,
    ).source()
    return compile_source(source)


@pytest.mark.parametrize("seed", range(200, 200 + N_PROGRAMS))
def test_loop_free_variance_tracks_monte_carlo(seed):
    program = _loop_free_program(seed)
    specs = [{"seed": s} for s in range(N_RUNS)]
    costs = [
        run_program(program, model=SCALAR_MACHINE, **spec).total_cost
        for spec in specs
    ]
    profile = oracle_program_profile(program, runs=specs)
    analysis = analyze(program, profile, SCALAR_MACHINE)

    mc_mean = statistics.fmean(costs)
    mc_var = statistics.pvariance(costs)
    assert analysis.total_time == pytest.approx(mc_mean, rel=1e-9)

    if mc_var < 1e-9:
        # branch-free or fully deterministic program: model agrees.
        assert analysis.total_var == pytest.approx(0.0, abs=1e-6)
        return
    # Allow generous sampling noise: with 300 runs the sample variance
    # of a bounded mixture is within ~40% of truth w.h.p.; the
    # *model* should sit inside that band.  Note: RAND() values feed
    # both conditions and arithmetic; reused draws can correlate
    # branches slightly, so this is a statistical band, not exactness.
    ratio = analysis.total_var / mc_var
    assert 0.45 < ratio < 2.2, (
        f"seed={seed}: model VAR {analysis.total_var:.1f} vs "
        f"MC {mc_var:.1f} (ratio {ratio:.2f})"
    )
