"""Property-based tests of the framework's core invariants.

Random terminating programs (seeded generator) exercised under
hypothesis-chosen seeds.  The invariants:

1. structural — intervals partition, FCDG rooted/acyclic/complete;
2. profiling — the optimized counter plan reconstructs TOTAL_FREQ
   values *identical* to the interpreter's ground truth;
3. frequency — NODE_FREQ × invocations equals observed execution
   counts for every node;
4. TIME — the analytical TIME(START) equals the measured average
   interpreted cost exactly;
5. economy — the optimized plan never places more counters than the
   naive per-basic-block plan.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    analyze,
    compile_source,
    naive_program_plan,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.costs import SCALAR_MACHINE
from repro.profiling import PlanExecutor, reconstruct_profile
from repro.analysis.freq import compute_frequencies
from repro.workloads.generators import ProgramGenerator

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_PROGRAM_CACHE: dict[int, object] = {}


def program_for(gen_seed: int):
    if gen_seed not in _PROGRAM_CACHE:
        source = ProgramGenerator(gen_seed).source()
        _PROGRAM_CACHE[gen_seed] = compile_source(source)
    return _PROGRAM_CACHE[gen_seed]


gen_seeds = st.integers(min_value=0, max_value=60)
run_seeds = st.integers(min_value=0, max_value=10_000)


class TestStructuralInvariants:
    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_intervals_partition_nodes(self, gen_seed):
        program = program_for(gen_seed)
        for name, cfg in program.cfgs.items():
            intervals = program.ecfgs[name].intervals
            # every node has an innermost interval whose member set
            # contains it; loops nest (no partial overlap).
            for node in cfg.nodes:
                assert node in intervals.members[intervals.hdr_of(node)]
            headers = intervals.headers
            for a in headers:
                for b in headers:
                    ma, mb = intervals.members[a], intervals.members[b]
                    assert ma <= mb or mb <= ma or not (ma & mb)

    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_fcdg_rooted_acyclic_complete(self, gen_seed):
        program = program_for(gen_seed)
        for fcdg in program.fcdgs.values():
            fcdg.validate()
            position = {n: i for i, n in enumerate(fcdg.topological_order())}
            for edge in fcdg.edges:
                assert position[edge.src] < position[edge.dst]

    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_headers_dominate_their_loops(self, gen_seed):
        from repro.cfg.dominance import dominates, dominator_tree

        program = program_for(gen_seed)
        for name, cfg in program.cfgs.items():
            intervals = program.ecfgs[name].intervals
            idom = dominator_tree(cfg)
            for header in intervals.loop_headers:
                for member in intervals.members[header]:
                    assert dominates(idom, header, member, cfg.entry)


class TestProfilingInvariants:
    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_smart_reconstruction_equals_oracle(self, gen_seed, run_seed):
        program = program_for(gen_seed)
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        run_program(program, hooks=executor, seed=run_seed)
        oracle = oracle_program_profile(program, runs=[{"seed": run_seed}])
        reconstructed = reconstruct_profile(plan, executor, runs=1)
        for name in program.cfgs:
            rec = reconstructed.proc(name)
            orc = oracle.proc(name)
            assert rec.invocations == orc.invocations
            for key, value in rec.branch_counts.items():
                assert value == orc.branch_counts.get(key, 0.0), (name, key)
            for header, value in rec.header_counts.items():
                assert value == orc.header_counts.get(header, 0.0)

    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_smart_plan_never_larger_than_naive(self, gen_seed):
        program = program_for(gen_seed)
        smart = smart_program_plan(program)
        naive = naive_program_plan(program)
        assert smart.n_counters <= naive.n_counters

    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_smart_updates_never_exceed_naive(self, gen_seed, run_seed):
        program = program_for(gen_seed)
        smart_exec = PlanExecutor(smart_program_plan(program))
        naive_exec = PlanExecutor(naive_program_plan(program))
        run_program(program, hooks=smart_exec, seed=run_seed)
        run_program(program, hooks=naive_exec, seed=run_seed)
        assert smart_exec.updates <= naive_exec.updates


class TestAnalysisInvariants:
    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_node_freq_matches_observed(self, gen_seed, run_seed):
        program = program_for(gen_seed)
        result = run_program(program, seed=run_seed)
        profile = oracle_program_profile(program, runs=[{"seed": run_seed}])
        for name in program.cfgs:
            proc_profile = profile.proc(name)
            freqs = compute_frequencies(program.fcdgs[name], proc_profile)
            invocations = proc_profile.invocations
            observed = result.node_counts.get(name, {})
            for node, counted in observed.items():
                estimated = freqs.node_freq[node] * invocations
                assert estimated == pytest.approx(counted, rel=1e-9), (
                    name,
                    node,
                )

    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_time_equals_measured_cost(self, gen_seed, run_seed):
        program = program_for(gen_seed)
        result = run_program(program, model=SCALAR_MACHINE, seed=run_seed)
        profile = oracle_program_profile(program, runs=[{"seed": run_seed}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_time == pytest.approx(
            result.total_cost, rel=1e-9
        )

    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_variance_nonnegative_everywhere(self, gen_seed, run_seed):
        program = program_for(gen_seed)
        profile = oracle_program_profile(program, runs=[{"seed": run_seed}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        for proc in analysis.procedures.values():
            for value in proc.variances.var.values():
                assert value >= 0.0

    @given(gen_seed=gen_seeds, run_seed=run_seeds)
    @_SETTINGS
    def test_branch_probabilities_in_unit_interval(self, gen_seed, run_seed):
        program = program_for(gen_seed)
        profile = oracle_program_profile(program, runs=[{"seed": run_seed}])
        for name in program.cfgs:
            ecfg = program.ecfgs[name]
            freqs = compute_frequencies(
                program.fcdgs[name], profile.proc(name)
            )
            for (u, label), value in freqs.freq.items():
                if u == ecfg.start or ecfg.is_preheader(u):
                    assert value >= 0.0
                else:
                    assert 0.0 <= value <= 1.0
