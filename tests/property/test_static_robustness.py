"""Property tests: the static estimator is total and well-formed.

``static_profile`` must succeed on every compilable program and
produce a profile the downstream machinery accepts: probabilities in
[0, 1], loop frequencies ≥ 1, nonnegative TIME/VAR, and — because its
counts are built from the same propagation the frequency pass uses —
perfectly self-consistent FREQ values.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SCALAR_MACHINE, analyze, compile_source
from repro.analysis import static_profile
from repro.analysis.freq import compute_frequencies
from repro.workloads.generators import ProgramGenerator

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CACHE: dict[int, object] = {}


def program_for(seed: int):
    if seed not in _CACHE:
        _CACHE[seed] = compile_source(ProgramGenerator(seed).source())
    return _CACHE[seed]


gen_seeds = st.integers(min_value=300, max_value=360)


class TestStaticEstimatorRobustness:
    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_estimation_total_and_analyzable(self, gen_seed):
        program = program_for(gen_seed)
        profile = static_profile(program)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_time >= 0.0
        assert analysis.total_var >= 0.0

    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_probabilities_well_formed(self, gen_seed):
        program = program_for(gen_seed)
        profile = static_profile(program)
        for name in program.cfgs:
            ecfg = program.ecfgs[name]
            freqs = compute_frequencies(
                program.fcdgs[name], profile.proc(name)
            )
            for (u, label), value in freqs.freq.items():
                if u == ecfg.start:
                    assert value == pytest.approx(1.0) or value == 0.0
                elif ecfg.is_preheader(u):
                    if not label.startswith("Z"):
                        assert value >= 1.0 or value == 0.0
                else:
                    assert -1e-9 <= value <= 1.0 + 1e-9

    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_branch_labels_sum_to_at_most_one(self, gen_seed):
        program = program_for(gen_seed)
        profile = static_profile(program)
        for name in program.cfgs:
            ecfg = program.ecfgs[name]
            freqs = compute_frequencies(
                program.fcdgs[name], profile.proc(name)
            )
            by_node: dict[int, float] = {}
            for (u, label), value in freqs.freq.items():
                if u == ecfg.start or ecfg.is_preheader(u):
                    continue
                if label.startswith("Z"):
                    continue
                by_node[u] = by_node.get(u, 0.0) + value
            for node, total in by_node.items():
                assert total <= 1.0 + 1e-6, (name, node)

    @given(gen_seed=gen_seeds)
    @_SETTINGS
    def test_every_procedure_covered(self, gen_seed):
        program = program_for(gen_seed)
        profile = static_profile(program)
        for name in program.cfgs:
            assert profile.proc(name).invocations == 1.0
