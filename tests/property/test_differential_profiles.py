"""Differential fuzzing of the three profiling modes.

Every profiling mode must tell the same story about the same run:

* the **smart plan** (optimized counter placement, Section 3) must
  reconstruct ``TOTAL_FREQ`` material identical to the **oracle**
  (interpreter ground truth), and the Definition-3 top-down pass over
  both must yield identical ``NODE_FREQ`` / ``FREQ`` values;
* the **naive plan** (one counter per basic block) measures node
  executions directly; expanded to per-node counts it must equal both
  the interpreter's observed node counts and the smart plan's
  ``NODE_FREQ × invocations``;
* the smart plan must never place more counters than the naive plan,
  and never perform more runtime updates.

Exercised over ~50 seeded generator programs (deterministic — each
seed is one parametrized case), one run each, plus a handful of seeds
with multiple accumulated runs.
"""

import pytest

from repro import (
    compile_source,
    naive_program_plan,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.analysis.freq import compute_frequencies
from repro.profiling import (
    PlanExecutor,
    expand_block_counts,
    reconstruct_profile,
)
from repro.workloads.generators import ProgramGenerator

pytestmark = [pytest.mark.differential, pytest.mark.slow]

N_PROGRAMS = 50

_CACHE: dict[int, object] = {}


def _program(gen_seed: int):
    if gen_seed not in _CACHE:
        _CACHE[gen_seed] = compile_source(ProgramGenerator(gen_seed).source())
    return _CACHE[gen_seed]


def _profiles(program, run_seed: int):
    """One run observed simultaneously by all three modes."""
    smart = smart_program_plan(program)
    naive = naive_program_plan(program)
    smart_exec = PlanExecutor(smart)
    naive_exec = PlanExecutor(naive)
    # Same seed -> identical branch outcomes in every execution.
    result = run_program(program, hooks=smart_exec, seed=run_seed)
    run_program(program, hooks=naive_exec, seed=run_seed)
    return {
        "result": result,
        "smart_plan": smart,
        "naive_plan": naive,
        "smart": reconstruct_profile(smart, smart_exec, runs=1),
        "naive": reconstruct_profile(naive, naive_exec, runs=1),
        "oracle": oracle_program_profile(program, runs=[{"seed": run_seed}]),
    }


@pytest.mark.parametrize("gen_seed", range(N_PROGRAMS))
def test_all_modes_agree(gen_seed):
    program = _program(gen_seed)
    run_seed = 7919 * (gen_seed + 1)  # deterministic, distinct per program
    modes = _profiles(program, run_seed)

    for name in program.cfgs:
        fcdg = program.fcdgs[name]
        smart_proc = modes["smart"].proc(name)
        oracle_proc = modes["oracle"].proc(name)

        # 1. Raw TOTAL_FREQ material: smart reconstruction == oracle.
        assert smart_proc.invocations == oracle_proc.invocations, name
        for key, value in smart_proc.branch_counts.items():
            assert value == oracle_proc.branch_counts.get(key, 0.0), (name, key)
        for header, value in smart_proc.header_counts.items():
            assert value == oracle_proc.header_counts.get(header, 0.0), (
                name, header,
            )

        # 2. Definition-3 pass: identical FREQ / NODE_FREQ / TOTAL_FREQ.
        smart_freqs = compute_frequencies(fcdg, smart_proc)
        oracle_freqs = compute_frequencies(fcdg, oracle_proc)
        assert smart_freqs.total_freq == oracle_freqs.total_freq, name
        assert smart_freqs.freq == oracle_freqs.freq, name
        assert smart_freqs.node_freq == oracle_freqs.node_freq, name

        # 3. Naive block counts == interpreter node counts, node by node.
        observed = modes["result"].node_counts.get(name, {})
        naive_nodes = expand_block_counts(
            program.cfgs[name], modes["naive"].proc(name).block_counts
        )
        for node in program.cfgs[name].nodes:
            assert naive_nodes.get(node, 0.0) == float(
                observed.get(node, 0)
            ), (name, node)

        # 4. Cross-mode NODE_FREQ: smart's relative frequencies scale
        #    back to the naive plan's absolute counts.
        invocations = smart_proc.invocations
        for node, counted in naive_nodes.items():
            if node not in smart_freqs.node_freq:
                continue  # nodes pruned from the ECFG (unreachable)
            estimated = smart_freqs.node_freq[node] * invocations
            assert estimated == pytest.approx(counted, rel=1e-9, abs=1e-9), (
                name, node,
            )


@pytest.mark.parametrize("gen_seed", range(N_PROGRAMS))
def test_smart_never_places_more_counters(gen_seed):
    program = _program(gen_seed)
    smart = smart_program_plan(program)
    naive = naive_program_plan(program)
    assert smart.n_counters <= naive.n_counters
    for name in program.cfgs:
        assert smart.plans[name].n_counters <= naive.plans[name].n_counters, name


@pytest.mark.parametrize("gen_seed", [0, 11, 23, 37, 49])
def test_accumulated_runs_agree(gen_seed):
    """TOTAL_FREQ sums over runs: modes agree on accumulated profiles."""
    program = _program(gen_seed)
    run_specs = [{"seed": s} for s in (1, 2, 3)]
    smart = smart_program_plan(program)
    executor = PlanExecutor(smart)
    for spec in run_specs:
        run_program(program, hooks=executor, **spec)
    reconstructed = reconstruct_profile(smart, executor, runs=len(run_specs))
    oracle = oracle_program_profile(program, runs=run_specs)
    for name in program.cfgs:
        fcdg = program.fcdgs[name]
        smart_freqs = compute_frequencies(fcdg, reconstructed.proc(name))
        oracle_freqs = compute_frequencies(fcdg, oracle.proc(name))
        assert smart_freqs.total_freq == oracle_freqs.total_freq, name
        assert smart_freqs.node_freq == oracle_freqs.node_freq, name
