"""Stress invariants on larger, deeper generated programs.

The hypothesis suites keep programs small for speed; this module runs
the same exactness invariants once over a band of deliberately deeper
and busier programs (depth 4, long blocks, calls + gotos + loops).
"""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.profiling import PlanExecutor, reconstruct_profile
from repro.workloads.generators import ProgramGenerator

SEEDS = list(range(700, 716))


def build(seed):
    source = ProgramGenerator(
        seed, max_depth=4, max_stmts=7
    ).source()
    return compile_source(source)


@pytest.mark.parametrize("seed", SEEDS)
def test_deep_program_full_exactness(seed):
    program = build(seed)
    specs = [{"seed": seed * 13 + k} for k in range(2)]

    plan = smart_program_plan(program)
    executor = PlanExecutor(plan)
    total_cost = 0.0
    for spec in specs:
        total_cost += run_program(
            program, model=SCALAR_MACHINE, max_steps=5_000_000, **spec
        ).total_cost
        run_program(program, hooks=executor, max_steps=5_000_000, **spec)
    oracle = oracle_program_profile(program, runs=specs)
    reconstructed = reconstruct_profile(plan, executor, runs=len(specs))

    for name in program.cfgs:
        rec = reconstructed.proc(name)
        orc = oracle.proc(name)
        assert rec.invocations == orc.invocations, name
        for key, value in rec.branch_counts.items():
            assert value == orc.branch_counts.get(key, 0.0), (name, key)
        for header, value in rec.header_counts.items():
            assert value == orc.header_counts.get(header, 0.0), (
                name,
                header,
            )

    analysis = analyze(program, oracle, SCALAR_MACHINE)
    assert analysis.total_time == pytest.approx(
        total_cost / len(specs), rel=1e-9
    )
    for proc in analysis.procedures.values():
        for value in proc.variances.var.values():
            assert value >= 0.0


def test_deep_programs_are_actually_big():
    sizes = [len(build(seed).cfgs["MAIN"]) for seed in SEEDS[:4]]
    assert max(sizes) > 60  # ensure the stress band stresses something
