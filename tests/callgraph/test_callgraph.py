"""Unit tests for call graph construction and ordering."""

import pytest

from repro.lang.parser import parse_program
from repro.lang.symbols import check_program
from repro.callgraph import build_call_graph


def graph_of(source):
    return build_call_graph(check_program(parse_program(source)))


CHAIN = (
    "PROGRAM MAIN\nCALL A(X)\nEND\n"
    "SUBROUTINE A(X)\nCALL B(X)\nX = F(X)\nEND\n"
    "SUBROUTINE B(X)\nX = X + 1.0\nEND\n"
    "FUNCTION F(Y)\nF = Y\nEND\n"
)


class TestConstruction:
    def test_call_sites_counted(self):
        graph = graph_of(
            "PROGRAM MAIN\nCALL A(X)\nCALL A(Y)\nEND\n"
            "SUBROUTINE A(X)\nX = 1.0\nEND\n"
        )
        assert graph.calls["MAIN"]["A"] == 2

    def test_function_calls_in_expressions_found(self):
        graph = graph_of(CHAIN)
        assert "F" in graph.calls["A"]
        assert "B" in graph.calls["A"]

    def test_intrinsics_excluded(self):
        graph = graph_of("PROGRAM MAIN\nX = SQRT(MOD(7.0, 2.0))\nEND\n")
        assert graph.calls["MAIN"] == {}

    def test_array_refs_not_calls(self):
        graph = graph_of("PROGRAM MAIN\nREAL A(5)\nX = A(2)\nEND\n")
        assert graph.calls["MAIN"] == {}

    def test_callers_and_callees(self):
        graph = graph_of(CHAIN)
        assert graph.callees("A") == ["B", "F"]
        assert graph.callers("B") == ["A"]

    def test_nested_call_in_if_found(self):
        graph = graph_of(
            "PROGRAM MAIN\nIF (X .GT. 0.0) THEN\nCALL A(X)\nENDIF\nEND\n"
            "SUBROUTINE A(X)\nX = 1.0\nEND\n"
        )
        assert "A" in graph.calls["MAIN"]


class TestOrdering:
    def test_bottom_up_callees_first(self):
        graph = graph_of(CHAIN)
        order = graph.bottom_up()
        assert order.index("B") < order.index("A")
        assert order.index("F") < order.index("A")
        assert order.index("A") < order.index("MAIN")

    def test_sccs_singletons_without_recursion(self):
        graph = graph_of(CHAIN)
        assert all(len(scc) == 1 for scc in graph.sccs)

    def test_self_recursion_detected(self):
        graph = graph_of(
            "PROGRAM MAIN\nPRINT *, F(3)\nEND\n"
            "INTEGER FUNCTION F(N)\nINTEGER N\n"
            "IF (N .LE. 0) THEN\nF = 1\nELSE\nF = F(N - 1)\nENDIF\nEND\n"
        )
        assert graph.is_recursive("F")
        assert not graph.is_recursive("MAIN")

    def test_mutual_recursion_one_scc(self):
        graph = graph_of(
            "PROGRAM MAIN\nPRINT *, A(3)\nEND\n"
            "INTEGER FUNCTION A(N)\nINTEGER N\n"
            "IF (N .LE. 0) THEN\nA = 0\nELSE\nA = B(N - 1)\nENDIF\nEND\n"
            "INTEGER FUNCTION B(N)\nINTEGER N\n"
            "IF (N .LE. 0) THEN\nB = 1\nELSE\nB = A(N - 1)\nENDIF\nEND\n"
        )
        sccs_with_both = [s for s in graph.sccs if set(s) == {"A", "B"}]
        assert len(sccs_with_both) == 1
        assert graph.is_recursive("A")
        assert graph.is_recursive("B")

    def test_unreachable_procedure_still_ordered(self):
        graph = graph_of(
            "PROGRAM MAIN\nX = 1.0\nEND\n"
            "SUBROUTINE ORPHAN(X)\nX = 1.0\nEND\n"
        )
        assert set(graph.bottom_up()) == {"MAIN", "ORPHAN"}
