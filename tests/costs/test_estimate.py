"""Unit tests for cost models and static COST estimation."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.symbols import check_program
from repro.cfg.builder import build_program_cfgs
from repro.cfg.graph import StmtKind
from repro.costs import (
    CostEstimator,
    MachineModel,
    OPTIMIZING_MACHINE,
    SCALAR_MACHINE,
)
from repro.costs.estimate import expr_type


def setup(body_lines, extra=""):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n" + extra
    checked = check_program(parse_program(source))
    cfgs = build_program_cfgs(checked)
    estimator = CostEstimator(checked, SCALAR_MACHINE)
    return checked, cfgs, estimator


def node_of(cfg, kind):
    return next(n for n in cfg if n.kind is kind)


class TestExprType:
    def cases(self, expr_text, body_prefix=()):
        body = list(body_prefix) + [f"QQQ = {expr_text}"]
        checked, cfgs, _ = setup(body)
        assign = node_of(cfgs["MAIN"], StmtKind.ASSIGN if not body_prefix else StmtKind.ASSIGN)
        # find the QQQ assignment
        for n in cfgs["MAIN"]:
            if n.kind is StmtKind.ASSIGN and n.text.startswith("QQQ"):
                return expr_type(n.stmt.value, checked.tables["MAIN"], checked)
        raise AssertionError

    def test_int_literal(self):
        assert self.cases("1 + 2") is ast.Type.INTEGER

    def test_real_promotion(self):
        assert self.cases("1 + 2.0") is ast.Type.REAL

    def test_implicit_variable_types(self):
        assert self.cases("I + J") is ast.Type.INTEGER
        assert self.cases("X + Y") is ast.Type.REAL

    def test_comparison_is_logical(self):
        checked, cfgs, _ = setup(["IF (X .GT. 0.0) Y = 1.0"])
        if_node = node_of(cfgs["MAIN"], StmtKind.IF)
        assert (
            expr_type(if_node.cond, checked.tables["MAIN"], checked)
            is ast.Type.LOGICAL
        )

    def test_intrinsic_match_type(self):
        assert self.cases("MOD(7, 3)") is ast.Type.INTEGER
        assert self.cases("MOD(7.0, 3.0)") is ast.Type.REAL

    def test_intrinsic_fixed_type(self):
        assert self.cases("SQRT(2.0)") is ast.Type.REAL
        assert self.cases("INT(2.5)") is ast.Type.INTEGER

    def test_parameter_constant_type(self):
        assert self.cases("N + 1", ["PARAMETER (N = 4)"]) is ast.Type.INTEGER


class TestNodeCost:
    def test_assign_cost(self):
        checked, cfgs, est = setup(["X = 1.0"])
        node = node_of(cfgs["MAIN"], StmtKind.ASSIGN)
        cost = est.node_cost(node, "MAIN")
        assert cost.local == SCALAR_MACHINE.const + SCALAR_MACHINE.store
        assert cost.calls == []

    def test_int_vs_real_op_costs(self):
        checked, cfgs, est = setup(["I = J * K", "X = Y * Z"])
        assigns = [n for n in cfgs["MAIN"] if n.kind is StmtKind.ASSIGN]
        int_cost = est.node_cost(assigns[0], "MAIN").local
        real_cost = est.node_cost(assigns[1], "MAIN").local
        assert real_cost - int_cost == SCALAR_MACHINE.fp_mul - SCALAR_MACHINE.int_mul

    def test_array_access_charges_indexing(self):
        checked, cfgs, est = setup(["REAL A(10)", "X = A(3)"])
        node = node_of(cfgs["MAIN"], StmtKind.ASSIGN)
        cost = est.node_cost(node, "MAIN").local
        expected = (
            SCALAR_MACHINE.load
            + SCALAR_MACHINE.array_index
            + SCALAR_MACHINE.const  # the index literal
            + SCALAR_MACHINE.store
        )
        assert cost == expected

    def test_if_cost_includes_branch(self):
        checked, cfgs, est = setup(["IF (X .GT. 0.0) Y = 1.0"])
        node = node_of(cfgs["MAIN"], StmtKind.IF)
        cost = est.node_cost(node, "MAIN").local
        assert cost == (
            SCALAR_MACHINE.load
            + SCALAR_MACHINE.const
            + SCALAR_MACHINE.compare
            + SCALAR_MACHINE.branch
        )

    def test_call_reports_callee(self):
        checked, cfgs, est = setup(
            ["CALL FOO(X)"], extra="SUBROUTINE FOO(A)\nA = 1.0\nEND\n"
        )
        node = node_of(cfgs["MAIN"], StmtKind.CALL)
        cost = est.node_cost(node, "MAIN")
        assert cost.calls == ["FOO"]
        assert cost.local == SCALAR_MACHINE.call_overhead

    def test_function_in_expression_reports_callee(self):
        checked, cfgs, est = setup(
            ["X = F(1.0) + F(2.0)"], extra="FUNCTION F(Y)\nF = Y\nEND\n"
        )
        node = node_of(cfgs["MAIN"], StmtKind.ASSIGN)
        cost = est.node_cost(node, "MAIN")
        assert cost.calls == ["F", "F"]

    def test_intrinsic_cost_table(self):
        checked, cfgs, est = setup(["X = SQRT(2.0)"])
        node = node_of(cfgs["MAIN"], StmtKind.ASSIGN)
        cost = est.node_cost(node, "MAIN").local
        assert cost == (
            SCALAR_MACHINE.const
            + SCALAR_MACHINE.intrinsic("SQRT")
            + SCALAR_MACHINE.store
        )

    def test_synthetic_nodes_cost_zero(self):
        checked, cfgs, est = setup(["CONTINUE"])
        for node in cfgs["MAIN"]:
            if node.kind in (StmtKind.ENTRY, StmtKind.EXIT, StmtKind.NOOP):
                assert est.node_cost(node, "MAIN").local == 0.0

    def test_do_nodes_have_costs(self):
        checked, cfgs, est = setup(
            ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"]
        )
        for kind in (StmtKind.DO_INIT, StmtKind.DO_TEST, StmtKind.DO_INCR):
            node = node_of(cfgs["MAIN"], kind)
            assert est.node_cost(node, "MAIN").local > 0


class TestMachines:
    def test_optimizing_machine_cheaper_compute(self):
        assert OPTIMIZING_MACHINE.fp_mul < SCALAR_MACHINE.fp_mul
        assert OPTIMIZING_MACHINE.load < SCALAR_MACHINE.load

    def test_counter_update_cost_not_optimized(self):
        assert OPTIMIZING_MACHINE.counter_update == SCALAR_MACHINE.counter_update

    def test_intrinsic_default(self):
        model = MachineModel(name="m")
        assert model.intrinsic("UNKNOWN") == model.intrinsic_default

    def test_models_are_frozen(self):
        with pytest.raises(AttributeError):
            SCALAR_MACHINE.load = 1.0
