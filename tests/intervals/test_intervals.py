"""Unit tests for the interval (loop-nesting) structure."""

import pytest

from repro.errors import IrreducibleError
from repro.intervals import compute_intervals
from repro.lang.parser import parse_program
from repro.cfg.builder import build_cfg
from repro.cfg.graph import StmtKind


def intervals_of(body_lines):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n"
    cfg = build_cfg(parse_program(source).main)
    return cfg, compute_intervals(cfg)


class TestStructure:
    def test_loop_free_program_has_only_root(self):
        cfg, intervals = intervals_of(["X = 1", "Y = 2"])
        assert intervals.headers == [cfg.entry]
        assert intervals.loop_headers == []

    def test_root_contains_all_nodes(self):
        cfg, intervals = intervals_of(["X = 1", "IF (X .GT. 0) Y = 2"])
        assert intervals.members[intervals.root] == set(cfg.nodes)

    def test_root_parent_is_zero(self):
        cfg, intervals = intervals_of(["X = 1"])
        assert intervals.parent_of(intervals.root) == 0

    def test_single_do_loop(self):
        cfg, intervals = intervals_of(
            ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"]
        )
        assert len(intervals.loop_headers) == 1
        header = intervals.loop_headers[0]
        assert cfg.nodes[header].kind is StmtKind.DO_TEST

    def test_loop_members(self):
        cfg, intervals = intervals_of(
            ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"]
        )
        header = intervals.loop_headers[0]
        member_kinds = {cfg.nodes[n].kind for n in intervals.members[header]}
        assert StmtKind.DO_TEST in member_kinds
        assert StmtKind.DO_INCR in member_kinds
        assert StmtKind.ASSIGN in member_kinds
        assert StmtKind.DO_INIT not in member_kinds  # init precedes the loop

    def test_goto_loop_header(self):
        cfg, intervals = intervals_of(
            ["10 X = X + 1.0", "IF (X .LT. 5.0) GOTO 10"]
        )
        assert len(intervals.loop_headers) == 1
        header = intervals.loop_headers[0]
        assert "X" in cfg.nodes[header].text

    def test_irreducible_rejected(self):
        from repro.workloads.unstructured import IRREDUCIBLE

        cfg = build_cfg(parse_program(IRREDUCIBLE).main)
        with pytest.raises(IrreducibleError):
            compute_intervals(cfg)


class TestNesting:
    def nested(self):
        return intervals_of(
            [
                "DO 20 I = 1, 4",
                "DO 10 J = 1, 3",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )

    def test_two_loops_found(self):
        cfg, intervals = self.nested()
        assert len(intervals.loop_headers) == 2

    def test_nesting_parent_chain(self):
        cfg, intervals = self.nested()
        outer, inner = intervals.loop_headers  # ordered by depth
        assert intervals.parent_of(outer) == intervals.root
        assert intervals.parent_of(inner) == outer

    def test_depths(self):
        cfg, intervals = self.nested()
        outer, inner = intervals.loop_headers
        assert intervals.depth_of(outer) == 1
        assert intervals.depth_of(inner) == 2

    def test_lca(self):
        cfg, intervals = self.nested()
        outer, inner = intervals.loop_headers
        assert intervals.lca(inner, outer) == outer
        assert intervals.lca(inner, intervals.root) == intervals.root
        assert intervals.lca(inner, inner) == inner

    def test_lca_of_siblings(self):
        cfg, intervals = intervals_of(
            [
                "DO 10 I = 1, 3",
                "X = X + 1.0",
                "10 CONTINUE",
                "DO 20 J = 1, 3",
                "Y = Y + 1.0",
                "20 CONTINUE",
            ]
        )
        first, second = intervals.loop_headers
        assert intervals.lca(first, second) == intervals.root

    def test_hdr_of_inner_node(self):
        cfg, intervals = self.nested()
        outer, inner = intervals.loop_headers
        assign = next(n for n in cfg if n.kind is StmtKind.ASSIGN)
        assert intervals.hdr_of(assign.id) == inner

    def test_header_belongs_to_own_interval(self):
        cfg, intervals = self.nested()
        for header in intervals.loop_headers:
            assert intervals.hdr_of(header) == header

    def test_intervals_nest_properly(self):
        cfg, intervals = self.nested()
        outer, inner = intervals.loop_headers
        assert intervals.members[inner] < intervals.members[outer]


class TestEdges:
    def test_exit_edges_of_do_loop(self):
        cfg, intervals = intervals_of(
            ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"]
        )
        header = intervals.loop_headers[0]
        exits = intervals.exit_edges(header)
        assert len(exits) == 1
        assert exits[0].src == header
        assert exits[0].label == "F"

    def test_exit_edges_with_goto_exit(self):
        cfg, intervals = intervals_of(
            [
                "DO 10 I = 1, 5",
                "IF (X .GT. 2.0) GOTO 20",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        header = intervals.loop_headers[0]
        assert len(intervals.exit_edges(header)) == 2

    def test_entry_edges(self):
        cfg, intervals = intervals_of(
            ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"]
        )
        header = intervals.loop_headers[0]
        entries = intervals.entry_edges(header)
        assert len(entries) == 1
        assert cfg.nodes[entries[0].src].kind is StmtKind.DO_INIT

    def test_back_edges_grouped_by_header(self):
        cfg, intervals = intervals_of(
            ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"]
        )
        header = intervals.loop_headers[0]
        backs = intervals.loop_back_edges[header]
        assert len(backs) == 1
        assert cfg.nodes[backs[0].src].kind is StmtKind.DO_INCR
