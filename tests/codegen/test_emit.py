"""Unit tests for the codegen emitter and backend shell.

The conformance suite proves behavioural identity; these tests pin
the *mechanism* — structured emission with basic-block fusion, the
dispatch-loop fallback for irreducible-shaped procedures, variant
caching, the pickled cache shell, and the hooks contract.
"""

import pickle

import pytest

from repro import SCALAR_MACHINE, compile_source, smart_program_plan
from repro.codegen import (
    CodegenBackend,
    UnsupportedHooksError,
    codegen_backend_for,
)
from repro.profiling import PlanExecutor
from repro.workloads import builtin_sources
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.codegen

STRUCTURED = """\
      PROGRAM MAIN
      T = 0.0
      DO 10 I = 1, 4
        T = T + 1.5
10    CONTINUE
      PRINT *, T
      END
"""


@pytest.fixture(scope="module")
def loop_backend():
    program = compile_source(STRUCTURED)
    backend = codegen_backend_for(program)
    backend.ensure_lowered()
    return program, backend


class TestEmission:
    def test_structured_mode_for_reducible_loop(self, loop_backend):
        _program, backend = loop_backend
        meta = backend.emit_meta()
        assert meta.mode["MAIN"] == "structured"

    def test_loop_is_native_while(self, loop_backend):
        """Structured mode lowers the DO loop to a `while`, not a
        dispatch loop over a node index."""
        _program, backend = loop_backend
        source = backend.emitted_source()
        assert "while " in source
        assert "_n = 0" not in source  # no dispatch program counter

    def test_fused_blocks_batch_the_step_charge(self, loop_backend):
        """Straight-line runs charge `_d += K` once, with a slow-path
        replay guarding the step limit."""
        _program, backend = loop_backend
        source = backend.emitted_source()
        assert any(
            line.strip().startswith("_d += ")
            and line.strip() != "_d += 1"
            for line in source.splitlines()
        )

    def test_constant_fold(self, loop_backend):
        """`T + 1.5` keeps the literal; no Cell/env lookups remain."""
        _program, backend = loop_backend
        source = backend.emitted_source()
        assert "1.5" in source
        assert "env[" not in source

    def test_variants_cached_per_plan_and_model(self, loop_backend):
        program, backend = loop_backend
        plan = smart_program_plan(program)
        first = backend.emitted_source(plan, SCALAR_MACHINE)
        again = backend.emitted_source(plan, SCALAR_MACHINE)
        assert first == again
        assert backend.emitted_source() != first  # base variant differs

    def test_dispatch_fallback_still_runs(self):
        """A procedure the structurer rejects drops to the dispatch
        loop but still executes correctly (paper example has one)."""
        program = compile_source(PAPER_SOURCE)
        backend = codegen_backend_for(program)
        backend.ensure_lowered()
        result = backend.run(seed=0)
        assert result.halted in ("end", "stop")
        assert result.steps == 61


class TestBackendShell:
    def test_backend_cached_on_program(self):
        program = compile_source(STRUCTURED)
        assert codegen_backend_for(program) is codegen_backend_for(program)

    def test_pickle_ships_base_source(self, loop_backend):
        program, backend = loop_backend
        clone = pickle.loads(pickle.dumps(backend))
        assert clone._shipped_source == backend.emitted_source()
        clone.ensure_lowered()
        assert clone.run(seed=0).outputs == backend.run(seed=0).outputs

    def test_corrupt_shipped_source_is_discarded(self, loop_backend):
        _program, backend = loop_backend
        state = backend.__getstate__()
        state["source"] = state["source"] + "\n# tampered"
        clone = CodegenBackend.__new__(CodegenBackend)
        clone.__setstate__(state)
        assert clone._shipped_source is None  # fingerprint mismatch
        clone.ensure_lowered()  # re-emits from the CFGs instead

    def test_rejects_foreign_hooks(self, loop_backend):
        program, backend = loop_backend

        class Chained(PlanExecutor):
            pass

        plan = smart_program_plan(program)
        with pytest.raises(UnsupportedHooksError):
            backend.run(hooks=Chained(plan))

    def test_all_builtins_lower(self):
        """Every builtin workload is expressible in the codegen
        backend — auto-selection never needs to fall back on them."""
        for name, source in builtin_sources():
            backend = codegen_backend_for(compile_source(source))
            backend.ensure_lowered()
