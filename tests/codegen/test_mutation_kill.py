"""Mutation testing of the conformance net itself.

A differential harness is only as strong as the miscompiles it can
catch.  The emitter exposes ~10 seeded miscompile modes
(:data:`repro.codegen.MUTATIONS` — a wrong slot index, a dropped or
duplicated counter bump, a skipped coercion, a loop that runs one
trip too many, a negated branch, an off-by-one bounds check, a
missing zero-divide guard, a dropped cost add).  Each one is emitted
here through a real :class:`CodegenBackend` and must be *killed* —
either behaviourally, by the same observation the conformance suite
compares (outputs, errors, counts, float-pinned costs, live counter
state, update tallies), or statically, by the REP405 bump-site audit
the checker runs over every emission.

``dup-node-bump`` is the reason both oracles exist: the audit
compares deduplicated site *sets*, so a duplicated bump is invisible
to it and only the behavioural comparison kills it — and the test
asserts exactly that split.
"""

import pytest

from repro import SCALAR_MACHINE, compile_source, smart_program_plan
from repro.checker import audit_bump_sites
from repro.codegen import MUTATIONS, CodegenBackend
from repro.errors import ReproError
from repro.profiling import PlanExecutor

pytestmark = [pytest.mark.codegen, pytest.mark.conformance]

#: One targeted workload per mutation: the *first* emitter site of the
#: mutated kind must be one whose miscompilation is observable.
KILL_SOURCES = {
    "profiled-loop": """\
      PROGRAM MAIN
      T = 0.0
      DO 10 I = 1, 5
        IF (MOD(I, 2) .EQ. 0) THEN
          T = T + 2.0
        ELSE
          T = T + 1.0
        ENDIF
10    CONTINUE
      PRINT *, T
      END
""",
    "coercion": """\
      PROGRAM MAIN
      INTEGER K
      K = 7.9
      PRINT *, K
      END
""",
    "bounds": """\
      PROGRAM MAIN
      REAL ARR(5)
      K = 0
      T = ARR(K)
      PRINT *, T
      END
""",
    "zero-div": """\
      PROGRAM MAIN
      A = 1.0
      B = 0.0
      T = A / B
      PRINT *, T
      END
""",
    "branch": """\
      PROGRAM MAIN
      K = 3
      IF (K .GT. 2) THEN
        PRINT *, 1
      ELSE
        PRINT *, 2
      ENDIF
      END
""",
}

#: mutation -> which workload makes its first mutated site observable.
WORKLOAD_FOR = {
    "slot-off-by-one": "profiled-loop",
    "drop-node-bump": "profiled-loop",
    "drop-edge-bump": "profiled-loop",
    "dup-node-bump": "profiled-loop",
    "drop-coercion": "coercion",
    "wrong-loop-bound": "profiled-loop",
    "swap-branch": "branch",
    "off-by-one-bounds": "bounds",
    "drop-zero-div": "zero-div",
    "drop-cost": "profiled-loop",
}

#: Mutations the static REP405 audit must catch on its own.  The rest
#: are invisible to a site-set audit (dup-node-bump dedupes away; the
#: behavioural mutations never touch a bump site) and must fall to the
#: behavioural oracle instead.
AUDIT_KILLED = {"slot-off-by-one", "drop-node-bump", "drop-edge-bump"}

_PROGRAMS: dict[str, object] = {}


def _program(workload: str):
    if workload not in _PROGRAMS:
        _PROGRAMS[workload] = compile_source(KILL_SOURCES[workload])
    return _PROGRAMS[workload]


def _observe_backend(backend, *, plan, model):
    """A backend run's observable behaviour plus live counter state."""
    executor = PlanExecutor(plan) if plan is not None else None
    try:
        result = backend.run(
            model=model, hooks=executor, seed=3, max_steps=10_000
        )
    except ReproError as exc:
        observed = {"error": (type(exc).__name__, str(exc))}
    except Exception as exc:  # a miscompile may escape the taxonomy
        observed = {"escaped": (type(exc).__name__, str(exc))}
    else:
        observed = {
            "halted": result.halted,
            "steps": result.steps,
            "outputs": result.outputs,
            "total_cost": repr(result.total_cost),
            "counter_ops": result.counter_ops,
            "counter_cost": repr(result.counter_cost),
            "node_counts": result.node_counts,
            "edge_counts": result.edge_counts,
            "main_vars": result.main_vars,
        }
    if executor is not None:
        observed["counters"] = {
            name: list(arr) for name, arr in executor.counters.items()
        }
        observed["updates"] = executor.updates
    return observed


def _emit(program, mutation):
    backend = CodegenBackend(
        program.checked, program.cfgs, mutation=mutation
    )
    backend.ensure_lowered()
    return backend


@pytest.mark.parametrize("mutation", MUTATIONS)
def test_mutation_is_killed(mutation):
    program = _program(WORKLOAD_FOR[mutation])
    plan = smart_program_plan(program)

    clean = _emit(program, None)
    mutant = _emit(program, mutation)

    # The mutation must actually land in the emitted profiled+costed
    # variant — an unapplied mutation would make this test vacuous.
    mutant_meta = mutant.emit_meta(plan, SCALAR_MACHINE)
    assert mutant_meta.mutation_applied, mutation
    assert mutant.emitted_source(plan, SCALAR_MACHINE) != clean.emitted_source(
        plan, SCALAR_MACHINE
    )

    audit = audit_bump_sites(program, plan, mutant_meta)
    behavioural = _observe_backend(
        mutant, plan=plan, model=SCALAR_MACHINE
    ) != _observe_backend(clean, plan=plan, model=SCALAR_MACHINE)

    if mutation in AUDIT_KILLED:
        assert audit, f"{mutation} must be caught by the REP405 audit"
        assert all(d.code == "REP405" for d in audit)
    else:
        assert not audit, (
            f"{mutation} unexpectedly visible to the site audit; "
            "move it into AUDIT_KILLED"
        )
        assert behavioural, f"{mutation} survived both oracles"


def test_clean_emission_passes_both_oracles():
    """The oracles kill mutants, not valid code."""
    for workload in KILL_SOURCES:
        program = _program(workload)
        plan = smart_program_plan(program)
        backend = _emit(program, None)
        assert audit_bump_sites(
            program, plan, backend.emit_meta(plan, SCALAR_MACHINE)
        ) == [], workload


def test_profiled_loop_plan_has_all_site_kinds():
    """The shared kill workload must offer node and edge counter sites
    (otherwise the slot mutations would never fire)."""
    program = _program("profiled-loop")
    plan = smart_program_plan(program)
    from repro.fastexec.plans import lower_counter_plan

    table = lower_counter_plan(plan.plans["MAIN"])
    assert table.node_slots or table.batch_slots
    assert table.edge_slots
