"""Codegen-backend unit tests and the mutation-kill suite."""
