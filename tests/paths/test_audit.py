"""Mutation-kill tests for the REP5xx path-plan audit.

Mirrors ``tests/checker/test_mutations.py``: seed one deliberate
corruption per test into a valid path plan (or into the codegen
backend's emitted-site metadata) and assert the checker kills the
mutant with the expected code.  A clean plan must stay noise-free on
the whole builtin corpus — that property gates the artifact cache's
``verify_loads`` re-check of unpickled path plans.

Plan-table corruptions surface as REP501/REP502 (both the emitter and
the site audit faithfully follow the corrupted tables, so REP503
stays silent — exactly like REP405, which catches *miscompiles*, not
plan corruption).  REP503 is exercised by corrupting the emission
metadata directly.
"""

import copy

import pytest

from repro.checker import verify_program
from repro.checker.pathaudit import (
    audit_path_sites,
    check_codegen_path_sites,
    check_path_plan,
)
from repro.checker.verify import check_source
from repro.codegen import codegen_backend_for
from repro.paths import path_program_plan
from repro.pipeline import compile_source
from repro.workloads import builtin_sources
from repro.workloads.paper_example import PAPER_SOURCE, paper_program

pytestmark = [pytest.mark.paths, pytest.mark.checker]


@pytest.fixture()
def program():
    return paper_program()


@pytest.fixture()
def plan(program):
    # Deep-copied per test: every test mutates its own plan.
    return copy.deepcopy(path_program_plan(program))


def codes(findings):
    return {f.code for f in findings}


# -- the baseline is noise-free ---------------------------------------


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_path_plans_clean(name):
    program = compile_source(dict(builtin_sources())[name])
    assert check_path_plan(program, path_program_plan(program)) == []


def test_verify_program_routes_path_plans(program):
    report = verify_program(program, path_program_plan(program))
    assert not report.errors


def test_check_source_paths_kind():
    report = check_source(PAPER_SOURCE, plan_kinds=("paths",), lint=False)
    assert not report.errors


# -- REP501: numbering bijection ---------------------------------------


def test_tampered_increment_is_killed(program, plan):
    plan.plans["MAIN"].increments[(4, "F")] += 1
    assert codes(check_path_plan(program, plan)) == {"REP501"}


def test_tampered_num_paths_is_killed(program, plan):
    plan.plans["MAIN"].num_paths = 9
    assert codes(check_path_plan(program, plan)) == {"REP501"}


def test_dropped_increment_is_killed(program, plan):
    del plan.plans["MAIN"].increments[(5, "T")]
    assert codes(check_path_plan(program, plan)) == {"REP501"}


# -- REP502: flush coverage --------------------------------------------


def test_dropped_flush_is_killed(program, plan):
    plan.plans["MAIN"].flushes.clear()
    assert codes(check_path_plan(program, plan)) == {"REP502"}


def test_phantom_flush_is_killed(program, plan):
    plan.plans["MAIN"].flushes[(5, "F")] = (0, 0)
    assert codes(check_path_plan(program, plan)) == {"REP502"}


def test_tampered_bump_add_is_killed(program, plan):
    plan.plans["MAIN"].flushes[(7, "U")] = (3, 4)
    assert codes(check_path_plan(program, plan)) == {"REP502"}


def test_tampered_reset_is_killed(program, plan):
    plan.plans["MAIN"].flushes[(7, "U")] = (0, 2)
    assert codes(check_path_plan(program, plan)) == {"REP502"}


def test_tampered_stop_sinks_is_killed(program, plan):
    plan.plans["MAIN"].stop_sinks = frozenset({5})
    assert codes(check_path_plan(program, plan)) == {"REP502"}


def test_proc_set_mismatch_is_killed(program, plan):
    del plan.plans["FOO"]
    assert codes(check_path_plan(program, plan)) == {"REP206"}


# -- REP503: emitted sites vs plan -------------------------------------


def emitted_meta(program, plan):
    backend = codegen_backend_for(program)
    backend.ensure_lowered()
    return backend.emit_meta(plan)


def test_clean_emission_has_no_rep503(program):
    plan = path_program_plan(program)
    assert check_codegen_path_sites(program, plan) == []


def test_dropped_site_is_killed(program):
    plan = path_program_plan(program)
    meta = copy.deepcopy(emitted_meta(program, plan))
    sites = meta.path_sites["MAIN"]
    victim = next(s for s in sites if s[0] == "inc")
    sites.remove(victim)
    findings = audit_path_sites(program, plan, meta)
    assert codes(findings) == {"REP503"}
    assert any("has no emitted update" in f.message for f in findings)


def test_phantom_site_is_killed(program):
    plan = path_program_plan(program)
    meta = copy.deepcopy(emitted_meta(program, plan))
    meta.path_sites["MAIN"].append(("inc", (999, "U"), 7))
    findings = audit_path_sites(program, plan, meta)
    assert codes(findings) == {"REP503"}
    assert any("matches no planned site" in f.message for f in findings)


def test_tampered_flush_site_is_killed(program):
    plan = path_program_plan(program)
    meta = copy.deepcopy(emitted_meta(program, plan))
    sites = meta.path_sites["MAIN"]
    victim = next(s for s in sites if s[0] == "flush")
    sites.remove(victim)
    sites.append(("flush", victim[1], victim[2] + 1, victim[3]))
    findings = audit_path_sites(program, plan, meta)
    # Both directions: the phantom site and the missing planned one.
    assert codes(findings) == {"REP503"}
    assert len(findings) == 2
