"""Path numbering on the paper's running example, hand-computed.

The Figure 1-3 program has exactly the CFG the Ball–Larus recurrence
is easiest to verify by hand: a single loop whose body is an
if/else-of-ifs diamond.  Splitting the back edge ``CALL FOO -> IF``
leaves a DAG with four acyclic continuations from the loop header and
four from the procedure entry, so MAIN numbers 8 paths and FOO
(straight-line) exactly 1.  Every constant asserted below was derived
on paper from the NumPaths recurrence, not copied from the
implementation's output.
"""

import pytest

from repro.paths import (
    DEFAULT_MAX_PATHS,
    PathExecutor,
    PathOverflowError,
    path_plan_fingerprint,
    path_program_plan,
)
from repro.pipeline import compile_source, run_program
from repro.workloads.paper_example import paper_program

pytestmark = pytest.mark.paths


@pytest.fixture(scope="module")
def program():
    return paper_program()


@pytest.fixture(scope="module")
def plan(program):
    return path_program_plan(program)


def test_paper_example_num_paths(plan):
    # NumPaths(EXIT)=1; the two inner IFs each see 1 (loop path via
    # the split back edge) + 1 (exit path) = 2; the outer IF sums its
    # arms to 4; the entry chain carries 4 and the dummy ENTRY->header
    # edge another 4.
    assert plan.plans["MAIN"].num_paths == 8
    assert plan.plans["FOO"].num_paths == 1


def test_paper_example_increments(plan):
    main = plan.plans["MAIN"]
    # Nodes: 4 = IF (M.GE.0), 5 = IF (N.LT.0), 6 = IF (N.GE.0),
    # 7 = CALL FOO.  Prefix sums of successor NumPaths:
    #   at node 4: T arm first (prefix 0), F arm after 2 paths;
    #   at nodes 5/6: F arm first (prefix 0), T arm after 1.
    nonzero = {k: v for k, v in main.increments.items() if v}
    assert nonzero == {(4, "F"): 2, (5, "T"): 1, (6, "T"): 1}
    # Straight-line FOO: every edge increments by zero.
    assert not any(plan.plans["FOO"].increments.values())


def test_paper_example_flushes(plan):
    main = plan.plans["MAIN"]
    # One back edge (CALL FOO -> loop header).  Its dummy u->EXIT
    # edge is numbered after node 7's zero real successors (prefix 0)
    # and the header's dummy ENTRY->h edge after the 4 entry paths.
    assert main.flushes == {(7, "U"): (0, 4)}
    assert plan.plans["FOO"].flushes == {}
    # No STOP anywhere: the only DAG sinks are the EXIT nodes.
    assert main.stop_sinks == frozenset()
    assert plan.plans["FOO"].stop_sinks == frozenset()


def test_paper_example_decode_table(plan):
    main = plan.plans["MAIN"]
    ends = {pid: main.decode(pid).end for pid in range(8)}
    # Even ids iterate (end on the back edge), odd ids leave the loop.
    assert ends == {
        0: "backedge", 1: "exit", 2: "backedge", 3: "exit",
        4: "backedge", 5: "exit", 6: "backedge", 7: "exit",
    }
    # ids 0-3 start at the procedure entry, 4-7 at the loop header.
    assert {pid: main.decode(pid).start for pid in range(8)} == {
        0: 1, 1: 1, 2: 1, 3: 1, 4: 4, 5: 4, 6: 4, 7: 4,
    }
    # The distinct-path property: no two ids share a node/edge shape.
    shapes = {
        (d.start, d.nodes, d.edges, d.end)
        for d in (main.decode(pid) for pid in range(8))
    }
    assert len(shapes) == 8


def test_paper_example_spectrum(program, plan):
    """Figure 3's run: header executes 10 times, FOO 9 times.

    Path ids: 0 = entry -> M>=0 -> N>=0 -> CALL (first iteration),
    4 = header -> M>=0 -> N>=0 -> CALL (iterations 2-9), 5 = header
    -> M>=0 -> N<0 -> CONTINUE -> EXIT (the escape).
    """
    executor = PathExecutor(plan)
    for _ in range(3):
        run_program(program, hooks=executor)
        executor.finalize_run()
    assert executor.path_counts["MAIN"] == {0: 3.0, 4: 24.0, 5: 3.0}
    assert executor.path_counts["FOO"] == {0: 27.0}
    assert executor.partials == []
    # Per run: 9 back-edge flushes (2 updates each) + 1 increment on
    # (5, 'T') + MAIN's EXIT flush + 9 FOO EXIT flushes = 29.
    assert executor.updates == 3 * 29


def test_enumerate_matches_decode(plan):
    main = plan.plans["MAIN"]
    enumerated = list(main.enumerate_paths())
    assert [d.path_id for d in enumerated] == list(range(8))
    assert all(
        d.nodes == main.decode(d.path_id).nodes for d in enumerated
    )


def test_decode_partial_prefix_property(plan):
    """A partial decodes to a prefix of every full path it could
    still become — asserted on the register value after the first
    iteration's increments."""
    main = plan.plans["MAIN"]
    partial = main.decode_partial(7, 0)  # suspended in CALL FOO, r=0
    full = main.decode(0)
    assert partial.nodes == full.nodes[: len(partial.nodes)]
    assert partial.nodes[-1] == 7


def test_overflow_guard():
    """~40 chained IFs double the path count past DEFAULT_MAX_PATHS."""
    body = "".join(
        f"      IF (X .GT. {i}.5) THEN\n"
        f"        X = X + 1.0\n"
        f"      ENDIF\n"
        for i in range(40)
    )
    source = (
        "      PROGRAM WIDE\n"
        "      X = 0.0\n" + body + "      END\n"
    )
    program = compile_source(source)
    with pytest.raises(PathOverflowError) as excinfo:
        path_program_plan(program)
    assert "WIDE" in str(excinfo.value)
    # A raised ceiling admits the same program.
    wide = path_program_plan(program, max_paths=1 << 64)
    assert wide.plans["WIDE"].num_paths == 2**40
    assert wide.plans["WIDE"].num_paths > DEFAULT_MAX_PATHS


def test_fingerprint_stable_and_distinct(program, plan):
    again = path_program_plan(program)
    assert path_plan_fingerprint(plan) == path_plan_fingerprint(again)
    assert path_plan_fingerprint(plan)[0] == "paths"
