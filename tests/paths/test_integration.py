"""Path mode through batch, cache and CLI — the integration seams.

Unit behaviour lives in the sibling test files; these tests pin the
plumbing: the batch engine accepts ``profile_mode="paths"`` and
aggregates byte-identically to counter mode, path plans round-trip
the artifact cache's disk tier (re-audited on load), and the CLI
exposes the mode end-to-end.
"""

import json

import pytest

from repro.batch import run_batch
from repro.batch.cache import ArtifactCache
from repro.batch.engine import BatchItem
from repro.cli import main
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = [pytest.mark.paths, pytest.mark.batch]

LOOPY_SOURCE = """\
      PROGRAM LOOPY
      INTEGER I
      DO 10 I = 1, 20
        IF (RAND() .LT. 0.5) X = X + 1.0
10    CONTINUE
      PRINT *, X
      END
"""

ITEMS = [
    BatchItem(id="paper", source=PAPER_SOURCE, runs=({"seed": 1},)),
    BatchItem(id="loopy", source=LOOPY_SOURCE, runs=({"seed": 2},)),
]


class TestBatchPathsMode:
    def test_aggregate_matches_counters(self):
        by_mode = {}
        for mode in ("counters", "paths"):
            report = run_batch(ITEMS, profile_mode=mode, mode="serial")
            assert all(r.ok for r in report.results)
            by_mode[mode] = {
                r.item_id: (r.profile.to_dict(), r.summary)
                for r in report.results
            }
        assert by_mode["paths"] == by_mode["counters"]

    def test_paths_requires_smart_plan(self):
        with pytest.raises(ValueError, match="requires plan='smart'"):
            run_batch(ITEMS, profile_mode="paths", plan="naive")
        with pytest.raises(ValueError, match="unknown profile mode"):
            run_batch(ITEMS, profile_mode="spectra")

    def test_path_plan_rides_the_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        report = run_batch(
            ITEMS, profile_mode="paths", mode="serial", cache=cache_dir
        )
        assert all(r.ok for r in report.results)
        # A fresh cache instance must hit disk and re-audit the
        # unpickled path plan (verify_loads is on by default).
        cache = ArtifactCache(cache_dir)
        program, plan, tier = cache.artifacts(PAPER_SOURCE, "paths")
        assert tier == "disk"
        assert plan.kind == "paths"
        assert plan.plans["MAIN"].num_paths == 8
        rerun = run_batch(
            ITEMS, profile_mode="paths", mode="serial", cache=cache
        )
        assert all(r.ok for r in rerun.results)
        assert [r.profile.to_dict() for r in rerun.results] == [
            r.profile.to_dict() for r in report.results
        ]


class TestCliPathsMode:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "paper.f"
        path.write_text(PAPER_SOURCE)
        return str(path)

    def test_profile_mode_paths(self, source_file, capsys):
        assert main(["profile", source_file, "--mode", "paths"]) == 0
        out = capsys.readouterr().out
        assert "paths" in out
        assert "path sites" in out

    def test_profile_paths_rejects_naive_plan(self, source_file, capsys):
        assert (
            main(["profile", source_file, "--mode", "paths",
                  "--plan", "naive"]) == 1
        )
        assert "requires --plan smart" in capsys.readouterr().err

    def test_trace_dump_source_mode_paths(self, source_file, capsys):
        assert (
            main(["trace", source_file, "--mode", "paths",
                  "--dump-source"]) == 0
        )
        out = capsys.readouterr().out
        # The fused path variant carries register and table updates.
        assert "_pr" in out and "_pp" in out

    def test_check_plan_paths(self, source_file, capsys):
        assert main(["check", source_file, "--plan", "paths"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_batch_profile_mode_paths(self, source_file, tmp_path, capsys):
        out_path = tmp_path / "agg.json"
        assert (
            main(["batch", source_file, "--profile-mode", "paths",
                  "--json", str(out_path)]) == 0
        )
        aggregate = json.loads(out_path.read_text())
        assert aggregate["items"][0]["ok"]
        assert "TIME" in capsys.readouterr().out
