"""Reconstruction round-trip: path spectra regenerate Definition 3.

The whole point of the mode: recording *which paths ran* loses
nothing.  ``reconstruct_path_profile`` must rebuild the exact
``ProcedureProfile`` a smart counter plan measures — bit-for-bit,
because every quantity is an integer carried in floats — and the
profiles must stay equal through the full ``profile_program`` surface
on every backend.

The STOP tests pin the one place the modes legitimately *differ*: a
run killed mid-loop.  Opt-3 charges a DO loop's constant trip count
in one batched add at DO_INIT, so a counter profile claims iterations
that never happened; the path register only records paths actually
completed.  Paths match the interpreter's ground truth; counters do
not.  (The conformance corpus contains no such program, which is why
the cross-mode bit-for-bit acceptance holds there.)
"""

import pytest

from repro.paths import PathExecutor, path_program_plan
from repro.pipeline import compile_source, profile_program, run_program
from repro.workloads import builtin_sources
from repro.workloads.paper_example import paper_program

pytestmark = pytest.mark.paths

STOP_SOURCE = """\
      PROGRAM PSTOP
      N = 5
      DO 10 I = 1, 10
         N = N - 1
         CALL DIP(N)
   10 CONTINUE
      END
      SUBROUTINE DIP(M)
      IF (M .LE. 1) THEN
         STOP
      ENDIF
      M = M + 0
      END
"""


@pytest.mark.parametrize(
    "backend", ["reference", "threaded", "codegen"]
)
def test_paper_example_round_trip(backend):
    program = paper_program()
    counters, _ = profile_program(
        program, 3, mode="counters", backend=backend
    )
    paths, _ = profile_program(program, 3, mode="paths", backend=backend)
    assert paths.to_dict() == counters.to_dict()


@pytest.mark.parametrize(
    "name", [n for n, _ in builtin_sources()][:4]
)
def test_builtin_round_trip(name):
    program = compile_source(dict(builtin_sources())[name])
    runs = [{"seed": seed} for seed in range(2)]
    counters, cstats = profile_program(program, runs, mode="counters")
    paths, pstats = profile_program(program, runs, mode="paths")
    assert paths.to_dict() == counters.to_dict()
    # Both stats count dynamic updates in the same currency.
    assert pstats.runs == cstats.runs == 2
    assert pstats.counter_updates > 0


def test_stop_partials_reconstruct_ground_truth():
    """Frames unwound by STOP land as partial-path prefixes and the
    reconstruction equals what actually executed."""
    program = compile_source(STOP_SOURCE)
    plan = path_program_plan(program)
    executor = PathExecutor(plan)
    result = run_program(program, seed=0, hooks=executor)
    executor.finalize_run()
    # The run STOPped suspended in CALL DIP: both live frames were
    # mid-path, so both are recorded as partials, innermost first.
    assert [p for p, _, _ in executor.partials] == ["DIP", "PSTOP"]

    profile, _ = profile_program(
        program, [{"seed": 0}], plan=plan, mode="paths"
    )
    main = profile.procedures["PSTOP"]
    # Ground truth from the interpreter: the DO test ran exactly as
    # many times as the run survived.
    header = next(iter(main.header_counts))
    assert main.header_counts[header] == result.node_counts["PSTOP"][header]


def test_stop_mid_loop_beats_counters():
    """Counter Opt-3 overcounts an interrupted loop; paths do not."""
    program = compile_source(STOP_SOURCE)
    counters, _ = profile_program(program, [{"seed": 0}], mode="counters")
    paths, _ = profile_program(program, [{"seed": 0}], mode="paths")
    c_main = counters.procedures["PSTOP"]
    p_main = paths.procedures["PSTOP"]
    header = next(iter(c_main.header_counts))
    # Opt-3 batched the full constant trip count (10 -> header 11)...
    assert c_main.header_counts[header] == 11.0
    # ...but only 4 iterations ran before DIP's STOP unwound the loop.
    assert p_main.header_counts[header] == 4.0
    result = run_program(program, seed=0)
    assert result.node_counts["PSTOP"][header] == 4.0


def test_mode_plan_cross_validation():
    program = paper_program()
    path_plan = path_program_plan(program)
    with pytest.raises(ValueError, match="requires a path plan"):
        profile_program(program, 1, mode="paths", plan=object())
    with pytest.raises(ValueError, match="cannot execute a path plan"):
        profile_program(program, 1, mode="counters", plan=path_plan)
    with pytest.raises(ValueError, match="unknown profiling mode"):
        profile_program(program, 1, mode="spectral")
