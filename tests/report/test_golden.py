"""Golden-file tests for the report renderers.

The paper example's analysis is fully deterministic, so the exact
bytes of ``format_table`` and the Figure-3 FCDG rendering are pinned
under ``tests/report/golden/``.  A formatting regression (column
widths, float formatting, edge annotations) fails these tests with a
readable diff; an intentional change means regenerating the golden
files (see ``_render_all`` — each test names its producer).
"""

from pathlib import Path

import pytest

from repro import analyze, oracle_program_profile
from repro.report import format_table, render_cfg, render_fcdg
from repro.workloads.paper_example import FigureCostEstimator

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def paper_analysis(request):
    from repro.workloads.paper_example import paper_program

    program = paper_program()
    profile = oracle_program_profile(program, runs=[{}])
    analysis = analyze(
        program, profile, model=None, estimator=FigureCostEstimator()
    )
    return program, analysis


def _assert_matches_golden(name: str, text: str):
    expected = (GOLDEN / name).read_text()
    assert text + "\n" == expected, (
        f"{name} drifted; regenerate the golden file if intentional"
    )


def test_analysis_table_golden(paper_analysis):
    _, analysis = paper_analysis
    rows = [
        [name, proc.freqs.invocations, proc.time, proc.var, proc.std_dev]
        for name, proc in sorted(analysis.procedures.items())
    ]
    table = format_table(
        ["procedure", "invocations", "TIME", "VAR", "STD_DEV"],
        rows,
        title="analysis of the paper example (Figure 3 costs)",
    )
    _assert_matches_golden("paper_analysis_table.txt", table)


def test_figure3_rendering_golden(paper_analysis):
    _, analysis = paper_analysis
    _assert_matches_golden("paper_figure3.txt", render_fcdg(analysis.main))


def test_cfg_rendering_golden(paper_analysis):
    program, _ = paper_analysis
    _assert_matches_golden("paper_main_cfg.txt", render_cfg(program.cfgs["MAIN"]))


def test_figure3_golden_carries_paper_numbers():
    """The pinned file itself asserts the paper's headline values."""
    text = (GOLDEN / "paper_figure3.txt").read_text()
    assert "TIME(START) = 920" in text
    assert "STD_DEV(START) = 300" in text


class TestFormatTableEdgeCases:
    """Behavioral pins beyond the golden files."""

    def test_non_finite_values(self):
        table = format_table(
            ["v"], [[float("nan")], [float("inf")], [float("-inf")]]
        )
        lines = table.splitlines()
        assert lines[2].strip() == "n/a"
        assert lines[3].strip() == "inf"
        assert lines[4].strip() == "-inf"

    def test_bool_cells_render_yes_no(self):
        table = format_table(["ok"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_numeric_right_text_left(self):
        table = format_table(
            ["name", "n"], [["alpha", 1.0], ["b", 22.5]]
        )
        lines = table.splitlines()
        assert lines[2].startswith("alpha")
        assert lines[2].endswith("1")
        assert lines[3].endswith("22.500")
