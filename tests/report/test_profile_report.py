"""Tests for the gprof-style profile report."""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
)
from repro.report.profile_report import (
    flat_profile,
    hot_spots,
    render_profile_report,
)

SOURCE = (
    "PROGRAM MAIN\n"
    "DO 10 I = 1, 10\n"
    "CALL LIGHT(X)\n"
    "CALL HEAVY(X)\n"
    "10 CONTINUE\n"
    "END\n"
    "SUBROUTINE LIGHT(X)\n"
    "X = X + 1.0\n"
    "END\n"
    "SUBROUTINE HEAVY(X)\n"
    "DO 10 I = 1, 20\n"
    "X = X + SQRT(2.0) * EXP(1.0)\n"
    "10 CONTINUE\n"
    "END\n"
)


@pytest.fixture
def analysis():
    program = compile_source(SOURCE)
    profile = oracle_program_profile(program, runs=[{}])
    return analyze(program, profile, SCALAR_MACHINE)


class TestFlatProfile:
    def test_self_times_sum_to_program_time(self, analysis):
        entries = flat_profile(analysis)
        total_self = sum(e.self_time for e in entries)
        assert total_self == pytest.approx(analysis.total_time, rel=1e-9)

    def test_heavy_dominates(self, analysis):
        entries = flat_profile(analysis)
        assert entries[0].name == "HEAVY"
        assert entries[0].share > 0.5

    def test_shares_sum_to_one(self, analysis):
        entries = flat_profile(analysis)
        assert sum(e.share for e in entries) == pytest.approx(1.0)

    def test_call_counts(self, analysis):
        by_name = {e.name: e for e in flat_profile(analysis)}
        assert by_name["LIGHT"].calls == pytest.approx(10.0)
        assert by_name["HEAVY"].calls == pytest.approx(10.0)
        assert by_name["MAIN"].calls == pytest.approx(1.0)

    def test_cumulative_includes_callees(self, analysis):
        by_name = {e.name: e for e in flat_profile(analysis)}
        assert by_name["MAIN"].cumulative_time == pytest.approx(
            analysis.total_time
        )
        assert by_name["MAIN"].self_time < by_name["MAIN"].cumulative_time

    def test_self_per_call(self, analysis):
        by_name = {e.name: e for e in flat_profile(analysis)}
        light = by_name["LIGHT"]
        assert light.self_per_call == pytest.approx(
            light.self_time / light.calls
        )


class TestHotSpots:
    def test_hottest_statement_is_heavy_body(self, analysis):
        spots = hot_spots(analysis, top=3)
        assert spots[0].procedure == "HEAVY"
        assert "SQRT" in spots[0].text

    def test_top_limit_respected(self, analysis):
        assert len(hot_spots(analysis, top=2)) == 2

    def test_executions_counted(self, analysis):
        spots = hot_spots(analysis, top=1)
        assert spots[0].executions == pytest.approx(200.0)  # 10 × 20

    def test_ordered_by_self_time(self, analysis):
        spots = hot_spots(analysis, top=10)
        times = [s.self_time for s in spots]
        assert times == sorted(times, reverse=True)


class TestRendering:
    def test_report_has_three_sections(self, analysis):
        text = render_profile_report(analysis)
        assert "Flat profile" in text
        assert "Call graph" in text
        assert "Hottest" in text

    def test_call_graph_edges_present(self, analysis):
        text = render_profile_report(analysis)
        assert "MAIN" in text and "HEAVY" in text and "LIGHT" in text

    def test_no_call_graph_for_leaf_program(self):
        program = compile_source("PROGRAM MAIN\nX = 1.0\nEND\n")
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        text = render_profile_report(analysis)
        assert "Call graph" not in text
        assert "Flat profile" in text
