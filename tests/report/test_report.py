"""Tests for report rendering (Figure-3 text, tables, DOT export)."""

import pytest

from repro import analyze, compile_source, oracle_program_profile
from repro.cfg.dot import cfg_to_dot, fcdg_to_dot
from repro.report import format_table, render_cfg, render_fcdg
from repro.workloads.paper_example import FigureCostEstimator


@pytest.fixture
def paper_analysis(paper_program):
    profile = oracle_program_profile(paper_program, runs=[{}])
    return analyze(
        paper_program, profile, model=None, estimator=FigureCostEstimator()
    )


class TestFigure3Rendering:
    def test_headline_values_present(self, paper_analysis):
        text = render_fcdg(paper_analysis.main)
        assert "TIME(START) = 920" in text
        assert "STD_DEV(START) = 300" in text

    def test_edge_tuples_rendered(self, paper_analysis):
        text = render_fcdg(paper_analysis.main)
        assert "<0.9, 9>" in text  # FREQ / TOTAL_FREQ of the call branch

    def test_node_tuples_rendered(self, paper_analysis):
        text = render_fcdg(paper_analysis.main)
        # the CALL node: [COST=100 (effective), TIME=100, ...]
        assert "[100, 100," in text

    def test_every_fcdg_node_listed(self, paper_analysis):
        main = paper_analysis.main
        text = render_fcdg(main)
        for node_id in main.fcdg.nodes:
            assert f"\n{node_id:>4} " in "\n" + text

    def test_cfg_rendering(self, paper_program):
        text = render_cfg(paper_program.cfgs["MAIN"])
        assert "IF (M .GE. 0)" in text
        assert "<- entry" in text
        assert "--T-->" in text


class TestTables:
    def test_alignment_and_headers(self):
        text = format_table(
            ["name", "value"],
            [["LOOPS", 1.25], ["SIMPLE", 33.0]],
            title="Table 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "name" in lines[1]
        assert "LOOPS" in lines[3]

    def test_numbers_right_aligned(self):
        text = format_table(["n"], [[5], [12345]])
        lines = text.splitlines()
        assert lines[-1].endswith("12345")
        assert lines[-2].endswith("    5")

    def test_bool_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[0.001234], [1234567.5]])
        assert "0.00123" in text
        assert "1.23e+06" in text

    def test_integral_floats_render_as_integers(self):
        text = format_table(["x"], [[920.0]])
        assert "920" in text and "920.0" not in text


class TestDotExport:
    def test_cfg_dot_shape(self, paper_program):
        dot = cfg_to_dot(paper_program.cfgs["MAIN"])
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"T"' in dot

    def test_ecfg_dot_pseudo_edges_dashed(self, paper_program):
        dot = cfg_to_dot(paper_program.ecfgs["MAIN"].graph)
        assert "style=dashed" in dot

    def test_fcdg_dot(self, paper_program):
        dot = fcdg_to_dot(paper_program.fcdgs["MAIN"])
        assert "digraph" in dot
        assert "PREHEADER" in dot

    def test_quotes_escaped(self):
        from repro.cfg.graph import ControlFlowGraph, StmtKind

        cfg = ControlFlowGraph(name="q")
        a = cfg.add_node(StmtKind.NOOP, text='say "hi"')
        b = cfg.add_node(StmtKind.NOOP, text="end")
        cfg.entry, cfg.exit = a.id, b.id
        cfg.add_edge(a.id, b.id, "U")
        dot = cfg_to_dot(cfg)
        assert '\\"hi\\"' in dot
