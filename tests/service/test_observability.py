"""Observability surface of the service: request ids, Prometheus
exposition, atomic JSON metrics, and trace propagation."""

import http.client
import json

import pytest

from repro.obs import (
    RingBufferSink,
    configure_tracing,
    disable_tracing,
    format_traceparent,
)
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = [pytest.mark.service, pytest.mark.obs]


@pytest.fixture(scope="module")
def server():
    with ServiceThread(ServiceConfig(linger=0.001)) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


def unique_source(tag: str) -> str:
    """A source no other test compiled, so it cannot hit the cache."""
    value = sum((i + 1) * ord(ch) for i, ch in enumerate(tag))
    return (
        "      PROGRAM MAIN\n"
        "      INTEGER X, Y\n"
        f"      X = {value}\n"
        "      Y = X + 1\n"
        "      PRINT *, Y\n"
        "      END\n"
    )


class TestRequestIds:
    def test_every_response_carries_a_request_id(self, client):
        client.healthz()
        assert client.last_request_id
        int(client.last_request_id, 16)  # hex-shaped

    def test_client_supplied_id_is_echoed(self, client):
        client.compile(
            PAPER_SOURCE, request_id="deadbeefcafe0001"
        )
        assert client.last_request_id == "deadbeefcafe0001"

    def test_service_error_carries_request_id(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query("never-ingested", request_id="feed0000feed0000")
        assert excinfo.value.status == 404
        assert excinfo.value.request_id == "feed0000feed0000"
        assert "feed0000feed0000" in str(excinfo.value)

    def test_protocol_errors_also_get_an_id(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            conn.request(
                "POST",
                "/compile",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 400
            assert response.getheader("X-Request-Id")
        finally:
            conn.close()


class TestMetricsJson:
    def test_uptime_and_build_info(self, client):
        metrics = client.metrics()
        assert metrics["uptime_seconds"] >= 0
        assert metrics["uptime_s"] >= 0  # backwards-compatible alias
        build = metrics["build"]
        assert build["version"]
        assert build["python"].count(".") == 2

    def test_cache_section_is_a_consistent_snapshot(self, client):
        client.compile(unique_source("snapshot"))
        metrics = client.metrics()
        cache = metrics["cache"]
        # published at a flush boundary: hits+misses == lookups exactly
        lookups = (
            cache["memory_hits"] + cache["disk_hits"] + cache["misses"]
        )
        assert lookups >= 1
        for value in cache.values():
            assert value >= 0


class TestPrometheusExposition:
    def test_text_scrape_has_key_series(self, client):
        client.compile(unique_source("prom"))
        text = client.metrics_text()
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{route="compile"' in text
        assert "repro_http_request_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "repro_uptime_seconds" in text
        assert "repro_build_info{" in text
        assert "repro_cache_lookups_total" in text
        assert "repro_queue_depth" in text

    def test_json_is_still_the_default(self, client):
        metrics = client.metrics()
        assert isinstance(metrics, dict)
        assert "batcher" in metrics

    def test_exposition_parses_line_by_line(self, client):
        client.healthz()
        text = client.metrics_text()
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels
            float(value)  # every sample value is a number


class TestTracePropagation:
    def test_traceparent_continues_into_engine_spans(self, server):
        ring = RingBufferSink()
        configure_tracing(ring)
        try:
            trace_id = "1234567890abcdef1234567890abcdef"
            header = format_traceparent((trace_id, "aaaabbbbccccdddd"))
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30
            )
            try:
                body = json.dumps(
                    {"source": unique_source("traceparent")}
                ).encode()
                conn.request(
                    "POST",
                    "/compile",
                    body=body,
                    headers={
                        "Content-Type": "application/json",
                        "traceparent": header,
                    },
                )
                response = conn.getresponse()
                assert response.status == 200
                response.read()
            finally:
                conn.close()
        finally:
            disable_tracing()
        spans = ring.drain()
        by_name = {}
        for record in spans:
            by_name.setdefault(record.name, []).append(record)
        (http_span,) = by_name["http.compile"]
        assert http_span.trace_id == trace_id
        assert http_span.parent_id == "aaaabbbbccccdddd"
        # the flush thread attached the engine work to the same trace
        compile_spans = [
            r for r in by_name.get("service.compile", [])
            if r.trace_id == trace_id
        ]
        assert compile_spans
        # and the pipeline's own stages nested under it
        pipeline_spans = [
            r for r in by_name.get("compile", [])
            if r.trace_id == trace_id
        ]
        assert pipeline_spans
