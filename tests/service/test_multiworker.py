"""End-to-end behavior of the sharded deployment (front door + workers).

One module-scoped three-worker fleet serves every test here; the
drain/crash scenarios that need a fleet of their own live in
``test_drain_failure.py``.
"""

import pytest

from repro import compile_source, profile_program
from repro.service import (
    FrontDoorConfig,
    FrontDoorThread,
    HashRing,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.service

WORKERS = 3

#: (key, runs) ingest corpus — enough keys that every shard owns some.
CORPUS = [(f"prog-{i}", 1 + i % 3) for i in range(9)]


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fleet")
    config = FrontDoorConfig(
        workers=WORKERS,
        worker=ServiceConfig(
            db=str(tmp / "profiles.json"),
            cache=str(tmp / "cache"),
            linger=0.001,
            save_every=1,
        ),
    )
    with FrontDoorThread(config) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(fleet):
    with ServiceClient(port=fleet.port, retries=3) as c:
        yield c


@pytest.fixture(scope="module")
def ingested(client):
    """The corpus, accumulated through the front door once."""
    program = compile_source(PAPER_SOURCE)
    for key, runs in CORPUS:
        profile, _ = profile_program(program, runs=runs)
        client.ingest(key, profile, source=PAPER_SOURCE)
    return dict(CORPUS)


class TestAggregatedHealth:
    def test_healthz_reports_every_shard(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == WORKERS
        assert health["healthy_workers"] == WORKERS
        assert [s["shard"] for s in health["shards"]] == [0, 1, 2]
        for entry in health["shards"]:
            assert entry["status"] == "ok"
            assert entry["port"]
            assert entry["restarts"] == 0

    def test_metrics_aggregates_across_shards(self, client, ingested):
        metrics = client.metrics()
        assert metrics["frontdoor"]["workers"] == WORKERS
        assert metrics["aggregate"]["keys"] == len(ingested)
        assert metrics["aggregate"]["runs"] == sum(ingested.values())
        assert [s["up"] for s in metrics["shards"]] == [True] * WORKERS
        # Every shard persisted *something*: the corpus spreads out.
        per_shard = [s["database"]["keys"] for s in metrics["shards"]]
        assert sum(per_shard) == len(ingested)
        assert all(keys > 0 for keys in per_shard)

    def test_prometheus_text_has_shard_series(self, client):
        text = client.metrics_text()
        assert "repro_shard_up" in text
        assert "repro_shard_requests_total" in text


class TestStickyRouting:
    def test_placement_matches_the_ring(self, fleet, client, ingested):
        """Each key lives on exactly the shard the ring names."""
        ring = HashRing(WORKERS)
        handles = fleet.door.supervisor.handles
        for key, runs in ingested.items():
            owner = ring.shard_for(key)
            for shard, handle in enumerate(handles):
                with ServiceClient(port=handle.port) as direct:
                    if shard == owner:
                        assert direct.query(key)["runs"] == runs
                    else:
                        with pytest.raises(ServiceError) as excinfo:
                            direct.query(key)
                        assert excinfo.value.status == 404

    def test_query_through_the_door_answers_from_the_owner(
        self, client, ingested
    ):
        for key, runs in ingested.items():
            result = client.query(key)
            assert result["runs"] == runs
            assert result["analysis"] is not None

    def test_unknown_key_is_a_404_from_its_owner(self, client, ingested):
        with pytest.raises(ServiceError) as excinfo:
            client.query("never-ingested")
        assert excinfo.value.status == 404

    def test_unknown_path_is_a_404_from_the_door(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("GET", "/no/such/path")
        assert excinfo.value.status == 404

    def test_request_id_round_trips_through_the_door(self, client):
        client.healthz()
        minted = client.last_request_id
        assert minted
        client.request("GET", "/healthz", request_id="trace-me-1234")
        assert client.last_request_id == "trace-me-1234"

    def test_profile_with_ingest_routes_by_key(self, client, ingested):
        result = client.profile(PAPER_SOURCE, runs=2, ingest="prog-0")
        assert result["ingested"]["key"] == "prog-0"
        assert client.query("prog-0")["runs"] == ingested["prog-0"] + 2
        ingested["prog-0"] += 2

    def test_hot_paths_stick_with_their_key(self, client):
        from repro.paths import PathExecutor, path_program_plan
        from repro.pipeline import run_program

        program = compile_source(PAPER_SOURCE)
        plan = path_program_plan(program)
        executor = PathExecutor(plan)
        for _ in range(2):
            run_program(program, hooks=executor)
            executor.finalize_run()
        spectrum = {
            proc: {str(pid): count for pid, count in table.items()}
            for proc, table in executor.path_counts.items()
        }
        out = client.ingest_paths(
            "spectrum", spectrum, runs=2, source=PAPER_SOURCE
        )
        assert out["ok"] and out["mode"] == "paths"
        top = client.hot_paths("spectrum", k=3)
        assert top["paths"]
        assert top["paths"][0]["count"] > 0


class TestFanout:
    def test_profiles_fanout_is_bit_identical_to_single_worker(
        self, client, ingested, tmp_path
    ):
        """The headline acceptance: merged fan-out == one process."""
        with ServiceThread(
            ServiceConfig(db=str(tmp_path / "single.json"), linger=0.001)
        ) as single_handle:
            with ServiceClient(port=single_handle.port) as single:
                program = compile_source(PAPER_SOURCE)
                for key, runs in CORPUS:
                    profile, _ = profile_program(program, runs=runs)
                    single.ingest(key, profile, source=PAPER_SOURCE)
                want = single.profiles(analyze=True, raw=True)
        got = client.profiles(analyze=True, raw=True)
        # The sharded corpus has extra keys from other tests; compare
        # the original corpus slice, raw dumps and analyses included.
        for key, _ in CORPUS:
            if key == "prog-0":  # re-ingested by the routing test
                continue
            assert got["profiles"][key] == want["profiles"][key]
        assert set(want["keys"]) <= set(got["keys"])

    def test_fanout_reports_per_shard_slices(self, client, ingested):
        result = client.profiles()
        assert [s["shard"] for s in result["shards"]] == [0, 1, 2]
        assert sum(len(s["keys"]) for s in result["shards"]) == len(
            result["keys"]
        )
        total = sum(s["runs"] for s in result["shards"])
        assert total == result["runs"]
