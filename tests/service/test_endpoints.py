"""End-to-end endpoint behavior against a live in-process service."""

import threading

import pytest

from repro import analyze, compile_source, profile_program
from repro.costs.model import SCALAR_MACHINE
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def server():
    with ServiceThread(ServiceConfig(linger=0.001)) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


class TestHealthAndMetrics:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0

    def test_metrics_shape(self, client):
        metrics = client.metrics()
        assert metrics["draining"] is False
        for section in ("batcher", "cache", "database", "requests_total"):
            assert section in metrics


class TestCompile:
    def test_compile_roundtrip(self, client):
        result = client.compile(PAPER_SOURCE, verify=True)
        assert result["ok"] is True
        assert result["procedures"] == ["FOO", "MAIN"]
        assert result["main"] == "MAIN"
        assert result["counters"] > 0
        assert result["verified"] is True

    def test_second_compile_hits_hot_tier(self, client):
        client.compile(PAPER_SOURCE)
        result = client.compile(PAPER_SOURCE)
        assert result["cache_tier"] == "memory"

    def test_parse_error_is_422(self, client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.compile("      THIS IS NOT MINIFORT\n")
        assert excinfo.value.status == 422
        assert excinfo.value.payload["error"]["stage"] == "compile"


class TestProfile:
    def test_summary_matches_local_pipeline(self, client):
        remote = client.profile(PAPER_SOURCE, runs=2)
        program = compile_source(PAPER_SOURCE)
        profile, _ = profile_program(program, runs=2)
        local = analyze(program, profile, SCALAR_MACHINE)
        assert remote["summary"]["time"] == pytest.approx(local.total_time)
        assert remote["summary"]["std_dev"] == pytest.approx(
            local.total_std_dev
        )
        assert remote["runs"] == 2

    def test_raw_profile_is_returned(self, client):
        result = client.profile(PAPER_SOURCE, runs=1)
        assert result["profile"]["runs"] == 1
        assert "MAIN" in result["profile"]["procedures"]

    def test_naive_plan_reports_block_counts(self, client):
        result = client.profile(PAPER_SOURCE, runs=1, plan="naive")
        blocks = result["summary"]["procedures"]["MAIN"]["block_counts"]
        assert blocks  # naive plans measure basic blocks


class TestIngestAndQuery:
    def test_accumulate_then_normalize(self, client):
        program = compile_source(PAPER_SOURCE)
        for batch in (2, 3):
            profile, _ = profile_program(program, runs=batch)
            client.ingest("acc", profile, source=PAPER_SOURCE)
        result = client.query("acc")
        assert result["runs"] == 5
        # Definition 3 normalizes the summed counts: same frequencies
        # and TIME as a local analysis over the same accumulation.
        total, _ = profile_program(program, runs=2)
        more, _ = profile_program(program, runs=3)
        total.merge(more)
        local = analyze(program, total, SCALAR_MACHINE)
        remote = result["analysis"]
        assert remote["time"] == pytest.approx(local.total_time)
        main = remote["procedures"]["MAIN"]
        assert main["invocations"] == pytest.approx(
            local.procedures["MAIN"].freqs.invocations
        )

    def test_profile_with_server_side_ingest(self, client):
        result = client.profile(PAPER_SOURCE, runs=2, ingest="server-side")
        assert result["ingested"]["key"] == "server-side"
        query = client.query("server-side")
        assert query["runs"] == 2
        assert query["analysis"] is not None

    def test_query_unknown_key_is_404(self, client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.query("never-ingested")
        assert excinfo.value.status == 404

    def test_query_registered_source_without_profile_serves_bounds(
        self, client
    ):
        """A compiled-but-never-profiled key answers with static bounds."""
        source = (
            "      PROGRAM MAIN\n"
            "      INTEGER I\n"
            "      REAL S\n"
            "      S = 0.0\n"
            "      DO 10 I = 1, 100\n"
            "        S = S + 1.5\n"
            "10    CONTINUE\n"
            "      END\n"
        )
        client.compile(source, key="bounds-only")
        result = client.query("bounds-only")
        assert result["runs"] == 0
        assert result["analysis"] is None
        assert "note" in result
        main = result["static_bounds"]["MAIN"]
        assert main["unbounded"] is False
        assert 0 < main["time_lo"] <= main["time_hi"]
        # Once a profile is ingested the normal analysis takes over.
        program = compile_source(source)
        profile, _ = profile_program(program, runs=1)
        client.ingest("bounds-only", profile, source=source)
        result = client.query("bounds-only")
        assert result["runs"] == 1
        assert result["analysis"] is not None
        assert "static_bounds" not in result
        assert main["time_lo"] <= result["analysis"]["time"] <= main["time_hi"]

    def test_query_without_source_returns_raw_only(self, client):
        program = compile_source(PAPER_SOURCE)
        profile, _ = profile_program(program, runs=1)
        client.ingest("sourceless", profile)  # no source registered
        result = client.query("sourceless")
        assert result["analysis"] is None
        assert result["raw"]["runs"] == 1
        assert "note" in result


class TestCoalescing:
    def test_identical_concurrent_requests_coalesce(self):
        config = ServiceConfig(max_batch=16, linger=0.4)
        with ServiceThread(config) as handle:
            results = []

            def call():
                with ServiceClient(port=handle.port) as c:
                    results.append(c.profile(PAPER_SOURCE, runs=1))

            threads = [threading.Thread(target=call) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServiceClient(port=handle.port) as c:
                stats = c.metrics()["batcher"]
        assert len(results) == 6
        times = {r["summary"]["time"] for r in results}
        assert len(times) == 1  # every waiter got the same result
        # All six arrived within the linger window: one flush, one
        # engine item, five coalesced away.
        assert stats["coalesced"] >= 1
        assert stats["flushes"] < 6
