"""Drain and crash behavior of the sharded deployment.

The two operational promises under test:

* **drain loses nothing** — SIGTERM (here: ``FrontDoorThread.stop``,
  the same code path) with ingests in flight across four workers:
  every delta the service answered 200 is on disk afterwards, spread
  over the per-shard database files, and a single-worker absorb boot
  reassembles them exactly.
* **a crash is contained** — SIGKILLing one worker makes its key
  range answer 503 (with a retry hint) while every other shard keeps
  serving; the supervisor respawns the dead worker, nothing is
  replayed, and everything it had saved is back after the restart.
"""

import os
import signal
import threading
import time

import pytest

from repro import compile_source, profile_program
from repro.profiling.database import ProfileDatabase
from repro.service import (
    FrontDoorConfig,
    FrontDoorThread,
    HashRing,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = [pytest.mark.service, pytest.mark.slow]


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDrain:
    WORKERS = 4

    def test_sigterm_drain_loses_no_acknowledged_ingest(self, tmp_path):
        base = tmp_path / "profiles.json"
        config = FrontDoorConfig(
            workers=self.WORKERS,
            worker=ServiceConfig(
                db=str(base),
                linger=0.001,
                save_every=0,  # durability comes only from the drain
            ),
        )
        program = compile_source(PAPER_SOURCE)
        delta, _ = profile_program(program, runs=1)
        raw = delta.to_dict()

        acknowledged: dict[str, int] = {}
        lock = threading.Lock()
        stop = threading.Event()

        def hammer(worker_id: int, port: int) -> None:
            key = f"drain-{worker_id}"
            with ServiceClient(port=port) as client:
                while not stop.is_set():
                    try:
                        client.ingest(key, raw)
                    except (ServiceError, ConnectionError, OSError):
                        return  # drain reached us; nothing acknowledged
                    with lock:
                        acknowledged[key] = acknowledged.get(key, 0) + 1

        with FrontDoorThread(config) as handle:
            threads = [
                threading.Thread(target=hammer, args=(i, handle.port))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            # Let ingests build up, then drain with requests in flight.
            wait_until(lambda: sum(acknowledged.values()) >= 40, timeout=30)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        assert sum(acknowledged.values()) >= 40
        # The fleet is gone; its shard files must hold every 200.
        merged = ProfileDatabase(base, absorb_shards=True)
        assert len(merged.absorbed_shards) == self.WORKERS
        for key, count in acknowledged.items():
            assert merged.lookup(key) is not None, key
            # ">=": a 200 the client never got to read (connection cut
            # mid-drain) is still durable — only *lost* acks would be
            # a bug, and those show up as runs < count.
            assert merged.lookup(key).runs >= count

    def test_every_shard_save_is_atomic_json(self, tmp_path):
        """No shard file is ever a half-written torso after a drain."""
        import json

        base = tmp_path / "profiles.json"
        config = FrontDoorConfig(
            workers=2,
            worker=ServiceConfig(db=str(base), linger=0.001),
        )
        program = compile_source(PAPER_SOURCE)
        delta, _ = profile_program(program, runs=2)
        with FrontDoorThread(config) as handle:
            with ServiceClient(port=handle.port) as client:
                for i in range(6):
                    client.ingest(f"atomic-{i}", delta)
        for shard in range(2):
            text = ProfileDatabase.shard_path(base, shard).read_text()
            json.loads(text)  # parses or the save was not atomic


class TestCrash:
    WORKERS = 3

    @pytest.fixture()
    def fleet(self, tmp_path):
        config = FrontDoorConfig(
            workers=self.WORKERS,
            worker=ServiceConfig(
                db=str(tmp_path / "profiles.json"),
                linger=0.001,
                save_every=1,  # bound the crash-loss window to zero
            ),
        )
        with FrontDoorThread(config) as handle:
            yield handle

    def test_kill_one_worker_503s_its_range_until_respawn(self, fleet):
        ring = HashRing(self.WORKERS)
        program = compile_source(PAPER_SOURCE)
        delta, _ = profile_program(program, runs=1)
        keys = [f"crash-{i}" for i in range(9)]
        with ServiceClient(port=fleet.port, retries=3) as client:
            for key in keys:
                client.ingest(key, delta, source=PAPER_SOURCE)

            victim_shard = ring.shard_for(keys[0])
            survivor = next(
                k for k in keys if ring.shard_for(k) != victim_shard
            )
            handle = fleet.door.supervisor.handles[victim_shard]
            restarts_before = handle.restarts
            os.kill(handle.pid, signal.SIGKILL)
            handle.process.join(10)

            # The owner's key range fails fast with a retry hint...
            with ServiceClient(port=fleet.port) as impatient:
                try:
                    impatient.query(keys[0])
                    respawned_already = True
                except ServiceError as exc:
                    respawned_already = False
                    assert exc.status == 503
                    assert exc.payload["error"]["retry_after_ms"] > 0
                    assert exc.payload["error"]["shard"] == victim_shard
                # ...while every other shard keeps answering.
                assert impatient.query(survivor)["runs"] == 1

            # The supervisor respawns the worker; nothing is replayed,
            # but save_every=1 means everything acknowledged is back.
            assert wait_until(
                lambda: fleet.door.supervisor.handles[victim_shard].up
                and fleet.door.supervisor.handles[victim_shard].restarts
                > restarts_before,
                timeout=60,
            )
            for key in keys:
                assert client.query(key)["runs"] == 1
            if not respawned_already:
                health = client.healthz()
                restarts = {
                    s["shard"]: s["restarts"] for s in health["shards"]
                }
                assert restarts[victim_shard] >= 1

            # The restarted shard accepts new accumulation.
            client.ingest(keys[0], delta)
            assert client.query(keys[0])["runs"] == 2
