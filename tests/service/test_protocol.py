"""The HTTP subset parser: request framing, limits, error statuses."""

import asyncio

import pytest

from repro.service.protocol import (
    ProtocolError,
    error_payload,
    read_request,
    response_bytes,
)

pytestmark = pytest.mark.service


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(
            b"GET /profiles/foo?loop_variance=profiled&model=scalar "
            b"HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/profiles/foo"
        assert request.query == {
            "loop_variance": "profiled",
            "model": "scalar",
        }
        assert request.keep_alive

    def test_post_with_body(self):
        body = b'{"source": "X"}'
        raw = (
            b"POST /compile HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"source": "X"}

    def test_connection_close_header(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_two_requests_on_one_stream(self):
        raw = (
            b"GET /healthz HTTP/1.1\r\n\r\n"
            b"GET /metrics HTTP/1.1\r\n\r\n"
        )

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third

        first, second, third = asyncio.run(go())
        assert first.path == "/healthz"
        assert second.path == "/metrics"
        assert third is None


class TestRejection:
    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse(b"NONSENSE\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(ProtocolError):
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")

    def test_oversized_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n" + b"x" * 1000
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw, max_body=100)
        assert excinfo.value.status == 413

    def test_truncated_body(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")

    def test_malformed_json_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json"
        request = parse(raw)
        with pytest.raises(ProtocolError):
            request.json()

    def test_non_object_json_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 7\r\n\r\n[1,2,3]"
        with pytest.raises(ProtocolError):
            parse(raw).json()


class TestResponses:
    def test_response_roundtrip_shape(self):
        raw = response_bytes(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert f"Content-Length: {len(body)}".encode() in head
        assert b'"ok": true' in body

    def test_close_header(self):
        raw = response_bytes(503, {}, keep_alive=False)
        assert b"Connection: close" in raw

    def test_error_payload_shape(self):
        payload = error_payload(429, "full", retry_after_ms=4)
        assert payload["error"]["status"] == 429
        assert payload["error"]["message"] == "full"
        assert payload["error"]["retry_after_ms"] == 4
