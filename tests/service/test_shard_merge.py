"""Property test: sharded accumulation merges back bit-identically.

The sharded service works because §3 ``TOTAL_FREQ`` accumulation is a
plain sum and Definition 3 normalizes only at query time: splitting a
corpus of ingests across N shard-local databases (by the same
consistent-hash ring the front door uses) and merging the slices must
reproduce the single-database accumulation *bit for bit* — raw
counts, Definition-3 frequencies, TIME and the §5 variance.  No
tolerance: every assertion here is ``==`` on floats.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analyze, compile_source, profile_program
from repro.costs.model import SCALAR_MACHINE
from repro.profiling.database import ProfileDatabase
from repro.service.sharding import HashRing
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.service

LOOP_SOURCE = """\
      PROGRAM MAIN
      INTEGER I, J, S
      S = 0
      DO 10 I = 1, 20
        DO 20 J = 1, I
          S = S + J
20      CONTINUE
10    CONTINUE
      END
"""

KEYS = ["paper", "loops", "paper-alt", "loops-alt"]


@pytest.fixture(scope="module")
def corpus():
    """Per-key compiled programs and a pool of reusable raw deltas."""
    programs = {
        "paper": compile_source(PAPER_SOURCE),
        "loops": compile_source(LOOP_SOURCE),
    }
    programs["paper-alt"] = programs["paper"]
    programs["loops-alt"] = programs["loops"]
    deltas = {}
    for key, program in programs.items():
        deltas[key] = [
            profile_program(
                program, runs=runs, record_loop_moments=True
            )[0]
            for runs in (1, 2, 3)
        ]
    return programs, deltas


def accumulate(events, deltas, ring=None, shards=1):
    """Replay ``events`` into one database or ``shards`` ring-routed ones."""
    dbs = [ProfileDatabase(None) for _ in range(shards)]
    for key, which in events:
        shard = ring.shard_for(key) if ring is not None else 0
        dbs[shard].record(key, deltas[key][which])
    return dbs


@settings(max_examples=25, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.sampled_from(KEYS), st.integers(0, 2)),
        min_size=1,
        max_size=12,
    ),
    shards=st.integers(2, 5),
)
def test_merged_shards_equal_single_database(corpus, events, shards):
    programs, deltas = corpus
    ring = HashRing(shards)
    (single,) = accumulate(events, deltas)
    sharded = accumulate(events, deltas, ring=ring, shards=shards)

    merged = ProfileDatabase(None)
    for db in sharded:
        merged.merge(db)

    assert merged.keys() == single.keys()
    assert merged.total_runs() == single.total_runs()
    for key in single.keys():
        want = single.lookup(key)
        got = merged.lookup(key)
        # Raw TOTAL_FREQ material: bit-identical, not approximately.
        assert got.to_dict() == want.to_dict()
        program = programs[key]
        for loop_variance in ("zero", "profiled"):
            a = analyze(
                program, want, SCALAR_MACHINE, loop_variance=loop_variance
            )
            b = analyze(
                program, got, SCALAR_MACHINE, loop_variance=loop_variance
            )
            assert b.total_time == a.total_time
            assert b.total_std_dev == a.total_std_dev
            for name in a.procedures:
                assert (
                    b.procedures[name].freqs.invocations
                    == a.procedures[name].freqs.invocations
                )


@settings(max_examples=10, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.sampled_from(KEYS), st.integers(0, 2)),
        min_size=1,
        max_size=10,
    )
)
def test_merge_is_shard_order_independent(corpus, events):
    """The fan-out may reach shards in any order; the answer may not move."""
    _, deltas = corpus
    ring = HashRing(3)
    sharded = accumulate(events, deltas, ring=ring, shards=3)
    forward, backward = ProfileDatabase(None), ProfileDatabase(None)
    for db in sharded:
        forward.merge(db)
    for db in reversed(sharded):
        backward.merge(db)
    assert forward.keys() == backward.keys()
    for key in forward.keys():
        assert (
            forward.lookup(key).to_dict() == backward.lookup(key).to_dict()
        )
