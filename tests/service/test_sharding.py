"""Unit tests for the consistent-hash routing layer.

No processes are spawned here: these pin down the placement function
itself — determinism across instances (the front door and any future
tooling must agree), balance (no shard starves), consistency (growing
the fleet moves only a fraction of the key space) and the per-route
routing keys.
"""

import pytest

from repro.profiling.database import ProfileDatabase
from repro.service.sharding import (
    DEFAULT_REPLICAS,
    HashRing,
    routing_key,
    shard_cache_dir,
    shard_db_path,
    source_routing_key,
)

pytestmark = pytest.mark.service


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"key-{i}" for i in range(200)]
        assert [a.shard_for(k) for k in keys] == [
            b.shard_for(k) for k in keys
        ]

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.shard_for(f"k{i}") for i in range(50)} == {0}

    def test_every_shard_gets_a_reasonable_slice(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[ring.shard_for(f"program-{i}")] += 1
        # With 64 vnodes/shard the expected slice is 25% each; assert
        # a loose floor so the test pins balance, not the exact hash.
        assert min(counts) > 2000 * 0.10

    def test_growth_moves_only_part_of_the_keyspace(self):
        before, after = HashRing(4), HashRing(5)
        keys = [f"program-{i}" for i in range(2000)]
        moved = sum(
            1 for k in keys if before.shard_for(k) != after.shard_for(k)
        )
        # Consistent hashing: ~1/5 of keys move to the new shard; a
        # modulo scheme would reshuffle ~80%.
        assert moved / len(keys) < 0.40

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)
        assert HashRing(2).replicas == DEFAULT_REPLICAS


class TestRoutingKey:
    def test_keyed_routes_are_sticky_to_the_profile_key(self):
        for route in ("query", "ingest", "hot_paths", "chunks"):
            assert routing_key(route, "alpha", {}) == "alpha"

    def test_compile_routes_by_registration_key_first(self):
        assert routing_key("compile", None, {"key": "k1"}) == "k1"

    def test_compile_falls_back_to_source_digest(self):
        payload = {"source": "      PROGRAM MAIN\n      END\n"}
        got = routing_key("compile", None, payload)
        assert got == source_routing_key(payload["source"])
        # Identical sources land on the same worker's artifact cache.
        assert got == routing_key("compile", None, dict(payload))

    def test_profile_routes_by_ingest_key_first(self):
        payload = {"source": "X", "ingest": "acc"}
        assert routing_key("profile", None, payload) == "acc"
        assert routing_key(
            "profile", None, {"source": "X"}
        ) == source_routing_key("X")

    def test_calibration_is_a_constant(self):
        assert routing_key("calibration", None, {}) == "calibration"

    def test_unroutable_routes_return_none(self):
        assert routing_key("healthz", None, {}) is None
        assert routing_key("profiles_index", None, {}) is None


class TestShardPaths:
    def test_db_naming_matches_the_absorb_scan(self, tmp_path):
        base = tmp_path / "profiles.json"
        assert shard_db_path(base, 3) == str(
            ProfileDatabase.shard_path(base, 3)
        )
        assert shard_db_path(base, 3).endswith("profiles.shard3.json")

    def test_cache_dirs_are_disjoint_subdirectories(self, tmp_path):
        assert shard_cache_dir(str(tmp_path), 0) != shard_cache_dir(
            str(tmp_path), 1
        )
        assert shard_cache_dir(str(tmp_path), 2).endswith("shard2")

    def test_in_memory_stays_in_memory(self):
        assert shard_db_path(None, 0) is None
        assert shard_cache_dir(None, 0) is None
