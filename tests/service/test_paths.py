"""The service's Ball–Larus path-mode surface.

Three contracts: ``POST /profile`` with ``mode: "paths"`` answers the
exact same reconstructed profile counter mode does; a raw path-count
delta POSTed to ``/profiles/{key}/ingest`` is validated id-by-id
against the program's path plan (422 on the first invalid entry,
nothing accumulated) and reconstructs into the same Definition-3
database counter deltas feed; ``GET /profiles/{key}/paths`` ranks the
accumulated spectrum and decodes each hot path.
"""

import pytest

from repro.paths import PathExecutor, path_program_plan
from repro.pipeline import compile_source, run_program
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.client import ServiceError
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = [pytest.mark.service, pytest.mark.paths]


@pytest.fixture(scope="module")
def server():
    with ServiceThread(ServiceConfig(linger=0.001)) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


@pytest.fixture(scope="module")
def spectrum():
    """Three paper-example runs recorded locally, ready to POST."""
    program = compile_source(PAPER_SOURCE)
    plan = path_program_plan(program)
    executor = PathExecutor(plan)
    for _ in range(3):
        run_program(program, hooks=executor)
        executor.finalize_run()
    return {
        proc: {str(pid): count for pid, count in table.items()}
        for proc, table in executor.path_counts.items()
    }


class TestProfileMode:
    def test_paths_profile_matches_counters(self, client):
        counters = client.profile(PAPER_SOURCE, runs=3, mode="counters")
        paths = client.profile(PAPER_SOURCE, runs=3, mode="paths")
        assert paths["mode"] == "paths"
        assert paths["profile"] == counters["profile"]

    def test_mode_is_validated(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.profile(PAPER_SOURCE, mode="spectral")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.profile(PAPER_SOURCE, mode="paths", plan="naive")
        assert excinfo.value.status == 400


class TestPathIngest:
    def test_delta_reconstructs_like_counters(self, client, spectrum):
        client.profile(
            PAPER_SOURCE, runs=3, mode="counters", ingest="by-counters"
        )
        out = client.ingest_paths(
            "by-paths", spectrum, runs=3, source=PAPER_SOURCE
        )
        assert out["ok"] and out["mode"] == "paths"
        assert out["runs"] == 3
        want = client.query("by-counters")
        got = client.query("by-paths")
        assert got["analysis"] == want["analysis"]

    def test_invalid_ids_answer_422(self, client, spectrum):
        cases = [
            {"NOPE": {"0": 1.0}},
            {"MAIN": {"8": 1.0}},  # num_paths is 8: ids are 0..7
            {"MAIN": {"four": 1.0}},
            {"MAIN": {"0": -2.0}},
        ]
        for bad in cases:
            with pytest.raises(ServiceError) as excinfo:
                client.ingest_paths("victim", bad, source=PAPER_SOURCE)
            assert excinfo.value.status == 422
        with pytest.raises(ServiceError) as excinfo:
            client.ingest_paths(
                "victim",
                {},
                partials=[["MAIN", 999, 0]],
                source=PAPER_SOURCE,
            )
        assert excinfo.value.status == 422
        # Nothing was accumulated by any rejected delta.
        with pytest.raises(ServiceError) as excinfo:
            client.hot_paths("victim")
        assert excinfo.value.status == 404

    def test_sourceless_key_answers_422(self, client, spectrum):
        with pytest.raises(ServiceError) as excinfo:
            client.ingest_paths("no-source-here", spectrum)
        assert excinfo.value.status == 422
        assert "cannot be validated" in str(excinfo.value)


class TestHotPaths:
    def test_top_k_ranked_and_decoded(self, client, spectrum):
        client.ingest_paths("hot", spectrum, runs=3, source=PAPER_SOURCE)
        body = client.hot_paths("hot", k=3)
        assert body["k"] == 3
        counts = [entry["count"] for entry in body["paths"]]
        assert counts == sorted(counts, reverse=True)
        top = body["paths"][0]
        # Figure 3: the hot path is the header-to-header iteration.
        assert top["proc"] in ("MAIN", "FOO")
        assert top["end"] in ("exit", "backedge")
        assert top["nodes"]
        assert 0 < top["fraction"] <= 1
        total = sum(
            float(c) for t in spectrum.values() for c in t.values()
        )
        assert body["total_count"] == total

    def test_unknown_key_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.hot_paths("never-ingested")
        assert excinfo.value.status == 404

    def test_k_is_validated(self, client, spectrum):
        client.ingest_paths("kv", spectrum, source=PAPER_SOURCE)
        for bad in (0, -1, 100000):
            with pytest.raises(ServiceError) as excinfo:
                client.hot_paths("kv", k=bad)
            assert excinfo.value.status == 400

    def test_metrics_count_path_ingests(self, client, spectrum):
        before = client.metrics()["database"]["path_ingests"]
        client.ingest_paths("metered", spectrum, source=PAPER_SOURCE)
        after = client.metrics()["database"]
        assert after["path_ingests"] == before + 1
        assert after["path_keys"] >= 1
        assert "repro_path_ingests_total" in client.metrics_text()
