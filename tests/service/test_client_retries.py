"""Retry behavior of :class:`ServiceClient` against a scripted server.

A tiny in-process HTTP server answers a fixed sequence of statuses,
so the tests can pin down exactly which responses are retried, how
the ``retry_after_ms`` hint stretches the backoff, and that one
logical operation keeps one ``X-Request-Id`` across attempts.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service import ServiceClient, ServiceError

pytestmark = pytest.mark.service


class ScriptedServer:
    """Answers each request with the next scripted (status, body)."""

    def __init__(self, script):
        self.script = list(script)
        self.requests: list[dict] = []
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self):
                outer.requests.append(
                    {
                        "path": self.path,
                        "request_id": self.headers.get("X-Request-Id"),
                    }
                )
                status, payload = (
                    outer.script.pop(0) if outer.script else (200, {})
                )
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.send_header(
                    "X-Request-Id",
                    self.headers.get("X-Request-Id") or "minted-by-server",
                )
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_POST = _serve

            def log_message(self, *args):
                pass

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.httpd.server_address[1]
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.thread.join(timeout=10)


def shed(status, retry_after_ms=None):
    error = {"status": status, "message": "scripted"}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    return status, {"error": error}


class TestRetries:
    def test_429_then_success(self):
        with ScriptedServer([shed(429), (200, {"ok": True})]) as server:
            with ServiceClient(
                port=server.port, retries=2, backoff=0.01
            ) as client:
                assert client.request("GET", "/healthz") == {"ok": True}
            assert len(server.requests) == 2

    def test_503_then_success(self):
        with ScriptedServer(
            [shed(503, retry_after_ms=5), (200, {"ok": True})]
        ) as server:
            with ServiceClient(
                port=server.port, retries=1, backoff=0.001
            ) as client:
                assert client.request("GET", "/healthz") == {"ok": True}

    def test_retries_exhausted_raises_the_last_error(self):
        with ScriptedServer([shed(429)] * 3) as server:
            with ServiceClient(
                port=server.port, retries=2, backoff=0.001
            ) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.request("GET", "/healthz")
            assert excinfo.value.status == 429
            assert len(server.requests) == 3

    def test_zero_retries_fails_fast(self):
        with ScriptedServer([shed(429), (200, {})]) as server:
            with ServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError):
                    client.request("GET", "/healthz")
            assert len(server.requests) == 1

    def test_non_retryable_statuses_are_not_retried(self):
        for status in (400, 404, 422, 500):
            with ScriptedServer([shed(status), (200, {})]) as server:
                with ServiceClient(
                    port=server.port, retries=3, backoff=0.001
                ) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        client.request("GET", "/healthz")
                assert excinfo.value.status == status
                assert len(server.requests) == 1

    def test_retry_after_hint_stretches_the_backoff(self):
        with ScriptedServer(
            [shed(429, retry_after_ms=150), (200, {})]
        ) as server:
            with ServiceClient(
                port=server.port, retries=1, backoff=0.001
            ) as client:
                started = time.monotonic()
                client.request("GET", "/healthz")
                elapsed = time.monotonic() - started
        assert elapsed >= 0.15

    def test_attempts_share_one_request_id(self):
        with ScriptedServer([shed(429), shed(429), (200, {})]) as server:
            with ServiceClient(
                port=server.port, retries=2, backoff=0.001
            ) as client:
                client.request("GET", "/healthz", request_id="op-77")
        assert [r["request_id"] for r in server.requests] == ["op-77"] * 3

    def test_minted_id_is_reused_on_retry(self):
        """Attempt one gets a server-minted id; retries carry it on."""
        with ScriptedServer([shed(503), (200, {})]) as server:
            with ServiceClient(
                port=server.port, retries=1, backoff=0.001
            ) as client:
                client.request("GET", "/healthz")
        first, second = server.requests
        assert first["request_id"] is None
        assert second["request_id"] == "minted-by-server"
