"""Service failure modes: rejection, timeouts, bad input, drain.

The degradation contract: a full admission queue answers 429 without
touching the engine, a request that exceeds its budget answers 504, a
body the server cannot parse answers 400, and a graceful shutdown
flushes every *accepted* request — an ingest that was answered 200 is
in the database file afterwards, always.
"""

import http.client
import json
import threading
import time

import pytest

from repro import compile_source, profile_program
from repro.profiling.database import ProfileDatabase
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.service

#: ~0.4s of work even on the codegen backend (and under the 10M-step
#: limit): enough to outlive a 0.1s budget.
SLOW_SOURCE = """\
      PROGRAM MAIN
      INTEGER I, X
      X = 0
      DO 10 I = 1, 2000000
        X = X + 1
10    CONTINUE
      END
"""


def raw_post(port: int, path: str, body: bytes, content_type="application/json"):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST", path, body=body, headers={"Content-Type": content_type}
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


class TestBadRequests:
    @pytest.fixture(scope="class")
    def server(self):
        with ServiceThread(ServiceConfig(linger=0.001)) as handle:
            yield handle

    def test_malformed_json_body_is_400(self, server):
        status, payload = raw_post(server.port, "/profile", b"{not json")
        assert status == 400
        assert "malformed JSON" in payload["error"]["message"]

    def test_non_object_body_is_400(self, server):
        status, _ = raw_post(server.port, "/compile", b"[1, 2]")
        assert status == 400

    def test_missing_source_is_400(self, server):
        status, payload = raw_post(server.port, "/profile", b"{}")
        assert status == 400
        assert "source" in payload["error"]["message"]

    def test_bad_plan_is_400(self, server):
        status, _ = raw_post(
            server.port,
            "/profile",
            json.dumps({"source": PAPER_SOURCE, "plan": "psychic"}).encode(),
        )
        assert status == 400

    def test_unknown_route_is_404(self, server):
        status, _ = raw_post(server.port, "/nope", b"{}")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("GET", "/compile")
        assert excinfo.value.status == 405

    def test_bad_ingest_profile_is_422(self, server):
        status, payload = raw_post(
            server.port,
            "/profiles/k/ingest",
            json.dumps({"profile": {"bogus": 1}}).encode(),
        )
        assert status == 422
        assert "TOTAL_FREQ" in payload["error"]["message"]

    def test_oversized_body_is_413(self):
        config = ServiceConfig(linger=0.001, max_body=512)
        with ServiceThread(config) as handle:
            status, _ = raw_post(
                handle.port,
                "/compile",
                json.dumps({"source": "X" * 4096}).encode(),
            )
        assert status == 413


class TestQueueFullRejection:
    def test_429_when_admission_queue_is_full(self):
        # A long linger keeps the first two requests pending; with
        # queue_limit=2 the third must be shed at the door.
        config = ServiceConfig(queue_limit=2, max_batch=64, linger=8.0)
        with ServiceThread(config) as handle:
            outcomes: list = [None, None]

            def call(i):
                with ServiceClient(port=handle.port, timeout=60) as c:
                    outcomes[i] = c.profile(PAPER_SOURCE, runs=1 + i)

            threads = [
                threading.Thread(target=call, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            deadline = time.time() + 5
            with ServiceClient(port=handle.port) as probe:
                while time.time() < deadline:
                    if probe.healthz()["queue_depth"] >= 2:
                        break
                    time.sleep(0.01)
                with pytest.raises(ServiceError) as excinfo:
                    probe.profile(PAPER_SOURCE, runs=3)
                assert excinfo.value.status == 429
                assert "retry_after_ms" in excinfo.value.payload["error"]
                stats = probe.metrics()["batcher"]
                assert stats["rejected_queue_full"] == 1
            # Drain releases the lingering flush: the two accepted
            # requests still complete successfully.
            for t in threads:
                t.join(timeout=30)
        assert all(r is not None and r["ok"] for r in outcomes)


class TestRequestTimeout:
    def test_504_when_budget_exceeded(self):
        config = ServiceConfig(linger=0.001, request_timeout=0.1)
        with ServiceThread(config) as handle:
            with ServiceClient(port=handle.port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.profile(SLOW_SOURCE, runs=1)
                assert excinfo.value.status == 504
                assert client.metrics()["timeouts"] == 1


class TestGracefulShutdown:
    def test_no_accepted_ingest_is_lost_mid_batch(self, tmp_path):
        db_path = tmp_path / "profiles.json"
        # A long linger guarantees the profile request is still
        # sitting in the admission queue when shutdown starts.
        config = ServiceConfig(db=str(db_path), linger=5.0, max_batch=64)
        handle = ServiceThread(config).start()

        program = compile_source(PAPER_SOURCE)
        delta, _ = profile_program(program, runs=1)

        pending_result: dict = {}

        def lingering_profile():
            with ServiceClient(port=handle.port, timeout=60) as c:
                pending_result.update(
                    c.profile(PAPER_SOURCE, runs=2, ingest="batched")
                )

        thread = threading.Thread(target=lingering_profile)
        thread.start()
        accepted = 0
        with ServiceClient(port=handle.port) as client:
            deadline = time.time() + 5
            while time.time() < deadline:
                if client.healthz()["queue_depth"] >= 1:
                    break
                time.sleep(0.01)
            for _ in range(3):
                response = client.ingest("direct", delta, source=PAPER_SOURCE)
                assert response["ok"]
                accepted += 1

        # Shut down while the profile request is still mid-batch.
        handle.stop()
        thread.join(timeout=30)

        # The lingering request was flushed by the drain, not dropped.
        assert pending_result.get("ingested", {}).get("key") == "batched"

        # Every accepted ingest survived into the database file.
        reloaded = ProfileDatabase(db_path)
        assert not reloaded.recovered_corrupt
        assert reloaded.lookup("direct").runs == accepted
        assert reloaded.lookup("batched").runs == 2

    def test_new_work_rejected_while_draining(self):
        import asyncio

        config = ServiceConfig(linger=5.0, max_batch=64)
        handle = ServiceThread(config).start()
        # Drain closes the listener immediately, so observe the
        # draining window over connections opened *before* shutdown —
        # exactly what real in-flight keep-alive clients hold.
        monitor = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=30
        )
        probe = http.client.HTTPConnection(
            "127.0.0.1", handle.port, timeout=30
        )
        for conn in (monitor, probe):
            conn.request("GET", "/healthz")
            conn.getresponse().read()

        with ServiceClient(port=handle.port, timeout=60) as blocker_client:
            # SLOW_SOURCE keeps the drain busy flushing for ~0.4s.
            blocker = threading.Thread(
                target=lambda: blocker_client.profile(SLOW_SOURCE, runs=1)
            )
            blocker.start()
            time.sleep(0.05)  # let the blocker reach the admission queue
            # Start the drain on the service loop without waiting.
            asyncio.run_coroutine_threadsafe(
                handle.service.shutdown(), handle._loop
            )
            deadline = time.time() + 5
            status = None
            while time.time() < deadline:
                monitor.request("GET", "/healthz")
                response = monitor.getresponse()
                payload = json.loads(response.read())
                status = payload["status"]
                if status == "draining" or response.will_close:
                    break
                time.sleep(0.005)
            assert status == "draining"
            probe.request(
                "POST",
                "/profile",
                body=json.dumps({"source": PAPER_SOURCE}).encode(),
                headers={"Content-Type": "application/json"},
            )
            rejected = probe.getresponse()
            assert rejected.status == 503
            rejected.read()
            blocker.join(timeout=30)
        monitor.close()
        probe.close()
        handle.stop()
