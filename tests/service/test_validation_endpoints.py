"""Service surface of the validation observatory: GET /calibration,
model=calibrated queries with drift tracking, and the Kruskal-Weiss
chunk advisor on GET /profiles/{key}/chunks."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.validate import CalibrationProfile
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = [pytest.mark.service, pytest.mark.validate]


@pytest.fixture(scope="module")
def calibration_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cal") / "calibration.json"
    CalibrationProfile(
        coefficients_ns={
            "mem": 5.0,
            "int_alu": 1.0,
            "int_muldiv": 10.0,
            "fp_add": 3.0,
            "fp_muldiv": 8.0,
            "call": 50.0,
            "intrinsic": 20.0,
            "print": 400.0,
        },
        intercept_ns=15_000.0,
        r_squared=0.93,
    ).save(path)
    return path


@pytest.fixture(scope="module")
def server(calibration_path):
    config = ServiceConfig(linger=0.001, calibration=str(calibration_path))
    with ServiceThread(config) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


@pytest.fixture(scope="module")
def ingested(server):
    """The paper program ingested once, under a module-unique key."""
    with ServiceClient(port=server.port) as c:
        c.profile(PAPER_SOURCE, runs=3, ingest="paper-validate")
    return "paper-validate"


class TestCalibrationEndpoint:
    def test_served_artifact_roundtrips(self, client, calibration_path):
        body = client.calibration()
        assert body["ok"] is True
        on_disk = json.loads(calibration_path.read_text())
        assert body["calibration"] == on_disk

    def test_404_when_not_loaded(self):
        with ServiceThread(ServiceConfig(linger=0.001)) as handle:
            with ServiceClient(port=handle.port) as c:
                with pytest.raises(ServiceError) as excinfo:
                    c.calibration()
        assert excinfo.value.status == 404
        assert "--calibration" in str(excinfo.value)


class TestCalibratedQueries:
    def test_calibrated_model_reports_ns_units(self, client, ingested):
        body = client.query(ingested, model="calibrated")
        assert body["calibration"]["units"] == "ns"
        assert body["calibration"]["intercept_ns"] == pytest.approx(15_000.0)
        assert body["calibration"]["r_squared"] == pytest.approx(0.93)
        assert body["analysis"]["time"] > 0

    def test_plain_models_have_no_calibration_block(self, client, ingested):
        body = client.query(ingested, model="scalar")
        assert "calibration" not in body

    def test_calibrated_rejected_without_artifact(self):
        with ServiceThread(ServiceConfig(linger=0.001)) as handle:
            with ServiceClient(port=handle.port) as c:
                c.profile(PAPER_SOURCE, runs=1, ingest="k")
                with pytest.raises(ServiceError) as excinfo:
                    c.query("k", model="calibrated")
        assert excinfo.value.status == 400

    def test_unknown_model_still_rejected(self, client, ingested):
        with pytest.raises(ServiceError) as excinfo:
            client.query(ingested, model="vector")
        assert excinfo.value.status == 400


class TestDrift:
    def test_first_query_has_no_baseline(self, client):
        client.profile(PAPER_SOURCE, runs=2, ingest="drift-key")
        body = client.query("drift-key")
        drift = body["drift"]
        assert drift["runs"] == 2
        assert drift["previous_runs"] is None
        assert drift["time_drift"] is None and drift["var_drift"] is None

    def test_consecutive_queries_measure_drift(self, client):
        client.profile(PAPER_SOURCE, runs=2, ingest="drift-key2")
        client.query("drift-key2")
        client.profile(PAPER_SOURCE, runs=3, ingest="drift-key2")
        drift = client.query("drift-key2")["drift"]
        assert drift["previous_runs"] == 2
        assert drift["runs"] == 5
        # The paper program is deterministic: more runs, same averages.
        assert drift["time_drift"] == pytest.approx(0.0, abs=1e-12)
        assert drift["var_drift"] == pytest.approx(0.0, abs=1e-12)

    def test_changing_params_resets_the_baseline(self, client):
        client.profile(PAPER_SOURCE, runs=1, ingest="drift-key3")
        client.query("drift-key3", model="scalar")
        drift = client.query("drift-key3", model="optimizing")["drift"]
        assert drift["previous_runs"] is None

    def test_drift_gauges_reach_prometheus(self, client):
        client.profile(PAPER_SOURCE, runs=1, ingest="drift-prom")
        client.query("drift-prom")
        client.query("drift-prom")
        text = client.metrics_text()
        assert 'repro_validation_time_drift{key="drift-prom"}' in text
        assert 'repro_validation_var_drift{key="drift-prom"}' in text


class TestChunksEndpoint:
    def test_advice_for_a_profiled_loop(self, client, ingested):
        body = client.chunks(ingested, processors=4, overhead=25.0)
        assert body["key"] == ingested
        assert body["processors"] == 4
        assert body["overhead"] == pytest.approx(25.0)
        assert body["units"] == "cycles"
        assert body["loops"], "paper program has a profiled loop"
        loop = body["loops"][0]
        assert loop["proc"] == "MAIN"
        assert loop["iterations"] >= 1
        assert 1 <= loop["chunk"] <= loop["iterations"]
        assert loop["makespan"] <= loop["naive_makespan"] + 1e-9

    def test_calibrated_chunks_report_ns(self, client, ingested):
        body = client.chunks(ingested, model="calibrated")
        assert body["units"] == "ns"

    def test_unknown_key_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.chunks("never-ingested")
        assert excinfo.value.status == 404

    def test_bad_parameters_rejected(self, client, ingested, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            conn.request(
                "GET", f"/profiles/{ingested}/chunks?processors=0"
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "processors" in payload["error"]["message"]
