"""The ``repro call`` CLI against a live service."""

import json

import pytest

from repro.cli import main
from repro.service import ServiceConfig, ServiceThread
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def server():
    with ServiceThread(ServiceConfig(linger=0.001)) as handle:
        yield handle


@pytest.fixture()
def paper_file(tmp_path):
    path = tmp_path / "paper.f"
    path.write_text(PAPER_SOURCE)
    return str(path)


def call(server, *argv):
    return main(["call", "--port", str(server.port), *argv])


class TestCallCli:
    def test_health(self, server, capsys):
        assert call(server, "health") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"

    def test_compile_profile_ingest_query_roundtrip(
        self, server, paper_file, capsys
    ):
        assert call(server, "compile", paper_file, "--key", "cli-paper") == 0
        compiled = json.loads(capsys.readouterr().out)
        assert compiled["procedures"] == ["FOO", "MAIN"]

        assert call(server, "ingest", "cli-paper", paper_file, "--runs", "2") == 0
        ingested = json.loads(capsys.readouterr().out)
        assert ingested["runs"] == 2

        assert call(server, "query", "cli-paper") == 0
        queried = json.loads(capsys.readouterr().out)
        assert queried["analysis"]["procedures"]["MAIN"]["invocations"] == 2.0

    def test_profile_with_server_side_ingest(self, server, paper_file, capsys):
        assert (
            call(
                server, "profile", paper_file,
                "--runs", "3", "--ingest", "cli-remote",
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ingested"]["key"] == "cli-remote"
        assert "profile" not in payload  # trimmed without --full

    def test_metrics(self, server, capsys):
        assert call(server, "metrics") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["database"]["ingests"] >= 1

    def test_connection_refused_is_reported(self, capsys, paper_file):
        # Port 1 is never listening.
        code = main(["call", "--port", "1", "health"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServeParser:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--max-batch", "4",
                "--linger-ms", "1.5", "--queue-limit", "9",
                "--timeout", "2.5", "--save-every", "10",
            ]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.max_batch == 4
        assert args.linger_ms == 1.5
        assert args.queue_limit == 9
