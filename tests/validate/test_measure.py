"""The measurement harness: callables, programs, commands, inputs."""

from __future__ import annotations

import random
import sys

import pytest

from repro import compile_source
from repro.validate import (
    MeasurementError,
    measure_callable,
    measure_command,
    measure_program,
    sample_inputs,
)

pytestmark = pytest.mark.validate

TINY = """\
      PROGRAM TINY
      X = 1.0 + 2.0
      PRINT *, X
      END
"""


class TestMeasureCallable:
    def test_deterministic_samples_with_fake_clock(self, fake_clock):
        m = measure_callable(
            lambda i: None, trials=4, warmup=0, clock=fake_clock
        )
        # Each trial brackets the call with two clock reads 1000 ns apart.
        assert m.samples_ns == [1000.0, 1000.0, 1000.0, 1000.0]
        assert m.trials == 4
        assert m.mean_ns == 1000.0
        assert m.var_ns2 == 0.0

    def test_warmup_runs_are_discarded(self, fake_clock):
        calls = []
        m = measure_callable(
            calls.append, trials=2, warmup=3, clock=fake_clock
        )
        # Warmup indices are negative, timed indices start at 0.
        assert calls == [-3, -2, -1, 0, 1]
        assert m.trials == 2
        assert m.warmup == 3

    def test_needs_a_trial(self):
        with pytest.raises(MeasurementError):
            measure_callable(lambda i: None, trials=0)
        with pytest.raises(MeasurementError):
            measure_callable(lambda i: None, trials=1, warmup=-1)

    def test_as_dict_includes_cis_with_two_trials(self, fake_clock):
        m = measure_callable(lambda i: None, trials=2, clock=fake_clock)
        d = m.as_dict()
        assert d["trials"] == 2
        assert "mean_ci95_ns" in d and "var_ci95_ns2" in d
        single = measure_callable(lambda i: None, trials=1, clock=fake_clock)
        assert "mean_ci95_ns" not in single.as_dict()


class TestSampleInputs:
    def test_constant(self):
        rng = random.Random(0)
        assert sample_inputs("constant", 7.4, 3, rng) == (7.0, 7.0, 7.0)

    def test_poisson_mean(self):
        rng = random.Random(1)
        draws = sample_inputs("poisson", 6.0, 4000, rng)
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(6.0, rel=0.1)
        assert all(d >= 0 and d == int(d) for d in draws)

    def test_geometric_mean_and_support(self):
        rng = random.Random(2)
        draws = sample_inputs("geometric", 5.0, 4000, rng)
        assert min(draws) >= 1.0
        assert sum(draws) / len(draws) == pytest.approx(5.0, rel=0.1)
        # Degenerate mean <= 1 collapses to the constant 1.
        assert sample_inputs("geometric", 0.5, 3, rng) == (1.0, 1.0, 1.0)

    def test_uniform_range(self):
        rng = random.Random(3)
        draws = sample_inputs("uniform", 4.0, 2000, rng)
        assert min(draws) >= 0.0 and max(draws) <= 8.0
        assert sum(draws) / len(draws) == pytest.approx(4.0, rel=0.15)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(MeasurementError):
            sample_inputs("cauchy", 1.0, 1, random.Random(0))
        with pytest.raises(MeasurementError):
            sample_inputs("poisson", -1.0, 1, random.Random(0))


class TestMeasureProgram:
    def test_measurement_and_matching_profile(self):
        program = compile_source(TINY)
        item = measure_program(
            program, trials=3, warmup=1, label="tiny", backend="reference"
        )
        assert item.measurement.trials == 3
        assert all(s > 0 for s in item.measurement.samples_ns)
        # The instrumented pass covers the same specs as the timed runs.
        assert item.profile is not None
        assert item.profile.runs == 3
        assert [spec["seed"] for spec in item.run_specs] == [0, 1, 2]

    def test_input_sampler_feeds_each_trial(self):
        source = (
            "      PROGRAM ECHO\n"
            "      X = INPUT(1)\n"
            "      PRINT *, X\n"
            "      END\n"
        )
        program = compile_source(source)
        seen = []

        def sampler(seed: int):
            seen.append(seed)
            return (float(seed),)

        item = measure_program(
            program, trials=3, warmup=0, seed=10, input_sampler=sampler
        )
        assert seen == [10, 11, 12]
        assert [spec["inputs"] for spec in item.run_specs] == [
            (10.0,), (11.0,), (12.0,)
        ]

    def test_without_profile(self):
        program = compile_source(TINY)
        item = measure_program(
            program, trials=1, warmup=0, with_profile=False
        )
        assert item.profile is None


class TestMeasureCommand:
    def test_times_a_real_command(self):
        m = measure_command(
            [sys.executable, "-c", "pass"], trials=2, warmup=0
        )
        assert m.trials == 2
        assert all(s > 0 for s in m.samples_ns)

    def test_failing_command_raises(self):
        with pytest.raises(MeasurementError, match="exited with"):
            measure_command(
                [sys.executable, "-c", "raise SystemExit(3)"],
                trials=1,
                warmup=0,
            )

    def test_empty_argv_rejected(self):
        with pytest.raises(MeasurementError):
            measure_command([], trials=1)
