"""Hand-computed pins for the small-sample statistics.

Quantile pins come from standard t / chi-square tables (the values
every statistics text prints), so a regression in the incomplete
beta/gamma implementations cannot hide behind "close enough".
"""

from __future__ import annotations

import math

import pytest

from repro.validate import stats

pytestmark = pytest.mark.validate


class TestQuantilePins:
    def test_t_quantile_table_values(self):
        # t_{0.975, df} from the standard table.
        assert stats.t_quantile(0.975, 9) == pytest.approx(2.2622, abs=2e-4)
        assert stats.t_quantile(0.975, 4) == pytest.approx(2.7764, abs=2e-4)
        assert stats.t_quantile(0.975, 1) == pytest.approx(12.706, abs=2e-2)
        # Large df approaches the normal quantile 1.95996.
        assert stats.t_quantile(0.975, 1000) == pytest.approx(1.962, abs=2e-3)

    def test_t_quantile_symmetry(self):
        assert stats.t_quantile(0.025, 9) == pytest.approx(
            -stats.t_quantile(0.975, 9), abs=1e-9
        )
        assert stats.t_quantile(0.5, 7) == pytest.approx(0.0, abs=1e-9)

    def test_chi2_quantile_table_values(self):
        # chi^2_{p, 10} from the standard table.
        assert stats.chi2_quantile(0.975, 10) == pytest.approx(
            20.483, abs=2e-3
        )
        assert stats.chi2_quantile(0.025, 10) == pytest.approx(
            3.247, abs=2e-3
        )
        assert stats.chi2_quantile(0.95, 2) == pytest.approx(5.991, abs=2e-3)

    def test_cdf_quantile_roundtrip(self):
        for p in (0.05, 0.5, 0.9, 0.975):
            assert stats.t_cdf(stats.t_quantile(p, 6), 6) == pytest.approx(
                p, abs=1e-6
            )
            assert stats.chi2_cdf(
                stats.chi2_quantile(p, 6), 6
            ) == pytest.approx(p, abs=1e-6)


class TestSampleMoments:
    def test_mean_and_unbiased_variance(self):
        samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert stats.sample_mean(samples) == pytest.approx(5.0)
        # Sum of squared deviations is 32; n-1 = 7.
        assert stats.sample_variance(samples) == pytest.approx(32.0 / 7.0)

    def test_single_sample_variance_is_zero(self):
        assert stats.sample_variance([42.0]) == 0.0

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError):
            stats.sample_mean([])
        with pytest.raises(ValueError):
            stats.sample_variance([])


class TestIntervals:
    #: n=10, mean 10, sample std 2 -> std_err = 2/sqrt(10).
    SAMPLES = [7.0, 8.0, 9.0, 9.0, 10.0, 10.0, 11.0, 11.0, 12.0, 13.0]

    def test_mean_interval_hand_computed(self):
        mean = stats.sample_mean(self.SAMPLES)
        s2 = stats.sample_variance(self.SAMPLES)
        half = 2.2622 * math.sqrt(s2 / 10)  # t_{0.975,9} * std_err
        lo, hi = stats.mean_interval(self.SAMPLES, 0.95)
        assert lo == pytest.approx(mean - half, rel=1e-4)
        assert hi == pytest.approx(mean + half, rel=1e-4)

    def test_variance_interval_hand_computed(self):
        s2 = stats.sample_variance(self.SAMPLES)
        lo, hi = stats.variance_interval(self.SAMPLES, 0.95)
        # (n-1)s^2 / chi2_{0.975,9} .. (n-1)s^2 / chi2_{0.025,9}
        assert lo == pytest.approx(9 * s2 / 19.023, rel=1e-3)
        assert hi == pytest.approx(9 * s2 / 2.700, rel=1e-3)
        assert lo < s2 < hi

    def test_intervals_need_two_samples(self):
        with pytest.raises(ValueError):
            stats.mean_interval([1.0])
        with pytest.raises(ValueError):
            stats.variance_interval([1.0])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            stats.mean_interval(self.SAMPLES, 1.0)
        with pytest.raises(ValueError):
            stats.variance_interval(self.SAMPLES, 0.0)

    def test_wider_confidence_wider_interval(self):
        lo95, hi95 = stats.mean_interval(self.SAMPLES, 0.95)
        lo99, hi99 = stats.mean_interval(self.SAMPLES, 0.99)
        assert lo99 < lo95 and hi99 > hi95


class TestScoringPrimitives:
    def test_relative_error(self):
        assert stats.relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert stats.relative_error(90.0, 100.0) == pytest.approx(0.1)
        assert stats.relative_error(0.0, 0.0) == 0.0
        assert math.isinf(stats.relative_error(1.0, 0.0))

    def test_z_score_hand_computed(self):
        samples = [9.0, 10.0, 11.0]  # mean 10, s = 1, std_err = 1/sqrt(3)
        assert stats.z_score(12.0, samples) == pytest.approx(
            2.0 * math.sqrt(3.0)
        )
        assert stats.z_score(10.0, samples) == pytest.approx(0.0)

    def test_z_score_degenerate_samples(self):
        assert stats.z_score(5.0, [5.0, 5.0]) == 0.0
        assert math.isinf(stats.z_score(6.0, [5.0, 5.0]))
        with pytest.raises(ValueError):
            stats.z_score(1.0, [1.0])

    def test_covers(self):
        assert stats.covers((1.0, 3.0), 2.0)
        assert stats.covers((1.0, 3.0), 1.0)
        assert stats.covers((1.0, 3.0), 3.0)
        assert not stats.covers((1.0, 3.0), 3.5)
