"""Calibration: one-hot feature extraction and the least-squares fit."""

from __future__ import annotations

import random

import pytest

from repro import compile_source
from repro.validate import (
    CALIBRATION_VERSION,
    CalibrationError,
    CalibrationProfile,
    CalibrationSample,
    FEATURE_GROUPS,
    feature_counts,
    fit_calibration,
    one_hot_model,
)
from repro.validate.calibrate import INTERCEPT

pytestmark = pytest.mark.validate

TINY = """\
      PROGRAM TINY
      X = 1.0 + 2.0
      PRINT *, X
      END
"""


def synthetic_samples(true_prices, intercept, n=14, seed=7):
    """Noise-free samples whose measured time is exactly linear."""
    rng = random.Random(seed)
    samples = []
    for i in range(n):
        features = {INTERCEPT: 1.0}
        for group in FEATURE_GROUPS:
            features[group] = float(rng.randint(0, 500))
        measured = intercept + sum(
            true_prices[g] * features[g] for g in FEATURE_GROUPS
        )
        samples.append(
            CalibrationSample(
                label=f"s{i}", features=features, measured_mean_ns=measured
            )
        )
    return samples


class TestOneHotFeatures:
    def test_one_hot_model_prices_only_its_group(self):
        model = one_hot_model("fp_muldiv")
        assert model.fp_mul == 1.0 and model.fp_div == 1.0
        assert model.fp_add == 0.0 and model.load == 0.0
        assert model.counter_update == 0.0

    def test_unknown_group_rejected(self):
        with pytest.raises(CalibrationError):
            one_hot_model("vector")

    def test_feature_counts_are_operation_counts(self):
        from repro import profile_program

        program = compile_source(TINY)
        profile, _ = profile_program(program, runs=[{"seed": 0}])
        counts = feature_counts(program, profile)
        assert counts[INTERCEPT] == 1.0
        # One PRINT of one item and one fp addition per run.
        assert counts["print"] == pytest.approx(1.0)
        assert counts["fp_add"] == pytest.approx(1.0)
        assert counts["int_muldiv"] == 0.0


class TestFit:
    TRUE = {
        "mem": 4.0,
        "int_alu": 1.5,
        "int_muldiv": 12.0,
        "fp_add": 3.0,
        "fp_muldiv": 9.0,
        "call": 40.0,
        "intrinsic": 25.0,
        "print": 300.0,
    }

    def test_recovers_exact_linear_prices(self):
        profile = fit_calibration(
            synthetic_samples(self.TRUE, intercept=5000.0)
        )
        assert profile.intercept_ns == pytest.approx(5000.0, rel=1e-6)
        for group, price in self.TRUE.items():
            assert profile.coefficients_ns[group] == pytest.approx(
                price, rel=1e-5
            ), group
        assert profile.r_squared == pytest.approx(1.0, abs=1e-9)
        assert all(
            r["relative_error"] < 1e-6 for r in profile.residuals
        )

    def test_prices_never_negative(self):
        # A group anti-correlated with the measured time would get a
        # negative (meaningless) price; the active-set clamp drops it.
        rng = random.Random(3)
        samples = []
        for i in range(12):
            x = float(rng.randint(1, 100))
            features = {INTERCEPT: 1.0, "mem": x}
            for group in FEATURE_GROUPS:
                features.setdefault(group, 0.0)
            samples.append(
                CalibrationSample(
                    label=f"s{i}",
                    features=features,
                    measured_mean_ns=10_000.0 - 5.0 * x,
                )
            )
        profile = fit_calibration(samples)
        assert profile.coefficients_ns["mem"] == 0.0
        assert all(v >= 0.0 for v in profile.coefficients_ns.values())
        assert profile.intercept_ns >= 0.0

    def test_needs_enough_samples(self):
        samples = synthetic_samples(self.TRUE, intercept=0.0)[:5]
        with pytest.raises(CalibrationError, match="at least"):
            fit_calibration(samples)

    def test_unknown_weighting_rejected(self):
        samples = synthetic_samples(self.TRUE, intercept=0.0)
        with pytest.raises(CalibrationError):
            fit_calibration(samples, weighting="robust")


class TestProfileArtifact:
    def make(self) -> CalibrationProfile:
        return fit_calibration(
            synthetic_samples(TestFit.TRUE, intercept=1234.0)
        )

    def test_roundtrip_through_disk(self, tmp_path):
        profile = self.make()
        path = tmp_path / "cal.json"
        profile.save(path)
        loaded = CalibrationProfile.load(path)
        assert loaded.coefficients_ns == profile.coefficients_ns
        assert loaded.intercept_ns == profile.intercept_ns
        assert loaded.r_squared == profile.r_squared
        assert loaded.version == CALIBRATION_VERSION
        assert loaded.fingerprint == profile.fingerprint

    def test_newer_version_rejected(self, tmp_path):
        data = self.make().to_dict()
        data["version"] = CALIBRATION_VERSION + 1
        path = tmp_path / "cal.json"
        import json

        path.write_text(json.dumps(data))
        with pytest.raises(CalibrationError, match="version"):
            CalibrationProfile.load(path)

    def test_missing_artifact_and_bad_json(self, tmp_path):
        with pytest.raises(CalibrationError, match="no calibration"):
            CalibrationProfile.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        with pytest.raises(CalibrationError, match="not JSON"):
            CalibrationProfile.load(bad)

    def test_machine_model_prices_groups_in_ns(self):
        profile = self.make()
        model = profile.machine_model()
        for group, fields in FEATURE_GROUPS.items():
            for name in fields:
                assert getattr(model, name) == pytest.approx(
                    profile.coefficients_ns[group]
                )
        assert model.counter_update == 0.0

    def test_predict_is_linear(self):
        profile = self.make()
        features = {INTERCEPT: 1.0, "mem": 10.0, "print": 2.0}
        expected = (
            profile.intercept_ns
            + 10.0 * profile.coefficients_ns["mem"]
            + 2.0 * profile.coefficients_ns["print"]
        )
        assert profile.predict(features) == pytest.approx(expected)
