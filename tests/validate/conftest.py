"""Fixtures for the validation-observatory tests."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, set_registry


@pytest.fixture
def fresh_registry():
    """Swap in an empty metrics registry for the duration of a test."""
    registry = MetricsRegistry()
    old = set_registry(registry)
    yield registry
    set_registry(old)


@pytest.fixture
def fake_clock():
    """A deterministic perf_counter_ns stand-in: +1000 ns per call."""

    class Clock:
        def __init__(self):
            self.now = 0

        def __call__(self) -> int:
            self.now += 1000
            return self.now

    return Clock()
