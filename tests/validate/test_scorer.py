"""Accuracy scoring: deterministic pins and the end-to-end loop."""

from __future__ import annotations

import math

import pytest

from repro import compile_source
from repro.validate import (
    AccuracyScorer,
    CalibrationProfile,
    measure_program,
    median_relative_error,
)
from repro.validate import stats

pytestmark = pytest.mark.validate

TINY = """\
      PROGRAM TINY
      X = 1.0 + 2.0
      PRINT *, X
      END
"""

#: Wall-clock samples the fake clock will report, in ns.
SAMPLES = [900.0, 1000.0, 1100.0, 1200.0]


def make_clock(samples):
    """A perf_counter_ns double replaying exactly these durations."""
    ticks = []
    t = 0
    for sample in samples:
        ticks.append(t)
        t += int(sample)
        ticks.append(t)
    it = iter(ticks)
    return lambda: next(it)


@pytest.fixture
def measured_tiny():
    program = compile_source(TINY)
    item = measure_program(
        program,
        trials=len(SAMPLES),
        warmup=0,
        label="tiny",
        clock=make_clock(SAMPLES),
    )
    return program, item


def zero_op_calibration(intercept: float) -> CalibrationProfile:
    """All op prices 0: predicted TIME is exactly the intercept."""
    return CalibrationProfile(
        coefficients_ns={}, intercept_ns=intercept, r_squared=1.0
    )


class TestScorePins:
    def test_perfect_prediction(self, measured_tiny, fresh_registry):
        program, item = measured_tiny
        mean = stats.sample_mean(SAMPLES)  # 1050
        score = AccuracyScorer(zero_op_calibration(mean)).score(
            "tiny", program, item
        )
        assert score.measured_mean_ns == pytest.approx(1050.0)
        assert score.measured_var_ns2 == pytest.approx(50000.0 / 3.0)
        assert score.predicted_time_ns == pytest.approx(1050.0)
        assert score.time_relative_error == pytest.approx(0.0)
        assert score.time_z_score == pytest.approx(0.0)
        assert score.time_in_ci
        # A zero-op model predicts VAR 0, which a jittery measurement's
        # chi-square interval never covers.
        assert score.predicted_var_ns2 == 0.0
        assert score.var_relative_error == pytest.approx(1.0)
        assert not score.var_in_ci

    def test_off_prediction_pins(self, measured_tiny, fresh_registry):
        program, item = measured_tiny
        score = AccuracyScorer(zero_op_calibration(2000.0)).score(
            "tiny", program, item
        )
        assert score.time_relative_error == pytest.approx(
            (2000.0 - 1050.0) / 1050.0
        )
        # z = (2000 - 1050) / (s / sqrt(4)), s^2 = 50000/3.
        std_err = math.sqrt((50000.0 / 3.0) / 4.0)
        assert score.time_z_score == pytest.approx(950.0 / std_err)
        assert not score.time_in_ci

    def test_score_requires_profile_and_trials(self, measured_tiny):
        program, item = measured_tiny
        scorer = AccuracyScorer(zero_op_calibration(1.0))
        item_no_profile = type(item)(
            label="x",
            measurement=item.measurement,
            run_specs=item.run_specs,
            backend=item.backend,
            profile=None,
        )
        with pytest.raises(ValueError, match="no instrumented profile"):
            scorer.score("x", program, item_no_profile)

    def test_as_dict_is_json_safe(self, measured_tiny, fresh_registry):
        import json

        program, item = measured_tiny
        score = AccuracyScorer(zero_op_calibration(1050.0)).score(
            "tiny", program, item
        )
        payload = json.dumps(score.as_dict())
        assert "Infinity" not in payload and "NaN" not in payload


class TestMetricsExport:
    def test_scores_publish_gauges_and_histogram(
        self, measured_tiny, fresh_registry
    ):
        program, item = measured_tiny
        AccuracyScorer(zero_op_calibration(1050.0)).score(
            "tiny", program, item
        )
        snap = fresh_registry.snapshot()
        for name in (
            "repro_validation_time_relative_error",
            "repro_validation_var_relative_error",
            "repro_validation_time_z_score",
            "repro_validation_time_in_ci",
            "repro_validation_var_in_ci",
            "repro_validation_scores_total",
            "repro_validation_relative_error",
        ):
            assert name in snap, name
        in_ci = snap["repro_validation_time_in_ci"]["values"]
        assert in_ci == [{"labels": {"program": "tiny"}, "value": 1.0}]


class TestMedian:
    def _score(self, err: float):
        class Dummy:
            time_relative_error = err

        return Dummy()

    def test_odd_and_even(self):
        assert median_relative_error(
            [self._score(e) for e in (0.3, 0.1, 0.2)]
        ) == pytest.approx(0.2)
        assert median_relative_error(
            [self._score(e) for e in (0.4, 0.1, 0.2, 0.3)]
        ) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_relative_error([])
