"""End-to-end pin: calibrate on real wall clock, score a builtin.

This is the one test that times real executions, so its assertions
are deliberately tolerant: the pin is that a calibration fitted on a
fast-builtin corpus predicts a held-in builtin's TIME either inside
the measured 95% confidence interval or within 25% relative error
(the PR's corpus-median acceptance gate, applied here to a single
well-behaved program).
"""

from __future__ import annotations

import pytest

from repro.validate import AccuracyScorer, median_relative_error
from repro.validate.corpus import corpus_sources, run_calibration

pytestmark = [pytest.mark.validate, pytest.mark.slow]

#: Fast builtins only (livermore/simple run milliseconds per trial);
#: 10 programs > 9 prices leaves a residual degree of freedom, so the
#: fit cannot trivially interpolate.
FAST_BUILTINS = (
    "paper",
    "shellsort",
    "gauss",
    "newton",
    "binsearch",
    "early_returns",
    "irreducible",
    "multi_level_exit",
    "state_machine",
    "two_exit_loop",
)


@pytest.fixture(scope="module")
def calibrated():
    sources = corpus_sources(builtins=True, generated=0, only=FAST_BUILTINS)
    assert len(sources) == len(FAST_BUILTINS)
    profile, measured = run_calibration(sources, trials=3, warmup=1, seed=42)
    return profile, measured


class TestEndToEnd:
    def test_fit_explains_the_corpus(self, calibrated):
        profile, measured = calibrated
        assert len(profile.residuals) == len(FAST_BUILTINS)
        assert profile.r_squared > 0.5
        assert profile.intercept_ns >= 0.0
        assert all(v >= 0.0 for v in profile.coefficients_ns.values())

    def test_calibrated_time_lands_near_measured(self, calibrated):
        profile, measured = calibrated
        scorer = AccuracyScorer(profile)
        by_label = {label: (prog, item) for label, prog, item in measured}
        program, item = by_label["gauss"]
        score = scorer.score("gauss", program, item)
        assert score.predicted_time_ns > 0.0
        assert score.time_in_ci or score.time_relative_error < 0.25, (
            f"calibrated TIME {score.predicted_time_ns:.0f} ns is outside "
            f"the measured CI {score.mean_ci_ns} and off by "
            f"{100 * score.time_relative_error:.1f}%"
        )

    def test_median_error_is_sane_in_sample(self, calibrated):
        profile, measured = calibrated
        scores = AccuracyScorer(profile).score_corpus(measured)
        # In-sample median error well under the out-of-sample gate.
        assert median_relative_error(scores) < 0.25

    def test_artifact_roundtrips_with_fingerprint(self, calibrated, tmp_path):
        from repro.validate import CalibrationProfile, machine_fingerprint

        profile, _ = calibrated
        profile.save(tmp_path / "cal.json")
        loaded = CalibrationProfile.load(tmp_path / "cal.json")
        assert loaded.fingerprint == machine_fingerprint()
        assert loaded.trials == 3 and loaded.warmup == 1
