"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """\
      PROGRAM MAIN
      INTEGER I
      DO 10 I = 1, 5
        IF (RAND() .LT. 0.5) X = X + 1.0
10    CONTINUE
      PRINT *, X
      END
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "demo.f"
    path.write_text(SOURCE)
    return str(path)


class TestCompileCommand:
    def test_show_cfg(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "DO-TEST I" in out
        assert "<- entry" in out

    def test_show_ecfg(self, source_file, capsys):
        assert main(["compile", source_file, "--show", "ecfg"]) == 0
        out = capsys.readouterr().out
        assert "PREHEADER" in out

    def test_show_fcdg(self, source_file, capsys):
        assert main(["compile", source_file, "--show", "fcdg"]) == 0
        out = capsys.readouterr().out
        assert "FCDG of MAIN" in out
        assert "--T-->" in out

    def test_dot_outputs(self, source_file, capsys):
        assert main(["compile", source_file, "--show", "dot-cfg"]) == 0
        assert "digraph" in capsys.readouterr().out
        assert main(["compile", source_file, "--show", "dot-fcdg"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_unknown_procedure_fails(self, source_file, capsys):
        assert main(["compile", source_file, "--proc", "NOPE"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails(self, capsys):
        assert main(["compile", "/nonexistent.f"]) == 1


class TestRunCommand:
    def test_prints_program_output(self, source_file, capsys):
        assert main(["run", source_file]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip()  # the PRINT line
        assert "cycles" in captured.err

    def test_seed_changes_output(self, source_file, capsys):
        main(["run", source_file, "--seed", "1"])
        first = capsys.readouterr().out
        main(["run", source_file, "--seed", "99"])
        second = capsys.readouterr().out
        assert first != second or first == second  # both valid; no crash

    def test_inputs_forwarded(self, tmp_path, capsys):
        path = tmp_path / "echo.f"
        path.write_text("PROGRAM MAIN\nPRINT *, INPUT(1)\nEND\n")
        assert main(["run", str(path), "--inputs", "42.5"]) == 0
        assert "42.5" in capsys.readouterr().out

    def test_model_choice(self, source_file, capsys):
        assert main(["run", source_file, "--model", "optimizing"]) == 0
        assert "optimization ON" in capsys.readouterr().err


class TestProfileCommand:
    def test_prints_stats(self, source_file, capsys):
        assert main(["profile", source_file, "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "overhead" in out

    def test_naive_plan(self, source_file, capsys):
        assert main(["profile", source_file, "--plan", "naive"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_database_accumulation(self, source_file, tmp_path, capsys):
        db = str(tmp_path / "profiles.json")
        assert main(["profile", source_file, "--db", db, "--key", "k"]) == 0
        assert main(["profile", source_file, "--db", db, "--key", "k"]) == 0
        from repro.profiling.database import ProfileDatabase

        stored = ProfileDatabase(db).lookup("k")
        assert stored.runs == 2


class TestAnalyzeCommand:
    def test_prints_times(self, source_file, capsys):
        assert main(["analyze", source_file, "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "TIME" in out
        assert "STD_DEV" in out
        assert "MAIN" in out

    def test_figure3_flag(self, source_file, capsys):
        assert main(["analyze", source_file, "--figure3"]) == 0
        assert "TIME(START)" in capsys.readouterr().out

    def test_gprof_flag(self, source_file, capsys):
        assert main(["analyze", source_file, "--gprof"]) == 0
        out = capsys.readouterr().out
        assert "Flat profile" in out
        assert "Hottest" in out

    def test_loop_variance_choices(self, source_file, capsys):
        for choice in ["zero", "profiled", "geometric"]:
            assert main(
                ["analyze", source_file, "--loop-variance", choice]
            ) == 0

    def test_analyze_from_database(self, source_file, tmp_path, capsys):
        db = str(tmp_path / "profiles.json")
        main(["profile", source_file, "--db", db])
        capsys.readouterr()
        assert main(["analyze", source_file, "--db", db]) == 0
        assert "TIME" in capsys.readouterr().out

    def test_missing_database_key_fails(self, source_file, tmp_path, capsys):
        db = str(tmp_path / "empty.json")
        from repro.profiling.database import ProfileDatabase

        ProfileDatabase(db).save()
        assert main(["analyze", source_file, "--db", db]) == 1
        assert "no profile" in capsys.readouterr().err


class TestAppCommands:
    def test_traces(self, source_file, capsys):
        assert main(["traces", source_file]) == 0
        out = capsys.readouterr().out
        assert "trace 0" in out

    def test_partition(self, source_file, capsys):
        assert main(["partition", source_file, "--processors", "8"]) == 0
        out = capsys.readouterr().out
        assert "estimated speedup" in out
        assert "loop tasks" in out

    def test_spill(self, source_file, capsys):
        assert main(["spill", source_file]) == 0
        out = capsys.readouterr().out
        assert "spill costs" in out
        assert "I" in out  # the loop index ranks

    def test_spill_unknown_proc(self, source_file, capsys):
        assert main(["spill", source_file, "--proc", "NOPE"]) == 1
        assert "error" in capsys.readouterr().err
