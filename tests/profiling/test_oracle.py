"""Direct unit tests for the ground-truth oracle profile."""

import pytest

from repro import compile_source, run_program
from repro.profiling.oracle import oracle_profile

SOURCE = (
    "PROGRAM MAIN\n"
    "DO 10 I = 1, 4\n"
    "IF (MOD(I, 2) .EQ. 0) CALL TICK(K)\n"
    "10 CONTINUE\n"
    "END\n"
    "SUBROUTINE TICK(K)\n"
    "INTEGER K\n"
    "K = K + 1\n"
    "END\n"
)


@pytest.fixture
def program():
    return compile_source(SOURCE)


class TestOracleProfile:
    def test_invocations_from_call_counts(self, program):
        run = run_program(program)
        profile = oracle_profile(run, program.ecfgs)
        assert profile.proc("MAIN").invocations == 1.0
        assert profile.proc("TICK").invocations == 2.0

    def test_branch_counts_mirror_edges(self, program):
        run = run_program(program)
        profile = oracle_profile(run, program.ecfgs)
        main = profile.proc("MAIN")
        for (src, label), count in run.edge_counts["MAIN"].items():
            assert main.branch_counts[(src, label)] == float(count)

    def test_header_counts_from_node_counts(self, program):
        run = run_program(program)
        profile = oracle_profile(run, program.ecfgs)
        main = profile.proc("MAIN")
        (header,) = program.ecfgs["MAIN"].preheader_of
        assert main.header_counts[header] == float(
            run.node_counts["MAIN"][header]
        )
        assert main.header_counts[header] == 5.0  # 4 trips + final test

    def test_runs_field(self, program):
        run = run_program(program)
        profile = oracle_profile(run, program.ecfgs)
        assert profile.runs == 1

    def test_no_loop_moments_recorded(self, program):
        # moments need per-entry granularity; the oracle leaves them
        # empty (LoopMomentRecorder exists for that).
        run = run_program(program)
        profile = oracle_profile(run, program.ecfgs)
        assert profile.proc("MAIN").loop_sumsq == {}

    def test_uncalled_procedure_zeroed(self):
        source = SOURCE.replace("CALL TICK(K)", "K = K + 1")
        program = compile_source(source)
        run = run_program(program)
        profile = oracle_profile(run, program.ecfgs)
        assert profile.proc("TICK").invocations == 0.0
        assert profile.proc("TICK").branch_counts == {}
