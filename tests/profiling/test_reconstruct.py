"""Reconstruction of full profiles from optimized counter plans.

The key invariant: profiles reconstructed from the *smart* counter set
must equal the interpreter's ground-truth oracle exactly, on every
program and every input.
"""

import pytest

from repro import (
    compile_source,
    naive_program_plan,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.profiling import PlanExecutor, reconstruct_profile
from repro.profiling.measures import DerivedRule, RuleSet
from repro.errors import ProfilingError
from repro.workloads.paper_example import PAPER_SOURCE
from repro.workloads.unstructured import ALL_SOURCES


def assert_profiles_match(program, reconstructed, oracle):
    """Reconstructed targets must equal the oracle's exact counts."""
    for name, plan in smart_plans(program).plans.items():
        rec = reconstructed.proc(name)
        orc = oracle.proc(name)
        assert rec.invocations == orc.invocations, name
        for key, value in rec.branch_counts.items():
            assert value == orc.branch_counts.get(key, 0.0), (name, key)
        for header, value in rec.header_counts.items():
            assert value == orc.header_counts.get(header, 0.0), (name, header)


def smart_plans(program, **kwargs):
    return smart_program_plan(program, **kwargs)


def roundtrip(source, run_specs=({},), **plan_kwargs):
    program = compile_source(source)
    plan = smart_program_plan(program, **plan_kwargs)
    executor = PlanExecutor(plan)
    oracle = oracle_program_profile(program, runs=list(run_specs))
    for spec in run_specs:
        run_program(program, hooks=executor, **spec)
    reconstructed = reconstruct_profile(plan, executor, runs=len(run_specs))
    return program, reconstructed, oracle


class TestRoundTrip:
    def test_paper_example(self):
        program, rec, orc = roundtrip(PAPER_SOURCE)
        assert_profiles_match(program, rec, orc)

    def test_if_else(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 20\n"
            "IF (RAND() .GT. 0.5) THEN\nX = X + 1.0\nELSE\nX = X - 1.0\n"
            "ENDIF\n10 CONTINUE\nEND\n"
        )
        program, rec, orc = roundtrip(source, run_specs=({"seed": 3},))
        assert_profiles_match(program, rec, orc)

    def test_constant_trip_loop_reconstructs_header(self):
        source = (
            "PROGRAM MAIN\nS = 0.0\nDO 10 I = 1, 8\nS = S + 1.0\n"
            "10 CONTINUE\nPRINT *, S\nEND\n"
        )
        program, rec, orc = roundtrip(source)
        assert_profiles_match(program, rec, orc)
        main = rec.proc("MAIN")
        assert list(main.header_counts.values()) == [9.0]  # 8 trips + 1 test

    def test_variable_trip_loop(self):
        source = (
            "PROGRAM MAIN\nN = INT(INPUT(1))\nS = 0.0\nDO 10 I = 1, N\n"
            "S = S + 1.0\n10 CONTINUE\nPRINT *, S\nEND\n"
        )
        program, rec, orc = roundtrip(
            source, run_specs=({"inputs": (5.0,)}, {"inputs": (11.0,)})
        )
        assert_profiles_match(program, rec, orc)
        assert list(rec.proc("MAIN").header_counts.values()) == [18.0]

    def test_loop_with_conditional_exit(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 50\n"
            "IF (RAND() .LT. 0.2) GOTO 20\nX = X + 1.0\n10 CONTINUE\n"
            "20 CONTINUE\nPRINT *, X\nEND\n"
        )
        program, rec, orc = roundtrip(source, run_specs=({"seed": 1},))
        assert_profiles_match(program, rec, orc)

    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_unstructured_programs(self, name):
        specs = [{"inputs": (9.0,), "seed": s} for s in range(3)]
        program, rec, orc = roundtrip(ALL_SOURCES[name], run_specs=specs)
        assert_profiles_match(program, rec, orc)

    def test_livermore(self):
        from repro.workloads.livermore import livermore_source

        program, rec, orc = roundtrip(livermore_source(n=24, n2=4))
        assert_profiles_match(program, rec, orc)

    def test_simple_cfd(self):
        from repro.workloads.simple_cfd import simple_source

        program, rec, orc = roundtrip(simple_source(n=8, ncycles=2))
        assert_profiles_match(program, rec, orc)

    def test_each_optimization_level_reconstructs(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 12\n"
            "IF (RAND() .GT. 0.3) X = X + 1.0\n10 CONTINUE\nEND\n"
        )
        for kwargs in [
            {"enable_drops": False, "enable_do_batch": False},
            {"enable_drops": True, "enable_do_batch": False},
            {"enable_drops": False, "enable_do_batch": True},
            {"enable_drops": True, "enable_do_batch": True},
        ]:
            program, rec, orc = roundtrip(source, ({"seed": 5},), **kwargs)
            assert_profiles_match(program, rec, orc)

    def test_accumulation_over_runs(self):
        source = (
            "PROGRAM MAIN\nIF (RAND() .GT. 0.5) X = 1.0\nEND\n"
        )
        specs = [{"seed": s} for s in range(10)]
        program, rec, orc = roundtrip(source, run_specs=specs)
        assert rec.proc("MAIN").invocations == 10.0
        assert_profiles_match(program, rec, orc)


class TestRuleEngine:
    def test_missing_counter_value_raises(self):
        program = compile_source(PAPER_SOURCE)
        plan = smart_program_plan(program)
        from repro.profiling.reconstruct import reconstruct_procedure

        with pytest.raises(ProfilingError):
            reconstruct_procedure(plan.plans["MAIN"], {})

    def test_rule_closure_is_monotone(self):
        rules = RuleSet()
        rules.add(DerivedRule(("b",), "t", (((1.0, ("a",))),)))
        rules.add(DerivedRule(("c",), "t", ((1.0, ("b",)),)))
        assert rules.closure({("a",)}) == {("a",), ("b",), ("c",)}
        assert rules.closure(set()) == set()

    def test_rule_evaluation_linear_combination(self):
        rule = DerivedRule(
            ("x",), "t", ((2.0, ("a",)), (-1.0, ("b",)), (1.0, 5.0)), bias=1.0
        )
        assert rule.evaluate({("a",): 3.0, ("b",): 4.0}) == 2 * 3 - 4 + 5 + 1

    def test_rule_unresolved_dependency_returns_none(self):
        rule = DerivedRule(("x",), "t", ((1.0, ("a",)),))
        assert rule.evaluate({}) is None

    def test_solve_fixpoint_chains(self):
        rules = RuleSet()
        rules.add(DerivedRule(("b",), "t", ((2.0, ("a",)),)))
        rules.add(DerivedRule(("c",), "t", ((1.0, ("b",)), (1.0, ("a",)))))
        values = rules.solve({("a",): 2.0})
        assert values[("c",)] == 6.0
