"""Regression tests for per-shard database files and absorb-on-boot.

A multi-worker service persists each shard's slice next to the
configured path (``profiles.json`` owns ``profiles.shard0.json``,
``profiles.shard1.json``, ...).  A later single-worker boot with
``absorb_shards=True`` must fold every slice back into the main file
exactly (``TOTAL_FREQ`` sums are additive) and must not double-count
across crashes: absorbed files are deleted only after the next
successful atomic save.
"""

import json

from repro.profiling.database import ProfileDatabase, ProgramProfile

from tests.profiling.test_database import make_profile


def write_shard(base, shard, runs, invocations):
    db = ProfileDatabase(ProfileDatabase.shard_path(base, shard))
    profile = make_profile(invocations=invocations)
    profile.runs = runs
    db.record("acc", profile)
    db.save()
    return db.path


class TestShardPath:
    def test_naming(self, tmp_path):
        base = tmp_path / "profiles.json"
        assert (
            ProfileDatabase.shard_path(base, 7).name == "profiles.shard7.json"
        )

    def test_suffixless_paths_work(self, tmp_path):
        base = tmp_path / "profilesdb"
        assert ProfileDatabase.shard_path(base, 2).name == "profilesdb.shard2"


class TestAbsorb:
    def test_absorbs_every_shard_slice(self, tmp_path):
        base = tmp_path / "profiles.json"
        write_shard(base, 0, runs=2, invocations=2.0)
        write_shard(base, 1, runs=3, invocations=3.0)
        db = ProfileDatabase(base, absorb_shards=True)
        assert db.total_runs() == 5
        assert db.lookup("acc").procedures["MAIN"].invocations == 5.0
        assert len(db.absorbed_shards) == 2

    def test_absorb_merges_with_the_main_file(self, tmp_path):
        base = tmp_path / "profiles.json"
        main = ProfileDatabase(base)
        main.record("acc", make_profile())
        main.save()
        write_shard(base, 0, runs=4, invocations=4.0)
        db = ProfileDatabase(base, absorb_shards=True)
        assert db.total_runs() == 5

    def test_shard_files_survive_until_the_next_save(self, tmp_path):
        """A crash between absorb and save must not lose counts."""
        base = tmp_path / "profiles.json"
        shard_file = write_shard(base, 0, runs=2, invocations=2.0)
        db = ProfileDatabase(base, absorb_shards=True)
        assert shard_file.exists()  # not yet durable in the main file
        db.save()
        assert not shard_file.exists()
        assert db.absorbed_shards == []
        # Re-absorbing now finds nothing: no double counting.
        again = ProfileDatabase(base, absorb_shards=True)
        assert again.total_runs() == 2

    def test_corrupt_shard_is_quarantined_not_absorbed(self, tmp_path):
        base = tmp_path / "profiles.json"
        write_shard(base, 0, runs=2, invocations=2.0)
        bad = ProfileDatabase.shard_path(base, 1)
        bad.write_text("{ truncated")
        db = ProfileDatabase(base, absorb_shards=True)
        assert db.total_runs() == 2
        assert not bad.exists()  # moved aside as evidence
        assert bad.with_name(bad.name + ".corrupt").exists()

    def test_foreign_sidecar_files_are_ignored(self, tmp_path):
        base = tmp_path / "profiles.json"
        write_shard(base, 0, runs=1, invocations=1.0)
        sidecar = tmp_path / "profiles.shardX.json"
        sidecar.write_text(json.dumps({}))
        db = ProfileDatabase(base, absorb_shards=True)
        assert db.total_runs() == 1
        assert sidecar.exists()

    def test_plain_boot_does_not_absorb(self, tmp_path):
        base = tmp_path / "profiles.json"
        write_shard(base, 0, runs=2, invocations=2.0)
        assert ProfileDatabase(base).total_runs() == 0

    def test_absorbed_state_round_trips(self, tmp_path):
        """Absorb -> save -> reload equals the shard-side accumulation."""
        base = tmp_path / "profiles.json"
        write_shard(base, 0, runs=2, invocations=2.0)
        write_shard(base, 1, runs=3, invocations=3.0)
        db = ProfileDatabase(base, absorb_shards=True)
        db.save()
        reloaded = ProfileDatabase(base)
        assert reloaded.total_runs() == 5
        want = db.lookup("acc").to_dict()
        assert reloaded.lookup("acc").to_dict() == want
