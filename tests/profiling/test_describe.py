"""Tests for the counter-plan describer and the `plan` CLI command."""

import pytest

from repro import compile_source, naive_program_plan, smart_program_plan
from repro.cli import main
from repro.profiling.describe import describe_plan

SOURCE = (
    "PROGRAM MAIN\n"
    "N = INT(INPUT(1))\n"
    "DO 10 I = 1, N\n"
    "IF (RAND() .GT. 0.5) X = X + 1.0\n"
    "10 CONTINUE\n"
    "END\n"
)


@pytest.fixture
def program():
    return compile_source(SOURCE)


class TestDescribePlan:
    def test_lists_every_counter(self, program):
        plan = smart_program_plan(program).plans["MAIN"]
        text = describe_plan(plan, program.cfgs["MAIN"])
        assert text.count("counter ") >= plan.n_counters

    def test_batched_counter_described(self, program):
        plan = smart_program_plan(program).plans["MAIN"]
        text = describe_plan(plan, program.cfgs["MAIN"])
        assert "+= trip+1 at DO entry" in text

    def test_derived_measures_with_rules(self, program):
        plan = smart_program_plan(program).plans["MAIN"]
        text = describe_plan(plan, program.cfgs["MAIN"])
        assert "derived measures" in text
        assert "[complement]" in text or "[exit_sum]" in text

    def test_naive_plan_described(self, program):
        plan = naive_program_plan(program).plans["MAIN"]
        text = describe_plan(plan, program.cfgs["MAIN"])
        assert "naive" in text
        assert "block(" in text

    def test_header_counter_location_text(self, program):
        plan = smart_program_plan(
            program, enable_do_batch=False
        ).plans["MAIN"]
        text = describe_plan(plan, program.cfgs["MAIN"])
        assert "loopfreq" in text


class TestPlanCommand:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "p.f"
        path.write_text(SOURCE)
        return str(path)

    def test_smart_plan_shown(self, source_file, capsys):
        assert main(["plan", source_file]) == 0
        out = capsys.readouterr().out
        assert "plan for MAIN (smart)" in out
        assert "total counters" in out

    def test_naive_flag(self, source_file, capsys):
        assert main(["plan", source_file, "--naive"]) == 0
        assert "(naive)" in capsys.readouterr().out

    def test_proc_filter(self, source_file, capsys):
        assert main(["plan", source_file, "--proc", "MAIN"]) == 0
        assert main(["plan", source_file, "--proc", "NOPE"]) == 1
