"""Unit tests for the simulated PC-sampling profiler."""

import pytest

from repro import SCALAR_MACHINE, compile_source, run_program
from repro.costs.estimate import CostEstimator
from repro.profiling.sampling import SamplingProfiler, true_procedure_shares

SOURCE = (
    "PROGRAM MAIN\n"
    "DO 10 I = 1, 30\n"
    "CALL HEAVY(X)\n"
    "10 CONTINUE\n"
    "Y = 1.0\n"
    "END\n"
    "SUBROUTINE HEAVY(X)\n"
    "X = X + SQRT(2.0) * EXP(1.0)\n"
    "X = X * 1.5\n"
    "END\n"
)


def sampled(interval, source=SOURCE, **run_kwargs):
    program = compile_source(source)
    profiler = SamplingProfiler(
        program.checked, program.cfgs, SCALAR_MACHINE, interval
    )
    result = run_program(
        program, model=SCALAR_MACHINE, hooks=profiler, **run_kwargs
    )
    return program, profiler, result


class TestSampling:
    def test_sample_count_matches_total_cost(self):
        program, profiler, result = sampled(interval=50.0)
        expected = int(result.total_cost // 50.0)
        assert abs(profiler.report.total_samples - expected) <= 1

    def test_no_samples_for_huge_interval(self):
        program, profiler, result = sampled(interval=10**9)
        assert profiler.report.total_samples == 0
        assert profiler.procedure_shares() == {}

    def test_shares_sum_to_one(self):
        program, profiler, _ = sampled(interval=20.0)
        shares = profiler.procedure_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_shares_converge_to_truth(self):
        program, profiler, result = sampled(interval=5.0)
        estimator = CostEstimator(program.checked, SCALAR_MACHINE)
        costs = {
            name: {
                nid: nc.local
                for nid, nc in estimator.cfg_costs(cfg, name).items()
            }
            for name, cfg in program.cfgs.items()
        }
        truth = true_procedure_shares(result, costs)
        shares = profiler.procedure_shares()
        for name, value in truth.items():
            assert shares.get(name, 0.0) == pytest.approx(value, abs=0.03)

    def test_heavy_procedure_dominates(self):
        program, profiler, _ = sampled(interval=10.0)
        shares = profiler.procedure_shares()
        assert shares["HEAVY"] > shares["MAIN"]

    def test_node_frequency_estimates_are_rough(self):
        # Sampling cannot recover exact statement counts.
        program, profiler, result = sampled(interval=25.0)
        estimates = profiler.estimate_node_frequencies()
        truth = result.node_counts
        misses = 0
        for proc, counts in truth.items():
            for node, count in counts.items():
                if count > 0 and (proc, node) not in estimates:
                    misses += 1
        assert misses > 0  # some executed statements were never sampled

    def test_invalid_interval_rejected(self):
        program = compile_source(SOURCE)
        with pytest.raises(ValueError):
            SamplingProfiler(
                program.checked, program.cfgs, SCALAR_MACHINE, 0.0
            )

    def test_phase_offsets_change_attribution(self):
        program = compile_source(SOURCE)
        hits = []
        for phase in (0.0, 7.0):
            profiler = SamplingProfiler(
                program.checked,
                program.cfgs,
                SCALAR_MACHINE,
                interval=33.0,
                phase=phase,
            )
            run_program(program, model=SCALAR_MACHINE, hooks=profiler)
            hits.append(dict(profiler.report.per_node))
        assert hits[0] != hits[1]

    def test_sampler_adds_no_counter_updates(self):
        program, profiler, result = sampled(interval=20.0)
        assert result.counter_ops == 0
        assert result.counter_cost == 0.0
