"""Counter placement on multiway branches (computed GOTO, arithmetic IF).

The paper's Opt-2 branch rule generalizes beyond two-way IFs: with n
labels fully covered by control conditions, n−1 counters suffice.
"""

import pytest

from repro import (
    compile_source,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.cfg.graph import StmtKind
from repro.profiling import PlanExecutor, reconstruct_profile

CGOTO = (
    "PROGRAM MAIN\n"
    "DO 50 I = 1, 30\n"
    "GOTO (10, 20, 30), IRAND(1, 4)\n"
    "NF = NF + 1\n"
    "GOTO 50\n"
    "10 N1 = N1 + 1\n"
    "GOTO 50\n"
    "20 N2 = N2 + 1\n"
    "GOTO 50\n"
    "30 N3 = N3 + 1\n"
    "50 CONTINUE\n"
    "END\n"
)


class TestComputedGotoPlacement:
    def test_one_label_dropped(self):
        program = compile_source(CGOTO)
        plan = smart_program_plan(program).plans["MAIN"]
        cg = next(
            n.id for n in program.cfgs["MAIN"] if n.kind is StmtKind.CGOTO
        )
        counted = [k for k in plan.edge_counters if k[0] == cg]
        # 4 ways (C1..C3 + fallthrough U): 3 counters suffice.
        assert len(counted) == 3

    def test_reconstruction_exact_over_runs(self):
        program = compile_source(CGOTO)
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        specs = [{"seed": s} for s in range(4)]
        for spec in specs:
            run_program(program, hooks=executor, **spec)
        oracle = oracle_program_profile(program, runs=specs)
        rec = reconstruct_profile(plan, executor, runs=4)
        main_rec = rec.proc("MAIN")
        main_orc = oracle.proc("MAIN")
        for key, value in main_rec.branch_counts.items():
            assert value == main_orc.branch_counts.get(key, 0.0), key

    def test_all_ways_exercised(self):
        program = compile_source(CGOTO)
        oracle = oracle_program_profile(
            program, runs=[{"seed": s} for s in range(4)]
        )
        cg = next(
            n.id for n in program.cfgs["MAIN"] if n.kind is StmtKind.CGOTO
        )
        counts = oracle.proc("MAIN").branch_counts
        for label in ("C1", "C2", "C3", "U"):
            assert counts.get((cg, label), 0.0) > 0, label


AIF_LOOP = (
    "PROGRAM MAIN\n"
    "DO 50 I = 1, 24\n"
    "K = IRAND(-2, 2)\n"
    "IF (K) 10, 20, 30\n"
    "10 NN = NN + 1\n"
    "GOTO 50\n"
    "20 NZ = NZ + 1\n"
    "GOTO 50\n"
    "30 NP = NP + 1\n"
    "50 CONTINUE\n"
    "END\n"
)


class TestArithmeticIfPlacement:
    def test_two_of_three_counters(self):
        program = compile_source(AIF_LOOP)
        plan = smart_program_plan(program).plans["MAIN"]
        aif = next(
            n.id for n in program.cfgs["MAIN"] if n.kind is StmtKind.AIF
        )
        counted = [k for k in plan.edge_counters if k[0] == aif]
        assert len(counted) == 2

    def test_dropped_label_reconstructed(self):
        program = compile_source(AIF_LOOP)
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        run_program(program, hooks=executor, seed=9)
        oracle = oracle_program_profile(program, runs=[{"seed": 9}])
        rec = reconstruct_profile(plan, executor)
        aif = next(
            n.id for n in program.cfgs["MAIN"] if n.kind is StmtKind.AIF
        )
        for label in ("LT", "EQ", "GT"):
            assert rec.proc("MAIN").branch_counts[(aif, label)] == (
                oracle.proc("MAIN").branch_counts.get((aif, label), 0.0)
            )

    def test_total_of_three_ways_is_loop_count(self):
        program = compile_source(AIF_LOOP)
        oracle = oracle_program_profile(program, runs=[{"seed": 9}])
        aif = next(
            n.id for n in program.cfgs["MAIN"] if n.kind is StmtKind.AIF
        )
        counts = oracle.proc("MAIN").branch_counts
        total = sum(counts.get((aif, l), 0.0) for l in ("LT", "EQ", "GT"))
        assert total == 24.0
