"""Durability of the program database: atomic saves, corrupt loads,
database-level merge, and the accumulate -> save -> load ->
Definition-3 round trip the profiling service depends on."""

import json
import os

import pytest

from repro import analyze, compile_source, profile_program
from repro.costs.model import SCALAR_MACHINE
from repro.profiling.database import ProfileDatabase, ProgramProfile
from repro.workloads.paper_example import PAPER_SOURCE

from tests.profiling.test_database import make_profile


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, tmp_path):
        db = ProfileDatabase(tmp_path / "profiles.json")
        db.record("p", make_profile())
        db.save()
        db.save()
        assert sorted(p.name for p in tmp_path.iterdir()) == ["profiles.json"]

    def test_save_replaces_not_truncates(self, tmp_path):
        """A concurrent reader never sees a half-written file."""
        path = tmp_path / "profiles.json"
        db = ProfileDatabase(path)
        db.record("p", make_profile())
        db.save()
        inode_before = os.stat(path).st_ino
        db.record("p", make_profile())
        db.save()
        # os.replace swaps a complete file in; the old inode is gone.
        assert os.stat(path).st_ino != inode_before
        assert ProfileDatabase(path).lookup("p").runs == 2

    def test_in_memory_database_save_is_noop(self):
        db = ProfileDatabase(None)
        db.record("p", make_profile())
        db.save()  # must not raise
        assert db.lookup("p").runs == 1


class TestCorruptLoad:
    @pytest.mark.parametrize(
        "payload",
        [
            "{truncated",
            "",
            "[1, 2, 3]",
            '{"key": {"runs": "not-even-close"}}',
            '{"key": 42}',
        ],
        ids=["truncated", "empty", "wrong-shape", "bad-runs", "non-dict"],
    )
    def test_corrupt_file_recovers_empty(self, tmp_path, payload):
        path = tmp_path / "profiles.json"
        path.write_text(payload)
        db = ProfileDatabase(path)
        assert db.recovered_corrupt
        assert db.keys() == []
        # Accumulation restarts and persists cleanly.
        db.record("p", make_profile())
        db.save()
        assert not ProfileDatabase(path).recovered_corrupt

    def test_corrupt_bytes_are_preserved(self, tmp_path):
        path = tmp_path / "profiles.json"
        path.write_text("{evidence")
        ProfileDatabase(path)
        backup = tmp_path / "profiles.json.corrupt"
        assert backup.read_text() == "{evidence"
        assert not path.exists()

    def test_healthy_file_sets_no_flag(self, tmp_path):
        path = tmp_path / "profiles.json"
        db = ProfileDatabase(path)
        db.record("p", make_profile())
        db.save()
        assert not ProfileDatabase(path).recovered_corrupt


class TestDatabaseMerge:
    def test_merge_sums_all_entries(self, tmp_path):
        a = ProfileDatabase(tmp_path / "a.json")
        b = ProfileDatabase(tmp_path / "b.json")
        a.record("shared", make_profile())
        b.record("shared", make_profile(invocations=2.0))
        b.record("only-b", make_profile())
        a.merge(b)
        assert a.lookup("shared").proc("MAIN").invocations == 3.0
        assert a.lookup("shared").runs == 2
        assert a.lookup("only-b").runs == 1

    def test_merge_is_accumulative_not_destructive(self, tmp_path):
        a = ProfileDatabase(tmp_path / "a.json")
        b = ProfileDatabase(tmp_path / "b.json")
        b.record("k", make_profile())
        a.merge(b)
        assert b.lookup("k").runs == 1  # source untouched


class TestDefinition3RoundTrip:
    def test_accumulate_save_load_normalize(self, tmp_path):
        """Counts summed across deltas, persisted, reloaded, and only
        then normalized — the exact shape of the paper's
        accumulate-then-apply-Definition-3 workflow."""
        program = compile_source(PAPER_SOURCE)
        path = tmp_path / "profiles.json"

        db = ProfileDatabase(path)
        for runs in (1, 2, 2):
            delta, _ = profile_program(
                program, runs=runs, record_loop_moments=True
            )
            db.record("paper", delta)
        db.save()

        restored = ProfileDatabase(path).lookup("paper")
        assert restored.runs == 5

        # One uninterrupted accumulation gives the same raw counts...
        direct, _ = profile_program(
            program, runs=5, record_loop_moments=True
        )
        assert restored.proc("MAIN").branch_counts == pytest.approx(
            direct.proc("MAIN").branch_counts
        )
        assert restored.proc("MAIN").loop_sumsq == pytest.approx(
            direct.proc("MAIN").loop_sumsq
        )

        # ... and therefore identical Definition-3 frequencies, TIME
        # and Section-5 variance after normalization.
        via_db = analyze(
            program, restored, SCALAR_MACHINE, loop_variance="profiled"
        )
        via_direct = analyze(
            program, direct, SCALAR_MACHINE, loop_variance="profiled"
        )
        assert via_db.total_time == pytest.approx(via_direct.total_time)
        assert via_db.total_var == pytest.approx(via_direct.total_var)
        main_db = via_db.procedures["MAIN"]
        main_direct = via_direct.procedures["MAIN"]
        assert main_db.freqs.node_freq == pytest.approx(
            main_direct.freqs.node_freq
        )

    def test_reload_roundtrip_is_lossless(self, tmp_path):
        program = compile_source(PAPER_SOURCE)
        delta, _ = profile_program(program, runs=3)
        path = tmp_path / "profiles.json"
        db = ProfileDatabase(path)
        db.record("paper", delta)
        db.save()
        raw = json.loads(path.read_text())
        restored = ProgramProfile.from_dict(raw["paper"])
        assert restored.to_dict() == delta.to_dict()
