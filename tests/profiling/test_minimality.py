"""Minimality of the optimized counter plan.

Section 3: "If we limit ourselves to syntax-based schemes ... these
two optimizations will yield the minimum possible number of counter
variables."  For small programs we can verify our greedy plan against
brute force: enumerate every subset of the candidate counters and find
the smallest one from which the rule closure still derives all target
measures.
"""

import itertools

import pytest

from repro import compile_source, smart_program_plan
from repro.profiling.measures import RuleSet
from repro.profiling.placement import smart_plan


def minimal_counter_count(program, proc="MAIN"):
    """Brute-force minimum counters using the same rule system."""
    # Build the undropped plan to enumerate the full candidate set.
    full = smart_plan(
        program.checked,
        program.cfgs[proc],
        program.fcdgs[proc],
        enable_drops=False,
    )
    candidates = sorted(full.counter_measures.items())
    measures = [measure for _, measure in candidates]
    targets = full.targets
    rules = full.rules
    n = len(measures)
    assert n <= 14, "brute force would explode"
    for size in range(0, n + 1):
        for keep in itertools.combinations(range(n), size):
            kept = {measures[i] for i in keep}
            closure = rules.closure(kept)
            if all(t in closure for t in targets):
                return size
    return n


PROGRAMS = {
    "if_else": (
        "PROGRAM MAIN\nIF (RAND() .GT. 0.5) THEN\nX = 1.0\nELSE\n"
        "X = 2.0\nENDIF\nEND\n"
    ),
    "two_ifs": (
        "PROGRAM MAIN\n"
        "IF (RAND() .GT. 0.5) X = 1.0\n"
        "IF (RAND() .GT. 0.3) Y = 1.0\n"
        "END\n"
    ),
    "constant_do": (
        "PROGRAM MAIN\nDO 10 I = 1, 8\nX = X + 1.0\n10 CONTINUE\nEND\n"
    ),
    "variable_do": (
        "PROGRAM MAIN\nN = INT(INPUT(1))\nDO 10 I = 1, N\nX = X + 1.0\n"
        "10 CONTINUE\nEND\n"
    ),
    "do_with_branch": (
        "PROGRAM MAIN\nDO 10 I = 1, 8\n"
        "IF (RAND() .GT. 0.5) X = X + 1.0\n10 CONTINUE\nEND\n"
    ),
    "paper_loop": (
        "PROGRAM MAIN\nK = 0\n"
        "10 IF (K .GT. 5) GOTO 20\nK = K + 1\nGOTO 10\n20 CONTINUE\nEND\n"
    ),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_greedy_plan_is_minimal(name):
    program = compile_source(PROGRAMS[name])
    greedy = smart_program_plan(program).plans["MAIN"]
    minimum = minimal_counter_count(program)
    assert greedy.n_counters == minimum, (
        f"{name}: greedy kept {greedy.n_counters}, brute-force minimum "
        f"is {minimum}"
    )


def test_paper_example_minimal(paper_program):
    greedy = smart_program_plan(paper_program).plans["MAIN"]
    minimum = minimal_counter_count(paper_program)
    assert greedy.n_counters == minimum
