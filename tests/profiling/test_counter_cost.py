"""Counter-update cost accounting (paper §3.3), pinned across backends.

§3.3 charges profiling overhead per *counter update*: an Opt-3 batch
counter adds the whole trip count in **one** update at the DO_INIT, so
a thousand-iteration loop costs one `counter_update`, not a thousand.
These tests pin `counter_ops`/`counter_cost` to exact values on every
backend — reference, threaded and codegen — so a regression in any
accounting (charging per iteration, or per batch entry instead of per
add) cannot land silently.  For the codegen backend the *emitted
source* is audited too: the number of distinct bump sites folded into
the text must equal the plan's lowered site count.
"""

import pytest

from repro import SCALAR_MACHINE, compile_source, smart_program_plan
from repro.fastexec.plans import lower_counter_plan
from repro.pipeline import run_program
from repro.profiling import PlanExecutor
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = [pytest.mark.threaded, pytest.mark.codegen]

BACKENDS = ("reference", "threaded", "codegen")

#: An exit-free DO loop with a runtime-dependent trip count: Opt 3
#: places a batch counter at the DO_INIT instead of eliding it.
BATCHED_LOOP = """      PROGRAM MAIN
      INTEGER I, N, X
      N = INPUT(1)
      X = 0
      DO 10 I = 1, N
        X = X + I
10    CONTINUE
      END
"""


@pytest.mark.parametrize("backend", BACKENDS)
def test_opt3_trip_add_is_one_update(backend):
    program = compile_source(BATCHED_LOOP)
    plan = smart_program_plan(program)
    # Precondition: the loop really is batch-counted, not elided.
    assert plan.plans["MAIN"].batch_counters, "Opt-3 batching expected"
    executor = PlanExecutor(plan)
    result = run_program(
        program,
        hooks=executor,
        model=SCALAR_MACHINE,
        seed=0,
        inputs=(37.0,),
        backend=backend,
    )
    # One update for the entry counter, one for the whole 37-trip
    # batch add — never one per iteration.
    assert result.counter_ops == 2
    assert result.counter_cost == 2 * SCALAR_MACHINE.counter_update
    assert executor.updates == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_figure3_counter_ops_pinned(backend):
    """The paper's Figure-3 example: exact update count, every backend.

    With seed 0 the run makes 20 counter updates under the smart plan
    (pinned from the reference interpreter); `counter_cost` is exactly
    that times the model's per-update charge.
    """
    program = compile_source(PAPER_SOURCE)
    plan = smart_program_plan(program)
    executor = PlanExecutor(plan)
    result = run_program(
        program,
        hooks=executor,
        model=SCALAR_MACHINE,
        seed=0,
        backend=backend,
    )
    assert result.steps == 61
    assert result.counter_ops == 20
    assert result.counter_cost == 20 * SCALAR_MACHINE.counter_update
    assert executor.updates == 20


def test_counter_ops_identical_across_backends():
    results = {}
    program = compile_source(BATCHED_LOOP)
    plan = smart_program_plan(program)
    for backend in BACKENDS:
        executor = PlanExecutor(plan)
        result = run_program(
            program,
            hooks=executor,
            model=SCALAR_MACHINE,
            seed=0,
            inputs=(123.0,),
            backend=backend,
        )
        results[backend] = (
            result.counter_ops,
            result.counter_cost,
            executor.updates,
            executor.counters,
        )
    assert results["threaded"] == results["reference"]
    assert results["codegen"] == results["reference"]


@pytest.mark.parametrize(
    "source,inputs", [(BATCHED_LOOP, (5.0,)), (PAPER_SOURCE, ())]
)
def test_codegen_emits_one_bump_site_per_planned_site(source, inputs):
    """The emitted text carries exactly the plan's update sites.

    `meta.bumps` records every `slots[i] += ...` line the emitter
    wrote; deduplicated (a fused block's slow-path replay restates its
    sites textually) the set must match the lowered slot tables
    one-for-one — §3.3's "cost = number of planted counters" claim,
    checked against the generated code itself.
    """
    from repro.codegen import codegen_backend_for

    program = compile_source(source)
    plan = smart_program_plan(program)
    backend = codegen_backend_for(program)
    backend.ensure_lowered()
    meta = backend.emit_meta(plan)
    for name, proc_plan in plan.plans.items():
        table = lower_counter_plan(proc_plan)
        planned = (
            {(slot, "node", nid) for nid, slot in table.node_slots.items()}
            | {
                (slot, "edge", key)
                for key, slot in table.edge_slots.items()
            }
            | {
                (slot, "batch", nid)
                for nid, pairs in table.batch_slots.items()
                for slot, _offset in pairs
            }
        )
        emitted = set(meta.bumps.get(name, ()))
        assert emitted == planned, name
