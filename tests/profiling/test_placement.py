"""Unit tests for counter placement plans (Section 3)."""

import pytest

from repro import compile_source
from repro.cfg.graph import StmtKind
from repro.profiling.placement import basic_blocks, naive_plan, smart_plan


def plans_for(body_lines, extra="", **smart_kwargs):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n" + extra
    program = compile_source(source)
    smart = smart_plan(
        program.checked, program.cfgs["MAIN"], program.fcdgs["MAIN"],
        **smart_kwargs,
    )
    naive = naive_plan(program.checked, program.cfgs["MAIN"])
    return program, smart, naive


class TestBasicBlocks:
    def test_straight_line_single_block(self):
        program, _, _ = plans_for(["X = 1.0", "Y = 2.0"])
        blocks = basic_blocks(program.cfgs["MAIN"])
        assert len(blocks) == 1

    def test_if_splits_blocks(self):
        program, _, _ = plans_for(
            ["IF (X .GT. 0) THEN", "Y = 1.0", "ELSE", "Y = 2.0", "ENDIF",
             "Z = 3.0"]
        )
        blocks = basic_blocks(program.cfgs["MAIN"])
        # entry-chain+IF | then | else | join-chain
        assert len(blocks) == 4

    def test_blocks_partition_nodes(self):
        program, _, _ = plans_for(
            ["DO 10 I = 1, 3", "IF (X .GT. 0.0) Y = 1.0", "10 CONTINUE"]
        )
        cfg = program.cfgs["MAIN"]
        blocks = basic_blocks(cfg)
        members = [n for block in blocks.values() for n in block]
        assert sorted(members) == sorted(cfg.nodes)


class TestOpt1ConditionCounters:
    def test_straight_line_needs_one_counter(self):
        # Only the invocation counter: no branches, no loops.
        _, smart, naive = plans_for(["X = 1.0", "Y = 2.0", "Z = 3.0"])
        assert smart.n_counters == 1

    def test_identically_dependent_blocks_share(self):
        # Both assignments under one IF arm: one edge counter serves
        # both (plus invocation counter); opt 2 then drops nothing
        # else since only T is a condition.
        _, smart, _ = plans_for(
            ["IF (RAND() .GT. 0.5) THEN", "Y = 1.0", "Z = 2.0", "ENDIF"]
        )
        edge_keys = list(smart.edge_counters)
        assert len(edge_keys) <= 2

    def test_counter_measures_recorded(self):
        _, smart, _ = plans_for(["IF (RAND() .GT. 0.5) Y = 1.0"])
        measures = set(smart.counter_measures.values())
        assert ("invoc",) in measures


class TestOpt2Drops:
    def test_two_way_branch_keeps_one_counter(self):
        _, smart, _ = plans_for(
            ["IF (RAND() .GT. 0.5) THEN", "Y = 1.0", "ELSE", "Y = 2.0",
             "ENDIF"]
        )
        # invocation + exactly one of the two branch labels.
        assert smart.n_counters == 2

    def test_drop_disabled(self):
        _, smart, _ = plans_for(
            ["IF (RAND() .GT. 0.5) THEN", "Y = 1.0", "ELSE", "Y = 2.0",
             "ENDIF"],
            enable_drops=False,
        )
        assert smart.n_counters == 3

    def test_dropped_measure_still_a_target(self):
        _, smart, _ = plans_for(
            ["IF (RAND() .GT. 0.5) THEN", "Y = 1.0", "ELSE", "Y = 2.0",
             "ENDIF"]
        )
        targets = set(smart.targets)
        measured = smart.measured()
        assert measured < targets  # something is derived, nothing lost
        closure = smart.rules.closure(measured)
        assert targets <= closure

    def test_goto_loop_with_body_condition(self):
        # Header is the exit IF; the back-edge source (the body
        # assignment) has a single successor, so its takings equal
        # its executions and one of {header counter, F-label counter}
        # can be dropped — but not both (they determine each other).
        program, smart, _ = plans_for(
            [
                "K = 0",
                "10 IF (K .GT. 5) GOTO 20",
                "K = K + 1",
                "GOTO 10",
                "20 CONTINUE",
            ]
        )
        # invocation + exactly one more counter for the whole loop.
        assert smart.n_counters == 2

    def test_underivable_iteration_count_keeps_a_counter(self):
        # The only branch's F-count IS the unknown iteration count:
        # no sum rule can recover it, so a counter must survive.
        program, smart, _ = plans_for(
            [
                "K = 0",
                "10 K = K + 1",
                "IF (K .GT. 5) GOTO 20",
                "GOTO 10",
                "20 CONTINUE",
            ]
        )
        assert smart.n_counters >= 2


class TestOpt3DoBatching:
    def test_exit_free_do_loop_batched(self):
        program, smart, _ = plans_for(
            ["S = 0.0", "DO 10 I = 1, K", "S = S + 1.0", "10 CONTINUE"]
        )
        assert len(smart.batch_counters) == 1

    def test_constant_trip_no_counter_at_all(self):
        program, smart, _ = plans_for(
            ["S = 0.0", "DO 10 I = 1, 8", "S = S + 1.0", "10 CONTINUE"]
        )
        assert smart.batch_counters == {}
        assert smart.n_counters == 1  # invocation only

    def test_parameter_trip_counts_as_constant(self):
        program, smart, _ = plans_for(
            ["PARAMETER (N = 8)", "DO 10 I = 1, N", "S = S + 1.0",
             "10 CONTINUE"]
        )
        assert smart.n_counters == 1

    def test_loop_with_exit_not_batched(self):
        program, smart, _ = plans_for(
            [
                "DO 10 I = 1, K",
                "IF (RAND() .LT. 0.1) GOTO 20",
                "S = S + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        assert smart.batch_counters == {}

    def test_batching_disabled(self):
        program, smart, _ = plans_for(
            ["DO 10 I = 1, K", "S = S + 1.0", "10 CONTINUE"],
            enable_do_batch=False,
        )
        assert smart.batch_counters == {}

    def test_while_loop_not_batched(self):
        program, smart, _ = plans_for(
            ["K = 5", "DO WHILE (K .GT. 0)", "K = K - 1", "ENDDO"]
        )
        assert smart.batch_counters == {}


class TestNaivePlan:
    def test_one_counter_per_block(self):
        program, _, naive = plans_for(
            ["IF (RAND() .GT. 0.5) THEN", "Y = 1.0", "ELSE", "Y = 2.0",
             "ENDIF", "Z = 3.0"]
        )
        blocks = basic_blocks(program.cfgs["MAIN"])
        assert naive.n_counters == len(blocks)

    def test_straightline_do_batched(self):
        program, _, naive = plans_for(
            ["DO 10 I = 1, 5", "S = S + 1.0", "10 CONTINUE"]
        )
        assert len(naive.batch_counters) == 1
        # test block and body block are both batched: 2 adds per entry
        assert len(naive.batch_counters[next(iter(naive.batch_counters))]) == 2

    def test_branchy_do_not_batched(self):
        program, _, naive = plans_for(
            ["DO 10 I = 1, 5", "IF (RAND() .GT. 0.5) S = S + 1.0",
             "10 CONTINUE"]
        )
        assert naive.batch_counters == {}

    def test_do_opt_can_be_disabled(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 5\nS = S + 1.0\n10 CONTINUE\nEND\n"
        )
        program = compile_source(source)
        naive = naive_plan(
            program.checked, program.cfgs["MAIN"], straightline_do_opt=False
        )
        assert naive.batch_counters == {}

    def test_smart_never_more_counters_than_naive(self):
        from repro.workloads.livermore import livermore_source

        program = compile_source(livermore_source(n=24, n2=4))
        for name in program.cfgs:
            smart = smart_plan(
                program.checked, program.cfgs[name], program.fcdgs[name]
            )
            naive = naive_plan(program.checked, program.cfgs[name])
            assert smart.n_counters <= naive.n_counters, name
