"""Unit tests for the plan executor and loop-moment recorder."""

import pytest

from repro import compile_source, run_program, smart_program_plan
from repro.costs import SCALAR_MACHINE
from repro.profiling import PlanExecutor
from repro.profiling.runtime import HookChain, LoopMomentRecorder


def program_with_loop(n="8"):
    return compile_source(
        "PROGRAM MAIN\n"
        f"N = {n}\n"
        "DO 10 I = 1, N\n"
        "IF (RAND() .GT. 0.5) X = X + 1.0\n"
        "10 CONTINUE\n"
        "END\n"
    )


class TestPlanExecutor:
    def test_counters_accumulate_across_runs(self):
        program = program_with_loop()
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        run_program(program, hooks=executor, seed=1)
        first_total = sum(executor.counters["MAIN"])
        run_program(program, hooks=executor, seed=2)
        assert sum(executor.counters["MAIN"]) > first_total

    def test_reset_clears_counters(self):
        program = program_with_loop()
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        run_program(program, hooks=executor)
        executor.reset()
        assert all(v == 0.0 for v in executor.counters["MAIN"])

    def test_update_count_matches_result(self):
        program = program_with_loop()
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        result = run_program(program, hooks=executor)
        assert result.counter_ops == executor.updates

    def test_counter_cost_charged(self):
        program = program_with_loop()
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        result = run_program(program, hooks=executor, model=SCALAR_MACHINE)
        assert result.counter_cost == (
            result.counter_ops * SCALAR_MACHINE.counter_update
        )
        assert result.cost_with_profiling == (
            result.total_cost + result.counter_cost
        )

    def test_batched_counter_single_update_per_entry(self):
        # Constant-trip loop has no counters; variable-trip exit-free
        # loop batches one add per entry.
        program = compile_source(
            "PROGRAM MAIN\nN = INT(INPUT(1))\nDO 10 I = 1, N\nX = X + 1.0\n"
            "10 CONTINUE\nEND\n"
        )
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        run_program(program, hooks=executor, inputs=(50.0,))
        # invocation + batched header: 2 updates, not ~50.
        assert executor.updates == 2


class TestLoopMomentRecorder:
    def test_records_entries_and_sumsq(self):
        program = compile_source(
            "PROGRAM MAIN\n"
            "DO 20 J = 1, 3\n"
            "N = J * 2\n"
            "DO 10 I = 1, N\n"
            "X = X + 1.0\n"
            "10 CONTINUE\n"
            "20 CONTINUE\n"
            "END\n"
        )
        recorder = LoopMomentRecorder(program.ecfgs)
        run_program(program, hooks=recorder)
        inner_headers = [
            h
            for h, entries in recorder.entries["MAIN"].items()
            if entries == 3.0
        ]
        assert len(inner_headers) == 1
        inner = inner_headers[0]
        # header executions per entry: trips+1 = 3, 5, 7
        assert recorder.sumsq["MAIN"][inner] == 9.0 + 25.0 + 49.0

    def test_outer_loop_single_entry(self):
        program = program_with_loop()
        recorder = LoopMomentRecorder(program.ecfgs)
        run_program(program, hooks=recorder)
        (header,) = recorder.entries["MAIN"]
        assert recorder.entries["MAIN"][header] == 1.0
        assert recorder.sumsq["MAIN"][header] == 81.0  # (8+1)^2

    def test_hook_chain_combines(self):
        program = program_with_loop()
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        recorder = LoopMomentRecorder(program.ecfgs)
        chain = HookChain(executor, recorder)
        result = run_program(program, hooks=chain)
        assert result.counter_ops == executor.updates
        assert sum(recorder.entries["MAIN"].values()) == 1.0
