"""Unit tests for the profile data model and the program database."""

import pytest

from repro.errors import ProfilingError
from repro.profiling.database import (
    ProcedureProfile,
    ProfileDatabase,
    ProgramProfile,
)


def make_profile(invocations=1.0, branch=((3, "T", 5.0),), headers=((2, 10.0),)):
    proc = ProcedureProfile("MAIN")
    proc.invocations = invocations
    for node, label, value in branch:
        proc.branch_counts[(node, label)] = value
    for node, value in headers:
        proc.header_counts[node] = value
    profile = ProgramProfile(runs=1)
    profile.procedures["MAIN"] = proc
    return profile


class TestMerge:
    def test_merge_accumulates_counts(self):
        a = make_profile()
        b = make_profile(invocations=2.0, branch=((3, "T", 7.0),))
        a.merge(b)
        main = a.proc("MAIN")
        assert main.invocations == 3.0
        assert main.branch_counts[(3, "T")] == 12.0
        assert a.runs == 2

    def test_merge_new_keys(self):
        a = make_profile()
        b = make_profile(branch=((4, "F", 2.0),))
        a.merge(b)
        assert a.proc("MAIN").branch_counts[(4, "F")] == 2.0

    def test_merge_wrong_procedure_rejected(self):
        a = ProcedureProfile("A")
        b = ProcedureProfile("B")
        with pytest.raises(ProfilingError):
            a.merge(b)

    def test_loop_moments_accumulate(self):
        a = make_profile()
        a.proc("MAIN").loop_sumsq[2] = 100.0
        a.proc("MAIN").loop_entries[2] = 1.0
        b = make_profile()
        b.proc("MAIN").loop_sumsq[2] = 44.0
        b.proc("MAIN").loop_entries[2] = 2.0
        a.merge(b)
        assert a.proc("MAIN").loop_sumsq[2] == 144.0
        assert a.proc("MAIN").loop_freq_second_moment(2) == 48.0

    def test_second_moment_missing_returns_none(self):
        profile = make_profile()
        assert profile.proc("MAIN").loop_freq_second_moment(99) is None


class TestSerialization:
    def test_roundtrip(self):
        profile = make_profile()
        profile.proc("MAIN").loop_sumsq[2] = 9.0
        profile.proc("MAIN").loop_entries[2] = 3.0
        restored = ProgramProfile.from_dict(profile.to_dict())
        assert restored.runs == profile.runs
        assert restored.proc("MAIN").branch_counts == (
            profile.proc("MAIN").branch_counts
        )
        assert restored.proc("MAIN").header_counts == (
            profile.proc("MAIN").header_counts
        )
        assert restored.proc("MAIN").loop_sumsq == {2: 9.0}

    def test_keys_are_rebuilt_as_tuples(self):
        restored = ProgramProfile.from_dict(make_profile().to_dict())
        assert (3, "T") in restored.proc("MAIN").branch_counts


class TestDatabase:
    def test_record_and_lookup(self, tmp_path):
        db = ProfileDatabase(tmp_path / "profiles.json")
        db.record("prog1", make_profile())
        assert db.lookup("prog1").proc("MAIN").invocations == 1.0
        assert db.lookup("other") is None

    def test_record_accumulates(self, tmp_path):
        db = ProfileDatabase(tmp_path / "profiles.json")
        db.record("prog1", make_profile())
        db.record("prog1", make_profile())
        assert db.lookup("prog1").runs == 2
        assert db.lookup("prog1").proc("MAIN").branch_counts[(3, "T")] == 10.0

    def test_persistence_across_instances(self, tmp_path):
        path = tmp_path / "profiles.json"
        db = ProfileDatabase(path)
        db.record("prog1", make_profile())
        db.save()
        db2 = ProfileDatabase(path)
        assert db2.keys() == ["prog1"]
        assert db2.lookup("prog1").proc("MAIN").invocations == 1.0

    def test_save_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "profiles.json"
        db = ProfileDatabase(path)
        db.record("p", make_profile())
        db.save()
        assert path.exists()
