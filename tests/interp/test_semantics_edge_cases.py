"""Edge-case interpreter semantics (coercions, formatting, loops)."""

import pytest

from repro import compile_source, run_program
from repro.errors import InterpreterError


def outputs_of(body_lines, extra="", **kwargs):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n" + extra
    return run_program(compile_source(source), **kwargs).outputs


class TestCoercion:
    def test_real_to_int_truncates_negative_toward_zero(self):
        assert outputs_of(["I = -2.9", "PRINT *, I"]) == ["-2"]

    def test_int_stored_in_real_prints_clean(self):
        assert outputs_of(["X = 7", "PRINT *, X"]) == ["7"]

    def test_array_store_coerces(self):
        assert outputs_of(
            ["INTEGER A(2)", "A(1) = 3.7", "PRINT *, A(1)"]
        ) == ["3"]

    def test_logical_print(self):
        assert outputs_of(
            ["LOGICAL L", "L = 1 .GT. 0", "PRINT *, L"]
        ) == ["T"]
        assert outputs_of(
            ["LOGICAL L", "L = 1 .LT. 0", "PRINT *, L"]
        ) == ["F"]

    def test_float_formatting_six_significant(self):
        assert outputs_of(["X = 1.0 / 3.0", "PRINT *, X"]) == ["0.333333"]

    def test_string_printed_verbatim(self):
        assert outputs_of(["PRINT *, 'A B  C'"]) == ["A B  C"]

    def test_multiple_print_items_space_separated(self):
        assert outputs_of(["PRINT *, 1, 2.5, 'X'"]) == ["1 2.5 X"]


class TestLoopSemantics:
    def test_loop_variable_after_zero_trip(self):
        # var is set to start even when the body never runs.
        assert outputs_of(
            ["DO 10 I = 5, 1", "X = 1.0", "10 CONTINUE", "PRINT *, I"]
        ) == ["5"]

    def test_real_loop_variable(self):
        assert outputs_of(
            ["J = 0", "DO 10 X = 0.5, 2.5, 0.5", "J = J + 1",
             "10 CONTINUE", "PRINT *, J, X"]
        ) == ["5 3"]

    def test_loop_var_writable_in_body_without_affecting_trip(self):
        # trip count is fixed at entry (Fortran), even if the body
        # scribbles on the index.
        assert outputs_of(
            ["J = 0", "DO 10 I = 1, 4", "I = 99", "J = J + 1",
             "10 CONTINUE", "PRINT *, J"]
        ) == ["4"]

    def test_zero_step_rejected(self):
        with pytest.raises(InterpreterError):
            outputs_of(["DO 10 I = 1, 5, 0", "X = 1.0", "10 CONTINUE"])

    def test_nested_while_counts(self):
        assert outputs_of(
            [
                "K = 0",
                "I = 3",
                "DO WHILE (I .GT. 0)",
                "J = 2",
                "DO WHILE (J .GT. 0)",
                "K = K + 1",
                "J = J - 1",
                "ENDDO",
                "I = I - 1",
                "ENDDO",
                "PRINT *, K",
            ]
        ) == ["6"]

    def test_goto_cycle_to_do_terminator(self):
        # jumping to the terminator CONTINUE acts like Fortran CYCLE.
        assert outputs_of(
            [
                "K = 0",
                "DO 10 I = 1, 6",
                "IF (MOD(I, 2) .EQ. 0) GOTO 10",
                "K = K + 1",
                "10 CONTINUE",
                "PRINT *, K",
            ]
        ) == ["3"]


class TestProcedureSemantics:
    def test_function_result_coerced_to_declared_type(self):
        extra = "INTEGER FUNCTION IHALF(X)\nIHALF = X / 2.0\nEND\n"
        assert outputs_of(["PRINT *, IHALF(7.0)"], extra=extra) == ["3"]

    def test_two_d_array_through_call(self):
        extra = (
            "SUBROUTINE FILL2(M, N)\nREAL M(1, 1)\nINTEGER N, I, J\n"
            "DO 20 J = 1, N\nDO 10 I = 1, N\nM(I, J) = REAL(I * 10 + J)\n"
            "10 CONTINUE\n20 CONTINUE\nEND\n"
        )
        assert outputs_of(
            ["REAL M(3, 3)", "CALL FILL2(M, 3)", "PRINT *, M(2, 3)"],
            extra=extra,
        ) == ["23"]

    def test_min_max_multi_arg(self):
        assert outputs_of(["PRINT *, MIN(4, 1, 3), MAX(4, 1, 3)"]) == ["1 4"]

    def test_function_may_call_subroutine(self):
        extra = (
            "FUNCTION F(X)\nT = X\nCALL DOUBLE(T)\nF = T\nEND\n"
            "SUBROUTINE DOUBLE(V)\nV = V * 2.0\nEND\n"
        )
        assert outputs_of(["PRINT *, F(5.0)"], extra=extra) == ["10"]

    def test_deep_call_chain(self):
        extra = "".join(
            f"FUNCTION F{i}(X)\nF{i} = F{i + 1}(X) + 1.0\nEND\n"
            for i in range(1, 5)
        ) + "FUNCTION F5(X)\nF5 = X\nEND\n"
        assert outputs_of(["PRINT *, F1(0.0)"], extra=extra) == ["4"]

    def test_recursion_depth_limit(self):
        extra = (
            "INTEGER FUNCTION R(N)\nINTEGER N\nR = R(N + 1)\nEND\n"
        )
        with pytest.raises(InterpreterError, match="depth"):
            outputs_of(["PRINT *, R(0)"], extra=extra)
