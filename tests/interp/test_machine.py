"""Integration-style unit tests for the CFG interpreter."""

import pytest

from repro import compile_source, run_program
from repro.errors import InterpreterError, InterpreterLimitError
from repro.costs import SCALAR_MACHINE


def outputs_of(body_lines, extra="", **kwargs):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n" + extra
    return run_program(compile_source(source), **kwargs).outputs


class TestArithmetic:
    def test_integer_arithmetic(self):
        assert outputs_of(["I = 7 + 3 * 2", "PRINT *, I"]) == ["13"]

    def test_integer_division_truncates_toward_zero(self):
        assert outputs_of(["I = 7 / 2", "PRINT *, I"]) == ["3"]
        assert outputs_of(["I = (0 - 7) / 2", "PRINT *, I"]) == ["-3"]

    def test_real_arithmetic(self):
        assert outputs_of(["X = 1.5 * 4.0", "PRINT *, X"]) == ["6"]

    def test_mixed_promotes_to_real(self):
        assert outputs_of(["X = 3 / 2.0", "PRINT *, X"]) == ["1.5"]

    def test_power_integer(self):
        assert outputs_of(["I = 2 ** 10", "PRINT *, I"]) == ["1024"]

    def test_power_negative_integer_exponent_truncates(self):
        assert outputs_of(["I = 2 ** (-1)", "PRINT *, I"]) == ["0"]

    def test_unary_minus(self):
        assert outputs_of(["I = -3 + 1", "PRINT *, I"]) == ["-2"]

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            outputs_of(["I = 0", "J = 1 / I"])

    def test_comparison_chain(self):
        assert outputs_of(
            ["I = 3", "IF (I .GE. 2 .AND. I .LT. 4) PRINT *, 'Y'"]
        ) == ["Y"]

    def test_logical_short_circuit_and(self):
        # the second operand would divide by zero if evaluated
        assert outputs_of(
            ["I = 0", "IF (I .GT. 0 .AND. 1 / I .GT. 0) PRINT *, 'A'",
             "PRINT *, 'DONE'"]
        ) == ["DONE"]

    def test_assignment_coerces_to_target(self):
        assert outputs_of(["I = 2.9", "PRINT *, I"]) == ["2"]


class TestControlFlow:
    def test_if_else(self):
        assert outputs_of(
            ["I = 5", "IF (I .GT. 3) THEN", "PRINT *, 'BIG'",
             "ELSE", "PRINT *, 'SMALL'", "ENDIF"]
        ) == ["BIG"]

    def test_elseif_selection(self):
        body = [
            "I = 2",
            "IF (I .EQ. 1) THEN",
            "PRINT *, 'ONE'",
            "ELSEIF (I .EQ. 2) THEN",
            "PRINT *, 'TWO'",
            "ELSE",
            "PRINT *, 'MANY'",
            "ENDIF",
        ]
        assert outputs_of(body) == ["TWO"]

    def test_do_loop_trip_count(self):
        assert outputs_of(
            ["J = 0", "DO 10 I = 1, 5", "J = J + I", "10 CONTINUE",
             "PRINT *, J, I"]
        ) == ["15 6"]

    def test_do_loop_with_step(self):
        assert outputs_of(
            ["J = 0", "DO 10 I = 1, 10, 3", "J = J + 1", "10 CONTINUE",
             "PRINT *, J"]
        ) == ["4"]

    def test_do_loop_negative_step(self):
        assert outputs_of(
            ["J = 0", "DO 10 I = 5, 1, -1", "J = J + I", "10 CONTINUE",
             "PRINT *, J"]
        ) == ["15"]

    def test_zero_trip_loop_body_skipped(self):
        assert outputs_of(
            ["J = 0", "DO 10 I = 5, 1", "J = J + 1", "10 CONTINUE",
             "PRINT *, J"]
        ) == ["0"]

    def test_do_bounds_evaluated_once(self):
        assert outputs_of(
            ["N = 3", "J = 0", "DO 10 I = 1, N", "N = 100", "J = J + 1",
             "10 CONTINUE", "PRINT *, J"]
        ) == ["3"]

    def test_do_while(self):
        assert outputs_of(
            ["I = 3", "J = 0", "DO WHILE (I .GT. 0)", "I = I - 1",
             "J = J + 1", "ENDDO", "PRINT *, J"]
        ) == ["3"]

    def test_goto_loop(self):
        assert outputs_of(
            ["I = 0", "10 I = I + 1", "IF (I .LT. 4) GOTO 10", "PRINT *, I"]
        ) == ["4"]

    def test_computed_goto_dispatch(self):
        body = [
            "K = 2",
            "GOTO (10, 20, 30), K",
            "PRINT *, 'FALL'",
            "GOTO 40",
            "10 PRINT *, 'ONE'",
            "GOTO 40",
            "20 PRINT *, 'TWO'",
            "GOTO 40",
            "30 PRINT *, 'THREE'",
            "40 CONTINUE",
        ]
        assert outputs_of(body) == ["TWO"]

    def test_computed_goto_out_of_range_falls_through(self):
        body = [
            "K = 9",
            "GOTO (10, 20), K",
            "PRINT *, 'FALL'",
            "GOTO 40",
            "10 PRINT *, 'ONE'",
            "GOTO 40",
            "20 PRINT *, 'TWO'",
            "40 CONTINUE",
        ]
        assert outputs_of(body) == ["FALL"]

    def test_stop_halts_program(self):
        source = (
            "PROGRAM MAIN\nPRINT *, 'A'\nSTOP\nPRINT *, 'B'\nEND\n"
        )
        result = run_program(compile_source(source))
        assert result.outputs == ["A"]
        assert result.halted == "stop"

    def test_step_limit_enforced(self):
        source = "PROGRAM MAIN\nDO 10 I = 1, 100000\nX = X + 1.0\n10 CONTINUE\nEND\n"
        with pytest.raises(InterpreterLimitError):
            run_program(compile_source(source), max_steps=100)


class TestProceduresAndArgs:
    def test_scalar_passed_by_reference(self):
        extra = "SUBROUTINE BUMP(I)\nINTEGER I\nI = I + 1\nEND\n"
        assert outputs_of(
            ["I = 5", "CALL BUMP(I)", "PRINT *, I"], extra=extra
        ) == ["6"]

    def test_expression_arg_not_aliased(self):
        extra = "SUBROUTINE BUMP(I)\nINTEGER I\nI = I + 1\nEND\n"
        assert outputs_of(
            ["I = 5", "CALL BUMP(I + 0)", "PRINT *, I"], extra=extra
        ) == ["5"]

    def test_array_element_by_reference(self):
        extra = "SUBROUTINE BUMP(X)\nX = X + 1.0\nEND\n"
        assert outputs_of(
            ["REAL A(3)", "A(2) = 1.0", "CALL BUMP(A(2))", "PRINT *, A(2)"],
            extra=extra,
        ) == ["2"]

    def test_whole_array_by_reference(self):
        extra = (
            "SUBROUTINE FILL(A, N)\nREAL A(1)\nINTEGER N, I\n"
            "DO 10 I = 1, N\nA(I) = REAL(I)\n10 CONTINUE\nEND\n"
        )
        assert outputs_of(
            ["REAL A(4)", "CALL FILL(A, 4)", "PRINT *, A(1) + A(4)"],
            extra=extra,
        ) == ["5"]

    def test_function_returns_value(self):
        extra = "INTEGER FUNCTION DBL(I)\nINTEGER I\nDBL = 2 * I\nEND\n"
        assert outputs_of(["PRINT *, DBL(21)"], extra=extra) == ["42"]

    def test_function_called_in_condition(self):
        extra = "FUNCTION HALF(X)\nHALF = X / 2.0\nEND\n"
        assert outputs_of(
            ["IF (HALF(4.0) .GT. 1.0) PRINT *, 'Y'"], extra=extra
        ) == ["Y"]

    def test_recursion_works(self):
        extra = (
            "INTEGER FUNCTION FACT(N)\nINTEGER N\n"
            "IF (N .LE. 1) THEN\nFACT = 1\nELSE\nFACT = N * FACT(N - 1)\n"
            "ENDIF\nEND\n"
        )
        assert outputs_of(["PRINT *, FACT(6)"], extra=extra) == ["720"]

    def test_call_counts_recorded(self):
        extra = "SUBROUTINE NOP(X)\nY = X\nEND\n"
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 7\nCALL NOP(1.0)\n10 CONTINUE\nEND\n"
            + extra
        )
        result = run_program(compile_source(source))
        assert result.call_counts["NOP"] == 7
        assert result.call_counts["MAIN"] == 1

    def test_constant_passed_as_argument(self):
        extra = "SUBROUTINE SHOW(N)\nINTEGER N\nPRINT *, N\nEND\n"
        assert outputs_of(
            ["PARAMETER (N = 42)", "CALL SHOW(N)"], extra=extra
        ) == ["42"]


class TestCounts:
    def test_edge_counts_sum_matches_steps(self):
        source = (
            "PROGRAM MAIN\nJ = 0\nDO 10 I = 1, 4\nJ = J + I\n10 CONTINUE\n"
            "PRINT *, J\nEND\n"
        )
        result = run_program(compile_source(source))
        node_total = sum(result.node_counts["MAIN"].values())
        assert node_total == result.steps

    def test_cost_charged_per_execution(self):
        source = "PROGRAM MAIN\nX = 1.0\nX = 2.0\nEND\n"
        program = compile_source(source)
        result = run_program(program, model=SCALAR_MACHINE)
        # two assignments: const + store each
        expected = 2 * (SCALAR_MACHINE.const + SCALAR_MACHINE.store)
        assert result.total_cost == expected

    def test_deterministic_seeded_rand(self):
        body = ["X = RAND()", "PRINT *, X"]
        assert outputs_of(body, seed=7) == outputs_of(body, seed=7)
        assert outputs_of(body, seed=7) != outputs_of(body, seed=8)

    def test_inputs_read(self):
        assert outputs_of(
            ["PRINT *, INPUT(1) + INPUT(2)"], inputs=(2.0, 3.0)
        ) == ["5"]

    def test_missing_input_raises(self):
        with pytest.raises(InterpreterError):
            outputs_of(["X = INPUT(3)"], inputs=(1.0,))
