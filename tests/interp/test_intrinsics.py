"""Unit tests for intrinsic functions."""

import math

import pytest

from repro.errors import InterpreterError
from repro.interp.intrinsics import IntrinsicRuntime


@pytest.fixture
def rt():
    return IntrinsicRuntime(seed=1, inputs=(1.5, 2.5))


class TestNumeric:
    def test_mod_positive(self, rt):
        assert rt.call("MOD", [7, 3]) == 1

    def test_mod_sign_of_dividend(self, rt):
        assert rt.call("MOD", [-7, 3]) == -1
        assert rt.call("MOD", [7, -3]) == 1

    def test_mod_real(self, rt):
        assert rt.call("MOD", [7.5, 2.0]) == pytest.approx(1.5)

    def test_mod_zero_divisor_raises(self, rt):
        with pytest.raises(InterpreterError):
            rt.call("MOD", [1, 0])

    def test_min_max(self, rt):
        assert rt.call("MIN", [3, 1, 2]) == 1
        assert rt.call("MAX", [3, 1, 2]) == 3

    def test_abs(self, rt):
        assert rt.call("ABS", [-4.5]) == 4.5

    def test_sign(self, rt):
        assert rt.call("SIGN", [3, -1]) == -3
        assert rt.call("SIGN", [-3, 2]) == 3
        assert rt.call("SIGN", [3, 0]) == 3

    def test_sqrt(self, rt):
        assert rt.call("SQRT", [9.0]) == 3.0

    def test_sqrt_negative_raises(self, rt):
        with pytest.raises(InterpreterError):
            rt.call("SQRT", [-1.0])

    def test_exp_log_roundtrip(self, rt):
        assert rt.call("LOG", [rt.call("EXP", [2.0])]) == pytest.approx(2.0)

    def test_log_nonpositive_raises(self, rt):
        with pytest.raises(InterpreterError):
            rt.call("LOG", [0.0])

    def test_trig(self, rt):
        assert rt.call("SIN", [0.0]) == 0.0
        assert rt.call("COS", [0.0]) == 1.0
        assert rt.call("ATAN", [1.0]) == pytest.approx(math.pi / 4)

    def test_int_truncates(self, rt):
        assert rt.call("INT", [2.9]) == 2
        assert rt.call("INT", [-2.9]) == -2

    def test_nint_rounds(self, rt):
        assert rt.call("NINT", [2.6]) == 3

    def test_real_float(self, rt):
        assert rt.call("REAL", [3]) == 3.0
        assert rt.call("FLOAT", [3]) == 3.0


class TestRuntimeSources:
    def test_irand_in_range(self, rt):
        for _ in range(50):
            value = rt.call("IRAND", [2, 5])
            assert 2 <= value <= 5

    def test_irand_empty_range_raises(self, rt):
        with pytest.raises(InterpreterError):
            rt.call("IRAND", [5, 2])

    def test_rand_in_unit_interval(self, rt):
        for _ in range(50):
            assert 0.0 <= rt.call("RAND", []) < 1.0

    def test_seed_determinism(self):
        a = IntrinsicRuntime(seed=42)
        b = IntrinsicRuntime(seed=42)
        assert [a.call("RAND", []) for _ in range(5)] == [
            b.call("RAND", []) for _ in range(5)
        ]

    def test_input_one_based(self, rt):
        assert rt.call("INPUT", [1]) == 1.5
        assert rt.call("INPUT", [2]) == 2.5

    def test_input_out_of_range_raises(self, rt):
        with pytest.raises(InterpreterError):
            rt.call("INPUT", [0])

    def test_unknown_intrinsic_raises(self, rt):
        with pytest.raises(InterpreterError):
            rt.call("FROB", [1])
