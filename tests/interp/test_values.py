"""Unit tests for runtime values."""

import pytest

from repro.errors import InterpreterError
from repro.lang import ast
from repro.interp.values import Cell, ElementRef, FortranArray, coerce


class TestFortranArray:
    def test_initialized_to_zero(self):
        arr = FortranArray("A", ast.Type.REAL, (5,))
        assert arr.get((3,)) == 0.0

    def test_integer_array_zero(self):
        arr = FortranArray("I", ast.Type.INTEGER, (4,))
        assert arr.get((1,)) == 0

    def test_one_based_indexing(self):
        arr = FortranArray("A", ast.Type.REAL, (3,))
        arr.set((1,), 1.5)
        arr.set((3,), 3.5)
        assert arr.data[0] == 1.5
        assert arr.data[2] == 3.5

    def test_bounds_checked_low(self):
        arr = FortranArray("A", ast.Type.REAL, (3,))
        with pytest.raises(InterpreterError):
            arr.get((0,))

    def test_bounds_checked_high(self):
        arr = FortranArray("A", ast.Type.REAL, (3,))
        with pytest.raises(InterpreterError):
            arr.set((4,), 1.0)

    def test_two_dimensional(self):
        arr = FortranArray("A", ast.Type.REAL, (3, 4))
        arr.set((2, 3), 9.0)
        assert arr.get((2, 3)) == 9.0
        assert len(arr) == 12

    def test_column_major_layout(self):
        arr = FortranArray("A", ast.Type.REAL, (2, 2))
        arr.set((2, 1), 5.0)
        assert arr.data[1] == 5.0

    def test_wrong_subscript_count(self):
        arr = FortranArray("A", ast.Type.REAL, (2, 2))
        with pytest.raises(InterpreterError):
            arr.get((1,))

    def test_values_coerced_on_store(self):
        arr = FortranArray("I", ast.Type.INTEGER, (2,))
        arr.set((1,), 3.9)
        assert arr.get((1,)) == 3

    def test_fill(self):
        arr = FortranArray("A", ast.Type.REAL, (3,))
        arr.fill(2)
        assert arr.data == [2.0, 2.0, 2.0]


class TestCellAndRef:
    def test_cell_default_values(self):
        assert Cell(ast.Type.INTEGER).value == 0
        assert Cell(ast.Type.REAL).value == 0.0
        assert Cell(ast.Type.LOGICAL).value is False

    def test_cell_coerces(self):
        cell = Cell(ast.Type.INTEGER)
        cell.set(7.8)
        assert cell.value == 7

    def test_element_ref_reads_and_writes_through(self):
        arr = FortranArray("A", ast.Type.REAL, (3,))
        ref = ElementRef(arr, (2,))
        ref.set(4)
        assert arr.get((2,)) == 4.0
        assert ref.value == 4.0

    def test_element_ref_type(self):
        arr = FortranArray("I", ast.Type.INTEGER, (3,))
        assert ElementRef(arr, (1,)).type is ast.Type.INTEGER


class TestCoerce:
    def test_real_to_integer_truncates_toward_zero(self):
        assert coerce(2.9, ast.Type.INTEGER, None) == 2
        assert coerce(-2.9, ast.Type.INTEGER, None) == -2

    def test_integer_to_real(self):
        value = coerce(3, ast.Type.REAL, None)
        assert value == 3.0
        assert isinstance(value, float)

    def test_bool_to_number_rejected(self):
        with pytest.raises(InterpreterError):
            coerce(True, ast.Type.INTEGER, None)
        with pytest.raises(InterpreterError):
            coerce(False, ast.Type.REAL, None)

    def test_number_to_logical_rejected(self):
        with pytest.raises(InterpreterError):
            coerce(1, ast.Type.LOGICAL, None)

    def test_logical_roundtrip(self):
        assert coerce(True, ast.Type.LOGICAL, None) is True
