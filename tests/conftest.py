"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import compile_source


def compile_main(body_lines):
    """Compile a PROGRAM MAIN wrapping the given body lines."""
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n"
    return compile_source(source)


@pytest.fixture
def paper_program():
    """The compiled Figure-1 program."""
    from repro.workloads.paper_example import paper_program as build

    return build()
