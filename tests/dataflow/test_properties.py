"""Property tests: fixpoint convergence over the whole corpus.

Satellite requirement: all four analyses must reach a fixpoint within
the solver's monotone visit budget on every builtin workload and 50
seeded generator programs.  ``Solution.visits``/``Solution.limit``
expose the budget, so a lattice that stops being monotone (or a
widening that stops widening) fails here rather than hanging CI.
"""

import pytest

from repro import compile_source
from repro.dataflow import analyze_procedure, param_summaries
from repro.workloads import builtin_sources
from repro.workloads.generators import ProgramGenerator

pytestmark = pytest.mark.dataflow

N_GENERATED = 50

_CACHE: dict[object, object] = {}


def _program(key, source):
    if key not in _CACHE:
        _CACHE[key] = compile_source(source)
    return _CACHE[key]


def _assert_fixpoints(program):
    summaries = param_summaries(program.checked)
    for name, cfg in program.cfgs.items():
        df = analyze_procedure(
            program.checked, name, cfg, summaries=summaries
        )
        for label, solution in (
            ("reaching", df.reaching),
            ("liveness", df.liveness),
            ("ranges", df.ranges),
        ):
            assert solution.visits <= solution.limit, (
                f"{name}: {label} used {solution.visits} visits "
                f"(budget {solution.limit})"
            )
            # The fixpoint covers the whole (pruned) CFG.
            assert set(solution.in_of) == set(cfg.nodes)
        # SCCP feasibility must keep at least one live out-edge per
        # executable branch: a totally infeasible branch is a solver
        # bug, not a program property.
        feasible = df.constants.feasible_edges
        for nid in df.constants.executable:
            labels = [e.label for e in cfg.edges if e.src == nid]
            if labels:
                assert any((nid, l) in feasible for l in labels), (
                    f"{name}: node {nid} executable but no feasible "
                    "out-edge"
                )


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_fixpoint(name):
    source = dict(builtin_sources())[name]
    _assert_fixpoints(_program(name, source))


@pytest.mark.parametrize("gen_seed", range(N_GENERATED))
def test_generated_fixpoint(gen_seed):
    source = ProgramGenerator(gen_seed).source()
    _assert_fixpoints(_program(gen_seed, source))
