"""The generic lattice/worklist solver: contract and guard rails."""

import pytest

from repro import compile_source
from repro.dataflow import DataflowProblem, FixpointDiverged, solve

pytestmark = pytest.mark.dataflow


LOOP = """\
      PROGRAM MAIN
      INTEGER I
      REAL S
      S = 0.0
      DO 10 I = 1, 5
        S = S + 1.0
10    CONTINUE
      PRINT *, S
      END
"""

DIAMOND = """\
      PROGRAM MAIN
      INTEGER N
      REAL X
      N = 1
      IF (N .GT. 0) THEN
        X = 1.0
      ELSE
        X = 2.0
      ENDIF
      PRINT *, X
      END
"""


def _cfg(source):
    program = compile_source(source)
    return program.cfgs[program.main_name]


class Reachability(DataflowProblem):
    """The simplest forward may-analysis: can control reach a node?"""

    direction = "forward"

    def boundary(self, cfg):
        return True

    def join(self, values):
        return any(values)

    def transfer(self, node, value):
        return value


class TestSolve:
    def test_forward_reachability_covers_all_nodes(self):
        cfg = _cfg(LOOP)
        solution = solve(cfg, Reachability())
        # prune_unreachable already ran, so every remaining node is
        # reachable and the entry boundary must flow everywhere.
        assert all(solution.in_of[n] for n in cfg.nodes)
        assert all(solution.out_of[n] for n in cfg.nodes)

    def test_visits_within_budget(self):
        cfg = _cfg(LOOP)
        solution = solve(cfg, Reachability())
        assert 0 < solution.visits <= solution.limit

    def test_unknown_corruption_rejected(self):
        cfg = _cfg(LOOP)
        with pytest.raises(ValueError):
            solve(cfg, Reachability(), corruption="no-such-defect")

    def test_backward_direction_runs(self):
        class ExitReachability(Reachability):
            direction = "backward"

        cfg = _cfg(DIAMOND)
        solution = solve(cfg, ExitReachability())
        assert all(solution.in_of[n] for n in cfg.nodes)


class TestDivergenceGuard:
    def test_non_monotone_transfer_is_caught(self):
        class Oscillating(DataflowProblem):
            """Alternates facts forever: must hit the visit bound."""

            direction = "forward"

            def boundary(self, cfg):
                return 0

            def join(self, values):
                return max(values)

            def transfer(self, node, value):
                return value + 1  # strictly ascending without bound

        cfg = _cfg(LOOP)
        with pytest.raises(FixpointDiverged):
            solve(cfg, Oscillating())

    def test_widening_restores_convergence(self):
        class Widened(DataflowProblem):
            direction = "forward"
            widen_after = 2

            def boundary(self, cfg):
                return 0

            def join(self, values):
                return max(values)

            def transfer(self, node, value):
                return value + 1 if value < 10**6 else value

            def widen(self, old, new):
                return 10**6  # jump straight to top

        cfg = _cfg(LOOP)
        solution = solve(cfg, Widened())
        assert solution.visits <= solution.limit
