"""Mutation-kill suite for the dataflow solver and transfer functions.

Mirrors the PR-2 (checker) / PR-6 (codegen) pattern: every corruption
the framework can seed — wrong join, dropped back edge, stale
worklist, disabled widening, … — must visibly change an analysis
outcome on a purpose-built program.  A defect no test can observe is
a defect the production lints and the codegen optimizer would silently
inherit.
"""

import pytest

from repro import compile_source
from repro.dataflow import (
    ANALYSIS_CORRUPTIONS,
    SOLVER_CORRUPTIONS,
    FixpointDiverged,
    Liveness,
    ReachingDefinitions,
    ValueRanges,
    param_summaries,
    solve,
    solve_constants,
)
from repro.dataflow.usedef import all_node_facts
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.dataflow


#: A loop whose body defines X *after* reading it: the definition only
#: reaches the read along the back edge, and later iterations depend
#: on facts from earlier ones (kills drop-back-edge, stale-worklist,
#: wrong-direction).
LOOP_CARRIED = """\
      PROGRAM MAIN
      INTEGER I
      REAL X, Y
      DO 10 I = 1, 5
        Y = X + 1.0
        X = 1.0
10    CONTINUE
      PRINT *, Y
      END
"""

#: Both arms of an input-dependent branch define X with *different*
#: constants, and a second branch tests X after the merge (kills
#: first-pred-only and sccp-const-meet).
MERGE_THEN_BRANCH = """\
      PROGRAM MAIN
      REAL V, X
      V = INPUT(1)
      IF (V .GT. 0.0) THEN
        X = 1.0
      ELSE
        X = 2.0
      ENDIF
      IF (X .GT. 1.5) THEN
        PRINT *, X
      ENDIF
      END
"""

#: A subroutine whose parameter is defined at entry (kills
#: skip-boundary: without the boundary fact, A looks undefined).
PARAM_READ = """\
      PROGRAM MAIN
      REAL X
      X = 1.0
      CALL FOO(X)
      PRINT *, X
      END
      SUBROUTINE FOO(A)
      REAL A
      A = A + 1.0
      RETURN
      END
"""

#: `X = X + 1.0` both uses and kills X (kills live-kill-use and
#: rd-gen-drop).
SELF_INCREMENT = """\
      PROGRAM MAIN
      REAL X
      X = 1.0
      X = X + 1.0
      PRINT *, X
      END
"""


def _setup(source, proc=None):
    program = compile_source(source)
    name = proc or program.main_name
    cfg = program.cfgs[name]
    facts = all_node_facts(
        cfg, program.checked, name, param_summaries(program.checked)
    )
    return program, name, cfg, facts


def _solutions_differ(a, b) -> bool:
    return a.in_of != b.in_of or a.out_of != b.out_of


class TestCatalogues:
    def test_at_least_eight_corruptions(self):
        assert len(SOLVER_CORRUPTIONS) + len(ANALYSIS_CORRUPTIONS) >= 8

    def test_unknown_names_rejected(self):
        program, name, cfg, facts = _setup(SELF_INCREMENT)
        with pytest.raises(ValueError):
            solve(
                cfg,
                ReachingDefinitions(program.checked, name, facts),
                corruption="bogus",
            )
        with pytest.raises(ValueError):
            ReachingDefinitions(
                program.checked, name, facts, corruption="bogus"
            )


class TestSolverCorruptions:
    """Each seeded solver defect changes a reaching-defs fixpoint."""

    @pytest.mark.parametrize(
        "corruption", ["drop-back-edge", "stale-worklist", "wrong-direction"]
    )
    def test_loop_carried_facts(self, corruption):
        program, name, cfg, facts = _setup(LOOP_CARRIED)
        problem = ReachingDefinitions(program.checked, name, facts)
        clean = solve(cfg, problem)
        corrupted = solve(cfg, problem, corruption=corruption)
        assert _solutions_differ(clean, corrupted), corruption

    def test_first_pred_only_loses_one_arm(self):
        program, name, cfg, facts = _setup(MERGE_THEN_BRANCH)
        problem = ReachingDefinitions(program.checked, name, facts)
        clean = solve(cfg, problem)
        corrupted = solve(cfg, problem, corruption="first-pred-only")
        assert _solutions_differ(clean, corrupted)
        # The defect is specifically a lost definition site: some node
        # must see strictly fewer X-sites than the clean fixpoint.
        lost = [
            n
            for n in cfg.nodes
            if clean.in_of[n] is not None
            and corrupted.in_of[n] is not None
            and len(corrupted.in_of[n].get("X", ()))
            < len(clean.in_of[n].get("X", ()))
        ]
        assert lost

    def test_skip_boundary_forgets_parameters(self):
        program, name, cfg, facts = _setup(PARAM_READ, "FOO")
        problem = ReachingDefinitions(program.checked, name, facts)
        clean = solve(cfg, problem)
        corrupted = solve(cfg, problem, corruption="skip-boundary")
        assert _solutions_differ(clean, corrupted)
        entry_clean = clean.in_of[cfg.entry]
        entry_corrupt = corrupted.in_of[cfg.entry]
        assert "A" in entry_clean and "A" not in (entry_corrupt or {})


class TestAnalysisCorruptions:
    """Each seeded transfer-function defect is pinned to an outcome."""

    def test_sccp_const_meet_forces_a_live_branch(self):
        program, name, cfg, facts = _setup(MERGE_THEN_BRANCH)
        clean = solve_constants(program.checked, name, cfg, facts)
        corrupted = solve_constants(
            program.checked, name, cfg, facts, corruption="sccp-const-meet"
        )
        assert clean.forced == {}
        assert corrupted.forced  # a genuinely two-way branch got folded
        assert clean.feasible_edges != corrupted.feasible_edges

    def test_sccp_taken_flip_inverts_the_paper_branch(self):
        program, name, cfg, facts = _setup(PAPER_SOURCE, "MAIN")
        clean = solve_constants(program.checked, name, cfg, facts)
        corrupted = solve_constants(
            program.checked, name, cfg, facts, corruption="sccp-taken-flip"
        )
        assert set(clean.forced.values()) == {"T"}
        assert set(corrupted.forced.values()) == {"F"}

    def test_range_no_widen_diverges_on_a_loop(self):
        program, name, cfg, facts = _setup(LOOP_CARRIED)
        solve(cfg, ValueRanges(program.checked, name, facts, cfg))
        with pytest.raises(FixpointDiverged):
            solve(
                cfg,
                ValueRanges(
                    program.checked,
                    name,
                    facts,
                    cfg,
                    corruption="range-no-widen",
                ),
            )

    def test_live_kill_use_drops_the_rhs_read(self):
        program, name, cfg, facts = _setup(SELF_INCREMENT)
        clean = solve(cfg, Liveness(program.checked, name, facts, cfg))
        corrupted = solve(
            cfg,
            Liveness(
                program.checked, name, facts, cfg, corruption="live-kill-use"
            ),
        )
        assert _solutions_differ(clean, corrupted)
        inc = next(
            n
            for n, node in cfg.nodes.items()
            if node.text and "X = X + 1.0" in node.text
        )
        assert "X" in clean.in_of[inc]
        assert "X" not in corrupted.in_of[inc]

    def test_rd_gen_drop_loses_the_killing_store(self):
        program, name, cfg, facts = _setup(SELF_INCREMENT)
        problem = ReachingDefinitions(program.checked, name, facts)
        clean = solve(cfg, problem)
        corrupted = solve(
            cfg,
            ReachingDefinitions(
                program.checked, name, facts, corruption="rd-gen-drop"
            ),
        )
        assert _solutions_differ(clean, corrupted)
        print_node = next(
            n
            for n, node in cfg.nodes.items()
            if node.text and "PRINT" in node.text
        )
        assert clean.in_of[print_node]["X"]  # the store reaches the print
        assert not corrupted.in_of[print_node].get("X")
