"""The four production analyses on purpose-built programs."""

import math

import pytest

from repro import compile_source
from repro.dataflow import (
    ProcDataflow,
    analyze_procedure,
    param_summaries,
    trip_interval,
)
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.dataflow


def _analyze(source, proc=None) -> tuple[object, ProcDataflow]:
    program = compile_source(source)
    name = proc or program.main_name
    df = analyze_procedure(
        program.checked, name, program.cfgs[name],
        summaries=param_summaries(program.checked),
    )
    return program, df


def _node_by_text(cfg, fragment):
    hits = [
        nid for nid, node in cfg.nodes.items()
        if node.text and fragment in node.text
    ]
    assert len(hits) == 1, (fragment, hits)
    return hits[0]


class TestConstantPropagation:
    def test_paper_main_branch_is_forced(self):
        """The paper example's M stays 5, so `M .GE. 0` always takes T."""
        program, df = _analyze(PAPER_SOURCE, "MAIN")
        cfg = program.cfgs["MAIN"]
        forced_texts = {
            cfg.nodes[nid].text: label
            for nid, label in df.constants.forced.items()
        }
        assert forced_texts == {"IF (M .GE. 0)": "T"}

    def test_constants_meet_to_unknown(self):
        """X is 1 or 2 depending on input: no constant, nothing forced."""
        source = """\
      PROGRAM MAIN
      REAL V, X
      V = INPUT(1)
      IF (V .GT. 0.0) THEN
        X = 1.0
      ELSE
        X = 2.0
      ENDIF
      IF (X .GT. 1.5) THEN
        PRINT *, X
      ENDIF
      END
"""
        _program, df = _analyze(source)
        assert df.constants.forced == {}

    def test_infeasible_edges_excluded(self):
        source = """\
      PROGRAM MAIN
      INTEGER N
      REAL X
      N = 3
      IF (N .LT. 0) THEN
        X = 1.0
      ENDIF
      PRINT *, X
      END
"""
        program, df = _analyze(source)
        cfg = program.cfgs[program.main_name]
        branch = _node_by_text(cfg, "IF (N .LT. 0)")
        assert df.constants.forced[branch] == "F"
        assert (branch, "T") not in df.constants.feasible_edges
        assert (branch, "F") in df.constants.feasible_edges


class TestReachingDefinitions:
    def test_def_under_false_guard_does_not_reach(self):
        source = """\
      PROGRAM MAIN
      INTEGER N
      REAL X, Y
      N = 3
      IF (N .LT. 0) THEN
        X = 1.0
      ENDIF
      Y = X + 1.0
      PRINT *, Y
      END
"""
        program, df = _analyze(source)
        cfg = program.cfgs[program.main_name]
        read = _node_by_text(cfg, "Y = X + 1.0")
        assert "X" not in df.reaching.in_of[read]

    def test_defs_merge_across_live_branches(self):
        source = """\
      PROGRAM MAIN
      REAL V, X, Y
      V = INPUT(1)
      IF (V .GT. 0.0) THEN
        X = 1.0
      ELSE
        X = 2.0
      ENDIF
      Y = X + 1.0
      PRINT *, Y
      END
"""
        program, df = _analyze(source)
        cfg = program.cfgs[program.main_name]
        read = _node_by_text(cfg, "Y = X + 1.0")
        sites = df.reaching.in_of[read]["X"]
        assert len(sites) == 2  # both arms' stores reach the read


class TestLiveness:
    def test_dead_store_not_live(self):
        source = """\
      PROGRAM MAIN
      REAL X, Y
      X = 1.0
      X = 2.0
      Y = X + 1.0
      PRINT *, Y
      END
"""
        program, df = _analyze(source)
        cfg = program.cfgs[program.main_name]
        first = _node_by_text(cfg, "X = 1.0")
        second = _node_by_text(cfg, "X = 2.0")
        # After the first store X is immediately overwritten: dead.
        assert "X" not in df.liveness.out_of[first]
        assert "X" in df.liveness.out_of[second]

    def test_rhs_use_keeps_variable_live(self):
        source = """\
      PROGRAM MAIN
      REAL X
      X = 1.0
      X = X + 1.0
      PRINT *, X
      END
"""
        program, df = _analyze(source)
        cfg = program.cfgs[program.main_name]
        first = _node_by_text(cfg, "X = 1.0")
        assert "X" in df.liveness.out_of[first]


class TestValueRanges:
    def test_constant_do_trip_count(self):
        assert trip_interval((1, 1), (100, 100), (1, 1)) == (100, 100)

    def test_zero_straddling_step_is_unbounded(self):
        lo, hi = trip_interval((1, 1), (10, 10), (-1, 1))
        assert lo == 0 and math.isinf(hi)

    def test_negative_trip_clamps_to_zero(self):
        assert trip_interval((10, 10), (1, 1), (1, 1)) == (0, 0)

    def test_loop_index_interval(self):
        source = """\
      PROGRAM MAIN
      INTEGER I
      REAL S
      S = 0.0
      DO 10 I = 1, 100
        S = S + 1.0
10    CONTINUE
      PRINT *, S
      END
"""
        program, df = _analyze(source)
        cfg = program.cfgs[program.main_name]
        body = _node_by_text(cfg, "S = S + 1.0")
        lo, hi = df.ranges.in_of[body]["I"]
        # The lower bound is exact; the upper bound may be widened to
        # infinity inside the loop (trip counts come from
        # trip_interval over the DO bounds, not the body state).
        assert lo == 1 and hi >= 100


class TestAnalyzeProcedure:
    def test_every_solution_shares_the_node_set(self):
        program, df = _analyze(PAPER_SOURCE, "MAIN")
        nodes = set(program.cfgs["MAIN"].nodes)
        for solution in (df.reaching, df.liveness, df.ranges):
            assert set(solution.in_of) == nodes
            assert set(solution.out_of) == nodes
