"""Static [TIME_lo, TIME_hi] / VAR envelopes vs profiled ground truth."""

import math

import pytest

from repro import compile_source, profile_program, analyze
from repro.costs.model import SCALAR_MACHINE
from repro.dataflow import compute_static_bounds, format_endpoint
from repro.workloads import builtin_sources

pytestmark = pytest.mark.dataflow

INPUTS = (2.25, 9.0, 16.0)

CONSTANT_TRIP = """\
      PROGRAM MAIN
      INTEGER I
      REAL S
      S = 0.0
      DO 10 I = 1, 100
        S = S + 1.5
10    CONTINUE
      PRINT *, S
      END
"""

INPUT_TRIP = """\
      PROGRAM MAIN
      INTEGER I, N
      REAL S
      N = INT(INPUT(1))
      S = 0.0
      DO 10 I = 1, N
        S = S + 1.5
10    CONTINUE
      PRINT *, S
      END
"""


def _bounds(program, model=SCALAR_MACHINE):
    return compute_static_bounds(
        program.checked, program.cfgs, model, artifacts=program.artifacts()
    )


class TestConstantTrip:
    def test_bracket_is_tight_and_exact(self):
        program = compile_source(CONSTANT_TRIP)
        bounds = _bounds(program)
        main = bounds.main
        assert main.exact
        assert not main.unbounded
        profile, _ = profile_program(program, runs=1)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        time = analysis.procedures[program.main_name].time
        assert main.time[0] <= time <= main.time[1]
        # Control flow is static: the bracket is (numerically) a point.
        assert main.time[1] - main.time[0] < 1e-6 * max(1.0, time)
        assert main.var == (0.0, 0.0)


class TestInputDependentTrip:
    def test_unbounded_marker(self):
        program = compile_source(INPUT_TRIP)
        bounds = _bounds(program)
        main = bounds.main
        assert main.unbounded
        assert math.isinf(main.time[1])
        assert format_endpoint(main.time[1]) == "unbounded"
        # The loop may run zero times: the lower endpoint stays finite
        # and still brackets from below.
        assert main.time[0] >= 0.0 and math.isfinite(main.time[0])


class TestBuiltinsBracketProfiledTime:
    @pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
    def test_profiled_time_within_bounds(self, name):
        source = dict(builtin_sources())[name]
        program = compile_source(source)
        bounds = _bounds(program)
        profile, _ = profile_program(
            program, runs=[{"inputs": INPUTS}], model=SCALAR_MACHINE
        )
        analysis = analyze(program, profile, SCALAR_MACHINE)
        for proc_name, proc in analysis.procedures.items():
            if profile.proc(proc_name).invocations == 0:
                continue  # per-invocation TIME undefined: nothing to check
            pb = bounds.procedures[proc_name]
            lo, hi = pb.time
            assert lo <= proc.time, (
                f"{name}/{proc_name}: TIME {proc.time} below static lower "
                f"bound {lo}"
            )
            assert proc.time <= hi, (
                f"{name}/{proc_name}: TIME {proc.time} above static upper "
                f"bound {format_endpoint(hi)}"
            )


class TestJsonShape:
    def test_to_json_is_serializable(self):
        import json

        program = compile_source(INPUT_TRIP)
        payload = _bounds(program).to_json()
        text = json.dumps(payload)
        assert "time_hi" in text
        # Infinite endpoints must serialize as null, not inf.
        assert payload[program.main_name]["time_hi"] is None
