"""Unit tests for control dependence and the FCDG."""

import pytest

from repro import compile_source
from repro.cfg.graph import StmtKind, is_pseudo_label
from repro.workloads.unstructured import ALL_SOURCES


def fcdg_of(body_lines):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n"
    program = compile_source(source)
    return program.cfgs["MAIN"], program.fcdgs["MAIN"]


def node_by_text(graph, fragment):
    return next(n.id for n in graph if fragment in n.text)


class TestStructuralClaims:
    """Section 2's claims: rooted, connected, acyclic, all nodes but STOP."""

    SOURCES = [
        ["X = 1"],
        ["IF (X .GT. 0) THEN", "Y = 1", "ELSE", "Y = 2", "ENDIF"],
        ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"],
        [
            "DO 20 I = 1, 4",
            "IF (RAND() .LT. 0.5) GOTO 30",
            "DO 10 J = 1, 3",
            "X = X + 1.0",
            "10 CONTINUE",
            "20 CONTINUE",
            "30 CONTINUE",
        ],
        ["10 X = X + 1.0", "IF (X .LT. 5.0) GOTO 10"],
    ]

    @pytest.mark.parametrize("body", SOURCES, ids=lambda b: b[0][:18])
    def test_rooted_and_complete(self, body):
        cfg, fcdg = fcdg_of(body)
        fcdg.validate()  # checks node set and parent existence
        assert fcdg.topological_order()[0] == fcdg.root

    @pytest.mark.parametrize("body", SOURCES, ids=lambda b: b[0][:18])
    def test_acyclic(self, body):
        cfg, fcdg = fcdg_of(body)
        position = {n: i for i, n in enumerate(fcdg.topological_order())}
        for edge in fcdg.edges:
            assert position[edge.src] < position[edge.dst]

    def test_stop_excluded(self):
        cfg, fcdg = fcdg_of(["X = 1"])
        assert fcdg.ecfg.stop not in fcdg.nodes


class TestBranchDependences:
    def test_then_arm_depends_on_true(self):
        cfg, fcdg = fcdg_of(
            ["IF (X .GT. 0) THEN", "Y = 1.0", "ELSE", "Y = 2.0", "ENDIF"]
        )
        if_node = node_by_text(fcdg.ecfg.graph, "IF (")
        then_node = node_by_text(fcdg.ecfg.graph, "Y = 1.0")
        else_node = node_by_text(fcdg.ecfg.graph, "Y = 2.0")
        assert then_node in fcdg.children(if_node, "T")
        assert else_node in fcdg.children(if_node, "F")

    def test_join_not_dependent_on_branch(self):
        cfg, fcdg = fcdg_of(
            ["IF (X .GT. 0) THEN", "Y = 1.0", "ENDIF", "Z = 3.0"]
        )
        if_node = node_by_text(fcdg.ecfg.graph, "IF (")
        join = node_by_text(fcdg.ecfg.graph, "Z = 3.0")
        children = [c for _, c in fcdg.all_children(if_node)]
        assert join not in children

    def test_identically_control_dependent_statements_share_condition(self):
        cfg, fcdg = fcdg_of(
            ["IF (X .GT. 0) THEN", "Y = 1.0", "Z = 2.0", "ENDIF"]
        )
        if_node = node_by_text(fcdg.ecfg.graph, "IF (")
        t_children = fcdg.children(if_node, "T")
        y_node = node_by_text(fcdg.ecfg.graph, "Y = 1.0")
        z_node = node_by_text(fcdg.ecfg.graph, "Z = 2.0")
        assert {y_node, z_node} <= set(t_children)

    def test_straight_line_all_on_start(self):
        cfg, fcdg = fcdg_of(["X = 1.0", "Y = 2.0"])
        for node in fcdg.nodes:
            if node == fcdg.root:
                continue
            parents = {e.src for e in fcdg.parents(node)}
            assert parents == {fcdg.root}


class TestLoopDependences:
    def test_header_depends_on_preheader(self):
        cfg, fcdg = fcdg_of(["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"])
        ecfg = fcdg.ecfg
        (header,) = ecfg.preheader_of
        preheader = ecfg.preheader_of[header]
        assert header in fcdg.children(preheader, ecfg.loop_label(preheader))

    def test_loop_frequency_condition_present(self):
        cfg, fcdg = fcdg_of(["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"])
        ecfg = fcdg.ecfg
        (preheader,) = ecfg.header_of
        assert (preheader, "U") in fcdg.conditions()

    def test_no_loop_carried_dependences(self):
        # Statements after the header in a GOTO loop must depend on
        # the *preheader* (same-iteration), not on last iteration's
        # branches — the KERN16 regression.
        cfg, fcdg = fcdg_of(
            [
                "K = 0",
                "10 K = K + 1",
                "IF (K .GT. 5) GOTO 90",
                "IF (RAND() .LT. 0.3) GOTO 10",
                "X = X + 1.0",
                "GOTO 10",
                "90 CONTINUE",
            ]
        )
        ecfg = fcdg.ecfg
        (header,) = ecfg.preheader_of
        preheader = ecfg.preheader_of[header]
        first_if = node_by_text(ecfg.graph, "IF (K .GT. 5)")
        # `IF (K .GT. 5)` executes once per iteration, exactly like
        # the header: identically control dependent on the preheader.
        assert first_if in fcdg.children(preheader, "U")

    def test_pseudo_conditions_on_postexits(self):
        # With two exits, neither postexit postdominates the loop, so
        # each hangs off its preheader pseudo edge (Figure-3 shape).
        cfg, fcdg = fcdg_of(
            [
                "DO 10 I = 1, 5",
                "IF (RAND() .LT. 0.5) GOTO 20",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        ecfg = fcdg.ecfg
        for postexit in ecfg.postexit_source:
            parent_labels = {e.label for e in fcdg.parents(postexit)}
            assert any(is_pseudo_label(l) for l in parent_labels)

    def test_single_exit_postexit_depends_on_outer_context(self):
        # A single-exit loop's postexit postdominates the whole loop,
        # so it is control dependent on the same condition as the
        # loop entry (here START) — executing once per entry.
        cfg, fcdg = fcdg_of(["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"])
        ecfg = fcdg.ecfg
        (postexit,) = ecfg.postexit_source
        parents = {e.src for e in fcdg.parents(postexit)}
        assert parents == {fcdg.root}

    def test_multi_exit_postexits_depend_on_exit_branches(self):
        cfg, fcdg = fcdg_of(
            [
                "DO 10 I = 1, 5",
                "IF (X .GT. 2.0) GOTO 20",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        ecfg = fcdg.ecfg
        for postexit, origin in ecfg.postexit_source.items():
            parents = {(e.src, e.label) for e in fcdg.parents(postexit)}
            assert (origin.src, origin.label) in parents


class TestPaperExample:
    def test_figure3_structure(self, paper_program):
        fcdg = paper_program.fcdgs["MAIN"]
        ecfg = fcdg.ecfg
        graph = ecfg.graph
        header = node_by_text(graph, "IF (M .GE. 0)")
        n2 = node_by_text(graph, "IF (N .LT. 0)")
        n3 = node_by_text(graph, "IF (N .GE. 0)")
        call = node_by_text(graph, "CALL FOO")
        preheader = ecfg.preheader_of[header]

        assert header in fcdg.children(preheader, "U")
        assert n2 in fcdg.children(header, "T")
        assert n3 in fcdg.children(header, "F")
        assert call in fcdg.children(n2, "F")
        assert call in fcdg.children(n3, "F")

    def test_everything_reachable_from_start(self, paper_program):
        fcdg = paper_program.fcdgs["MAIN"]
        seen = {fcdg.root}
        stack = [fcdg.root]
        while stack:
            node = stack.pop()
            for _, child in fcdg.all_children(node):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        assert seen == set(fcdg.nodes)


class TestUnstructuredPrograms:
    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_fcdg_builds_and_validates(self, name):
        program = compile_source(ALL_SOURCES[name])
        for fcdg in program.fcdgs.values():
            fcdg.validate()
