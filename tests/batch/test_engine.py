"""The batch engine: ordering, serial/pool equivalence, error isolation."""

import pytest

from repro import profile_batch, profile_program
from repro.batch import ArtifactCache, BatchItem, run_batch
from repro.workloads.generators import ProgramGenerator

pytestmark = pytest.mark.batch

#: A loop that never terminates — the interpreter's step budget trips.
RUNAWAY = """\
      PROGRAM SPIN
      K = 1
      DO WHILE (K .GT. 0)
        K = 1
      ENDDO
      END
"""


def _items(n, runs=2, first_seed=0):
    return [
        BatchItem(
            id=f"gen-{seed}",
            source=ProgramGenerator(seed).source(),
            runs=tuple({"seed": r} for r in range(runs)),
        )
        for seed in range(first_seed, first_seed + n)
    ]


class TestSerialEngine:
    def test_results_in_item_order(self):
        report = run_batch(_items(5), mode="serial")
        assert [r.index for r in report.results] == list(range(5))
        assert [r.item_id for r in report.results] == [
            f"gen-{i}" for i in range(5)
        ]

    def test_matches_single_program_pipeline(self):
        items = _items(1, runs=3)
        report = run_batch(items, mode="serial")
        from repro import compile_source

        program = compile_source(items[0].source)
        profile, stats = profile_program(
            program, runs=[dict(s) for s in items[0].runs]
        )
        result = report.results[0]
        assert result.counters == stats.counters
        assert result.counter_updates == stats.counter_updates
        batch_main = result.profile.proc(program.main_name)
        direct_main = profile.proc(program.main_name)
        assert batch_main.invocations == direct_main.invocations
        assert batch_main.branch_counts == direct_main.branch_counts

    def test_repeated_source_hits_memory_cache(self):
        source = ProgramGenerator(3).source()
        items = [
            BatchItem(id=f"copy-{i}", source=source, runs=({"seed": i},))
            for i in range(4)
        ]
        cache = ArtifactCache(None)
        report = run_batch(items, mode="serial", cache=cache)
        assert [r.cache_tier for r in report.results] == [
            "compiled", "memory", "memory", "memory",
        ]
        assert cache.stats.memory_hits == 3
        assert cache.stats.misses == 1

    def test_naive_plan_reports_block_counts(self):
        report = run_batch(_items(2, runs=1), mode="serial", plan="naive")
        assert all(r.ok for r in report.results)
        for result in report.results:
            for proc in result.summary["procedures"].values():
                assert "block_counts" in proc


class TestPoolVsSerial:
    def test_pool_results_byte_identical_to_serial(self, tmp_path):
        items = _items(6)
        serial = run_batch(items, mode="serial", cache=tmp_path / "c1")
        pooled = run_batch(
            items, mode="process", jobs=2, cache=tmp_path / "c2"
        )
        assert serial.aggregate_json() == pooled.aggregate_json()

    def test_pool_reuses_disk_cache_across_invocations(self, tmp_path):
        items = _items(4, runs=1)
        first = run_batch(items, mode="process", jobs=2, cache=tmp_path)
        assert first.cache_stats["misses"] == 4
        second = run_batch(items, mode="process", jobs=2, cache=tmp_path)
        assert second.cache_stats["misses"] == 0
        assert second.cache_stats["disk_hits"] == 4
        assert first.aggregate_json() == second.aggregate_json()

    def test_pool_isolates_failures_like_serial(self, tmp_path):
        items = _items(2) + [
            BatchItem(id="broken", source="GARBAGE (", runs=({"seed": 0},))
        ]
        serial = run_batch(items, mode="serial")
        pooled = run_batch(items, mode="process", jobs=2, cache=tmp_path)
        assert serial.aggregate_json() == pooled.aggregate_json()
        assert [r.ok for r in pooled.results] == [True, True, False]

    def test_auto_mode_serial_for_single_item(self):
        report = run_batch(_items(1), mode="auto")
        assert report.mode == "serial"


class TestErrorIsolation:
    def test_parse_failure_is_contained(self):
        items = _items(2)
        items.insert(1, BatchItem(id="bad", source="NOT ( FORTRAN", runs=()))
        report = run_batch(items, mode="serial")
        assert [r.ok for r in report.results] == [True, False, True]
        failure = report.results[1]
        assert failure.error.stage == "compile"
        assert failure.error.type
        assert failure.error.message

    def test_runaway_program_fails_in_profile_stage(self):
        items = [
            BatchItem(id="spin", source=RUNAWAY, runs=({"seed": 0},)),
        ] + _items(1)
        report = run_batch(items, mode="serial", max_steps=5_000)
        spin, good = report.results
        assert not spin.ok and spin.error.stage == "profile"
        assert spin.error.type == "InterpreterLimitError"
        assert good.ok

    def test_failures_surface_in_aggregate(self):
        items = [BatchItem(id="bad", source="(", runs=())] + _items(1)
        report = run_batch(items, mode="serial")
        aggregate = report.aggregate()
        assert aggregate["totals"]["failed"] == 1
        assert aggregate["totals"]["ok"] == 1
        assert aggregate["items"][0]["error"]["stage"] == "compile"

    def test_empty_batch(self):
        report = run_batch([], mode="serial")
        assert report.results == []
        assert report.aggregate()["totals"]["programs"] == 0


class TestPipelineFacade:
    def test_accepts_mixed_item_shapes(self):
        source = ProgramGenerator(1).source()
        report = profile_batch(
            [
                source,
                ("named", source),
                BatchItem(id="explicit", source=source, runs=({"seed": 9},)),
            ],
            runs=2,
            mode="serial",
        )
        assert [r.item_id for r in report.results] == [
            "program-0", "named", "explicit",
        ]
        assert [r.runs for r in report.results] == [2, 2, 1]
        assert all(r.ok for r in report.results)

    def test_run_spec_list_applies_to_all(self):
        source = ProgramGenerator(2).source()
        report = profile_batch(
            [source], runs=[{"seed": 4}, {"seed": 5}], mode="serial"
        )
        assert report.results[0].runs == 2

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            profile_batch([ProgramGenerator(0).source()], mode="warp")
