"""Cache hardening: disk hits are verified, bad entries quarantined."""

import copy
import pickle

import pytest

from repro import compile_source, profile_batch
from repro.batch import ArtifactCache, BatchItem, run_batch
from repro.batch.cache import source_key
from repro.errors import VerificationError
from repro.pipeline import verify_compiled
from repro.workloads import PAPER_SOURCE

pytestmark = pytest.mark.batch


def poison_disk_entry(cache: ArtifactCache, source: str) -> None:
    """Rewrite the stored pickle with a broken START→STOP invariant."""
    path = cache._disk_path(source_key(source))
    entry = pickle.loads(path.read_bytes())
    ecfg = entry.program.ecfgs[entry.program.main_name]
    ecfg.graph.edges = [
        e for e in ecfg.graph.edges if not (e.src == ecfg.start and e.is_pseudo)
    ]
    path.write_bytes(pickle.dumps(entry))


class TestDiskHitVerification:
    def test_valid_entry_loads_as_disk_hit(self, tmp_path):
        ArtifactCache(tmp_path).artifacts(PAPER_SOURCE)
        fresh = ArtifactCache(tmp_path)
        _, _, tier = fresh.artifacts(PAPER_SOURCE)
        assert tier == "disk"
        assert fresh.stats.invalid_entries == 0

    def test_poisoned_entry_evicted_and_recompiled(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.artifacts(PAPER_SOURCE)
        poison_disk_entry(cache, PAPER_SOURCE)

        fresh = ArtifactCache(tmp_path)
        program, plan, tier = fresh.artifacts(PAPER_SOURCE)
        assert tier == "compiled"  # not trusted, rebuilt from source
        assert fresh.stats.invalid_entries == 1
        assert fresh.stats.disk_hits == 0
        # The rebuilt artifacts are sound again.
        verify_compiled(program, plan)

    def test_recompile_replaces_the_bad_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.artifacts(PAPER_SOURCE)
        poison_disk_entry(cache, PAPER_SOURCE)

        first = ArtifactCache(tmp_path)
        first.artifacts(PAPER_SOURCE)  # evicts + stores a clean entry
        second = ArtifactCache(tmp_path)
        _, _, tier = second.artifacts(PAPER_SOURCE)
        assert tier == "disk"
        assert second.stats.invalid_entries == 0

    def test_verification_can_be_disabled(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.artifacts(PAPER_SOURCE)
        poison_disk_entry(cache, PAPER_SOURCE)

        trusting = ArtifactCache(tmp_path, verify_loads=False)
        _, _, tier = trusting.artifacts(PAPER_SOURCE)
        assert tier == "disk"  # loaded verbatim, caveat emptor
        assert trusting.stats.invalid_entries == 0

    def test_stats_dict_has_invalid_entries(self, tmp_path):
        assert "invalid_entries" in ArtifactCache(tmp_path).stats.as_dict()


class TestPipelineVerifyFlag:
    def test_compile_source_verify_passes_on_valid_program(self):
        program = compile_source(PAPER_SOURCE, verify=True)
        assert program.main_name in program.cfgs

    def test_verify_compiled_raises_with_report(self):
        program = compile_source(PAPER_SOURCE)
        broken = copy.deepcopy(program)
        ecfg = broken.ecfgs[broken.main_name]
        ecfg.graph.edges = [
            e
            for e in ecfg.graph.edges
            if not (e.src == ecfg.start and e.is_pseudo)
        ]
        with pytest.raises(VerificationError) as excinfo:
            verify_compiled(broken)
        assert "REP105" in str(excinfo.value)
        assert excinfo.value.report.has("REP105")


class TestBatchVerifyStage:
    def test_verified_batch_of_valid_programs_succeeds(self):
        report = profile_batch(
            [("paper", PAPER_SOURCE)], runs=1, mode="serial", verify=True
        )
        assert [r.ok for r in report.results] == [True]

    def test_poisoned_cache_item_fails_in_verify_stage(self, tmp_path):
        # Defeat load-time verification to prove the engine's own
        # verify stage independently quarantines the item.
        cache = ArtifactCache(tmp_path, verify_loads=False)
        cache.artifacts(PAPER_SOURCE)
        poison_disk_entry(cache, PAPER_SOURCE)
        cache.clear_memory()

        report = run_batch(
            [BatchItem(id="bad", source=PAPER_SOURCE, runs=({"seed": 0},))],
            mode="serial",
            cache=cache,
            verify=True,
        )
        (result,) = report.results
        assert not result.ok
        assert result.error.stage == "verify"
        assert "REP105" in result.error.message

    def test_quarantine_does_not_sink_the_batch(self, tmp_path):
        cache = ArtifactCache(tmp_path, verify_loads=False)
        cache.artifacts(PAPER_SOURCE)
        poison_disk_entry(cache, PAPER_SOURCE)
        cache.clear_memory()

        other = "      PROGRAM MAIN\n      REAL X\n      X = 1.0\n" \
                "      PRINT *, X\n      STOP\n      END\n"
        report = run_batch(
            [
                BatchItem(id="bad", source=PAPER_SOURCE, runs=({"seed": 0},)),
                BatchItem(id="good", source=other, runs=({"seed": 0},)),
            ],
            mode="serial",
            cache=cache,
            verify=True,
        )
        by_id = {r.item_id: r for r in report.results}
        assert not by_id["bad"].ok and by_id["bad"].error.stage == "verify"
        assert by_id["good"].ok
