"""The artifact cache: tier accounting, persistence, corruption recovery."""

import pickle

import pytest

from repro.batch import ArtifactCache, CachedArtifacts, source_key
from repro.errors import ReproError
from repro.workloads.generators import ProgramGenerator

pytestmark = pytest.mark.batch

SOURCE = ProgramGenerator(7).source()
OTHER = ProgramGenerator(8).source()


class TestAccounting:
    def test_miss_then_memory_hit(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        program, plan, tier = cache.artifacts(SOURCE)
        assert tier == "compiled"
        again, plan2, tier2 = cache.artifacts(SOURCE)
        assert tier2 == "memory"
        assert again is program and plan2 is plan
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.disk_hits == 0
        assert cache.stats.plan_builds == 1

    def test_disk_hit_from_fresh_instance(self, tmp_path):
        ArtifactCache(tmp_path).artifacts(SOURCE)
        fresh = ArtifactCache(tmp_path)
        _, _, tier = fresh.artifacts(SOURCE)
        assert tier == "disk"
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.misses == 0
        # The persisted entry already contains the smart plan.
        assert fresh.stats.plan_builds == 0

    def test_distinct_sources_miss_independently(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.artifacts(SOURCE)
        cache.artifacts(OTHER)
        assert cache.stats.misses == 2
        assert source_key(SOURCE) != source_key(OTHER)

    def test_memory_only_cache_never_touches_disk(self):
        cache = ArtifactCache(None)
        cache.artifacts(SOURCE)
        _, _, tier = cache.artifacts(SOURCE)
        assert tier == "memory"
        assert cache.stats.stores == 0

    def test_plan_kinds_share_one_compilation(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        program_s, smart, _ = cache.artifacts(SOURCE, "smart")
        program_n, naive, _ = cache.artifacts(SOURCE, "naive")
        assert program_s is program_n
        assert smart.kind == "smart" and naive.kind == "naive"
        assert cache.stats.misses == 1
        assert cache.stats.plan_builds == 2

    def test_unknown_plan_kind_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(None).artifacts(SOURCE, "telepathic")

    def test_memory_tier_eviction_bounded(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_memory_entries=2)
        for seed in range(4):
            cache.compiled(ProgramGenerator(seed).source())
        assert len(cache._memory) <= 2

    def test_compile_error_propagates_uncached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ReproError):
            cache.artifacts("PROGRAM BAD (")
        # Nothing poisonous was stored.
        assert cache.stats.stores == 0
        assert list(tmp_path.rglob("*.pkl")) == []


class TestCorruptionRecovery:
    def _entry_file(self, tmp_path):
        files = list(tmp_path.rglob("*.pkl"))
        assert len(files) == 1
        return files[0]

    def test_truncated_entry_recompiles(self, tmp_path):
        ArtifactCache(tmp_path).artifacts(SOURCE)
        file = self._entry_file(tmp_path)
        file.write_bytes(file.read_bytes()[:20])

        fresh = ArtifactCache(tmp_path)
        _, _, tier = fresh.artifacts(SOURCE)
        assert tier == "compiled"
        assert fresh.stats.corrupt_entries == 1
        assert fresh.stats.misses == 1
        # The entry was rewritten and is healthy again.
        healed = ArtifactCache(tmp_path)
        _, _, tier2 = healed.artifacts(SOURCE)
        assert tier2 == "disk"
        assert healed.stats.corrupt_entries == 0

    def test_garbage_bytes_recompile(self, tmp_path):
        ArtifactCache(tmp_path).artifacts(SOURCE)
        self._entry_file(tmp_path).write_bytes(b"not a pickle at all")
        fresh = ArtifactCache(tmp_path)
        _, _, tier = fresh.artifacts(SOURCE)
        assert tier == "compiled"
        assert fresh.stats.corrupt_entries == 1

    def test_wrong_payload_type_recompiles(self, tmp_path):
        ArtifactCache(tmp_path).artifacts(SOURCE)
        self._entry_file(tmp_path).write_bytes(pickle.dumps({"not": "artifacts"}))
        fresh = ArtifactCache(tmp_path)
        _, _, tier = fresh.artifacts(SOURCE)
        assert tier == "compiled"
        assert fresh.stats.corrupt_entries == 1

    def test_clear_memory_falls_back_to_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.artifacts(SOURCE)
        cache.clear_memory()
        _, _, tier = cache.artifacts(SOURCE)
        assert tier == "disk"


class TestKeying:
    def test_key_depends_on_source_text(self):
        assert source_key("PROGRAM A") != source_key("PROGRAM B")

    def test_key_stable_for_same_text(self):
        assert source_key(SOURCE) == source_key(SOURCE)

    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.artifacts(SOURCE)
        key = source_key(SOURCE)
        assert (tmp_path / key[:2] / f"{key}.pkl").exists()

    def test_cached_artifacts_roundtrip_pickle(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        program, plan, _ = cache.artifacts(SOURCE)
        blob = pickle.dumps(CachedArtifacts(program, {"smart": plan}))
        entry = pickle.loads(blob)
        assert entry.program.main_name == program.main_name


class TestLruHotTier:
    """The memory tier is LRU: recently *used* entries stay resident."""

    THIRD = ProgramGenerator(9).source()

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_memory_entries=2)
        cache.artifacts(SOURCE)
        cache.artifacts(OTHER)
        # Touch SOURCE: it becomes the most recently used entry, so
        # admitting a third program must evict OTHER, not SOURCE.
        cache.artifacts(SOURCE)
        cache.artifacts(self.THIRD)
        _, _, tier = cache.artifacts(SOURCE)
        assert tier == "memory"
        _, _, tier = cache.artifacts(OTHER)
        assert tier == "disk"  # evicted from memory, disk tier serves

    def test_fifo_would_have_failed(self, tmp_path):
        """Insertion order alone must not decide eviction."""
        cache = ArtifactCache(tmp_path, max_memory_entries=2)
        cache.artifacts(SOURCE)  # oldest insertion
        cache.artifacts(OTHER)
        cache.artifacts(SOURCE)  # ... but most recent use
        cache.artifacts(self.THIRD)  # evicts exactly one entry
        hits_before = cache.stats.memory_hits
        cache.artifacts(SOURCE)
        assert cache.stats.memory_hits == hits_before + 1

    def test_memory_only_cache_evicts_lru(self):
        cache = ArtifactCache(None, max_memory_entries=2)
        cache.artifacts(SOURCE)
        cache.artifacts(OTHER)
        cache.artifacts(SOURCE)
        cache.artifacts(self.THIRD)
        # No disk tier: the evicted entry is recompiled on next use,
        # and re-admitting it evicts the now-least-recent SOURCE.
        misses_before = cache.stats.misses
        cache.artifacts(OTHER)
        assert cache.stats.misses == misses_before + 1
        _, _, tier = cache.artifacts(self.THIRD)
        assert tier == "memory"
