"""The ``repro batch`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.workloads.generators import ProgramGenerator

pytestmark = pytest.mark.batch


@pytest.fixture
def program_files(tmp_path):
    paths = []
    for seed in range(3):
        path = tmp_path / f"prog{seed}.f"
        path.write_text(ProgramGenerator(seed).source())
        paths.append(str(path))
    return paths


def test_batch_over_files(program_files, capsys):
    assert main(["batch", *program_files, "--runs", "2"]) == 0
    out = capsys.readouterr().out
    assert "batch profile of 3 programs" in out
    for path in program_files:
        assert path in out


def test_batch_generated_workload(capsys):
    assert main(["batch", "--generate", "4", "--mode", "serial"]) == 0
    out = capsys.readouterr().out
    assert "gen-0" in out and "gen-3" in out
    assert "cache:" in out


def test_batch_without_programs_errors(capsys):
    assert main(["batch"]) == 1
    assert "no programs" in capsys.readouterr().err


def test_batch_serial_and_pool_json_byte_identical(
    program_files, tmp_path, capsys
):
    json_serial = tmp_path / "serial.json"
    json_pool = tmp_path / "pool.json"
    assert main([
        "batch", *program_files, "--runs", "2", "--mode", "serial",
        "--cache", str(tmp_path / "cache"), "--json", str(json_serial),
    ]) == 0
    assert main([
        "batch", *program_files, "--runs", "2", "--mode", "pool",
        "--jobs", "2",
        "--cache", str(tmp_path / "cache"), "--json", str(json_pool),
    ]) == 0
    capsys.readouterr()
    assert json_serial.read_bytes() == json_pool.read_bytes()


def test_batch_json_to_stdout(program_files, capsys):
    assert main([
        "batch", program_files[0], "--json", "-", "--mode", "serial",
    ]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out.splitlines()[-1])
    assert payload["totals"]["programs"] == 1
    assert payload["items"][0]["ok"] is True


def test_batch_failure_isolated_and_exit_code(tmp_path, capsys):
    good = tmp_path / "good.f"
    good.write_text(ProgramGenerator(0).source())
    bad = tmp_path / "bad.f"
    bad.write_text("THIS IS NOT A PROGRAM (")
    assert main(["batch", str(good), str(bad), "--mode", "serial"]) == 1
    captured = capsys.readouterr()
    assert "FAILED (compile)" in captured.out
    assert "ok" in captured.out  # the good program still profiled
    assert "bad.f" in captured.err
