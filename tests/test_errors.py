"""Tests for the exception hierarchy and error reporting quality."""

import pytest

from repro import compile_source, run_program
from repro.errors import (
    AnalysisError,
    CFGError,
    InterpreterError,
    InterpreterLimitError,
    IrreducibleError,
    LexError,
    ParseError,
    ProfilingError,
    ReproError,
    SemanticError,
    SourceError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in [
            SourceError,
            LexError,
            ParseError,
            SemanticError,
            CFGError,
            IrreducibleError,
            AnalysisError,
            ProfilingError,
            InterpreterError,
            InterpreterLimitError,
        ]:
            assert issubclass(exc_type, ReproError), exc_type

    def test_frontend_errors_are_source_errors(self):
        assert issubclass(LexError, SourceError)
        assert issubclass(ParseError, SourceError)
        assert issubclass(SemanticError, SourceError)

    def test_irreducible_is_cfg_error(self):
        assert issubclass(IrreducibleError, CFGError)

    def test_limit_is_interpreter_error(self):
        assert issubclass(InterpreterLimitError, InterpreterError)

    def test_one_catch_covers_compile_failures(self):
        for bad in [
            "PROGRAM MAIN\nX = 1 $ 2\nEND\n",  # lex
            "PROGRAM MAIN\nX = \nEND\n",  # parse
            "PROGRAM MAIN\nGOTO 99\nEND\n",  # semantic
        ]:
            with pytest.raises(ReproError):
                compile_source(bad)


class TestLineNumbers:
    def test_lex_error_carries_line(self):
        with pytest.raises(LexError, match="line 3"):
            compile_source("PROGRAM MAIN\nX = 1\nY = $\nEND\n")

    def test_parse_error_carries_line(self):
        with pytest.raises(ParseError, match="line 2"):
            compile_source("PROGRAM MAIN\nX = 1 +\nEND\n")

    def test_semantic_error_carries_line(self):
        with pytest.raises(SemanticError, match="line 3"):
            compile_source("PROGRAM MAIN\nX = 1\nGOTO 42\nEND\n")

    def test_runtime_error_carries_line(self):
        program = compile_source(
            "PROGRAM MAIN\nI = 0\nJ = 7 / I\nEND\n"
        )
        with pytest.raises(InterpreterError, match="line 3"):
            run_program(program)

    def test_messages_name_the_symbol(self):
        with pytest.raises(SemanticError, match="NOPE"):
            compile_source("PROGRAM MAIN\nCALL NOPE\nEND\n")
        with pytest.raises(SemanticError, match="label 42"):
            compile_source("PROGRAM MAIN\nGOTO 42\nEND\n")
