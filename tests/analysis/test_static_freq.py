"""Tests for compile-time frequency estimation (static + hybrid)."""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.analysis.freq import compute_frequencies
from repro.analysis.static_freq import (
    StaticOptions,
    hybrid_profile,
    static_profile,
)


def static_freqs(source, **options):
    program = compile_source(source)
    profile = static_profile(
        program, StaticOptions(**options) if options else StaticOptions()
    )
    name = program.main_name
    return program, compute_frequencies(
        program.fcdgs[name], profile.proc(name)
    )


def node_id(program, fragment, proc=None):
    proc = proc or program.main_name
    return next(
        n.id for n in program.ecfgs[proc].graph if fragment in n.text
    )


class TestExactCases:
    """The paper's 'feasible' cases must be exact, not heuristic."""

    def test_constant_trip_do_loop(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nDO 10 I = 1, 8\nX = X + 1.0\n10 CONTINUE\nEND\n"
        )
        (preheader,) = program.ecfgs["MAIN"].header_of
        assert freqs.loop_frequency(preheader) == pytest.approx(9.0)

    def test_parameter_trip_do_loop(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nPARAMETER (N = 12)\nDO 10 I = 1, N\n"
            "X = X + 1.0\n10 CONTINUE\nEND\n"
        )
        (preheader,) = program.ecfgs["MAIN"].header_of
        assert freqs.loop_frequency(preheader) == pytest.approx(13.0)

    def test_compile_time_true_condition(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nPARAMETER (N = 5)\n"
            "IF (N .GT. 3) THEN\nX = 1.0\nELSE\nX = 2.0\nENDIF\nEND\n"
        )
        if_node = node_id(program, "IF (N .GT. 3)")
        assert freqs.freq[(if_node, "T")] == 1.0
        assert freqs.freq[(if_node, "F")] == 0.0

    def test_compile_time_false_condition(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nIF (1 .GT. 3) THEN\nX = 1.0\nENDIF\nY = 2.0\nEND\n"
        )
        if_node = node_id(program, "IF (1 .GT. 3)")
        assert freqs.freq[(if_node, "T")] == 0.0

    def test_static_time_matches_measurement_for_static_program(self):
        # A program whose control flow is fully compile-time: the
        # static estimate must equal the measured cost exactly.
        source = (
            "PROGRAM MAIN\nPARAMETER (N = 6)\n"
            "DO 10 I = 1, N\nX = X + SQRT(2.0)\n10 CONTINUE\n"
            "IF (N .GT. 3) Y = 1.0\nEND\n"
        )
        program = compile_source(source)
        measured = run_program(program, model=SCALAR_MACHINE).total_cost
        analysis = analyze(
            program, static_profile(program), SCALAR_MACHINE
        )
        assert analysis.total_time == pytest.approx(measured, rel=1e-9)


class TestHeuristicCases:
    def test_data_branch_gets_default_split(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nIF (RAND() .GT. 0.5) X = 1.0\nEND\n"
        )
        if_node = node_id(program, "IF (RAND()")
        assert freqs.freq[(if_node, "T")] == pytest.approx(0.5)

    def test_branch_taken_option(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nIF (RAND() .GT. 0.5) X = 1.0\nEND\n",
            branch_taken=0.25,
        )
        if_node = node_id(program, "IF (RAND()")
        assert freqs.freq[(if_node, "T")] == pytest.approx(0.25)

    def test_data_driven_do_uses_default_frequency(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nN = INT(INPUT(1))\nDO 10 I = 1, N\n"
            "X = X + 1.0\n10 CONTINUE\nEND\n",
            default_loop_frequency=25.0,
        )
        (preheader,) = program.ecfgs["MAIN"].header_of
        # exit prob 1/(L+1) with L=25 -> frequency 26.
        assert freqs.loop_frequency(preheader) == pytest.approx(26.0)

    def test_goto_loop_geometric_model(self):
        # exit taken with the default 0.5 -> two header executions.
        program, freqs = static_freqs(
            "PROGRAM MAIN\n10 X = X + RAND()\n"
            "IF (X .GT. 5.0) GOTO 20\nGOTO 10\n20 CONTINUE\nEND\n"
        )
        (preheader,) = program.ecfgs["MAIN"].header_of
        assert freqs.loop_frequency(preheader) == pytest.approx(2.0)

    def test_computed_goto_uniform(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nGOTO (10, 20), K\nX = 0.0\nGOTO 30\n"
            "10 X = 1.0\nGOTO 30\n20 X = 2.0\n30 CONTINUE\nEND\n"
        )
        cg = node_id(program, "GOTO (10, 20), K")
        assert freqs.freq[(cg, "C1")] == pytest.approx(1 / 3)

    def test_probabilities_form_distribution(self):
        program, freqs = static_freqs(
            "PROGRAM MAIN\nIF (RAND() .GT. 0.5) THEN\nX = 1.0\n"
            "ELSE\nX = 2.0\nENDIF\nEND\n"
        )
        ecfg = program.ecfgs["MAIN"]
        for (u, label), value in freqs.freq.items():
            if u != ecfg.start and not ecfg.is_preheader(u):
                assert 0.0 <= value <= 1.0

    def test_infinite_static_loop_clamped(self):
        # Exit probability folds to zero: frequency falls back to the
        # default instead of diverging.
        program, freqs = static_freqs(
            "PROGRAM MAIN\nPARAMETER (Z = 0)\n"
            "10 X = X + 1.0\nIF (Z .GT. 1) GOTO 20\n"
            "IF (RAND() .LT. 0.0001) GOTO 20\nGOTO 10\n20 CONTINUE\nEND\n",
        )
        (preheader,) = program.ecfgs["MAIN"].header_of
        options = StaticOptions()
        assert (
            freqs.loop_frequency(preheader) <= options.max_loop_frequency
        )


class TestHybrid:
    SOURCE = (
        "PROGRAM MAIN\nIF (INPUT(1) .GT. 0.0) THEN\nCALL HOT(X)\n"
        "ELSE\nCALL COLD(X)\nENDIF\nEND\n"
        "SUBROUTINE HOT(X)\nDO 10 I = 1, 4\nX = X + 1.0\n10 CONTINUE\nEND\n"
        "SUBROUTINE COLD(X)\nDO 10 I = 1, 9\nX = X * 2.0\n10 CONTINUE\nEND\n"
    )

    def test_unexecuted_procedure_gets_static_estimate(self):
        program = compile_source(self.SOURCE)
        # only the HOT path was profiled; COLD never ran.
        measured = oracle_program_profile(
            program, runs=[{"inputs": (1.0,)}]
        )
        assert measured.proc("COLD").invocations == 0
        hybrid = hybrid_profile(program, measured)
        assert hybrid.proc("COLD").invocations == 1.0
        analysis = analyze(program, hybrid, SCALAR_MACHINE)
        assert analysis.procedures["COLD"].time > 0

    def test_measured_procedures_kept_exact(self):
        program = compile_source(self.SOURCE)
        measured = oracle_program_profile(
            program, runs=[{"inputs": (1.0,)}]
        )
        hybrid = hybrid_profile(program, measured)
        assert hybrid.proc("HOT") is measured.proc("HOT")

    def test_pure_static_covers_all_procedures(self):
        program = compile_source(self.SOURCE)
        profile = static_profile(program)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        for proc in analysis.procedures.values():
            assert proc.time > 0
