"""Tests for CFG edge frequency derivation."""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.analysis.edge_freq import conservation_residual, edge_frequencies


def analyzed_main(source, run_specs=({},)):
    program = compile_source(source)
    profile = oracle_program_profile(program, runs=list(run_specs))
    analysis = analyze(program, profile, SCALAR_MACHINE)
    return program, analysis.main


class TestEdgeFrequencies:
    def test_matches_observed_edge_counts(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 12\n"
            "IF (MOD(I, 3) .EQ. 0) X = X + 1.0\n10 CONTINUE\nEND\n"
        )
        program, main = analyzed_main(source)
        result = run_program(program)
        counts = edge_frequencies(main)
        observed = result.edge_counts["MAIN"]
        for edge, value in counts.items():
            assert value == pytest.approx(
                observed.get((edge.src, edge.label), 0)
            ), edge

    def test_single_exit_loop_test_edges_resolved(self):
        # (test, T) is not an FCDG condition here; conservation must
        # still recover its count.
        source = (
            "PROGRAM MAIN\nN = INT(INPUT(1))\nDO 10 I = 1, N\n"
            "X = X + 1.0\n10 CONTINUE\nEND\n"
        )
        program, main = analyzed_main(
            source, run_specs=({"inputs": (7.0,)},)
        )
        result = run_program(program, inputs=(7.0,))
        counts = edge_frequencies(main)
        observed = result.edge_counts["MAIN"]
        for edge, value in counts.items():
            assert value == pytest.approx(
                observed.get((edge.src, edge.label), 0)
            ), edge

    def test_conservation_residual_zero(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 6\n"
            "IF (RAND() .LT. 0.4) GOTO 20\nX = X + 1.0\n10 CONTINUE\n"
            "20 CONTINUE\nEND\n"
        )
        program, main = analyzed_main(source, run_specs=({"seed": 2},))
        assert conservation_residual(main) == pytest.approx(0.0, abs=1e-9)

    def test_unexecuted_code_zero_frequency(self):
        source = (
            "PROGRAM MAIN\nX = 1.0\nIF (X .LT. 0.0) THEN\nY = 1.0\n"
            "ENDIF\nEND\n"
        )
        program, main = analyzed_main(source)
        counts = edge_frequencies(main)
        y_node = next(
            n.id for n in program.cfgs["MAIN"] if "Y = 1.0" in n.text
        )
        for edge, value in counts.items():
            if edge.dst == y_node or edge.src == y_node:
                assert value == 0.0

    def test_livermore_conservation(self):
        from repro.workloads.livermore import livermore_source

        program = compile_source(livermore_source(n=24, n2=4))
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        for proc in analysis.procedures.values():
            assert conservation_residual(proc) == pytest.approx(
                0.0, abs=1e-6
            ), proc.name
