"""Unit tests for the top-down frequency pass (Section 3)."""

import pytest

from repro import compile_source, oracle_program_profile, run_program
from repro.analysis.freq import compute_frequencies
from repro.errors import AnalysisError
from repro.profiling.database import ProcedureProfile


def analyzed_frequencies(source, run_specs=({},)):
    program = compile_source(source)
    profile = oracle_program_profile(program, runs=list(run_specs))
    freqs = {
        name: compute_frequencies(program.fcdgs[name], profile.proc(name))
        for name in program.cfgs
    }
    return program, profile, freqs


def node_by_text(program, proc, fragment):
    return next(
        n.id for n in program.ecfgs[proc].graph if fragment in n.text
    )


class TestBranchProbabilities:
    SOURCE = (
        "PROGRAM MAIN\nDO 10 I = 1, 10\n"
        "IF (MOD(I, 4) .EQ. 0) X = X + 1.0\n10 CONTINUE\nEND\n"
    )

    def test_branch_probability(self):
        program, profile, freqs = analyzed_frequencies(self.SOURCE)
        if_node = node_by_text(program, "MAIN", "IF (MOD")
        main = freqs["MAIN"]
        # I in 1..10, divisible by 4: 2 of 10.
        assert main.freq[(if_node, "T")] == pytest.approx(0.2)

    def test_branch_probabilities_within_unit_interval(self):
        program, profile, freqs = analyzed_frequencies(self.SOURCE)
        ecfg = program.ecfgs["MAIN"]
        for (u, label), value in freqs["MAIN"].freq.items():
            if u != ecfg.start and not ecfg.is_preheader(u):
                assert 0.0 <= value <= 1.0

    def test_node_freq_of_start_is_one(self):
        program, profile, freqs = analyzed_frequencies(self.SOURCE)
        assert freqs["MAIN"].node_freq[program.ecfgs["MAIN"].start] == 1.0

    def test_loop_frequency_counts_header_executions(self):
        program, profile, freqs = analyzed_frequencies(self.SOURCE)
        ecfg = program.ecfgs["MAIN"]
        (preheader,) = ecfg.header_of
        assert freqs["MAIN"].loop_frequency(preheader) == pytest.approx(11.0)

    def test_pseudo_conditions_zero(self):
        program, profile, freqs = analyzed_frequencies(self.SOURCE)
        for (u, label), value in freqs["MAIN"].freq.items():
            if label.startswith("Z"):
                assert value == 0.0

    def test_node_freq_matches_observed_counts(self):
        program = compile_source(self.SOURCE)
        result = run_program(program)
        profile = oracle_program_profile(program, runs=[{}])
        freqs = compute_frequencies(
            program.fcdgs["MAIN"], profile.proc("MAIN")
        )
        observed = result.node_counts["MAIN"]
        for node, counted in observed.items():
            assert freqs.node_freq[node] == pytest.approx(counted), node


class TestEdgeCases:
    def test_never_executed_branch_zero(self):
        source = (
            "PROGRAM MAIN\nX = 1.0\nIF (X .LT. 0.0) THEN\nY = 1.0\n"
            "ENDIF\nEND\n"
        )
        program, profile, freqs = analyzed_frequencies(source)
        if_node = node_by_text(program, "MAIN", "IF (X")
        assert freqs["MAIN"].freq[(if_node, "T")] == 0.0

    def test_zero_over_zero_convention(self):
        # dead code behind a never-taken branch: NODE_FREQ = 0,
        # TOTAL_FREQ = 0; FREQ must be 0, not a division error.
        source = (
            "PROGRAM MAIN\nX = 1.0\n"
            "IF (X .LT. 0.0) THEN\n"
            "IF (X .GT. 0.5) Y = 1.0\n"
            "ENDIF\nEND\n"
        )
        program, profile, freqs = analyzed_frequencies(source)
        inner = node_by_text(program, "MAIN", "IF (X .GT. 0.5)")
        assert freqs["MAIN"].freq[(inner, "T")] == 0.0
        assert freqs["MAIN"].node_freq[inner] == 0.0

    def test_uncalled_procedure_all_zero(self):
        source = (
            "PROGRAM MAIN\nX = 1.0\nEND\n"
            "SUBROUTINE NEVER(A)\nA = A + 1.0\nEND\n"
        )
        program, profile, freqs = analyzed_frequencies(source)
        never = freqs["NEVER"]
        assert never.invocations == 0.0
        assert all(v == 0.0 for k, v in never.node_freq.items()
                   if k != program.ecfgs["NEVER"].start)

    def test_inconsistent_profile_rejected(self):
        source = "PROGRAM MAIN\nIF (X .GT. 0.0) Y = 1.0\nEND\n"
        program = compile_source(source)
        bad = ProcedureProfile("MAIN")
        bad.invocations = 0.0
        if_node = node_by_text(program, "MAIN", "IF (X")
        bad.branch_counts[(if_node, "T")] = 5.0
        with pytest.raises(AnalysisError):
            compute_frequencies(program.fcdgs["MAIN"], bad)

    def test_probability_above_one_rejected(self):
        source = "PROGRAM MAIN\nIF (X .GT. 0.0) Y = 1.0\nEND\n"
        program = compile_source(source)
        bad = ProcedureProfile("MAIN")
        bad.invocations = 1.0
        if_node = node_by_text(program, "MAIN", "IF (X")
        bad.branch_counts[(if_node, "T")] = 5.0
        with pytest.raises(AnalysisError):
            compute_frequencies(program.fcdgs["MAIN"], bad)

    def test_accumulated_runs_average(self):
        # 3 runs, branch taken in 2: probability 2/3.
        source = (
            "PROGRAM MAIN\nIF (INPUT(1) .GT. 0.0) Y = 1.0\nEND\n"
        )
        program, profile, freqs = analyzed_frequencies(
            source,
            run_specs=({"inputs": (1.0,)}, {"inputs": (1.0,)},
                       {"inputs": (-1.0,)}),
        )
        if_node = node_by_text(program, "MAIN", "IF (INPUT")
        assert freqs["MAIN"].freq[(if_node, "T")] == pytest.approx(2 / 3)

    def test_multi_parent_node_frequency(self, paper_program):
        # CALL FOO executes once per iteration except the last:
        # NODE_FREQ = 9 with 10 header executions.
        profile = oracle_program_profile(paper_program, runs=[{}])
        freqs = compute_frequencies(
            paper_program.fcdgs["MAIN"], profile.proc("MAIN")
        )
        graph = paper_program.ecfgs["MAIN"].graph
        call = next(n.id for n in graph if "CALL FOO" in n.text)
        assert freqs.node_freq[call] == pytest.approx(9.0)
