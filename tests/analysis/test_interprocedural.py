"""Unit tests for the interprocedural driver (rule 2 + recursion)."""

import pytest

from repro import (
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.costs import SCALAR_MACHINE
from repro.errors import AnalysisError


def analyzed(source, run_specs=({},), **kwargs):
    program = compile_source(source)
    profile = oracle_program_profile(program, runs=list(run_specs))
    return program, analyze(program, profile, SCALAR_MACHINE, **kwargs)


class TestRule2:
    def test_call_cost_is_callee_time(self):
        source = (
            "PROGRAM MAIN\nCALL WORK(X)\nEND\n"
            "SUBROUTINE WORK(X)\nX = X + 1.0\nX = X * 2.0\nEND\n"
        )
        program, analysis = analyzed(source)
        work_time = analysis.procedures["WORK"].time
        main = analysis.main
        call = next(
            n.id for n in main.ecfg.graph if "CALL WORK" in n.text
        )
        assert main.effective_costs[call] == pytest.approx(
            SCALAR_MACHINE.call_overhead + work_time
        )

    def test_same_average_for_every_call_site(self):
        source = (
            "PROGRAM MAIN\nCALL WORK(X)\nCALL WORK(Y)\nEND\n"
            "SUBROUTINE WORK(X)\nX = X + 1.0\nEND\n"
        )
        program, analysis = analyzed(source)
        main = analysis.main
        calls = [
            n.id for n in main.ecfg.graph if "CALL WORK" in n.text
        ]
        costs = {main.effective_costs[c] for c in calls}
        assert len(costs) == 1

    def test_bottom_up_order_handles_chains(self):
        source = (
            "PROGRAM MAIN\nCALL A(X)\nEND\n"
            "SUBROUTINE A(X)\nCALL B(X)\nCALL B(X)\nEND\n"
            "SUBROUTINE B(X)\nX = X + 1.0\nEND\n"
        )
        program, analysis = analyzed(source)
        a = analysis.procedures["A"]
        b = analysis.procedures["B"]
        assert a.time > 2 * b.time

    def test_callee_variance_propagates(self):
        source = (
            "PROGRAM MAIN\nCALL WORK(INPUT(1))\nEND\n"
            "SUBROUTINE WORK(P)\nIF (P .GT. 0.0) X = 1.0\nEND\n"
        )
        program, analysis = analyzed(
            source, run_specs=({"inputs": (1.0,)}, {"inputs": (-1.0,)})
        )
        assert analysis.procedures["WORK"].var > 0.0
        assert analysis.total_var == pytest.approx(
            analysis.procedures["WORK"].var
        )


class TestRecursion:
    def test_self_recursion_converges(self):
        # FACT(6): expected recursive calls per invocation < 1 when
        # averaged over the whole profile.
        source = (
            "PROGRAM MAIN\nPRINT *, FACT(6)\nEND\n"
            "INTEGER FUNCTION FACT(N)\nINTEGER N\n"
            "IF (N .LE. 1) THEN\nFACT = 1\nELSE\nFACT = N * FACT(N - 1)\n"
            "ENDIF\nEND\n"
        )
        program, analysis = analyzed(source)
        total = run_program(program, model=SCALAR_MACHINE).total_cost
        assert analysis.total_time == pytest.approx(total, rel=1e-6)

    def test_mutual_recursion_converges(self):
        source = (
            "PROGRAM MAIN\nPRINT *, ISEV(9)\nEND\n"
            "INTEGER FUNCTION ISEV(N)\nINTEGER N\n"
            "IF (N .EQ. 0) THEN\nISEV = 1\nELSE\nISEV = IODD(N - 1)\nENDIF\n"
            "END\n"
            "INTEGER FUNCTION IODD(N)\nINTEGER N\n"
            "IF (N .EQ. 0) THEN\nIODD = 0\nELSE\nIODD = ISEV(N - 1)\nENDIF\n"
            "END\n"
        )
        program, analysis = analyzed(source)
        total = run_program(program, model=SCALAR_MACHINE).total_cost
        assert analysis.total_time == pytest.approx(total, rel=1e-6)

    def test_call_graph_marks_recursion(self):
        source = (
            "PROGRAM MAIN\nPRINT *, FACT(3)\nEND\n"
            "INTEGER FUNCTION FACT(N)\nINTEGER N\n"
            "IF (N .LE. 1) THEN\nFACT = 1\nELSE\nFACT = N * FACT(N - 1)\n"
            "ENDIF\nEND\n"
        )
        program, analysis = analyzed(source)
        assert analysis.call_graph.is_recursive("FACT")
        assert not analysis.call_graph.is_recursive("MAIN")


class TestProgramAnalysisAccessors:
    def test_main_accessor(self):
        program, analysis = analyzed("PROGRAM MAIN\nX = 1.0\nEND\n")
        assert analysis.main.name == "MAIN"
        assert analysis.total_time == analysis.main.time

    def test_per_procedure_results_present(self):
        source = (
            "PROGRAM MAIN\nCALL A(X)\nEND\nSUBROUTINE A(X)\nX = 1.0\nEND\n"
        )
        program, analysis = analyzed(source)
        assert set(analysis.procedures) == {"MAIN", "A"}
        for proc in analysis.procedures.values():
            assert proc.variances is not None

    def test_unknown_loop_variance_spec_rejected(self):
        program = compile_source("PROGRAM MAIN\nX = 1.0\nEND\n")
        profile = oracle_program_profile(program, runs=[{}])
        with pytest.raises(AnalysisError):
            analyze(program, profile, SCALAR_MACHINE, loop_variance="bogus")
