"""Unit tests for the bottom-up variance pass (Section 5)."""

import math
import statistics

import pytest

from repro import (
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.analysis.distributions import LoopDistribution
from repro.costs import SCALAR_MACHINE


def analyzed(source, run_specs=({},), **kwargs):
    program = compile_source(source)
    profile = oracle_program_profile(program, runs=list(run_specs))
    return program, analyze(program, profile, SCALAR_MACHINE, **kwargs)


class TestZeroVariance:
    def test_straight_line_has_zero_variance(self):
        _, analysis = analyzed("PROGRAM MAIN\nX = 1.0\nY = 2.0\nEND\n")
        assert analysis.total_var == 0.0
        assert analysis.total_std_dev == 0.0

    def test_always_taken_branch_zero_variance(self):
        _, analysis = analyzed(
            "PROGRAM MAIN\nX = 1.0\nIF (X .GT. 0.0) Y = 2.0\nEND\n"
        )
        assert analysis.total_var == 0.0

    def test_second_moment_consistent(self):
        _, analysis = analyzed(
            "PROGRAM MAIN\nIF (INPUT(1) .GT. 0.0) Y = 2.0\nEND\n",
            run_specs=({"inputs": (1.0,)}, {"inputs": (-1.0,)}),
        )
        main = analysis.main
        for node in main.fcdg.nodes:
            expected = main.variances.var[node] + main.times[node] ** 2
            assert main.variances.second_moment[node] == pytest.approx(expected)


class TestBernoulliBranch:
    def source(self):
        # one coin-flip branch guarding a fixed-cost statement.
        return (
            "PROGRAM MAIN\nIF (INPUT(1) .GT. 0.0) X = 1.0\nEND\n"
        )

    def test_variance_is_p_one_minus_p_tsquared(self):
        # p = 1/2 from two runs; the guarded statement costs c:
        # VAR = p(1-p) c^2.
        program = compile_source(self.source())
        profile = oracle_program_profile(
            program, runs=[{"inputs": (1.0,)}, {"inputs": (-1.0,)}]
        )
        analysis = analyze(program, profile, SCALAR_MACHINE)
        c = SCALAR_MACHINE.const + SCALAR_MACHINE.store
        assert analysis.total_var == pytest.approx(0.25 * c * c)

    def test_matches_sample_variance_of_costs(self):
        # the model's variance for a single independent branch equals
        # the population variance of the per-run costs.
        program = compile_source(self.source())
        specs = [{"inputs": (1.0,)}, {"inputs": (1.0,)}, {"inputs": (-1.0,)},
                 {"inputs": (1.0,)}]
        costs = [
            run_program(program, model=SCALAR_MACHINE, **spec).total_cost
            for spec in specs
        ]
        profile = oracle_program_profile(program, runs=specs)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_var == pytest.approx(
            statistics.pvariance(costs)
        )

    def test_independent_branches_variances_add(self):
        source = (
            "PROGRAM MAIN\n"
            "IF (INPUT(1) .GT. 0.0) X = 1.0\n"
            "IF (INPUT(2) .GT. 0.0) Y = 1.0\n"
            "END\n"
        )
        program = compile_source(source)
        specs = [
            {"inputs": (1.0, -1.0)},
            {"inputs": (-1.0, 1.0)},
        ]
        profile = oracle_program_profile(program, runs=specs)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        c = SCALAR_MACHINE.const + SCALAR_MACHINE.store
        assert analysis.total_var == pytest.approx(2 * 0.25 * c * c)


class TestPaperFigure3:
    def test_time_920_std_300(self, paper_program):
        from repro.workloads.paper_example import (
            EXPECTED_STD_DEV,
            EXPECTED_TIME,
            EXPECTED_VAR,
            FigureCostEstimator,
        )

        profile = oracle_program_profile(paper_program, runs=[{}])
        analysis = analyze(
            paper_program, profile, model=None, estimator=FigureCostEstimator()
        )
        assert analysis.total_time == pytest.approx(EXPECTED_TIME)
        assert analysis.total_var == pytest.approx(EXPECTED_VAR)
        assert analysis.total_std_dev == pytest.approx(EXPECTED_STD_DEV)

    def test_intermediate_values(self, paper_program):
        from repro.workloads.paper_example import FigureCostEstimator

        profile = oracle_program_profile(paper_program, runs=[{}])
        analysis = analyze(
            paper_program, profile, model=None, estimator=FigureCostEstimator()
        )
        main = analysis.main
        graph = main.ecfg.graph
        n2 = next(n.id for n in graph if "IF (N .LT. 0)" in n.text)
        header = next(n.id for n in graph if "IF (M .GE. 0)" in n.text)
        # VAR(n2) = 0.9*(100^2) - 90^2 = 900; VAR(header) = 900 too.
        assert main.variances.var[n2] == pytest.approx(900.0)
        assert main.variances.var[header] == pytest.approx(900.0)

    def test_case1_f_squared_scaling(self, paper_program):
        from repro.workloads.paper_example import FigureCostEstimator

        profile = oracle_program_profile(paper_program, runs=[{}])
        analysis = analyze(
            paper_program, profile, model=None, estimator=FigureCostEstimator()
        )
        main = analysis.main
        (preheader,) = main.ecfg.header_of
        # VAR(PH) = F^2 * VAR(header) = 100 * 900.
        assert main.variances.var[preheader] == pytest.approx(90000.0)


class TestLoopFrequencyVariance:
    LOOP = (
        "PROGRAM MAIN\nN = INT(INPUT(1))\nDO 10 I = 1, N\nX = X + 1.0\n"
        "10 CONTINUE\nEND\n"
    )

    def test_zero_model_is_default(self):
        _, a1 = analyzed(self.LOOP, run_specs=({"inputs": (5.0,)},))
        _, a2 = analyzed(
            self.LOOP, run_specs=({"inputs": (5.0,)},), loop_variance="zero"
        )
        assert a1.total_var == a2.total_var

    def test_distribution_model_increases_variance(self):
        specs = ({"inputs": (5.0,)},)
        _, zero = analyzed(self.LOOP, run_specs=specs)
        _, poisson = analyzed(
            self.LOOP, run_specs=specs,
            loop_variance=LoopDistribution.POISSON,
        )
        assert poisson.total_var > zero.total_var

    def test_geometric_exceeds_poisson(self):
        specs = ({"inputs": (20.0,)},)
        _, poisson = analyzed(
            self.LOOP, run_specs=specs, loop_variance=LoopDistribution.POISSON
        )
        _, geometric = analyzed(
            self.LOOP, run_specs=specs,
            loop_variance=LoopDistribution.GEOMETRIC,
        )
        assert geometric.total_var > poisson.total_var

    def test_constant_distribution_matches_zero(self):
        specs = ({"inputs": (5.0,)},)
        _, zero = analyzed(self.LOOP, run_specs=specs)
        _, const = analyzed(
            self.LOOP, run_specs=specs,
            loop_variance=LoopDistribution.CONSTANT,
        )
        assert const.total_var == zero.total_var

    def test_profiled_moments(self):
        # trip counts 4 and 8 across runs: header execs 5 and 9,
        # mean 7, VAR(F) = (25+81)/2 - 49 = 4.
        from repro import profile_program

        program = compile_source(self.LOOP)
        profile, _ = profile_program(
            program,
            runs=[{"inputs": (4.0,)}, {"inputs": (8.0,)}],
            record_loop_moments=True,
        )
        zero = analyze(program, profile, SCALAR_MACHINE)
        profiled = analyze(
            program, profile, SCALAR_MACHINE, loop_variance="profiled"
        )
        assert profiled.total_var > zero.total_var

    def test_custom_callable(self):
        specs = ({"inputs": (5.0,)},)
        calls = []

        def model(preheader, mean):
            calls.append((preheader, mean))
            return 0.0

        _, analysis = analyzed(self.LOOP, run_specs=specs, loop_variance=model)
        assert len(calls) == 1
        assert calls[0][1] == pytest.approx(6.0)


class TestDistributions:
    def test_constant(self):
        assert LoopDistribution.CONSTANT.variance(10.0) == 0.0

    def test_poisson(self):
        assert LoopDistribution.POISSON.variance(10.0) == 10.0

    def test_geometric(self):
        assert LoopDistribution.GEOMETRIC.variance(10.0) == 90.0

    def test_uniform(self):
        assert LoopDistribution.UNIFORM.variance(3.0) == 4.0

    def test_no_negative_variance(self):
        assert LoopDistribution.GEOMETRIC.variance(0.5) == 0.0
