"""Unit tests for the bottom-up TIME pass (Section 4).

The central invariant: the analytical TIME(START) computed from an
exact profile equals the measured interpreted cost exactly.
"""

import pytest

from repro import (
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.costs import OPTIMIZING_MACHINE, SCALAR_MACHINE


def time_matches_measurement(source, run_specs=({},), model=SCALAR_MACHINE):
    program = compile_source(source)
    total_cost = 0.0
    for spec in run_specs:
        total_cost += run_program(program, model=model, **spec).total_cost
    profile = oracle_program_profile(program, runs=list(run_specs))
    analysis = analyze(program, profile, model)
    expected_avg = total_cost / len(run_specs)
    assert analysis.total_time == pytest.approx(expected_avg, rel=1e-9), (
        f"TIME(START)={analysis.total_time} measured avg={expected_avg}"
    )
    return analysis


class TestExactIdentity:
    def test_straight_line(self):
        time_matches_measurement("PROGRAM MAIN\nX = 1.0\nY = X * 2.0\nEND\n")

    def test_branches(self):
        time_matches_measurement(
            "PROGRAM MAIN\nDO 10 I = 1, 9\n"
            "IF (MOD(I, 2) .EQ. 0) THEN\nX = X + 1.0\nELSE\nX = X - 1.0\n"
            "ENDIF\n10 CONTINUE\nEND\n"
        )

    def test_nested_loops(self):
        time_matches_measurement(
            "PROGRAM MAIN\nDO 20 I = 1, 4\nDO 10 J = 1, I\nX = X + 1.0\n"
            "10 CONTINUE\n20 CONTINUE\nEND\n"
        )

    def test_goto_loop(self):
        time_matches_measurement(
            "PROGRAM MAIN\nK = 0\n10 K = K + 1\nIF (K .LT. 7) GOTO 10\nEND\n"
        )

    def test_subroutine_calls(self):
        time_matches_measurement(
            "PROGRAM MAIN\nDO 10 I = 1, 5\nCALL WORK(X)\n10 CONTINUE\nEND\n"
            "SUBROUTINE WORK(X)\nX = X + SQRT(2.0)\nEND\n"
        )

    def test_function_calls_in_expressions(self):
        time_matches_measurement(
            "PROGRAM MAIN\nDO 10 I = 1, 5\nX = F(X) + F(1.0)\n10 CONTINUE\n"
            "END\nFUNCTION F(Y)\nF = Y * 0.5 + 1.0\nEND\n"
        )

    def test_conditional_call(self):
        time_matches_measurement(
            "PROGRAM MAIN\nDO 10 I = 1, 10\n"
            "IF (MOD(I, 3) .EQ. 0) CALL WORK(X)\n10 CONTINUE\nEND\n"
            "SUBROUTINE WORK(X)\nX = X + 1.0\nEND\n",
        )

    def test_multiple_runs_average(self):
        specs = [{"inputs": (float(n),)} for n in (3, 6, 12)]
        time_matches_measurement(
            "PROGRAM MAIN\nN = INT(INPUT(1))\nDO 10 I = 1, N\nX = X + 1.0\n"
            "10 CONTINUE\nEND\n",
            run_specs=specs,
        )

    def test_optimizing_machine(self):
        time_matches_measurement(
            "PROGRAM MAIN\nDO 10 I = 1, 6\nX = X * 1.5 + 2.0\n10 CONTINUE\nEND\n",
            model=OPTIMIZING_MACHINE,
        )

    def test_unstructured_programs(self):
        from repro.workloads.unstructured import ALL_SOURCES

        for name, source in sorted(ALL_SOURCES.items()):
            program = compile_source(source)
            specs = [{"inputs": (8.0,), "seed": s} for s in range(2)]
            total = sum(
                run_program(program, model=SCALAR_MACHINE, **spec).total_cost
                for spec in specs
            )
            profile = oracle_program_profile(program, runs=specs)
            analysis = analyze(program, profile, SCALAR_MACHINE)
            assert analysis.total_time == pytest.approx(total / 2, rel=1e-9), name

    def test_livermore_loops(self):
        from repro.workloads.livermore import livermore_source

        time_matches_measurement(livermore_source(n=24, n2=4))

    def test_simple_cfd(self):
        from repro.workloads.simple_cfd import simple_source

        time_matches_measurement(simple_source(n=8, ncycles=2))


class TestPerNodeTimes:
    def test_time_includes_descendants(self, paper_program):
        from repro.workloads.paper_example import FigureCostEstimator

        profile = oracle_program_profile(paper_program, runs=[{}])
        analysis = analyze(
            paper_program, profile, model=None, estimator=FigureCostEstimator()
        )
        main = analysis.main
        graph = main.ecfg.graph
        n2 = next(n.id for n in graph if "IF (N .LT. 0)" in n.text)
        # TIME(n2) = 1 + 0.9 * 100 = 91 (Figure 3).
        assert main.times[n2] == pytest.approx(91.0)

    def test_time_of_leaf_is_cost(self, paper_program):
        from repro.workloads.paper_example import FigureCostEstimator

        profile = oracle_program_profile(paper_program, runs=[{}])
        analysis = analyze(
            paper_program, profile, model=None, estimator=FigureCostEstimator()
        )
        main = analysis.main
        graph = main.ecfg.graph
        call = next(n.id for n in graph if "CALL FOO" in n.text)
        assert main.times[call] == pytest.approx(100.0)

    def test_preheader_time_is_frequency_weighted(self, paper_program):
        from repro.workloads.paper_example import FigureCostEstimator

        profile = oracle_program_profile(paper_program, runs=[{}])
        analysis = analyze(
            paper_program, profile, model=None, estimator=FigureCostEstimator()
        )
        main = analysis.main
        (preheader,) = main.ecfg.header_of
        # TIME(PH) = 10 * 92 = 920 (Figure 3).
        assert main.times[preheader] == pytest.approx(920.0)
