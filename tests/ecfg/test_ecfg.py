"""Unit tests for the extended CFG construction (Section 2)."""

import pytest

from repro.errors import AnalysisError
from repro.lang.parser import parse_program
from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeType, StmtKind
from repro.ecfg import build_ecfg


def ecfg_of(body_lines):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n"
    cfg = build_cfg(parse_program(source).main)
    return cfg, build_ecfg(cfg)


LOOP = ["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"]
GOTO_LOOP = ["10 X = X + 1.0", "IF (X .LT. 5.0) GOTO 10"]


class TestStartStop:
    def test_start_stop_added(self):
        cfg, ecfg = ecfg_of(["X = 1"])
        assert ecfg.graph.nodes[ecfg.start].type is NodeType.START
        assert ecfg.graph.nodes[ecfg.stop].type is NodeType.STOP

    def test_start_is_new_entry(self):
        cfg, ecfg = ecfg_of(["X = 1"])
        assert ecfg.graph.entry == ecfg.start
        assert ecfg.graph.exit == ecfg.stop

    def test_start_branches_to_first_node(self):
        cfg, ecfg = ecfg_of(["X = 1"])
        assert cfg.entry in ecfg.graph.successors(ecfg.start)

    def test_pseudo_start_stop_edge(self):
        cfg, ecfg = ecfg_of(["X = 1"])
        pseudo = [
            e for e in ecfg.graph.out_edges(ecfg.start) if e.is_pseudo
        ]
        assert len(pseudo) == 1
        assert pseudo[0].dst == ecfg.stop

    def test_original_graph_unmodified(self):
        cfg, ecfg = ecfg_of(LOOP)
        assert all(n.type is not NodeType.PREHEADER for n in cfg)

    def test_nonterminating_program_rejected(self):
        source = "PROGRAM MAIN\n10 X = 1.0\nGOTO 10\nEND\n"
        cfg = build_cfg(parse_program(source).main)
        with pytest.raises(AnalysisError):
            build_ecfg(cfg)


class TestPreheaders:
    def test_one_preheader_per_loop(self):
        cfg, ecfg = ecfg_of(LOOP)
        assert len(ecfg.preheader_of) == 1

    def test_header_marked(self):
        cfg, ecfg = ecfg_of(LOOP)
        (header,) = ecfg.preheader_of
        assert ecfg.graph.nodes[header].type is NodeType.HEADER

    def test_entry_edges_redirected_through_preheader(self):
        cfg, ecfg = ecfg_of(LOOP)
        header, preheader = next(iter(ecfg.preheader_of.items()))
        # In the ECFG the only non-back in-edge of the header is from
        # its preheader.
        in_srcs = {
            e.src
            for e in ecfg.graph.in_edges(header)
            if ecfg.graph.nodes[e.src].kind is not StmtKind.DO_INCR
        }
        assert in_srcs == {preheader}

    def test_preheader_unconditional_branch_to_header(self):
        cfg, ecfg = ecfg_of(LOOP)
        header, preheader = next(iter(ecfg.preheader_of.items()))
        assert ecfg.loop_label(preheader) == "U"

    def test_goto_loop_gets_preheader_too(self):
        cfg, ecfg = ecfg_of(GOTO_LOOP)
        assert len(ecfg.preheader_of) == 1

    def test_back_edge_not_redirected(self):
        cfg, ecfg = ecfg_of(GOTO_LOOP)
        header, preheader = next(iter(ecfg.preheader_of.items()))
        if_node = next(
            n for n in ecfg.graph if n.kind is StmtKind.IF
        )
        assert ecfg.graph.edge_to(if_node.id, "T").dst == header

    def test_nested_loops_two_preheaders(self):
        cfg, ecfg = ecfg_of(
            [
                "DO 20 I = 1, 4",
                "DO 10 J = 1, 3",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        assert len(ecfg.preheader_of) == 2

    def test_is_preheader(self):
        cfg, ecfg = ecfg_of(LOOP)
        (preheader,) = ecfg.header_of
        assert ecfg.is_preheader(preheader)
        assert not ecfg.is_preheader(ecfg.start)


class TestPostexits:
    def test_do_loop_has_one_postexit(self):
        cfg, ecfg = ecfg_of(LOOP)
        assert len(ecfg.postexit_source) == 1

    def test_postexit_splits_exit_edge(self):
        cfg, ecfg = ecfg_of(LOOP)
        (postexit,) = ecfg.postexit_source
        original = ecfg.postexit_source[postexit]
        # the exit edge now goes source --label--> postexit --U--> dest
        assert ecfg.graph.edge_to(original.src, original.label).dst == postexit
        assert ecfg.graph.successors(postexit) == [original.dst]

    def test_pseudo_edge_from_preheader_to_postexit(self):
        cfg, ecfg = ecfg_of(LOOP)
        (header,) = ecfg.preheader_of
        assert len(ecfg.postexits_of(header)) == 1

    def test_two_exits_two_postexits(self):
        cfg, ecfg = ecfg_of(
            [
                "DO 10 I = 1, 5",
                "IF (X .GT. 2.0) GOTO 20",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        assert len(ecfg.postexit_source) == 2
        (header,) = ecfg.preheader_of
        assert len(ecfg.postexits_of(header)) == 2

    def test_paper_example_postexits(self, paper_program):
        ecfg = paper_program.ecfgs["MAIN"]
        assert len(ecfg.postexit_source) == 2

    def test_pseudo_labels_distinct_per_source(self):
        cfg, ecfg = ecfg_of(
            [
                "DO 10 I = 1, 5",
                "IF (X .GT. 2.0) GOTO 20",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        (header,) = ecfg.preheader_of
        preheader = ecfg.preheader_of[header]
        pseudo_labels = [
            e.label for e in ecfg.graph.out_edges(preheader) if e.is_pseudo
        ]
        assert len(pseudo_labels) == len(set(pseudo_labels)) == 2


class TestEhdr:
    def test_preheader_lives_in_parent_interval(self):
        cfg, ecfg = ecfg_of(
            [
                "DO 20 I = 1, 4",
                "DO 10 J = 1, 3",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        outer, inner = ecfg.intervals.loop_headers
        inner_preheader = ecfg.preheader_of[inner]
        assert ecfg.ehdr[inner_preheader] == outer

    def test_postexit_lives_at_lca(self):
        cfg, ecfg = ecfg_of(LOOP)
        (postexit,) = ecfg.postexit_source
        assert ecfg.ehdr[postexit] == ecfg.intervals.root

    def test_interval_members_includes_synthetics(self):
        cfg, ecfg = ecfg_of(
            [
                "DO 20 I = 1, 4",
                "DO 10 J = 1, 3",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        outer, inner = ecfg.intervals.loop_headers
        members = ecfg.interval_members(outer)
        assert ecfg.preheader_of[inner] in members
