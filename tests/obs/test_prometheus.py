"""Prometheus text-exposition rendering, pinned by a golden file."""

from pathlib import Path

import pytest

from repro.obs import CONTENT_TYPE, MetricsRegistry, render_prometheus
from repro.obs.prometheus import _format_value

pytestmark = pytest.mark.obs

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


def build_reference_registry() -> MetricsRegistry:
    """A fixed registry exercising every exposition feature.

    Regenerate the golden file after an intentional format change with::

        PYTHONPATH=src:tests python -c "
        from obs.test_prometheus import build_reference_registry, GOLDEN
        from repro.obs import render_prometheus
        GOLDEN.write_text(render_prometheus(build_reference_registry()))"
    """
    reg = MetricsRegistry()
    requests = reg.counter(
        "repro_requests_total",
        "Requests by route and status.",
        labels=("route", "status"),
    )
    # insertion order differs from label-value sort order on purpose
    requests.inc(3, route="/profile", status="200")
    requests.inc(route="/compile", status="422")
    requests.inc(12, route="/compile", status="200")

    depth = reg.gauge("repro_queue_depth", "Admission-queue backlog.")
    depth.set(7)
    reg.gauge("repro_temperature")  # no help, no samples

    ratio = reg.gauge("repro_hit_ratio", "Cache hit ratio.")
    ratio.set(0.625)

    weird = reg.counter(
        "repro_escapes_total",
        'Help with a backslash \\ and a\nnewline.',
        labels=("path",),
    )
    weird.inc(path='C:\\temp\n"quoted"')

    latency = reg.histogram(
        "repro_request_seconds",
        "Request latency.",
        labels=("route",),
        buckets=(0.01, 0.1, 1.0),
    )
    for value in (0.005, 0.05, 0.5, 5.0):
        latency.observe(value, route="/compile")
    latency.observe(0.05, route="/profile")
    return reg


class TestGoldenFile:
    def test_rendering_matches_golden(self):
        assert render_prometheus(build_reference_registry()) == (
            GOLDEN.read_text()
        )

    def test_golden_has_histogram_invariants(self):
        text = GOLDEN.read_text()
        assert '_bucket{route="/compile",le="+Inf"} 4' in text
        assert 'repro_request_seconds_count{route="/compile"} 4' in text
        assert "# TYPE repro_request_seconds histogram" in text


class TestFormat:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_content_type_is_version_0_0_4(self):
        assert "version=0.0.4" in CONTENT_TYPE
        assert CONTENT_TYPE.startswith("text/plain")

    def test_value_formatting(self):
        assert _format_value(3.0) == "3"
        assert _format_value(0.625) == "0.625"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"

    def test_label_escaping_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("m", labels=("p",)).inc(p='a"b\\c\nd')
        text = render_prometheus(reg)
        assert 'm{p="a\\"b\\\\c\\nd"} 1' in text

    def test_help_line_omitted_when_empty(self):
        reg = MetricsRegistry()
        reg.counter("no_help").inc()
        text = render_prometheus(reg)
        assert "# HELP" not in text
        assert "# TYPE no_help counter" in text

    def test_series_ordering_is_deterministic(self):
        reg = MetricsRegistry()
        c = reg.counter("m", labels=("k",))
        c.inc(k="zebra")
        c.inc(k="apple")
        text = render_prometheus(reg)
        assert text.index('k="apple"') < text.index('k="zebra"')
