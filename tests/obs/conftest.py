"""Fixtures isolating the process-global tracer and registry."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    RingBufferSink,
    configure_tracing,
    disable_tracing,
    set_registry,
)


@pytest.fixture
def fresh_registry():
    """Swap in an empty metrics registry for the duration of a test."""
    registry = MetricsRegistry()
    old = set_registry(registry)
    yield registry
    set_registry(old)


@pytest.fixture
def ring():
    """Enable tracing into a fresh ring buffer; disable afterwards."""
    sink = RingBufferSink()
    configure_tracing(sink)
    yield sink
    disable_tracing()
