"""Metrics registry semantics, including concurrent exactness."""

import asyncio
import threading

import pytest

from repro.obs import MetricsRegistry, set_registry
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    registry as global_registry,
)

pytestmark = pytest.mark.obs


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "Hits.")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_counter_cannot_decrease(self):
        c = MetricsRegistry().counter("hits")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labels_make_distinct_series(self):
        c = MetricsRegistry().counter("lookups", labels=("tier",))
        c.inc(tier="memory")
        c.inc(tier="memory")
        c.inc(tier="disk")
        assert c.value(tier="memory") == 2
        assert c.value(tier="disk") == 1
        assert c.value(tier="miss") == 0

    def test_wrong_labels_raise(self):
        c = MetricsRegistry().counter("lookups", labels=("tier",))
        with pytest.raises(MetricError):
            c.inc()  # missing label
        with pytest.raises(MetricError):
            c.inc(tier="x", extra="y")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12

    def test_gauges_go_negative(self):
        g = MetricsRegistry().gauge("delta")
        g.dec(2)
        assert g.value() == -2


class TestHistogram:
    def test_bucket_counts_sum_to_total(self):
        h = MetricsRegistry().histogram(
            "lat", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 5.0, 50.0, 0.5):
            h.observe(value)
        (series,) = h._snapshot()
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(56.05)
        # cumulative buckets: the +Inf bucket equals the count
        assert series["buckets"][float("inf")] == 5
        assert series["buckets"][0.1] == 1
        assert series["buckets"][1.0] == 3
        assert series["buckets"][10.0] == 4

    def test_boundary_value_lands_in_le_bucket(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" must include exactly 1.0
        (series,) = h._snapshot()
        assert series["buckets"][1.0] == 1

    def test_count_and_sum_accessors(self):
        h = MetricsRegistry().histogram("lat", labels=("route",))
        h.observe(0.2, route="/compile")
        h.observe(0.3, route="/compile")
        assert h.count(route="/compile") == 2
        assert h.sum(route="/compile") == pytest.approx(0.5)
        assert h.count(route="/profile") == 0

    def test_empty_buckets_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().histogram("lat", buckets=())

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", "Hits.")
        b = reg.counter("hits")
        assert a is b

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(MetricError):
            reg.gauge("thing")
        with pytest.raises(MetricError):
            reg.histogram("thing")

    def test_label_set_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing", labels=("a",))
        with pytest.raises(MetricError):
            reg.counter("thing", labels=("b",))
        with pytest.raises(MetricError):
            reg.counter("thing")

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.counter("b_metric")
        reg.gauge("a_metric")
        assert reg.names() == ["a_metric", "b_metric"]
        assert reg.get("a_metric").kind == "gauge"
        assert reg.get("missing") is None

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits", "Hits.", labels=("tier",)).inc(tier="memory")
        snap = reg.snapshot()
        assert snap["hits"]["type"] == "counter"
        assert snap["hits"]["help"] == "Hits."
        assert snap["hits"]["values"] == [
            {"labels": {"tier": "memory"}, "value": 1.0}
        ]

    def test_set_registry_swaps_global(self):
        mine = MetricsRegistry()
        old = set_registry(mine)
        try:
            assert global_registry() is mine
        finally:
            set_registry(old)
        assert global_registry() is old


class TestConcurrency:
    def test_counter_exact_under_threads(self):
        c = MetricsRegistry().counter("hits", labels=("worker",))
        threads = 8
        per_thread = 2000

        def work(i):
            for _ in range(per_thread):
                c.inc(worker=str(i % 2))

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = c.value(worker="0") + c.value(worker="1")
        assert total == threads * per_thread

    def test_histogram_exact_under_threads(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.5, 1.5))
        threads = 6
        per_thread = 999  # divisible by 3: residues land evenly

        def work():
            for i in range(per_thread):
                h.observe(float(i % 3))  # 0.0, 1.0, 2.0

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        (series,) = h._snapshot()
        assert series["count"] == threads * per_thread
        # bucket counts are internally consistent, not torn
        assert series["buckets"][float("inf")] == series["count"]
        assert series["buckets"][0.5] == threads * per_thread // 3
        assert series["buckets"][1.5] == 2 * threads * per_thread // 3

    def test_exact_under_asyncio_tasks(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", labels=("task",))
        h = reg.histogram("dur", buckets=(1.0,))

        async def work(i):
            for _ in range(500):
                c.inc(task=str(i))
                h.observe(0.5)
                await asyncio.sleep(0)

        async def main():
            await asyncio.gather(*(work(i) for i in range(4)))

        asyncio.run(main())
        assert sum(c.value(task=str(i)) for i in range(4)) == 2000
        assert h.count() == 2000

    def test_snapshot_is_consistent_while_writers_run(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                h.observe(0.5)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snap = reg.snapshot()
                values = snap["lat"]["values"]
                if not values:
                    continue
                (series,) = values
                # count, sum and buckets come from one atomic pass
                assert series["buckets"][float("inf")] == series["count"]
                assert series["sum"] == pytest.approx(
                    0.5 * series["count"]
                )
        finally:
            stop.set()
            thread.join()
