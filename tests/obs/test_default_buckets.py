"""Registry-level default histogram buckets and the sub-ms preset."""

from __future__ import annotations

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, SUBMILLI_BUCKETS

pytestmark = pytest.mark.obs


class TestRegistryDefaults:
    def test_registry_default_is_the_module_default(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_custom_default_buckets_apply_when_unspecified(self):
        reg = MetricsRegistry(default_buckets=SUBMILLI_BUCKETS)
        h = reg.histogram("latency")
        assert h.buckets == tuple(sorted(SUBMILLI_BUCKETS))

    def test_explicit_buckets_beat_the_registry_default(self):
        reg = MetricsRegistry(default_buckets=SUBMILLI_BUCKETS)
        h = reg.histogram("latency", buckets=(1.0, 2.0))
        assert h.buckets == (1.0, 2.0)

    def test_submilli_preset_shape(self):
        assert SUBMILLI_BUCKETS == tuple(sorted(SUBMILLI_BUCKETS))
        assert SUBMILLI_BUCKETS[0] == pytest.approx(1e-6)
        assert SUBMILLI_BUCKETS[-1] <= 0.025
        # The preset resolves microsecond-scale spans the default
        # request buckets lump into their first bucket.
        assert sum(1 for b in SUBMILLI_BUCKETS if b < 0.001) >= 8

    def test_observations_land_in_submilli_buckets(self):
        reg = MetricsRegistry(default_buckets=SUBMILLI_BUCKETS)
        h = reg.histogram("span_seconds")
        h.observe(0.00003)  # 30 µs
        h.observe(0.002)  # 2 ms (overflow bucket of the sub-ms preset)
        assert h.count() == 2
        assert h.sum() == pytest.approx(0.00203)
