"""Chrome trace-event export of collected spans."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    chrome_trace_events,
    render_chrome_trace,
    span,
    write_chrome_trace,
)
from repro.obs.trace import SpanRecord

pytestmark = pytest.mark.obs


def record(name, trace_id, span_id, start, duration, **kwargs):
    return SpanRecord(
        name=name,
        trace_id=trace_id,
        span_id=span_id,
        parent_id=kwargs.get("parent_id", ""),
        start=start,
        end=start + duration,
        attrs=kwargs.get("attrs", {}),
        error=kwargs.get("error"),
    )


class TestEventMapping:
    def test_empty_input(self):
        assert chrome_trace_events([]) == []

    def test_complete_events_with_rebased_microseconds(self):
        events = chrome_trace_events(
            [
                record("compile.parse", "t1", "b", 10.0005, 0.0002),
                record("compile", "t1", "a", 10.0, 0.001),
            ]
        )
        # Sorted by start, timestamps rebased to the earliest span.
        assert [e["name"] for e in events] == ["compile", "compile.parse"]
        assert events[0]["ph"] == "X"
        assert events[0]["ts"] == pytest.approx(0.0)
        assert events[0]["dur"] == pytest.approx(1000.0)  # 1 ms in µs
        assert events[1]["ts"] == pytest.approx(500.0)
        assert events[1]["dur"] == pytest.approx(200.0)

    def test_category_is_the_name_prefix(self):
        (event,) = chrome_trace_events(
            [record("validate.measure", "t1", "a", 0.0, 0.1)]
        )
        assert event["cat"] == "validate"

    def test_each_trace_gets_its_own_lane(self):
        events = chrome_trace_events(
            [
                record("a", "trace-1", "s1", 0.0, 0.1),
                record("b", "trace-2", "s2", 0.05, 0.1),
                record("c", "trace-1", "s3", 0.2, 0.1),
            ]
        )
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["a"] == tids["c"]
        assert tids["a"] != tids["b"]

    def test_args_carry_ids_attrs_and_errors(self):
        (event,) = chrome_trace_events(
            [
                record(
                    "profile.run",
                    "t1",
                    "child",
                    0.0,
                    0.1,
                    parent_id="root",
                    attrs={"runs": 3},
                    error="BOOM",
                )
            ]
        )
        assert event["args"]["trace_id"] == "t1"
        assert event["args"]["span_id"] == "child"
        assert event["args"]["parent_id"] == "root"
        assert event["args"]["runs"] == 3
        assert event["args"]["error"] == "BOOM"


class TestRenderAndWrite:
    def test_render_is_loadable_json(self):
        text = render_chrome_trace(
            [record("a", "t", "s", 0.0, 0.5)]
        )
        doc = json.loads(text)
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 1

    def test_write_returns_event_count(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(
            [
                record("a", "t", "s1", 0.0, 0.5),
                record("b", "t", "s2", 0.5, 0.5),
            ],
            path,
        )
        assert n == 2
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_real_spans_roundtrip(self, ring, tmp_path):
        with span("outer", attrs={"k": "v"}):
            with span("outer.inner"):
                pass
        path = tmp_path / "trace.json"
        n = write_chrome_trace(ring.drain(), path)
        assert n == 2
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert names == {"outer", "outer.inner"}


class TestCli:
    def test_trace_chrome_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "chrome.json"
        assert main(["trace", "paper", "--chrome-trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"], "expected at least one event"
        assert any(
            e["name"] == "trace" for e in doc["traceEvents"]
        )
