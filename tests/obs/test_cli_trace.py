"""The ``repro trace`` command and the ``--trace-out`` flags."""

import json

import pytest

from repro.cli import main
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.obs


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "paper.mft"
    path.write_text(PAPER_SOURCE)
    return str(path)


class TestTraceCommand:
    def test_prints_nested_latency_tree(self, source_file, capsys):
        assert main(["trace", source_file]) == 0
        out = capsys.readouterr().out
        for stage in (
            "compile.parse",
            "compile.fcdg",
            "plan.smart",
            "check.verify",
            "profile.run",
            "analyze",
        ):
            assert stage in out
        assert "└─" in out  # actual tree structure, not a flat list
        assert "total" in out and "self" in out
        assert "root(s)" in out

    def test_builtin_name_fallback(self, capsys):
        # examples/paper is not a file: resolves to the built-in
        assert main(["trace", "examples/paper"]) == 0
        out = capsys.readouterr().out
        assert "target=builtin:paper" in out
        assert "compile.parse" in out

    def test_unknown_target_fails_cleanly(self, capsys):
        assert main(["trace", "examples/nonexistent"]) == 1
        err = capsys.readouterr().err
        assert "no built-in workload" in err

    def test_trace_out_writes_jsonl(self, source_file, tmp_path, capsys):
        out_path = tmp_path / "spans.jsonl"
        assert main(["trace", source_file, "--trace-out", str(out_path)]) == 0
        records = [
            json.loads(line)
            for line in out_path.read_text().strip().splitlines()
        ]
        names = {record["name"] for record in records}
        assert "trace" in names
        assert "compile" in names
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1
        assert all(r["duration"] >= 0 for r in records)

    def test_naive_plan_and_runs_flags(self, source_file, capsys):
        assert main(["trace", source_file, "--plan", "naive",
                     "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "plan.naive" in out

    def test_tracing_disabled_after_command(self, source_file, capsys):
        from repro.obs import tracer

        assert main(["trace", source_file]) == 0
        assert tracer().enabled is False


class TestBatchTraceOut:
    def test_batch_spans_jsonl(self, source_file, tmp_path, capsys):
        out_path = tmp_path / "batch.jsonl"
        assert main([
            "batch", source_file, "--mode", "serial",
            "--trace-out", str(out_path),
        ]) == 0
        names = {
            json.loads(line)["name"]
            for line in out_path.read_text().strip().splitlines()
        }
        assert "batch" in names
        assert "batch.item" in names
        assert "compile" in names
