"""JSONL span sink atomicity on abnormal exit.

The sink is line-buffered and registers an atexit close, so a process
dying mid-batch — unhandled exception or SIGTERM — must leave a file
of complete JSON records only, never one truncated partway through.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import JsonlSink, configure_tracing, disable_tracing, span

pytestmark = pytest.mark.obs

#: A child process that emits spans and then dies the requested way.
CRASH_SCRIPT = """
import os, signal, sys
from repro.obs import JsonlSink, configure_tracing, span

path, mode = sys.argv[1], sys.argv[2]
sink = JsonlSink(path)
configure_tracing(sink)
for i in range(200):
    with span("crashy.work", attrs={"i": i, "pad": "x" * 256}):
        pass
    if i == 150:
        if mode == "sigterm":
            os.kill(os.getpid(), signal.SIGTERM)
        elif mode == "exception":
            raise RuntimeError("mid-batch failure")
"""


def assert_all_lines_complete(path: Path, at_least: int) -> list[dict]:
    text = path.read_text()
    assert text.endswith("\n"), "file must end at a record boundary"
    records = [json.loads(line) for line in text.splitlines()]
    assert len(records) >= at_least
    assert all(r["name"] == "crashy.work" for r in records)
    return records


def run_crasher(path: Path, mode: str) -> subprocess.CompletedProcess:
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", CRASH_SCRIPT, str(path), mode],
        capture_output=True,
        text=True,
        timeout=60,
        env=env,
    )


class TestAbnormalExit:
    def test_sigterm_mid_batch_leaves_complete_records(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        result = run_crasher(path, "sigterm")
        assert result.returncode != 0  # killed
        assert_all_lines_complete(path, at_least=150)

    def test_unhandled_exception_leaves_complete_records(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        result = run_crasher(path, "exception")
        assert result.returncode == 1
        assert "mid-batch failure" in result.stderr
        records = assert_all_lines_complete(path, at_least=151)
        # Every span emitted before the crash made it to disk.
        assert [r["attrs"]["i"] for r in records] == list(range(len(records)))

    def test_clean_run_flushes_everything(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        result = run_crasher(path, "none")
        assert result.returncode == 0
        assert_all_lines_complete(path, at_least=200)


class TestInProcessSemantics:
    def test_write_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(path)
        configure_tracing(sink)
        try:
            with span("one"):
                pass
            sink.close()
            with span("two"):
                pass  # dropped, not an error
        finally:
            disable_tracing()
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["one"]

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "spans.jsonl")
        sink.close()
        sink.close()
