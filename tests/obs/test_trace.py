"""Span mechanics: nesting, ids, sinks, propagation, no-op path."""

import json
import threading

import pytest

from repro.obs import (
    JsonlSink,
    RingBufferSink,
    configure_tracing,
    current_context,
    disable_tracing,
    format_traceparent,
    parse_traceparent,
    span,
    traced,
    tracer,
)
from repro.obs.trace import _NULL_SPAN

pytestmark = pytest.mark.obs


class TestNesting:
    def test_parent_child_ids(self, ring):
        with span("outer") as outer:
            with span("inner") as inner:
                pass
        records = {r.name: r for r in ring.drain()}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["inner"].trace_id == records["outer"].trace_id
        assert records["outer"].parent_id is None
        assert outer.record.span_id != inner.record.span_id

    def test_siblings_share_parent(self, ring):
        with span("root"):
            with span("a"):
                pass
            with span("b"):
                pass
        records = {r.name: r for r in ring.drain()}
        assert records["a"].parent_id == records["root"].span_id
        assert records["b"].parent_id == records["root"].span_id
        assert records["a"].span_id != records["b"].span_id

    def test_separate_roots_get_separate_traces(self, ring):
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = ring.drain()
        assert first.trace_id != second.trace_id

    def test_durations_nest(self, ring):
        with span("outer"):
            with span("inner"):
                pass
        records = {r.name: r for r in ring.drain()}
        assert records["outer"].duration >= records["inner"].duration >= 0

    def test_explicit_parent_override(self, ring):
        context = ("ab" * 16, "cd" * 8)
        with span("adopted", parent=context):
            pass
        (record,) = ring.drain()
        assert record.trace_id == context[0]
        assert record.parent_id == context[1]

    def test_attach_adopts_context_in_thread(self, ring):
        with span("request"):
            context = current_context()
        results = []

        def worker():
            with tracer().attach(context):
                with span("thread-work"):
                    pass
            results.append(True)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        records = {r.name: r for r in ring.drain()}
        assert results == [True]
        assert (
            records["thread-work"].parent_id == records["request"].span_id
        )


class TestAttrsAndErrors:
    def test_attrs_at_creation_and_set_attr(self, ring):
        with span("work", attrs={"items": 3}) as sp:
            sp.set_attr(tier="memory")
        (record,) = ring.drain()
        assert record.attrs == {"items": 3, "tier": "memory"}

    def test_exception_is_recorded_and_propagates(self, ring):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        (record,) = ring.drain()
        assert record.error == "ValueError: boom"
        assert record.end >= record.start

    def test_broken_sink_never_fails_the_work(self):
        class BadSink:
            def on_end(self, record):
                raise RuntimeError("sink is broken")

        good = RingBufferSink()
        configure_tracing(BadSink(), good)
        try:
            with span("survives"):
                pass
        finally:
            disable_tracing()
        assert [r.name for r in good.drain()] == ["survives"]


class TestDisabledFastPath:
    def test_disabled_returns_shared_null_span(self):
        disable_tracing()
        assert span("anything") is _NULL_SPAN
        assert span("other", attrs={"x": 1}) is _NULL_SPAN

    def test_null_span_is_inert(self):
        disable_tracing()
        with span("ignored") as sp:
            sp.set_attr(whatever=1)
        assert current_context() is None

    def test_disable_drops_sinks(self, ring):
        disable_tracing()
        with span("after-disable"):
            pass
        assert ring.drain() == []


class TestDecorator:
    def test_traced_records_qualname_by_default(self, ring):
        @traced()
        def compute(x):
            return x * 2

        assert compute(21) == 42
        (record,) = ring.drain()
        assert record.name.endswith("compute")

    def test_traced_with_name_and_attrs(self, ring):
        @traced("custom.stage", kind="test")
        def helper():
            return "ok"

        assert helper() == "ok"
        (record,) = ring.drain()
        assert record.name == "custom.stage"
        assert record.attrs == {"kind": "test"}


class TestSinks:
    def test_ring_buffer_bounds_capacity(self):
        sink = RingBufferSink(capacity=4)
        configure_tracing(sink)
        try:
            for i in range(10):
                with span(f"s{i}"):
                    pass
        finally:
            disable_tracing()
        names = [r.name for r in sink.drain()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert sink.drain() == []  # drain empties the buffer

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(path)
        configure_tracing(sink)
        try:
            with span("outer", attrs={"n": 1}):
                with span("inner"):
                    pass
        finally:
            disable_tracing()
            sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [rec["name"] for rec in lines] == ["inner", "outer"]
        outer = lines[1]
        assert outer["attrs"] == {"n": 1}
        assert lines[0]["parent_id"] == outer["span_id"]

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        from repro.obs import SpanRecord

        sink = JsonlSink(tmp_path / "spans.jsonl")
        sink.close()
        sink.close()
        # writes after close are dropped, not an error
        sink.on_end(
            SpanRecord(
                name="late",
                trace_id="ab" * 16,
                span_id="cd" * 8,
                parent_id=None,
                start=0.0,
                end=1.0,
            )
        )


class TestTraceparent:
    def test_round_trip(self):
        context = ("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
        header = format_traceparent(context)
        assert header == (
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
        )
        assert parse_traceparent(header) == context

    def test_parse_rejects_garbage(self):
        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None
        assert parse_traceparent("not-a-header") is None
        assert parse_traceparent("00-abc-def-01") is None  # wrong lengths
        assert parse_traceparent("00-" + "z" * 32 + "-" + "a" * 16 + "-01") is None
        assert (
            parse_traceparent("00-" + "0" * 32 + "-" + "a" * 16 + "-01")
            is None
        )  # all-zero trace id
        assert (
            parse_traceparent("00-" + "a" * 32 + "-" + "0" * 16 + "-01")
            is None
        )  # all-zero span id

    def test_parse_lowercases(self):
        header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8)

    def test_current_context_flows_into_header(self, ring):
        with span("request"):
            context = current_context()
            header = format_traceparent(context)
        assert parse_traceparent(header) == context
