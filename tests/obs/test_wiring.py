"""Instrumentation wiring: the pipeline, checker, cache and batch
engine emit the documented spans and metrics."""

import pytest

from repro import (
    analyze,
    compile_source,
    naive_program_plan,
    profile_program,
    smart_program_plan,
)
from repro.batch import BatchItem, run_batch
from repro.batch.cache import ArtifactCache
from repro.checker import check_source, verify_program
from repro.workloads.paper_example import PAPER_SOURCE

pytestmark = pytest.mark.obs


def span_names(ring):
    return sorted({record.name for record in ring.drain()})


class TestPipelineSpans:
    def test_compile_emits_stage_spans(self, ring, fresh_registry):
        compile_source(PAPER_SOURCE)
        names = span_names(ring)
        for expected in (
            "compile",
            "compile.parse",
            "compile.cfg",
            "compile.ecfg",
            "compile.fcdg",
            "compile.callgraph",
        ):
            assert expected in names
        assert (
            fresh_registry.get("repro_compile_total").value() == 1
        )
        assert fresh_registry.get("repro_compile_seconds").count() == 1

    def test_stage_spans_nest_under_compile(self, ring, fresh_registry):
        compile_source(PAPER_SOURCE)
        records = {r.name: r for r in ring.drain()}
        root = records["compile"]
        assert records["compile.fcdg"].parent_id == root.span_id
        assert records["compile.fcdg"].trace_id == root.trace_id

    def test_plan_profile_analyze_spans(self, ring, fresh_registry):
        program = compile_source(PAPER_SOURCE)
        smart_program_plan(program)
        naive_program_plan(program)
        profile, _ = profile_program(program, runs=2)
        analyze(program, profile)
        names = span_names(ring)
        for expected in (
            "plan.smart",
            "plan.naive",
            "profile",
            "profile.run",
            "profile.reconstruct",
            "analyze",
        ):
            assert expected in names
        plans = fresh_registry.get("repro_plan_builds_total")
        assert plans.value(kind="smart") == 2  # profile_program re-plans
        assert plans.value(kind="naive") == 1
        assert fresh_registry.get("repro_profile_runs_total").value() == 2


class TestCheckerSpans:
    def test_verify_program_spans_and_outcome(self, ring, fresh_registry):
        program = compile_source(PAPER_SOURCE)
        plan = smart_program_plan(program)
        report = verify_program(program, plan, program_id="paper")
        names = span_names(ring)
        assert "check.verify" in names
        assert "check.structure" in names
        assert "check.plan" in names
        assert not report.errors
        checks = fresh_registry.get("repro_checks_total")
        assert checks.value(outcome="clean") == 1
        assert checks.value(outcome="errors") == 0

    def test_check_source_includes_lint_span(self, ring, fresh_registry):
        check_source(PAPER_SOURCE, program_id="paper")
        names = span_names(ring)
        assert "check" in names
        assert "check.lint" in names


class TestCacheMetrics:
    def test_lookup_tiers_are_counted(self, fresh_registry):
        cache = ArtifactCache(None)
        cache.artifacts(PAPER_SOURCE, "smart")
        cache.artifacts(PAPER_SOURCE, "smart")
        lookups = fresh_registry.get("repro_cache_lookups_total")
        assert lookups.value(tier="miss") == 1
        assert lookups.value(tier="memory") == 1
        assert lookups.value(tier="disk") == 0


class TestBatchEngine:
    def test_serial_batch_spans_and_counters(self, ring, fresh_registry):
        items = [
            BatchItem(id="a", source=PAPER_SOURCE),
            BatchItem(id="broken", source="NOT MINIFORT\n"),
        ]
        report = run_batch(items, mode="serial")
        names = span_names(ring)
        assert "batch" in names
        assert "batch.item" in names
        assert "batch.analyze" in names
        assert len(report.ok) == 1
        outcomes = fresh_registry.get("repro_batch_items_total")
        assert outcomes.value(status="ok") == 1
        assert outcomes.value(status="compile") == 1
        assert (
            fresh_registry.get("repro_batches_total").value(mode="serial")
            == 1
        )
        assert fresh_registry.get("repro_batch_seconds").count() == 1

    def test_item_span_records_cache_tier(self, ring, fresh_registry):
        run_batch(
            [
                BatchItem(id="x", source=PAPER_SOURCE),
                BatchItem(id="y", source=PAPER_SOURCE),
            ],
            mode="serial",
        )
        tiers = [
            record.attrs.get("cache_tier")
            for record in ring.drain()
            if record.name == "batch.item"
        ]
        assert sorted(tiers) == ["compiled", "memory"]


class TestDisabledOverheadPath:
    def test_pipeline_works_with_tracing_off(self, fresh_registry):
        # no ring fixture: tracing stays disabled; metrics still count
        program = compile_source(PAPER_SOURCE)
        profile, _ = profile_program(program, runs=1)
        analysis = analyze(program, profile)
        assert analysis.total_time > 0
        assert fresh_registry.get("repro_compile_total").value() == 1
