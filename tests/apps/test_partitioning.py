"""Tests for the TIME/VAR-driven task partitioner."""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
)
from repro.apps.partitioning import partition_program


def analyzed(source, run_specs=({},)):
    program = compile_source(source)
    profile = oracle_program_profile(program, runs=list(run_specs))
    return analyze(program, profile, SCALAR_MACHINE)


HOT_LOOP = (
    "PROGRAM MAIN\n"
    "DO 10 I = 1, 400\n"
    "X = X + SQRT(REAL(I)) * EXP(0.01)\n"
    "10 CONTINUE\n"
    "Y = 1.0\n"
    "END\n"
)

TINY_LOOP = (
    "PROGRAM MAIN\nDO 10 I = 1, 3\nX = X + 1.0\n10 CONTINUE\nEND\n"
)


class TestLoopDecisions:
    def test_hot_loop_chosen(self):
        analysis = analyzed(HOT_LOOP)
        partition = partition_program(
            analysis, n_processors=8, spawn_overhead=50.0
        )
        assert len(partition.chosen_loops) == 1
        task = partition.chosen_loops[0]
        assert task.parallel_time < task.sequential_time
        assert task.chunk >= 1

    def test_tiny_loop_rejected(self):
        analysis = analyzed(TINY_LOOP)
        partition = partition_program(
            analysis, n_processors=8, spawn_overhead=500.0
        )
        assert partition.chosen_loops == []
        assert partition.estimated_speedup == pytest.approx(1.0)

    def test_higher_overhead_fewer_tasks(self):
        analysis = analyzed(HOT_LOOP)
        cheap = partition_program(analysis, spawn_overhead=10.0)
        expensive = partition_program(analysis, spawn_overhead=1e9)
        assert len(expensive.chosen_loops) <= len(cheap.chosen_loops)
        assert expensive.chosen_loops == []

    def test_nested_loops_outer_preferred(self):
        source = (
            "PROGRAM MAIN\n"
            "DO 20 I = 1, 50\n"
            "DO 10 J = 1, 50\n"
            "X = X + SQRT(REAL(J))\n"
            "10 CONTINUE\n"
            "20 CONTINUE\n"
            "END\n"
        )
        analysis = analyzed(source)
        partition = partition_program(
            analysis, n_processors=4, spawn_overhead=20.0
        )
        chosen = partition.chosen_loops
        assert len(chosen) == 1
        # the chosen loop is the outer one (shallower depth).
        main = analysis.main
        depths = {
            h: main.ecfg.intervals.depth_of(h)
            for h in main.ecfg.preheader_of
        }
        assert depths[chosen[0].header] == min(depths.values())

    def test_speedup_bounded_by_processors(self):
        analysis = analyzed(HOT_LOOP)
        partition = partition_program(
            analysis, n_processors=4, spawn_overhead=1.0
        )
        assert 1.0 <= partition.estimated_speedup <= 4.0 + 1e-9


class TestCallDecisions:
    SOURCE = (
        "PROGRAM MAIN\n"
        "CALL BIG(X)\n"
        "CALL SMALL(Y)\n"
        "END\n"
        "SUBROUTINE BIG(X)\n"
        "DO 10 I = 1, 500\nX = X + SQRT(REAL(I))\n10 CONTINUE\n"
        "END\n"
        "SUBROUTINE SMALL(Y)\nY = Y + 1.0\nEND\n"
    )

    def test_heavy_callee_task_worthy(self):
        analysis = analyzed(self.SOURCE)
        partition = partition_program(
            analysis, spawn_overhead=50.0, call_spawn_factor=2.0
        )
        by_callee = {c.callee: c for c in partition.calls}
        assert by_callee["BIG"].profitable
        assert not by_callee["SMALL"].profitable

    def test_call_counts_per_run(self):
        analysis = analyzed(self.SOURCE)
        partition = partition_program(analysis)
        by_callee = {c.callee: c for c in partition.calls}
        assert by_callee["BIG"].calls_per_run == pytest.approx(1.0)

    def test_unexecuted_calls_excluded(self):
        source = (
            "PROGRAM MAIN\nX = 1.0\nIF (X .LT. 0.0) CALL NEVER(X)\nEND\n"
            "SUBROUTINE NEVER(X)\nX = 2.0\nEND\n"
        )
        analysis = analyzed(source)
        partition = partition_program(analysis)
        assert partition.calls == []


class TestVarianceInfluence:
    def test_bursty_loop_gets_smaller_chunks(self):
        steady = analyzed(HOT_LOOP)
        bursty = analyzed(
            "PROGRAM MAIN\n"
            "DO 20 I = 1, 400\n"
            "M = IRAND(0, 30)\n"
            "DO 10 J = 1, M\n"
            "X = X + SQRT(REAL(J))\n"
            "10 CONTINUE\n"
            "20 CONTINUE\n"
            "END\n",
            run_specs=({"seed": 1},),
        )
        steady_part = partition_program(
            steady, n_processors=8, spawn_overhead=50.0
        )
        bursty_part = partition_program(
            bursty, n_processors=8, spawn_overhead=50.0
        )
        steady_outer = steady_part.loops[0]
        bursty_outer = next(
            t for t in bursty_part.loops if t.iterations > 100
        )
        # relative chunk size (chunk / iterations) shrinks as the
        # per-iteration variability grows.
        assert (bursty_outer.chunk / bursty_outer.iterations) < (
            steady_outer.chunk / steady_outer.iterations
        )
