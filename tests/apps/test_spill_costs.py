"""Tests for frequency-weighted spill costs."""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
)
from repro.apps.spill_costs import register_allocation_advice, spill_costs


def analyzed(source, run_specs=({},)):
    program = compile_source(source)
    profile = oracle_program_profile(program, runs=list(run_specs))
    return analyze(program, profile, SCALAR_MACHINE)


class TestSpillCosts:
    HOT_COLD = (
        "PROGRAM MAIN\n"
        "COLD = 1.0\n"
        "DO 10 I = 1, 100\n"
        "HOT = HOT + 1.0\n"
        "10 CONTINUE\n"
        "COLD = COLD + 2.0\n"
        "END\n"
    )

    def test_loop_variable_outranks_cold_one(self):
        analysis = analyzed(self.HOT_COLD)
        ranked = spill_costs(analysis, "MAIN", SCALAR_MACHINE)
        names = [r.name for r in ranked]
        assert names.index("HOT") < names.index("COLD")

    def test_do_index_counted(self):
        analysis = analyzed(self.HOT_COLD)
        by_name = {r.name: r for r in spill_costs(analysis, "MAIN",
                                                  SCALAR_MACHINE)}
        # DO_INIT writes I once; DO_INCR reads+writes it 100 times.
        assert by_name["I"].writes == pytest.approx(101.0)
        assert by_name["I"].reads == pytest.approx(100.0)

    def test_access_counts_weighted_by_frequency(self):
        analysis = analyzed(self.HOT_COLD)
        by_name = {r.name: r for r in spill_costs(analysis, "MAIN",
                                                  SCALAR_MACHINE)}
        # HOT: one read + one write per iteration.
        assert by_name["HOT"].reads == pytest.approx(100.0)
        assert by_name["HOT"].writes == pytest.approx(100.0)
        assert by_name["COLD"].accesses == pytest.approx(3.0)

    def test_cost_formula(self):
        analysis = analyzed(self.HOT_COLD)
        by_name = {r.name: r for r in spill_costs(analysis, "MAIN",
                                                  SCALAR_MACHINE)}
        hot = by_name["HOT"]
        assert hot.cost == pytest.approx(
            hot.reads * SCALAR_MACHINE.load + hot.writes * SCALAR_MACHINE.store
        )

    def test_arrays_excluded(self):
        source = (
            "PROGRAM MAIN\nREAL A(10)\nDO 10 I = 1, 10\nA(I) = REAL(I)\n"
            "10 CONTINUE\nEND\n"
        )
        analysis = analyzed(source)
        names = {r.name for r in spill_costs(analysis, "MAIN",
                                             SCALAR_MACHINE)}
        assert "A" not in names
        assert "I" in names

    def test_constants_excluded(self):
        source = (
            "PROGRAM MAIN\nPARAMETER (N = 5)\nDO 10 I = 1, N\nX = X + N\n"
            "10 CONTINUE\nEND\n"
        )
        analysis = analyzed(source)
        names = {r.name for r in spill_costs(analysis, "MAIN",
                                             SCALAR_MACHINE)}
        assert "N" not in names

    def test_branch_condition_reads_counted(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 50\n"
            "IF (FLAGVAL .GT. 0.5) X = X + 1.0\n10 CONTINUE\nEND\n"
        )
        analysis = analyzed(source)
        by_name = {r.name: r for r in spill_costs(analysis, "MAIN",
                                                  SCALAR_MACHINE)}
        assert by_name["FLAGVAL"].reads == pytest.approx(50.0)
        assert by_name["FLAGVAL"].writes == 0.0

    def test_by_reference_call_args_read_and_write(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 7\nCALL BUMP(V)\n10 CONTINUE\nEND\n"
            "SUBROUTINE BUMP(V)\nV = V + 1.0\nEND\n"
        )
        analysis = analyzed(source)
        by_name = {r.name: r for r in spill_costs(analysis, "MAIN",
                                                  SCALAR_MACHINE)}
        assert by_name["V"].reads == pytest.approx(7.0)
        assert by_name["V"].writes == pytest.approx(7.0)


class TestAllocationAdvice:
    def test_top_k_selected(self):
        analysis = analyzed(TestSpillCosts.HOT_COLD)
        chosen, saving = register_allocation_advice(
            analysis, "MAIN", SCALAR_MACHINE, 2
        )
        assert len(chosen) == 2
        assert "HOT" in chosen and "I" in chosen
        assert saving > 0

    def test_enough_registers_covers_everything(self):
        analysis = analyzed(TestSpillCosts.HOT_COLD)
        all_costs = spill_costs(analysis, "MAIN", SCALAR_MACHINE)
        chosen, saving = register_allocation_advice(
            analysis, "MAIN", SCALAR_MACHINE, 100
        )
        assert len(chosen) == len(all_costs)
        assert saving == pytest.approx(sum(c.cost for c in all_costs))
