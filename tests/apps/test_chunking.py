"""Unit tests for variance-driven chunk sizing (Kruskal-Weiss)."""

import math

import pytest

from repro import (
    analyze,
    compile_source,
    oracle_program_profile,
)
from repro.apps.chunking import (
    estimate_makespan,
    loop_iteration_stats,
    optimal_chunk_size,
    simulate_chunked_loop,
)
from repro.costs import SCALAR_MACHINE
from repro.errors import AnalysisError


class TestMakespanEstimate:
    def test_zero_variance_prefers_biggest_chunks(self):
        k = optimal_chunk_size(1000, 10, mean=1.0, std_dev=0.0, overhead=5.0)
        assert k == 100  # one chunk per processor

    def test_high_variance_prefers_smaller_chunks(self):
        k_low = optimal_chunk_size(1000, 10, 1.0, std_dev=0.1, overhead=5.0)
        k_high = optimal_chunk_size(1000, 10, 1.0, std_dev=3.0, overhead=5.0)
        assert k_high < k_low

    def test_higher_overhead_pushes_chunks_up(self):
        k_cheap = optimal_chunk_size(1000, 10, 1.0, 1.0, overhead=0.5)
        k_costly = optimal_chunk_size(1000, 10, 1.0, 1.0, overhead=50.0)
        assert k_costly >= k_cheap

    def test_makespan_components(self):
        # k = N, P = 1: pure work + one overhead, no imbalance term.
        t = estimate_makespan(100, 1, 2.0, 5.0, overhead=3.0, chunk=100)
        assert t == pytest.approx(100 * 2.0 + 3.0)

    def test_imbalance_term_grows_with_chunk(self):
        t_small = estimate_makespan(1000, 10, 1.0, 2.0, 1.0, chunk=2)
        t_small_work = (1000 * 1.0 + 500 * 1.0) / 10
        assert t_small - t_small_work == pytest.approx(
            2.0 * math.sqrt(2 * 2 * math.log(10))
        )

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            estimate_makespan(10, 2, 1.0, 0.0, 1.0, chunk=0)


class TestSimulation:
    def test_deterministic_iterations_balance_perfectly(self):
        sim = simulate_chunked_loop(100, 4, 1.0, 0.0, overhead=0.0, chunk=25)
        assert sim.makespan == pytest.approx(25.0)
        assert sim.imbalance == pytest.approx(0.0)

    def test_overhead_counted_per_chunk(self):
        sim = simulate_chunked_loop(100, 1, 1.0, 0.0, overhead=2.0, chunk=10)
        assert sim.n_chunks == 10
        assert sim.makespan == pytest.approx(100 + 10 * 2.0)

    def test_seeded_reproducibility(self):
        a = simulate_chunked_loop(200, 4, 1.0, 1.0, 0.5, 10, seed=3)
        b = simulate_chunked_loop(200, 4, 1.0, 1.0, 0.5, 10, seed=3)
        assert a.makespan == b.makespan

    def test_variance_aware_choice_beats_static_when_variance_high(self):
        n, p, mean, std, overhead = 600, 8, 1.0, 3.0, 0.05
        k_static = n // p
        k_opt = optimal_chunk_size(n, p, mean, std, overhead)
        assert k_opt < k_static
        static = [
            simulate_chunked_loop(n, p, mean, std, overhead, k_static, seed=s)
            for s in range(30)
        ]
        tuned = [
            simulate_chunked_loop(n, p, mean, std, overhead, k_opt, seed=s)
            for s in range(30)
        ]
        avg_static = sum(s.makespan for s in static) / len(static)
        avg_tuned = sum(s.makespan for s in tuned) / len(tuned)
        assert avg_tuned < avg_static

    def test_static_wins_when_variance_zero(self):
        n, p, mean, overhead = 600, 8, 1.0, 2.0
        k_opt = optimal_chunk_size(n, p, mean, 0.0, overhead)
        small = simulate_chunked_loop(n, p, mean, 0.0, overhead, 1, seed=0)
        tuned = simulate_chunked_loop(n, p, mean, 0.0, overhead, k_opt, seed=0)
        assert tuned.makespan < small.makespan


class TestLoopIterationStats:
    def test_extracts_mean_and_variance(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 40\n"
            "IF (MOD(I, 2) .EQ. 0) X = X + SQRT(2.0)\n10 CONTINUE\nEND\n"
        )
        program = compile_source(source)
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        main = analysis.main
        (header,) = main.ecfg.preheader_of
        mean, var = loop_iteration_stats(main, header)
        assert mean > 0
        assert var > 0  # the conditional body varies per iteration

    def test_deterministic_body_var_reflects_test_branch_model(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 40\nX = X + 1.0\n10 CONTINUE\nEND\n"
        )
        program = compile_source(source)
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        main = analysis.main
        (header,) = main.ecfg.preheader_of
        mean, var = loop_iteration_stats(main, header)
        assert mean > 0
        assert var >= 0

    def test_non_header_rejected(self):
        program = compile_source("PROGRAM MAIN\nX = 1.0\nEND\n")
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        with pytest.raises(AnalysisError):
            loop_iteration_stats(analysis.main, 1)
