"""Tests for trace selection and branch-layout advice."""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
)
from repro.apps.traces import branch_layout_advice, select_traces
from repro.cfg.graph import StmtKind


def analyzed_main(source, run_specs=({},)):
    program = compile_source(source)
    profile = oracle_program_profile(program, runs=list(run_specs))
    analysis = analyze(program, profile, SCALAR_MACHINE)
    return program, analysis.main


BIASED_BRANCH = (
    "PROGRAM MAIN\nDO 10 I = 1, 20\n"
    "IF (MOD(I, 10) .EQ. 0) THEN\nX = X + SQRT(2.0)\n"
    "ELSE\nY = Y + 1.0\nENDIF\n10 CONTINUE\nEND\n"
)


class TestTraceSelection:
    def test_every_hot_node_in_exactly_one_trace(self):
        program, main = analyzed_main(BIASED_BRANCH)
        traces = select_traces(main)
        seen: dict[int, int] = {}
        for i, trace in enumerate(traces):
            for node in trace.nodes:
                assert node not in seen, "node in two traces"
                seen[node] = i
        hot = {
            n.id
            for n in program.cfgs["MAIN"]
            if n.kind not in (StmtKind.ENTRY, StmtKind.EXIT, StmtKind.NOOP)
            and main.freqs.node_freq.get(n.id, 0.0) > 1e-9
        }
        assert set(seen) == hot

    def test_hottest_trace_first(self):
        program, main = analyzed_main(BIASED_BRANCH)
        traces = select_traces(main)
        assert traces[0].seed_frequency == max(
            t.seed_frequency for t in traces
        )

    def test_hot_trace_follows_likely_arm(self):
        program, main = analyzed_main(BIASED_BRANCH)
        traces = select_traces(main)
        else_node = next(
            n.id for n in program.cfgs["MAIN"] if "Y = Y + 1.0" in n.text
        )
        then_node = next(
            n.id for n in program.cfgs["MAIN"] if "X = X + SQRT" in n.text
        )
        hot_nodes = traces[0].nodes
        assert else_node in hot_nodes  # the 90% arm
        assert then_node not in hot_nodes  # the 10% arm gets its own trace

    def test_traces_are_paths(self):
        program, main = analyzed_main(BIASED_BRANCH)
        cfg = program.cfgs["MAIN"]
        for trace in select_traces(main):
            for a, b in zip(trace.nodes, trace.nodes[1:]):
                assert b in cfg.successors(a)

    def test_traces_never_cross_back_edges(self):
        program, main = analyzed_main(BIASED_BRANCH)
        back = {
            (e.src, e.dst)
            for h, edges in main.ecfg.intervals.loop_back_edges.items()
            for e in edges
        }
        for trace in select_traces(main):
            for a, b in zip(trace.nodes, trace.nodes[1:]):
                assert (a, b) not in back

    def test_straight_line_single_trace(self):
        program, main = analyzed_main(
            "PROGRAM MAIN\nX = 1.0\nY = 2.0\nZ = 3.0\nEND\n"
        )
        traces = select_traces(main)
        assert len(traces) == 1
        assert len(traces[0]) == 3

    def test_dead_code_excluded(self):
        program, main = analyzed_main(
            "PROGRAM MAIN\nX = 1.0\nIF (X .LT. 0.0) THEN\nY = 9.9\n"
            "ENDIF\nEND\n"
        )
        dead = next(
            n.id for n in program.cfgs["MAIN"] if "Y = 9.9" in n.text
        )
        for trace in select_traces(main):
            assert dead not in trace.nodes


class TestBranchLayout:
    def test_recommends_hot_arm_as_fallthrough(self):
        program, main = analyzed_main(BIASED_BRANCH)
        (advice,) = branch_layout_advice(main)
        # MOD(I,10).EQ.0 is true 2/20: the F arm is hot.
        assert advice.fallthrough_label == "F"
        assert not advice.flipped
        assert advice.not_taken_count == pytest.approx(18.0)
        assert advice.taken_count == pytest.approx(2.0)

    def test_saving_formula(self):
        program, main = analyzed_main(BIASED_BRANCH)
        (advice,) = branch_layout_advice(main, taken_penalty=3.0)
        assert advice.saving == pytest.approx(3.0 * (18.0 - 2.0))

    def test_sorted_by_saving(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 30\n"
            "IF (MOD(I, 2) .EQ. 0) X = X + 1.0\n"
            "IF (MOD(I, 30) .EQ. 0) Y = Y + 1.0\n"
            "10 CONTINUE\nEND\n"
        )
        program, main = analyzed_main(source)
        advice = branch_layout_advice(main)
        assert len(advice) == 2
        assert advice[0].saving >= advice[1].saving
        # the heavily biased branch (29 vs 1) saves the most.
        assert "MOD(I, 30)" in advice[0].text

    def test_balanced_branch_near_zero_saving(self):
        source = (
            "PROGRAM MAIN\nDO 10 I = 1, 30\n"
            "IF (MOD(I, 2) .EQ. 0) X = X + 1.0\n10 CONTINUE\nEND\n"
        )
        program, main = analyzed_main(source)
        (advice,) = branch_layout_advice(main)
        assert advice.saving == pytest.approx(0.0)
