"""Unit tests for the CFG data structure."""

import pytest

from repro.errors import CFGError
from repro.cfg.graph import (
    CFGEdge,
    ControlFlowGraph,
    NodeType,
    StmtKind,
    is_pseudo_label,
)


def chain_cfg(n_nodes=3):
    """entry -> noop* -> exit linear graph."""
    cfg = ControlFlowGraph(name="chain")
    nodes = [cfg.add_node(StmtKind.NOOP, text=f"n{i}") for i in range(n_nodes)]
    cfg.entry = nodes[0].id
    cfg.exit = nodes[-1].id
    for a, b in zip(nodes, nodes[1:]):
        cfg.add_edge(a.id, b.id, "U")
    return cfg, nodes


class TestConstruction:
    def test_node_ids_start_at_one(self):
        cfg = ControlFlowGraph()
        node = cfg.add_node(StmtKind.NOOP)
        assert node.id == 1

    def test_sequential_ids(self):
        cfg = ControlFlowGraph()
        ids = [cfg.add_node(StmtKind.NOOP).id for _ in range(4)]
        assert ids == [1, 2, 3, 4]

    def test_add_edge_unknown_node_rejected(self):
        cfg = ControlFlowGraph()
        cfg.add_node(StmtKind.NOOP)
        with pytest.raises(CFGError):
            cfg.add_edge(1, 99, "U")

    def test_duplicate_label_same_source_rejected(self):
        cfg, nodes = chain_cfg(2)
        with pytest.raises(CFGError):
            cfg.add_edge(nodes[0].id, nodes[1].id, "U")

    def test_parallel_edges_with_distinct_labels(self):
        cfg, nodes = chain_cfg(2)
        cfg.add_edge(nodes[0].id, nodes[1].id, "T")
        assert len(cfg.out_edges(nodes[0].id)) == 2

    def test_multigraph_between_same_pair(self):
        cfg = ControlFlowGraph()
        a = cfg.add_node(StmtKind.IF)
        b = cfg.add_node(StmtKind.NOOP)
        cfg.add_edge(a.id, b.id, "T")
        cfg.add_edge(a.id, b.id, "F")
        assert sorted(e.label for e in cfg.out_edges(a.id)) == ["F", "T"]


class TestQueries:
    def test_successors_predecessors(self):
        cfg, nodes = chain_cfg(3)
        assert cfg.successors(nodes[0].id) == [nodes[1].id]
        assert cfg.predecessors(nodes[2].id) == [nodes[1].id]

    def test_out_labels_excludes_pseudo(self):
        cfg, nodes = chain_cfg(2)
        cfg.add_edge(nodes[0].id, nodes[1].id, "Z1")
        assert cfg.out_labels(nodes[0].id) == ["U"]

    def test_edge_to(self):
        cfg, nodes = chain_cfg(2)
        edge = cfg.edge_to(nodes[0].id, "U")
        assert edge.dst == nodes[1].id

    def test_edge_to_missing_label_raises(self):
        cfg, nodes = chain_cfg(2)
        with pytest.raises(CFGError):
            cfg.edge_to(nodes[0].id, "T")

    def test_len_and_iter(self):
        cfg, nodes = chain_cfg(3)
        assert len(cfg) == 3
        assert {n.id for n in cfg} == {n.id for n in nodes}

    def test_is_pseudo_label(self):
        assert is_pseudo_label("Z1")
        assert is_pseudo_label("Z12")
        assert not is_pseudo_label("T")
        assert not is_pseudo_label("C2")


class TestMutation:
    def test_remove_edge(self):
        cfg, nodes = chain_cfg(2)
        edge = cfg.out_edges(nodes[0].id)[0]
        cfg.remove_edge(edge)
        assert cfg.out_edges(nodes[0].id) == []
        assert cfg.in_edges(nodes[1].id) == []

    def test_remove_node_cleans_edges(self):
        cfg, nodes = chain_cfg(3)
        cfg.remove_node(nodes[1].id)
        assert nodes[1].id not in cfg.nodes
        assert cfg.out_edges(nodes[0].id) == []
        assert cfg.in_edges(nodes[2].id) == []

    def test_prune_unreachable_keeps_exit(self):
        cfg, nodes = chain_cfg(2)
        orphan = cfg.add_node(StmtKind.NOOP)
        cfg.add_edge(orphan.id, nodes[1].id, "U")
        removed = cfg.prune_unreachable()
        assert removed == [orphan.id]
        assert nodes[1].id in cfg.nodes

    def test_copy_is_independent(self):
        cfg, nodes = chain_cfg(3)
        clone = cfg.copy()
        clone.add_node(StmtKind.NOOP)
        assert len(clone) == 4
        assert len(cfg) == 3

    def test_copy_preserves_structure(self):
        cfg, nodes = chain_cfg(3)
        clone = cfg.copy()
        assert clone.entry == cfg.entry
        assert clone.exit == cfg.exit
        assert [(e.src, e.dst, e.label) for e in clone.edges] == [
            (e.src, e.dst, e.label) for e in cfg.edges
        ]


class TestValidation:
    def test_valid_chain_passes(self):
        cfg, _ = chain_cfg(3)
        cfg.validate()

    def test_exit_with_successor_rejected(self):
        cfg, nodes = chain_cfg(2)
        cfg.add_edge(nodes[1].id, nodes[0].id, "U")
        with pytest.raises(CFGError):
            cfg.validate()

    def test_dangling_node_rejected(self):
        cfg, nodes = chain_cfg(2)
        dangling = cfg.add_node(StmtKind.NOOP)
        cfg.add_edge(nodes[0].id, dangling.id, "T")
        with pytest.raises(CFGError):
            cfg.validate()

    def test_node_types_default_other(self):
        cfg, nodes = chain_cfg(1)
        assert nodes[0].type is NodeType.OTHER
