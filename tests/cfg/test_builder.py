"""Unit tests for AST -> CFG lowering."""

import pytest

from repro.lang.parser import parse_program
from repro.cfg.builder import build_cfg
from repro.cfg.graph import StmtKind


def cfg_of(body_lines, extra_units=""):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n" + extra_units
    unit = parse_program(source)
    return build_cfg(unit.main)


def kinds(cfg):
    return [n.kind for n in cfg]


class TestLinearCode:
    def test_entry_and_exit_present(self):
        cfg = cfg_of(["X = 1"])
        assert cfg.nodes[cfg.entry].kind is StmtKind.ENTRY
        assert cfg.nodes[cfg.exit].kind is StmtKind.EXIT

    def test_straight_line_chain(self):
        cfg = cfg_of(["X = 1", "Y = 2", "Z = 3"])
        assert len(cfg) == 5  # entry + 3 + exit
        cfg.validate()

    def test_declarations_produce_no_nodes(self):
        cfg = cfg_of(["REAL X", "PARAMETER (N = 3)", "X = N"])
        assert len(cfg) == 3

    def test_print_and_continue_nodes(self):
        cfg = cfg_of(["PRINT *, 1", "CONTINUE"])
        assert StmtKind.PRINT in kinds(cfg)
        assert StmtKind.NOOP in kinds(cfg)

    def test_empty_body(self):
        cfg = cfg_of(["CONTINUE"])
        cfg.validate()


class TestGoto:
    def test_plain_goto_is_edge_not_node(self):
        cfg = cfg_of(["10 X = 1", "GOTO 10"])
        assert StmtKind.NOOP not in kinds(cfg)
        # the X=1 node has a self-cycle via the goto edge
        assign = next(n for n in cfg if n.kind is StmtKind.ASSIGN)
        assert assign.id in cfg.successors(assign.id)

    def test_labelled_goto_gets_noop_node(self):
        cfg = cfg_of(["X = 1", "GOTO 20", "20 GOTO 30", "30 CONTINUE"])
        cfg.validate()

    def test_goto_skips_dead_code(self):
        cfg = cfg_of(["GOTO 20", "X = 1", "20 CONTINUE"])
        # the X=1 node is unreachable and pruned
        assert StmtKind.ASSIGN not in kinds(cfg)

    def test_forward_goto_edge_target(self):
        cfg = cfg_of(["GOTO 20", "20 CONTINUE"])
        cont = next(n for n in cfg if n.kind is StmtKind.NOOP)
        assert cont.id in cfg.successors(cfg.entry)


class TestIfLowering:
    def test_logical_if_true_false_edges(self):
        cfg = cfg_of(["IF (X .GT. 0) Y = 1", "Z = 2"])
        if_node = next(n for n in cfg if n.kind is StmtKind.IF)
        labels = sorted(e.label for e in cfg.out_edges(if_node.id))
        assert labels == ["F", "T"]

    def test_logical_if_goto(self):
        cfg = cfg_of(["IF (X .GT. 0) GOTO 20", "Y = 1", "20 CONTINUE"])
        if_node = next(n for n in cfg if n.kind is StmtKind.IF)
        t_edge = cfg.edge_to(if_node.id, "T")
        assert cfg.nodes[t_edge.dst].kind is StmtKind.NOOP

    def test_if_else_join(self):
        cfg = cfg_of(
            ["IF (X .GT. 0) THEN", "Y = 1", "ELSE", "Y = 2", "ENDIF", "Z = 3"]
        )
        join = next(
            n for n in cfg if n.kind is StmtKind.ASSIGN and "Z" in n.text
        )
        assert len(cfg.in_edges(join.id)) == 2

    def test_elseif_chain_nodes(self):
        cfg = cfg_of(
            [
                "IF (X .GT. 0) THEN",
                "Y = 1",
                "ELSEIF (X .LT. 0) THEN",
                "Y = 2",
                "ENDIF",
            ]
        )
        if_nodes = [n for n in cfg if n.kind is StmtKind.IF]
        assert len(if_nodes) == 2
        # second arm is reached via the first arm's F edge
        first, second = if_nodes
        assert cfg.edge_to(first.id, "F").dst == second.id

    def test_empty_else_falls_through(self):
        cfg = cfg_of(["IF (X .GT. 0) THEN", "Y = 1", "ENDIF", "Z = 2"])
        if_node = next(n for n in cfg if n.kind is StmtKind.IF)
        join = next(
            n for n in cfg if n.kind is StmtKind.ASSIGN and "Z" in n.text
        )
        assert cfg.edge_to(if_node.id, "F").dst == join.id


class TestDoLowering:
    def test_do_loop_three_nodes(self):
        cfg = cfg_of(["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"])
        assert StmtKind.DO_INIT in kinds(cfg)
        assert StmtKind.DO_TEST in kinds(cfg)
        assert StmtKind.DO_INCR in kinds(cfg)

    def test_do_back_edge(self):
        cfg = cfg_of(["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"])
        test = next(n for n in cfg if n.kind is StmtKind.DO_TEST)
        incr = next(n for n in cfg if n.kind is StmtKind.DO_INCR)
        assert test.id in cfg.successors(incr.id)

    def test_shared_trip_var(self):
        cfg = cfg_of(["DO 10 I = 1, 5", "X = X + 1.0", "10 CONTINUE"])
        trip_vars = {
            n.trip_var
            for n in cfg
            if n.kind in (StmtKind.DO_INIT, StmtKind.DO_TEST, StmtKind.DO_INCR)
        }
        assert len(trip_vars) == 1

    def test_nested_loops_distinct_trip_vars(self):
        cfg = cfg_of(
            [
                "DO 20 I = 1, 5",
                "DO 10 J = 1, 5",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        inits = [n for n in cfg if n.kind is StmtKind.DO_INIT]
        assert len({n.trip_var for n in inits}) == 2

    def test_do_while_lowering(self):
        cfg = cfg_of(["DO WHILE (X .GT. 0)", "X = X - 1.0", "ENDDO"])
        test = next(n for n in cfg if n.kind is StmtKind.WHILE_TEST)
        body = next(n for n in cfg if n.kind is StmtKind.ASSIGN)
        assert cfg.edge_to(test.id, "T").dst == body.id
        assert cfg.edge_to(body.id, "U").dst == test.id

    def test_goto_into_loop_label_targets_init(self):
        cfg = cfg_of(
            [
                "IF (X .GT. 0.0) GOTO 5",
                "X = 1.0",
                "5 DO 10 I = 1, 3",
                "X = X + 1.0",
                "10 CONTINUE",
            ]
        )
        if_node = next(n for n in cfg if n.kind is StmtKind.IF)
        target = cfg.edge_to(if_node.id, "T").dst
        assert cfg.nodes[target].kind is StmtKind.DO_INIT

    def test_loop_exit_goto(self):
        cfg = cfg_of(
            [
                "DO 10 I = 1, 5",
                "IF (X .GT. 3.0) GOTO 20",
                "X = X + 1.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        cfg.validate()


class TestOtherStatements:
    def test_computed_goto_edges(self):
        cfg = cfg_of(
            [
                "GOTO (10, 20), K",
                "X = 0.0",
                "GOTO 30",
                "10 X = 1.0",
                "GOTO 30",
                "20 X = 2.0",
                "30 CONTINUE",
            ]
        )
        cg = next(n for n in cfg if n.kind is StmtKind.CGOTO)
        labels = sorted(e.label for e in cfg.out_edges(cg.id))
        assert labels == ["C1", "C2", "U"]

    def test_stop_node_edges_to_exit(self):
        cfg = cfg_of(["IF (X .GT. 0) STOP", "Y = 1"])
        stop = next(n for n in cfg if n.kind is StmtKind.STOP)
        assert cfg.edge_to(stop.id, "U").dst == cfg.exit

    def test_return_is_edge_to_exit(self):
        source = (
            "PROGRAM MAIN\nCALL S(1.0)\nEND\n"
            "SUBROUTINE S(A)\nIF (A .GT. 0.0) RETURN\nA = 1.0\nEND\n"
        )
        unit = parse_program(source)
        cfg = build_cfg(unit.procedures["S"])
        if_node = next(n for n in cfg if n.kind is StmtKind.IF)
        assert cfg.edge_to(if_node.id, "T").dst == cfg.exit

    def test_call_node(self):
        cfg = cfg_of(
            ["CALL FOO(X)"],
            extra_units="SUBROUTINE FOO(A)\nA = 1.0\nEND\n",
        )
        assert StmtKind.CALL in kinds(cfg)

    def test_paper_example_shape(self):
        from repro.workloads.paper_example import PAPER_SOURCE

        unit = parse_program(PAPER_SOURCE)
        cfg = build_cfg(unit.procedures["MAIN"])
        if_nodes = [n for n in cfg if n.kind is StmtKind.IF]
        assert len(if_nodes) == 3
        call = next(n for n in cfg if n.kind is StmtKind.CALL)
        header = if_nodes[0]
        assert header.id in cfg.successors(call.id)  # GOTO 10 back edge
