"""Tests for DOT export, including analysis-annotated FCDGs."""

import pytest

from repro import analyze, compile_source, oracle_program_profile
from repro.cfg.dot import cfg_to_dot, fcdg_to_dot
from repro.cfg.graph import NodeType
from repro.workloads.paper_example import FigureCostEstimator


@pytest.fixture
def analyzed_paper(paper_program):
    profile = oracle_program_profile(paper_program, runs=[{}])
    analysis = analyze(
        paper_program, profile, model=None, estimator=FigureCostEstimator()
    )
    return paper_program, analysis


class TestShapes:
    def test_node_type_shapes(self, paper_program):
        dot = cfg_to_dot(paper_program.ecfgs["MAIN"].graph)
        assert "doubleoctagon" in dot  # START/STOP
        assert "invhouse" in dot  # preheader
        assert "invtriangle" in dot  # postexit
        assert "house" in dot  # header

    def test_every_node_and_edge_emitted(self, paper_program):
        graph = paper_program.cfgs["MAIN"]
        dot = cfg_to_dot(graph)
        for node in graph:
            assert f"n{node.id} [" in dot
        assert dot.count("->") == len(graph.edges)


class TestAnnotatedFCDG:
    def test_time_var_annotations(self, analyzed_paper):
        program, analysis = analyzed_paper
        dot = fcdg_to_dot(
            program.fcdgs["MAIN"], analysis=analysis.main
        )
        assert "TIME=920" in dot
        assert "VAR=90000" in dot

    def test_frequency_on_edges(self, analyzed_paper):
        program, analysis = analyzed_paper
        dot = fcdg_to_dot(program.fcdgs["MAIN"], analysis=analysis.main)
        assert "(0.9)" in dot  # FREQ of the call branch
        assert "(10)" in dot  # loop frequency

    def test_unannotated_still_works(self, paper_program):
        dot = fcdg_to_dot(paper_program.fcdgs["MAIN"])
        assert "TIME=" not in dot
        assert "digraph" in dot

    def test_newline_escape_correct(self, analyzed_paper):
        program, analysis = analyzed_paper
        dot = fcdg_to_dot(program.fcdgs["MAIN"], analysis=analysis.main)
        # a single backslash-n separator inside labels, not an escaped
        # double backslash.
        assert "\\nTIME=" in dot
        assert "\\\\nTIME=" not in dot
