"""Unit tests for DFS, dominators and postdominators."""

import pytest

from repro.errors import AnalysisError
from repro.cfg.dfs import depth_first_search
from repro.cfg.dominance import (
    dominance_frontier,
    dominates,
    dominator_depths,
    dominator_tree,
    postdominator_tree,
)
from repro.cfg.graph import ControlFlowGraph, StmtKind


def diamond():
    """entry -> a -> (b|c) -> d -> exit."""
    cfg = ControlFlowGraph(name="diamond")
    ids = {}
    for name in ["entry", "a", "b", "c", "d", "exit"]:
        ids[name] = cfg.add_node(StmtKind.NOOP, text=name).id
    cfg.entry = ids["entry"]
    cfg.exit = ids["exit"]
    cfg.add_edge(ids["entry"], ids["a"], "U")
    cfg.add_edge(ids["a"], ids["b"], "T")
    cfg.add_edge(ids["a"], ids["c"], "F")
    cfg.add_edge(ids["b"], ids["d"], "U")
    cfg.add_edge(ids["c"], ids["d"], "U")
    cfg.add_edge(ids["d"], ids["exit"], "U")
    return cfg, ids


def looped():
    """entry -> h -> b -> h (back), h -> exit."""
    cfg = ControlFlowGraph(name="loop")
    ids = {}
    for name in ["entry", "h", "b", "exit"]:
        ids[name] = cfg.add_node(StmtKind.NOOP, text=name).id
    cfg.entry = ids["entry"]
    cfg.exit = ids["exit"]
    cfg.add_edge(ids["entry"], ids["h"], "U")
    cfg.add_edge(ids["h"], ids["b"], "T")
    cfg.add_edge(ids["b"], ids["h"], "U")
    cfg.add_edge(ids["h"], ids["exit"], "F")
    return cfg, ids


class TestDFS:
    def test_preorder_starts_at_entry(self):
        cfg, ids = diamond()
        dfs = depth_first_search(cfg)
        assert dfs.preorder[ids["entry"]] == 0

    def test_all_nodes_visited(self):
        cfg, ids = diamond()
        dfs = depth_first_search(cfg)
        assert set(dfs.preorder) == set(cfg.nodes)
        assert set(dfs.postorder) == set(cfg.nodes)

    def test_tree_edges_form_spanning_tree(self):
        cfg, ids = diamond()
        dfs = depth_first_search(cfg)
        assert len(dfs.tree_edges) == len(cfg) - 1

    def test_back_edge_detected(self):
        cfg, ids = looped()
        dfs = depth_first_search(cfg)
        assert [(e.src, e.dst) for e in dfs.back_edges] == [
            (ids["b"], ids["h"])
        ]

    def test_cross_or_forward_edge_in_diamond(self):
        cfg, ids = diamond()
        dfs = depth_first_search(cfg)
        assert not dfs.back_edges
        # one of b->d / c->d is a tree edge, the other cross.
        assert len(dfs.cross_edges) + len(dfs.forward_edges) == 1

    def test_reverse_postorder_topological_on_dag(self):
        cfg, ids = diamond()
        dfs = depth_first_search(cfg)
        order = dfs.reverse_postorder()
        position = {n: i for i, n in enumerate(order)}
        for edge in cfg.edges:
            assert position[edge.src] < position[edge.dst]

    def test_is_ancestor(self):
        cfg, ids = diamond()
        dfs = depth_first_search(cfg)
        assert dfs.is_ancestor(ids["entry"], ids["d"])
        assert not dfs.is_ancestor(ids["b"], ids["c"])

    def test_deterministic(self):
        cfg, _ = diamond()
        a = depth_first_search(cfg)
        b = depth_first_search(cfg)
        assert a.preorder == b.preorder


class TestDominators:
    def test_diamond_idoms(self):
        cfg, ids = diamond()
        idom = dominator_tree(cfg)
        assert idom[ids["d"]] == ids["a"]
        assert idom[ids["b"]] == ids["a"]
        assert idom[ids["entry"]] == ids["entry"]

    def test_loop_header_dominates_body(self):
        cfg, ids = looped()
        idom = dominator_tree(cfg)
        assert dominates(idom, ids["h"], ids["b"], cfg.entry)

    def test_dominates_reflexive(self):
        cfg, ids = diamond()
        idom = dominator_tree(cfg)
        assert dominates(idom, ids["b"], ids["b"], cfg.entry)

    def test_branch_does_not_dominate_join_sides(self):
        cfg, ids = diamond()
        idom = dominator_tree(cfg)
        assert not dominates(idom, ids["b"], ids["d"], cfg.entry)

    def test_depths(self):
        cfg, ids = diamond()
        idom = dominator_tree(cfg)
        depths = dominator_depths(idom, cfg.entry)
        assert depths[ids["entry"]] == 0
        assert depths[ids["a"]] == 1
        assert depths[ids["d"]] == 2

    def test_dominance_frontier_of_branch_arms(self):
        cfg, ids = diamond()
        idom = dominator_tree(cfg)
        frontier = dominance_frontier(cfg, idom)
        assert frontier[ids["b"]] == {ids["d"]}
        assert frontier[ids["c"]] == {ids["d"]}


class TestPostdominators:
    def test_diamond_ipdoms(self):
        cfg, ids = diamond()
        ipdom = postdominator_tree(cfg)
        assert ipdom[ids["a"]] == ids["d"]
        assert ipdom[ids["b"]] == ids["d"]

    def test_loop_postdominators(self):
        cfg, ids = looped()
        ipdom = postdominator_tree(cfg)
        assert ipdom[ids["b"]] == ids["h"]
        assert ipdom[ids["h"]] == ids["exit"]

    def test_unreachable_exit_raises(self):
        cfg = ControlFlowGraph()
        a = cfg.add_node(StmtKind.NOOP)
        b = cfg.add_node(StmtKind.NOOP)
        cfg.entry = a.id
        cfg.exit = b.id
        cfg.add_edge(a.id, a.id, "U")
        with pytest.raises(AnalysisError):
            postdominator_tree(cfg)
