"""Unit tests for reducibility testing and node splitting."""

import pytest

from repro import compile_source, run_program
from repro.cfg.graph import ControlFlowGraph, StmtKind
from repro.cfg.reducibility import (
    back_edges,
    forward_cycle,
    is_reducible,
    split_nodes,
)
from repro.workloads.unstructured import IRREDUCIBLE


def irreducible_cfg():
    """entry -> (a|b); a <-> b; a -> exit  (two-entry cycle)."""
    cfg = ControlFlowGraph(name="irr")
    ids = {}
    for name in ["entry", "a", "b", "exit"]:
        ids[name] = cfg.add_node(StmtKind.NOOP, text=name).id
    cfg.entry = ids["entry"]
    cfg.exit = ids["exit"]
    cfg.add_edge(ids["entry"], ids["a"], "T")
    cfg.add_edge(ids["entry"], ids["b"], "F")
    cfg.add_edge(ids["a"], ids["b"], "T")
    cfg.add_edge(ids["b"], ids["a"], "U")
    cfg.add_edge(ids["a"], ids["exit"], "F")
    return cfg, ids


def reducible_loop_cfg():
    cfg = ControlFlowGraph(name="red")
    ids = {}
    for name in ["entry", "h", "body", "exit"]:
        ids[name] = cfg.add_node(StmtKind.NOOP, text=name).id
    cfg.entry = ids["entry"]
    cfg.exit = ids["exit"]
    cfg.add_edge(ids["entry"], ids["h"], "U")
    cfg.add_edge(ids["h"], ids["body"], "T")
    cfg.add_edge(ids["body"], ids["h"], "U")
    cfg.add_edge(ids["h"], ids["exit"], "F")
    return cfg, ids


class TestDetection:
    def test_loop_is_reducible(self):
        cfg, _ = reducible_loop_cfg()
        assert is_reducible(cfg)

    def test_two_entry_cycle_is_irreducible(self):
        cfg, _ = irreducible_cfg()
        assert not is_reducible(cfg)

    def test_forward_cycle_reports_cycle_nodes(self):
        cfg, ids = irreducible_cfg()
        cycle = forward_cycle(cfg)
        assert cycle is not None
        assert set(cycle) <= {ids["a"], ids["b"]}

    def test_back_edges_of_natural_loop(self):
        cfg, ids = reducible_loop_cfg()
        edges = back_edges(cfg)
        assert [(e.src, e.dst) for e in edges] == [(ids["body"], ids["h"])]

    def test_self_loop_is_reducible(self):
        cfg = ControlFlowGraph()
        a = cfg.add_node(StmtKind.NOOP)
        b = cfg.add_node(StmtKind.NOOP)
        cfg.entry, cfg.exit = a.id, b.id
        cfg.add_edge(a.id, a.id, "T")
        cfg.add_edge(a.id, b.id, "F")
        assert is_reducible(cfg)


class TestNodeSplitting:
    def test_splitting_makes_reducible(self):
        cfg, _ = irreducible_cfg()
        n_before = len(cfg)
        splits = split_nodes(cfg)
        assert splits >= 1
        assert is_reducible(cfg)
        assert len(cfg) > n_before

    def test_split_preserves_paths(self):
        cfg, ids = irreducible_cfg()
        split_nodes(cfg)
        reachable = cfg.reachable_from_entry()
        assert cfg.exit in reachable

    def test_splitting_reducible_graph_is_noop(self):
        cfg, _ = reducible_loop_cfg()
        assert split_nodes(cfg) == 0

    def test_irreducible_program_end_to_end(self):
        program = compile_source(IRREDUCIBLE)
        assert program.splits.get("IRRED", 0) >= 1
        result = run_program(program, inputs=(9.0,))
        assert result.outputs  # ran to completion

    def test_split_program_semantics_unchanged(self):
        # The split CFG must compute the same result as the source
        # semantics: K counts down from the input to below zero.
        program = compile_source(IRREDUCIBLE)
        for k in [0.0, 3.0, 7.0, 12.0]:
            result = run_program(program, inputs=(k,))
            assert int(result.outputs[0]) < 0
