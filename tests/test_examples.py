"""Every example script must run cleanly (they are documentation)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_examples_discovered():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    out = run_example(name, capsys)
    assert out.strip(), f"{name} produced no output"


def test_paper_example_prints_exact_values(capsys):
    out = run_example("paper_example", capsys)
    assert "TIME(START) = 920" in out
    assert "STD_DEV(START) = 300" in out


def test_quickstart_reports_overhead(capsys):
    out = run_example("quickstart", capsys)
    assert "profiling overhead" in out
    assert "TIME(START)" in out


def test_trace_example_lists_traces(capsys):
    out = run_example("trace_scheduling", capsys)
    assert "trace 0" in out
    assert "Branch layout advice" in out.replace("==", "")
