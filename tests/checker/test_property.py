"""Property: everything this repo builds verifies and lints clean.

The checker's value depends on a zero-noise baseline — a verifier that
cries wolf on valid artifacts cannot gate a cache or a CI run.  Every
built-in workload and a 50-seed slice of the program generator must
produce *zero* diagnostics (errors, warnings and hints alike are
checked separately) under both counter plans.
"""

import pytest

from repro import compile_source, naive_program_plan, smart_program_plan
from repro.checker import check_source, verify_program
from repro.workloads import builtin_sources
from repro.workloads.generators import ProgramGenerator

pytestmark = pytest.mark.checker

BUILTINS = builtin_sources()
GENERATOR_SEEDS = range(50)


@pytest.mark.parametrize(
    "program_id,source", BUILTINS, ids=[pid for pid, _ in BUILTINS]
)
def test_builtin_workload_fully_clean(program_id, source):
    report = check_source(
        source,
        program_id=program_id,
        plan_kinds=("smart", "naive"),
        hints=False,
    )
    assert not report.diagnostics, report.render_text()


@pytest.mark.parametrize(
    "program_id,source", BUILTINS, ids=[pid for pid, _ in BUILTINS]
)
def test_builtin_workload_warning_free_with_hints(program_id, source):
    # Hints (REP301/304/305) are allowed on the corpus; anything at
    # warning level or above is not.
    report = check_source(source, program_id=program_id, hints=True)
    assert report.ok, report.render_text()


@pytest.mark.slow
@pytest.mark.parametrize("seed", GENERATOR_SEEDS)
def test_generated_program_verifies_clean(seed):
    source = ProgramGenerator(seed).source()
    program = compile_source(source)
    plans = {
        "smart": smart_program_plan(program),
        "naive": naive_program_plan(program),
    }
    report = verify_program(program, plans, program_id=f"gen-{seed}")
    assert not report.diagnostics, report.render_text()


@pytest.mark.slow
@pytest.mark.parametrize("seed", GENERATOR_SEEDS)
def test_generated_program_lints_warning_free(seed):
    source = ProgramGenerator(seed).source()
    report = check_source(
        source, program_id=f"gen-{seed}", plan_kinds=(), hints=False
    )
    assert not report.diagnostics, report.render_text()
