"""The ``repro check`` CLI: exit codes, text output, JSON output."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.checker

CLEAN = """\
      PROGRAM MAIN
      INTEGER I
      REAL X
      DO 10 I = 1, 5
        X = X + 1.0
10    CONTINUE
      PRINT *, X
      STOP
      END
"""

DIRTY = """\
      PROGRAM MAIN
      INTEGER I, J
      I = 1
      GOTO 10
      J = 2
10    I = I + J
      STOP
      END
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.f"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.f"
    path.write_text(DIRTY)
    return str(path)


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_file_exits_nonzero(self, dirty_file, capsys):
        assert main(["check", dirty_file]) == 1
        out = capsys.readouterr().out
        assert "REP302" in out

    def test_uncompilable_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.f"
        bad.write_text("      GARBAGE\n")
        assert main(["check", str(bad)]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_no_programs_is_an_error(self, capsys):
        assert main(["check"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_hints_do_not_fail_the_run(self, tmp_path, capsys):
        # CLEAN minus its STOP: a hint-level finding only.
        source = CLEAN.replace("      STOP\n", "")
        path = tmp_path / "nostop.f"
        path.write_text(source)
        assert main(["check", str(path), "--hints"]) == 0
        assert "REP304" in capsys.readouterr().out


class TestCorpusModes:
    def test_builtin_corpus_clean(self, capsys):
        assert main(["check", "--builtin"]) == 0
        out = capsys.readouterr().out
        assert "paper: clean" in out
        assert "0 with findings" in out

    def test_generated_programs_clean(self, capsys):
        assert main(["check", "--generate", "3", "--plan", "smart"]) == 0
        out = capsys.readouterr().out
        assert "gen-0: clean" in out and "gen-2: clean" in out

    def test_mixed_clean_and_dirty(self, clean_file, dirty_file, capsys):
        assert main(["check", clean_file, dirty_file]) == 1
        out = capsys.readouterr().out
        assert "1 clean, 1 with findings" in out


class TestJsonOutput:
    def test_json_to_stdout(self, dirty_file, capsys):
        assert main(["check", dirty_file, "--json", "-"]) == 1
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("\n[\n") + 1 :])
        assert payload[0]["ok"] is False
        assert payload[0]["diagnostics"][0]["code"] == "REP302"

    def test_json_to_file(self, clean_file, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(["check", clean_file, "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload[0]["ok"] is True
        assert payload[0]["diagnostics"] == []

    def test_no_lint_flag(self, dirty_file, capsys):
        assert main(["check", dirty_file, "--no-lint"]) == 0
        assert "clean" in capsys.readouterr().out
