"""The dataflow-engine lints: new codes and regression pins.

Three kinds of pin:

* programs where the historical syntactic lints were *imprecise* and
  the dataflow engine now finds (or correctly drops) a diagnostic —
  the PR's migration contract;
* the new REP306/307/308 codes firing on purpose-built programs and
  staying silent on the clean corpus;
* ``--lint-mode=syntactic`` preserving the old behavior bit-for-bit
  for one release.
"""

import pytest

from repro.checker import LINT_MODES, Severity, check_source
from repro.workloads import builtin_sources

pytestmark = pytest.mark.checker


def _codes(source, mode="dataflow", hints=True):
    report = check_source(source, lint_mode=mode, hints=hints)
    assert not report.has("REP001"), report.render_text()
    return report


#: (a) X is only defined under a guard SCCP proves false: the old
#: syntactic lint saw "a def on some path" and stayed silent; the
#: dataflow lint knows no *feasible* path defines X.
DEF_UNDER_FALSE_GUARD = """\
      PROGRAM MAIN
      INTEGER N
      REAL X, Y
      N = 3
      IF (N .LT. 0) THEN
        X = 1.0
      ENDIF
      Y = X + 1.0
      PRINT *, Y
      END
"""

#: (b) SHOW only *reads* its parameter, so CALL SHOW(X) defines
#: nothing — the old lint counted every by-ref argument as a def and
#: suppressed the genuine REP301.
READ_ONLY_CALL = """\
      PROGRAM MAIN
      REAL X, Y
      CALL SHOW(X)
      Y = X + 1.0
      PRINT *, Y
      END
      SUBROUTINE SHOW(A)
      REAL A, B
      B = A * 2.0
      PRINT *, B
      RETURN
      END
"""

#: A callee that *does* write its parameter must keep suppressing
#: REP301 (the satellite fix must not overshoot).
WRITING_CALL = """\
      PROGRAM MAIN
      REAL X, Y
      CALL SETV(X)
      Y = X + 1.0
      PRINT *, Y
      END
      SUBROUTINE SETV(A)
      REAL A
      A = 3.0
      RETURN
      END
"""

#: (c) `X = 1.0` is unreachable (both arms jump past it) but does not
#: textually follow a GOTO, so the syntactic REP302 missed it; the
#: CFG builder prunes it and the dataflow lint reports the pruning.
PRUNED_NOT_AFTER_GOTO = """\
      PROGRAM MAIN
      INTEGER N
      REAL X
      N = 1
      IF (N .GT. 0) THEN
        GOTO 20
      ELSE
        GOTO 20
      ENDIF
      X = 1.0
20    CONTINUE
      PRINT *, N
      END
"""

#: (d) X is defined inside a *guaranteed-taken* branch: defined on
#: every feasible path, so neither mode may warn (no-regression pin).
DEF_UNDER_TAKEN_GUARD = """\
      PROGRAM MAIN
      INTEGER N
      REAL X, Y
      N = 3
      IF (N .GT. 0) THEN
        X = 1.0
      ENDIF
      Y = X + 1.0
      PRINT *, Y
      END
"""

DEAD_STORE = """\
      PROGRAM MAIN
      REAL X, Y
      X = 1.0
      X = 2.0
      Y = X + 1.0
      PRINT *, Y
      END
"""

CONSTANT_BRANCH = """\
      PROGRAM MAIN
      INTEGER N
      REAL X
      N = 3
      IF (N .GT. 0) THEN
        X = 1.0
      ELSE
        X = 2.0
      ENDIF
      PRINT *, X
      END
"""

#: The loop's only exit edge tests N, and SCCP proves N stays 1: the
#: exit is structurally present but never feasible.
INFINITE_FEASIBLE_LOOP = """\
      PROGRAM MAIN
      INTEGER N, I
      N = 1
      I = 0
10    CONTINUE
      I = I + 1
      IF (N .GT. 0) GOTO 10
      PRINT *, I
      END
"""


class TestMigrationRegressionPins:
    def test_def_under_false_guard_now_warns(self):
        assert _codes(DEF_UNDER_FALSE_GUARD, "dataflow").has("REP301")
        assert not _codes(DEF_UNDER_FALSE_GUARD, "syntactic").has("REP301")

    def test_read_only_call_no_longer_suppresses(self):
        assert _codes(READ_ONLY_CALL, "dataflow").has("REP301")
        assert not _codes(READ_ONLY_CALL, "syntactic").has("REP301")

    def test_writing_call_still_suppresses(self):
        for mode in LINT_MODES:
            assert not _codes(WRITING_CALL, mode).has("REP301")

    def test_pruned_statement_now_reported(self):
        report = _codes(PRUNED_NOT_AFTER_GOTO, "dataflow", hints=False)
        assert report.has("REP302")
        found = next(d for d in report.diagnostics if d.code == "REP302")
        assert found.severity is Severity.WARNING
        assert not _codes(
            PRUNED_NOT_AFTER_GOTO, "syntactic", hints=False
        ).has("REP302")

    def test_taken_guard_def_stays_silent_in_both_modes(self):
        for mode in LINT_MODES:
            assert not _codes(DEF_UNDER_TAKEN_GUARD, mode).has("REP301")

    def test_syntactic_mode_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            check_source(DEAD_STORE, lint_mode="nonsense")


class TestNewCodes:
    def test_dead_store_fires(self):
        report = _codes(DEAD_STORE, "dataflow")
        found = [d for d in report.diagnostics if d.code == "REP306"]
        assert len(found) == 1
        assert "X" in found[0].message
        # Hints off: REP306 is an optimization hint, not a warning.
        assert not _codes(DEAD_STORE, "dataflow", hints=False).has("REP306")

    def test_constant_branch_names_the_taken_arm(self):
        report = _codes(CONSTANT_BRANCH, "dataflow")
        found = [d for d in report.diagnostics if d.code == "REP307"]
        assert len(found) == 1
        assert "'T'" in found[0].message

    def test_infinite_feasible_loop_warns(self):
        report = _codes(INFINITE_FEASIBLE_LOOP, "dataflow", hints=False)
        found = [d for d in report.diagnostics if d.code == "REP308"]
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert not report.ok
        # The syntactic mode has no equivalent check.
        assert not _codes(
            INFINITE_FEASIBLE_LOOP, "syntactic", hints=False
        ).has("REP308")


class TestCorpusStaysClean:
    @pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
    def test_no_new_findings_on_builtins(self, name):
        source = dict(builtin_sources())[name]
        report = check_source(source, plan_kinds=("smart",), hints=True)
        assert report.ok, report.render_text()
        # REP306 (dead store) and REP308 (infinite loop) must never
        # fire on the corpus; REP307 may fire only as a hint.
        assert not report.has("REP306")
        assert not report.has("REP308")

    @pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
    def test_modes_agree_on_warnings(self, name):
        """Warning-level findings are mode-independent on the corpus."""
        source = dict(builtin_sources())[name]
        by_mode = {}
        for mode in LINT_MODES:
            report = check_source(
                source, plan_kinds=("smart",), lint_mode=mode
            )
            by_mode[mode] = sorted(
                (d.code, d.proc) for d in report.warnings
            )
        assert by_mode["dataflow"] == by_mode["syntactic"]
