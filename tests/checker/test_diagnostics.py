"""The diagnostics engine: codes, severities, reports, renderers."""

import json
from pathlib import Path

import pytest

from repro.checker import CODES, Diagnostic, DiagnosticReport, Severity, diag

pytestmark = pytest.mark.checker


class TestCatalogue:
    def test_code_families(self):
        for code in CODES:
            assert code.startswith("REP") and len(code) == 6
        assert all(CODES[c][0] is Severity.ERROR for c in CODES if c[3] in "012")

    def test_lint_severities(self):
        # REP301/304/305 are hints: minifort zero-initializes scalars
        # and built-in workloads omit STOP / use runtime trips by design.
        assert CODES["REP301"][0] is Severity.INFO
        assert CODES["REP302"][0] is Severity.WARNING
        assert CODES["REP303"][0] is Severity.WARNING
        assert CODES["REP304"][0] is Severity.INFO
        assert CODES["REP305"][0] is Severity.INFO

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            diag("REP999", "nope")

    def test_severity_override(self):
        finding = diag("REP301", "x", severity=Severity.ERROR)
        assert finding.severity is Severity.ERROR

    def test_every_code_documented(self):
        """docs/checker.md must catalogue every code (and no ghosts)."""
        docs = Path(__file__).resolve().parents[2] / "docs" / "checker.md"
        text = docs.read_text()
        for code in CODES:
            assert code in text, f"{code} missing from docs/checker.md"


class TestDiagnostic:
    def test_render_with_span(self):
        finding = diag("REP103", "broken", proc="MAIN", node=5, line=12)
        text = finding.render()
        assert "REP103" in text and "error" in text
        assert "[MAIN]" in text and "node 5" in text and "line 12" in text

    def test_as_dict_omits_missing_span(self):
        record = diag("REP201", "m").as_dict()
        assert record == {
            "code": "REP201",
            "severity": "error",
            "message": "m",
        }

    def test_frozen(self):
        finding = diag("REP100", "m")
        with pytest.raises(Exception):
            finding.code = "REP101"


class TestReport:
    def make(self) -> DiagnosticReport:
        report = DiagnosticReport(program_id="demo")
        report.add(diag("REP301", "hint one"))
        report.add(diag("REP302", "warn one"))
        report.add(diag("REP105", "err one"))
        return report

    def test_queries(self):
        report = self.make()
        assert len(report) == 3
        assert [d.code for d in report.errors] == ["REP105"]
        assert [d.code for d in report.warnings] == ["REP302"]
        assert report.codes() == {"REP301", "REP302", "REP105"}
        assert report.has("REP302") and not report.has("REP104")
        assert not report.ok  # a warning is enough to fail

    def test_ok_ignores_hints(self):
        report = DiagnosticReport()
        report.add(diag("REP304", "hint"))
        assert report.ok

    def test_render_text_errors_first(self):
        lines = self.make().render_text().splitlines()
        assert lines[0].startswith("demo:")
        assert "REP105" in lines[1]
        assert "REP302" in lines[2]
        assert "REP301" in lines[3]

    def test_render_clean(self):
        assert DiagnosticReport(program_id="p").render_text() == "p: clean"

    def test_json_roundtrip(self):
        payload = json.loads(self.make().render_json())
        assert payload["program"] == "demo"
        assert payload["ok"] is False
        assert len(payload["diagnostics"]) == 3
