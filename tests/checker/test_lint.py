"""The minifort linter (REP3xx): warnings, hints and non-findings."""

import pytest

from repro.checker import Severity, check_source

pytestmark = pytest.mark.checker


UNREACHABLE = """\
      PROGRAM MAIN
      INTEGER I, J
      I = 1
      GOTO 10
      J = 2
10    I = I + J
      STOP
      END
"""

INDEX_MUTATION = """\
      PROGRAM MAIN
      INTEGER I
      REAL X
      DO 10 I = 1, 5
        I = I + 1
        X = X + 1.0
10    CONTINUE
      STOP
      END
"""

NESTED_INDEX_REUSE = """\
      PROGRAM MAIN
      INTEGER I
      REAL X
      DO 20 I = 1, 3
        DO 10 I = 1, 2
          X = X + 1.0
10      CONTINUE
20    CONTINUE
      STOP
      END
"""

HINTY = """\
      PROGRAM MAIN
      INTEGER I, N
      REAL X, Y
      N = 3
      CALL SETUP(N)
      DO 10 I = 1, N
        Y = Y + X
10    CONTINUE
      PRINT *, Y
      END
      SUBROUTINE SETUP(K)
      INTEGER K
      K = K + 1
      RETURN
      END
"""


class TestWarnings:
    def test_unreachable_statement_rep302(self):
        report = check_source(UNREACHABLE)
        assert report.codes() == {"REP302"}
        (finding,) = report.diagnostics
        assert finding.severity is Severity.WARNING
        assert finding.line == 5  # the J = 2 after GOTO
        assert not report.ok

    def test_labelled_target_is_reachable(self):
        # The statement at label 10 follows the GOTO textually but is
        # its target: no finding for it.
        report = check_source(UNREACHABLE)
        assert all(d.line != 6 for d in report.diagnostics)

    def test_do_index_assignment_rep303(self):
        report = check_source(INDEX_MUTATION)
        assert report.codes() == {"REP303"}
        assert report.diagnostics[0].line == 5

    def test_nested_do_index_reuse_rep303(self):
        assert check_source(NESTED_INDEX_REUSE).codes() == {"REP303"}

    def test_no_lint_suppresses_warnings(self):
        report = check_source(UNREACHABLE, lint=False)
        assert not report.diagnostics


class TestHints:
    def test_hints_off_by_default(self):
        assert not check_source(HINTY).diagnostics

    def test_all_three_hints(self):
        report = check_source(HINTY, hints=True)
        assert report.codes() == {"REP301", "REP304", "REP305"}
        # Hints never fail a check run.
        assert report.ok
        assert all(d.severity is Severity.INFO for d in report.diagnostics)

    def test_use_before_def_names_the_variable(self):
        report = check_source(HINTY, hints=True)
        (finding,) = [d for d in report.diagnostics if d.code == "REP301"]
        assert "X" in finding.message
        # Y is defined along the loop's back edge, N by assignment,
        # K in SETUP by being a parameter: only X is flagged.
        assert "Y" not in finding.message

    def test_byref_call_counts_as_definition(self):
        source = """\
      PROGRAM MAIN
      INTEGER N
      CALL SETUP(N)
      PRINT *, N
      STOP
      END
      SUBROUTINE SETUP(K)
      INTEGER K
      K = 7
      RETURN
      END
"""
        report = check_source(source, hints=True)
        assert not report.has("REP301")


class TestFrontendFailure:
    def test_unparsable_source_rep001(self):
        report = check_source("      GARBAGE\n")
        assert report.has("REP001")
        assert report.errors
        assert not report.ok
