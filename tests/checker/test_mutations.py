"""The mutation-kill suite of the artifact verifier.

Every test seeds one deliberate corruption into otherwise-valid
compiled artifacts (or counter plans) and asserts that the verifier
kills the mutant with the *expected stable error code* — not merely
"some error".  A verifier that cannot kill these mutants would wave
through exactly the corruptions the batch cache must catch on disk
hits.

The pristine program is compiled once per module; every test mutates
a deep copy, and a paranoia check asserts the pristine artifacts stay
clean afterwards.
"""

import copy

import pytest

from repro import compile_source, smart_program_plan
from repro.cdg.control_deps import CDEdge
from repro.cfg.graph import CFGEdge
from repro.checker import verify_program
from repro.profiling.measures import DerivedRule
from repro.workloads import PAPER_SOURCE, livermore_source

pytestmark = pytest.mark.checker


@pytest.fixture(scope="module")
def pristine():
    return compile_source(PAPER_SOURCE)


@pytest.fixture
def program(pristine):
    return copy.deepcopy(pristine)


def codes(program, plan=None) -> set[str]:
    return verify_program(program, plan).codes()


def errors(program, plan=None):
    return verify_program(program, plan).errors


class TestStructureMutations:
    def test_pristine_is_clean(self, pristine):
        assert not verify_program(pristine).diagnostics

    def test_dangling_cfg_edge_rep100(self, program):
        cfg = program.cfgs[program.main_name]
        cfg.edges.append(CFGEdge(cfg.entry, 99_999, "T"))
        assert "REP100" in codes(program)

    def test_edge_index_drift_rep100(self, program):
        """An edge present in the list but absent from the indexes."""
        cfg = program.cfgs[program.main_name]
        nodes = sorted(cfg.nodes)
        cfg.edges.append(CFGEdge(nodes[1], nodes[2], "X"))
        assert "REP100" in codes(program)

    def test_broken_interval_nesting_rep102(self, program):
        intervals = program.ecfgs[program.main_name].intervals
        loop = next(h for h in intervals.hdr_parent if h != intervals.root)
        member = next(iter(intervals.members[loop]))
        intervals.members[intervals.hdr_parent[loop]].discard(member)
        assert codes(program) == {"REP102"}

    def test_missing_preheader_mapping_rep103(self, program):
        ecfg = program.ecfgs[program.main_name]
        header, preheader = next(iter(ecfg.preheader_of.items()))
        del ecfg.preheader_of[header]
        del ecfg.header_of[preheader]
        assert "REP103" in codes(program)

    def test_bogus_postexit_source_rep104(self, program):
        ecfg = program.ecfgs[program.main_name]
        postexit, edge = next(iter(ecfg.postexit_source.items()))
        ecfg.postexit_source[postexit] = CFGEdge(
            ecfg.start, edge.dst, edge.label
        )
        assert "REP104" in codes(program)

    def test_dropped_start_stop_pseudo_edge_rep105(self, program):
        ecfg = program.ecfgs[program.main_name]
        ecfg.graph.edges = [
            e
            for e in ecfg.graph.edges
            if not (e.src == ecfg.start and e.is_pseudo)
        ]
        assert codes(program) == {"REP105"}

    def test_rogue_pseudo_edge_rep105(self, program):
        ecfg = program.ecfgs[program.main_name]
        ordinary = next(
            n
            for n in ecfg.graph.nodes
            if n not in ecfg.header_of and n != ecfg.start
        )
        ecfg.graph.edges.append(CFGEdge(ordinary, ecfg.stop, "Z9"))
        assert codes(program) == {"REP105"}

    def test_orphaned_fcdg_node_rep106(self, program):
        fcdg = program.fcdgs[program.main_name]
        victim = next(n for n in fcdg.nodes if n != fcdg.root)
        fcdg.edges = [e for e in fcdg.edges if e.dst != victim]
        fcdg._parents[victim] = []
        assert codes(program) == {"REP106"}

    def test_fcdg_cycle_rep106(self, program):
        fcdg = program.fcdgs[program.main_name]
        child = next(n for n in fcdg.nodes if n != fcdg.root)
        label = next(iter(fcdg.ecfg.graph.out_labels(child)))
        back = CDEdge(child, fcdg.root, label)
        fcdg.edges.append(back)
        fcdg._children.setdefault(child, {}).setdefault(label, []).append(
            fcdg.root
        )
        fcdg._parents.setdefault(fcdg.root, []).append(back)
        assert codes(program) == {"REP106"}

    def test_dropped_ehdr_entry_rep107(self, program):
        ecfg = program.ecfgs[program.main_name]
        victim = next(n for n in ecfg.ehdr if n != ecfg.start)
        del ecfg.ehdr[victim]
        assert "REP107" in codes(program)


class TestPlanMutations:
    def test_pristine_plan_is_clean(self, pristine):
        assert not verify_program(
            pristine, smart_program_plan(pristine)
        ).diagnostics

    def test_deleted_counter_rep201(self, program):
        plan = smart_program_plan(program)
        counter_plan = plan.plans[program.main_name]
        cid = next(iter(counter_plan.counter_measures))
        del counter_plan.counter_measures[cid]
        for registry in (
            counter_plan.node_counters,
            counter_plan.edge_counters,
        ):
            for key, value in list(registry.items()):
                if value == cid:
                    del registry[key]
        assert codes(program, plan) == {"REP201"}

    def test_tampered_rule_rep202(self, program):
        plan = smart_program_plan(program)
        rules = plan.plans[program.main_name].rules.rules
        rule = rules[0]
        rules[0] = DerivedRule(rule.target, rule.kind, rule.terms,
                               rule.bias + 3.0)
        assert codes(program, plan) == {"REP202"}

    def test_dropped_target_rep203(self, program):
        plan = smart_program_plan(program)
        counter_plan = plan.plans[program.main_name]
        counter_plan.targets = counter_plan.targets[:-1]
        assert codes(program, plan) == {"REP203"}

    def test_misplaced_batch_counter_rep204(self):
        # The paper fragment has no batched DO loops; Livermore does.
        program = compile_source(livermore_source())
        plan = smart_program_plan(program)
        for name, counter_plan in plan.plans.items():
            if counter_plan.batch_counters:
                node, batched = next(iter(counter_plan.batch_counters.items()))
                del counter_plan.batch_counters[node]
                counter_plan.batch_counters[program.cfgs[name].entry] = batched
                break
        else:  # pragma: no cover - corpus regression
            pytest.fail("no batch counters anywhere in Livermore")
        assert "REP204" in codes(program, plan)

    def test_duplicated_counter_id_rep205(self, program):
        plan = smart_program_plan(program)
        counter_plan = plan.plans[program.main_name]
        edge_key = next(iter(counter_plan.edge_counters))
        counter_plan.edge_counters[edge_key] = next(
            iter(counter_plan.node_counters.values())
        )
        assert "REP205" in codes(program, plan)

    def test_missing_procedure_plan_rep206(self, program):
        plan = smart_program_plan(program)
        del plan.plans[program.main_name]
        assert codes(program, plan) == {"REP206"}


class TestVerifierRobustness:
    def test_hopelessly_corrupt_artifact_reports_not_raises(self, program):
        program.ecfgs[program.main_name].intervals = None
        report = verify_program(program)
        assert report.errors  # wrapped as a finding, never an exception

    def test_mutations_leave_pristine_untouched(self, pristine):
        assert not verify_program(
            pristine, smart_program_plan(pristine)
        ).diagnostics
