"""Fixtures for the cross-backend conformance suite."""

import pytest

from tests.conformance import harness


@pytest.fixture(params=harness.BACKENDS)
def backend(request):
    """Each execution backend in turn (reference, threaded, codegen)."""
    return request.param


@pytest.fixture(scope="session")
def backends():
    """All backends, reference first, for whole-set comparisons."""
    return harness.BACKENDS
