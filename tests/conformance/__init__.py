"""Cross-backend conformance harness (reference / threaded / codegen)."""
