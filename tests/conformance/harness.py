"""The shared cross-backend conformance harness.

Every execution backend is only allowed to exist because it is
*observationally identical* to the tree-walking reference
interpreter: same outputs, same error type and message raised at the
same step, same node/edge/call counts, float-bit-exact ``total_cost``
and ``counter_cost``, same live counter values and update tallies,
and therefore bit-identical reconstructed ``FREQ``/``NODE_FREQ``/
``TOTAL_FREQ``.  This module turns that contract into two reusable
functions:

* :func:`observe` — one run's full observable behaviour as a plain
  dict (errors included), with floats pinned by ``repr`` so ``-0.0``
  vs ``0.0`` or a one-ulp drift cannot hide behind ``==``;
* :func:`assert_conformance` — run one program through every backend,
  plain and profiled, and assert the observations are identical.

The conformance suite, the fuzz suite and the mutation-kill suite all
drive these same helpers, so "conformant" means exactly one thing
everywhere.
"""

from __future__ import annotations

import hashlib
import os

from repro import SCALAR_MACHINE, compile_source, smart_program_plan
from repro.analysis.freq import compute_frequencies
from repro.errors import ReproError
from repro.paths import (
    PathExecutor,
    path_program_plan,
    reconstruct_path_profile,
)
from repro.pipeline import run_program
from repro.profiling import PlanExecutor, reconstruct_profile
from repro.workloads import builtin_sources
from repro.workloads.generators import ProgramGenerator

#: Every execution backend, reference first (it defines the truth).
BACKENDS = ("reference", "threaded", "codegen")

#: Enough INPUT() values for every builtin that reads them.
INPUTS = (2.25, 9.0, 16.0)

_CACHE: dict[object, object] = {}


def builtin_program(name: str):
    """Compile a builtin workload once per session."""
    if name not in _CACHE:
        source = dict(builtin_sources())[name]
        _CACHE[name] = compile_source(source)
    return _CACHE[name]


def generated_program(gen_seed: int):
    """Compile a generator-corpus program once per session."""
    if gen_seed not in _CACHE:
        _CACHE[gen_seed] = compile_source(ProgramGenerator(gen_seed).source())
    return _CACHE[gen_seed]


def _pin_float(value):
    """A float compared by its repr: bit-identity, not mere equality."""
    return (value, repr(value))


def observe(program, backend: str, *, hooks=None, **kwargs) -> dict:
    """One run's complete observable behaviour, errors included."""
    try:
        result = run_program(program, backend=backend, hooks=hooks, **kwargs)
    except ReproError as exc:
        return {"error": (type(exc).__name__, str(exc))}
    return {
        "halted": result.halted,
        "steps": result.steps,
        "outputs": result.outputs,
        "total_cost": _pin_float(result.total_cost),
        "counter_ops": result.counter_ops,
        "counter_cost": _pin_float(result.counter_cost),
        "node_counts": result.node_counts,
        "edge_counts": result.edge_counts,
        "call_counts": result.call_counts,
        "main_vars": result.main_vars,
    }


def _diverge(backend: str, what: str, reference, candidate, context: str):
    raise AssertionError(
        f"{backend} backend diverges from reference on {what}{context}:\n"
        f"  reference: {reference!r}\n"
        f"  {backend}: {candidate!r}"
    )


def _compare_observations(reference: dict, candidates: dict, context: str):
    for backend, observed in candidates.items():
        if observed == reference:
            continue
        keys = set(reference) | set(observed)
        for key in sorted(keys):
            if reference.get(key) != observed.get(key):
                _diverge(
                    backend, key, reference.get(key), observed.get(key),
                    context,
                )
        _diverge(backend, "observation", reference, observed, context)


def _dump_emitted(program, plan, model) -> None:
    """Save the codegen backend's emitted source for post-mortems.

    Active only when ``REPRO_CONFORMANCE_DUMP`` names a directory (CI
    sets it and uploads the directory as an artifact on failure); a
    divergence report without the generated text it came from is
    nearly impossible to act on.
    """
    out = os.environ.get("REPRO_CONFORMANCE_DUMP")
    if not out:
        return
    try:
        from repro.codegen import codegen_backend_for

        source = codegen_backend_for(program).emitted_source(plan, model)
    except Exception:
        return  # not lowerable: the divergence is elsewhere
    os.makedirs(out, exist_ok=True)
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]
    with open(os.path.join(out, f"emitted-{digest}.py"), "w") as fh:
        fh.write(source)


def assert_conformance(
    program,
    *,
    backends=BACKENDS,
    model=SCALAR_MACHINE,
    **kwargs,
) -> None:
    """Every backend, plain and profiled, must be indistinguishable.

    ``backends`` must start with ``"reference"`` — it is the oracle the
    others are judged against.
    """
    assert backends[0] == "reference"
    others = backends[1:]

    # 1. Plain runs (with a cost model: total_cost must match too).
    plain = {b: observe(program, b, model=model, **kwargs) for b in backends}
    try:
        _compare_observations(
            plain["reference"],
            {b: plain[b] for b in others},
            " (plain run)",
        )
    except AssertionError:
        _dump_emitted(program, None, model)
        raise

    # 2. Profiled runs: RunResult, live counter state, update count.
    plan = smart_program_plan(program)
    executors = {}
    profiled = {}
    for backend in backends:
        executors[backend] = PlanExecutor(plan)
        profiled[backend] = observe(
            program, backend, hooks=executors[backend], model=model, **kwargs
        )
    try:
        _compare_observations(
            profiled["reference"],
            {b: profiled[b] for b in others},
            " (profiled run)",
        )
    except AssertionError:
        _dump_emitted(program, plan, model)
        raise
    for backend in others:
        assert executors[backend].counters == executors["reference"].counters, (
            f"{backend} live counter slots diverge"
        )
        assert executors[backend].updates == executors["reference"].updates, (
            f"{backend} counter update tally diverges"
        )

    # 3. Reconstruction: identical FREQ / NODE_FREQ / TOTAL_FREQ.
    if "error" in profiled["reference"]:
        return  # all runs failed identically; nothing to reconstruct
    profiles = {
        backend: reconstruct_profile(plan, executor, runs=1)
        for backend, executor in executors.items()
    }
    for name in program.cfgs:
        fcdg = program.fcdgs[name]
        freqs = {
            backend: compute_frequencies(fcdg, profiles[backend].proc(name))
            for backend in backends
        }
        for backend in others:
            assert freqs[backend].total_freq == freqs["reference"].total_freq, (
                f"{backend} TOTAL_FREQ diverges in {name}"
            )
            assert freqs[backend].freq == freqs["reference"].freq, (
                f"{backend} FREQ diverges in {name}"
            )
            assert freqs[backend].node_freq == freqs["reference"].node_freq, (
                f"{backend} NODE_FREQ diverges in {name}"
            )


def observe_paths(program, backend: str, plan, **kwargs):
    """One path-profiled run's observable behaviour + path state.

    Returns ``(observation, executor)``.  The fused backends settle
    STOP-halted frames themselves; the reference interpreter leaves
    them live on the hook object, so only it needs ``finalize_run``.
    """
    executor = PathExecutor(plan)
    try:
        result = run_program(program, backend=backend, hooks=executor, **kwargs)
    except ReproError as exc:
        observation = {"error": (type(exc).__name__, str(exc))}
    else:
        if backend == "reference":
            executor.finalize_run()
        observation = {
            "halted": result.halted,
            "steps": result.steps,
            "outputs": result.outputs,
            "total_cost": _pin_float(result.total_cost),
            "counter_ops": result.counter_ops,
            "counter_cost": _pin_float(result.counter_cost),
            "node_counts": result.node_counts,
            "edge_counts": result.edge_counts,
            "call_counts": result.call_counts,
            "main_vars": result.main_vars,
        }
    observation["path_counts"] = {
        name: {
            path_id: _pin_float(count)
            for path_id, count in sorted(counts.items())
        }
        for name, counts in executor.path_counts.items()
    }
    observation["partials"] = tuple(executor.partials)
    observation["updates"] = executor.updates
    return observation, executor


def assert_path_conformance(
    program,
    *,
    backends=BACKENDS,
    model=SCALAR_MACHINE,
    **kwargs,
) -> None:
    """Path mode: every backend must record the identical spectrum.

    Beyond the counter-mode contract, every backend must agree on the
    path-count tables, STOP partials (order included) and register
    update tally — and the reference spectrum must reconstruct the
    counter-measured Definition-3 frequencies bit-for-bit.
    """
    assert backends[0] == "reference"
    others = backends[1:]
    plan = path_program_plan(program)

    observations = {}
    executors = {}
    for backend in backends:
        observations[backend], executors[backend] = observe_paths(
            program, backend, plan, model=model, **kwargs
        )
    try:
        _compare_observations(
            observations["reference"],
            {b: observations[b] for b in others},
            " (path-profiled run)",
        )
    except AssertionError:
        _dump_emitted(program, plan, model)
        raise

    if "error" in observations["reference"]:
        return  # identically-failing runs; no spectrum to reconstruct

    # Cross-mode: the spectrum regenerates the counter-based profile.
    counter_plan = smart_program_plan(program)
    counter_executor = PlanExecutor(counter_plan)
    run_program(program, hooks=counter_executor, model=model, **kwargs)
    counter_profile = reconstruct_profile(counter_plan, counter_executor, runs=1)
    path_profile = reconstruct_path_profile(
        program, plan, executors["reference"], runs=1
    )
    for name in program.cfgs:
        fcdg = program.fcdgs[name]
        want = compute_frequencies(fcdg, counter_profile.proc(name))
        got = compute_frequencies(fcdg, path_profile.proc(name))
        assert got.total_freq == want.total_freq, (
            f"path-reconstructed TOTAL_FREQ diverges in {name}"
        )
        assert got.freq == want.freq, (
            f"path-reconstructed FREQ diverges in {name}"
        )
        assert got.node_freq == want.node_freq, (
            f"path-reconstructed NODE_FREQ diverges in {name}"
        )
