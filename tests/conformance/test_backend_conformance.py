"""Cross-backend conformance: every backend vs the reference oracle.

Replaces the old two-way threaded-vs-reference differential suite
with a single harness that judges *every* execution backend —
threaded and codegen — against the tree-walking reference
interpreter, over every builtin workload (with and without an
``INPUT()`` vector) and 75 seeded generator-corpus programs, plain
and profiled, including step-limit aborts.  Any divergence, down to
an error message or the repr of a float, is a bug in a lowering.
"""

import pytest

from repro.workloads import builtin_sources
from tests.conformance.harness import (
    INPUTS,
    assert_conformance,
    builtin_program,
    generated_program,
)

pytestmark = [pytest.mark.conformance, pytest.mark.differential]

N_PROGRAMS = 75


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_with_inputs(name):
    assert_conformance(builtin_program(name), seed=3, inputs=INPUTS)


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_without_inputs(name):
    """No INPUT() vector: programs that read one must fail identically."""
    assert_conformance(builtin_program(name), seed=3)


@pytest.mark.parametrize("gen_seed", range(N_PROGRAMS))
def test_generated_program(gen_seed):
    program = generated_program(gen_seed)
    run_seed = 7919 * (gen_seed + 1)  # deterministic, distinct per program
    assert_conformance(program, seed=run_seed, max_steps=200_000)


@pytest.mark.parametrize("gen_seed", [0, 17, 42, 63])
def test_step_limit_parity(gen_seed):
    """A max_steps abort happens at the same step with the same message.

    ``max_steps=50`` lands mid-program, which on the codegen backend
    exercises the fused-block slow path: a block whose batched step
    charge overruns the budget replays its nodes one at a time to
    raise the limit error at exactly the right node.
    """
    program = generated_program(gen_seed)
    assert_conformance(program, seed=11, max_steps=50)
