"""Optimized codegen (`optimize=True`) must be observationally free.

The dataflow optimizer folds SCCP-forced branches and drops dead
stores before emission.  Both transformations are only legal because
the pruned regions have *static frequency zero* — so every observable,
down to counter slot values and reconstructed FREQ/NODE_FREQ, must be
bit-identical to the unoptimized engines.  This suite reuses
:func:`tests.conformance.harness.assert_conformance` with
``optimize=True`` threaded through ``run_program`` (the reference and
threaded backends ignore the flag; the codegen backend optimizes), so
"conformant" keeps meaning exactly one thing.
"""

import pytest

from repro.checker import audit_bump_sites
from repro.codegen import codegen_backend_for
from repro.pipeline import smart_program_plan
from repro.workloads import builtin_sources

from tests.conformance.harness import (
    INPUTS,
    assert_conformance,
    builtin_program,
    generated_program,
)

pytestmark = [pytest.mark.conformance, pytest.mark.differential]

N_PROGRAMS = 30


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_optimized(name):
    assert_conformance(
        builtin_program(name), seed=3, inputs=INPUTS, optimize=True
    )


@pytest.mark.parametrize("gen_seed", range(N_PROGRAMS))
def test_generated_optimized(gen_seed):
    program = generated_program(gen_seed)
    run_seed = 6007 * (gen_seed + 1)
    assert_conformance(
        program, seed=run_seed, max_steps=200_000, optimize=True
    )


class TestEmission:
    def test_paper_workload_source_shrinks(self):
        """MAIN's `IF (M .GE. 0)` is forced T: folding must pay off."""
        program = builtin_program("paper")
        plain = codegen_backend_for(program).emitted_source()
        optimized = codegen_backend_for(
            program, optimize=True
        ).emitted_source()
        assert optimized.count("\n") < plain.count("\n")

    def test_pruned_arm_recorded_in_meta(self):
        program = builtin_program("paper")
        meta = codegen_backend_for(program, optimize=True).emit_meta()
        pruned = dict(meta.pruned_edges)
        assert pruned["MAIN"], "the forced branch's dead arm must be pruned"
        assert all(label == "F" for _nid, label in pruned["MAIN"])

    def test_optimized_backend_is_cached_separately(self):
        program = builtin_program("paper")
        plain = codegen_backend_for(program)
        optimized = codegen_backend_for(program, optimize=True)
        assert plain is not optimized
        assert codegen_backend_for(program, optimize=True) is optimized


class TestBumpAudit:
    """REP405 stays clean: pruned edge slots are excluded, not missed."""

    @pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
    def test_optimized_emission_passes_audit(self, name):
        program = builtin_program(name)
        plan = smart_program_plan(program)
        backend = codegen_backend_for(program, optimize=True)
        try:
            backend.ensure_lowered()
            meta = backend.emit_meta(plan)
        except Exception:
            pytest.skip("program not lowerable by the codegen backend")
        findings = audit_bump_sites(program, plan, meta)
        assert not findings, [f.render() for f in findings]
