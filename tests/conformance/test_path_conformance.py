"""Path-mode conformance: fused path registers vs the reference hook.

The Ball–Larus path register is fused into all three backends, so it
gets the same treatment counters do: every builtin (with and without
an ``INPUT()`` vector) and the full 75-program generator corpus run
path-profiled on every backend, and the observations — path-count
spectra, STOP partials, update tallies, outputs, costs — must be
identical down to float reprs.  Each conformant reference spectrum is
then reconstructed and must reproduce the counter-measured
Definition-3 ``FREQ``/``NODE_FREQ``/``TOTAL_FREQ`` bit-for-bit.
"""

import pytest

from repro.workloads import builtin_sources
from tests.conformance.harness import (
    INPUTS,
    assert_path_conformance,
    builtin_program,
    generated_program,
)

pytestmark = [
    pytest.mark.conformance,
    pytest.mark.differential,
    pytest.mark.paths,
]

N_PROGRAMS = 75


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_with_inputs(name):
    assert_path_conformance(builtin_program(name), seed=3, inputs=INPUTS)


@pytest.mark.parametrize("name", [n for n, _ in builtin_sources()])
def test_builtin_without_inputs(name):
    """No INPUT() vector: programs that read one must fail identically."""
    assert_path_conformance(builtin_program(name), seed=3)


@pytest.mark.parametrize("gen_seed", range(N_PROGRAMS))
def test_generated_program(gen_seed):
    program = generated_program(gen_seed)
    run_seed = 7919 * (gen_seed + 1)  # deterministic, distinct per program
    assert_path_conformance(program, seed=run_seed, max_steps=200_000)
