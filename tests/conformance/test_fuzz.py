"""Seeded structural fuzzing of the cross-backend contract.

The conformance corpus only covers programs the generator naturally
produces.  This suite perturbs those programs *structurally* — swap
the arms of an IF, change a DO trip count, inject an early STOP,
negate a relational, nudge a constant — and requires every mutant
that still compiles to be bit-identical across all three backends
(or for the codegen/threaded lowering to opt out with an explicit
:class:`LoweringError`; silent divergence is the only failure).

All randomness is ``random.Random`` seeded from the case id, so every
failure replays exactly.  A failing mutant is greedily minimized
(mutations are dropped one at a time while the failure persists) and
the reproducer source is written to the directory named by the
``REPRO_FUZZ_FAILURES`` environment variable (falling back to the
test's tmp dir) before the assertion is re-raised.
"""

import json
import os
import random
import re

import pytest

from repro.errors import ReproError
from repro.fastexec import LoweringError
from repro.pipeline import compile_source
from repro.workloads.generators import ProgramGenerator
from tests.conformance.harness import assert_conformance

pytestmark = [pytest.mark.conformance, pytest.mark.differential]

N_CASES = 40

_RELOP_FLIPS = {
    ".LT.": ".GE.",
    ".GE.": ".LT.",
    ".GT.": ".LE.",
    ".LE.": ".GT.",
    ".EQ.": ".NE.",
    ".NE.": ".EQ.",
}

_DO_RE = re.compile(r"^(\s*)DO (\d+) (\w+) = (.+?), (\d+)\s*$")
_FLOAT_RE = re.compile(r"\d\.\d+")


# -- mutators ------------------------------------------------------------
#
# Each mutator takes (lines, rng) and returns the mutated line list, or
# None when the program offers no site for it.  Mutators are pure in
# (lines, rng seed), so a mutation plan replays deterministically.


def _if_blocks(lines):
    """All (if_idx, else_idx, endif_idx) triples with a real ELSE arm."""
    stack, found = [], []
    for i, line in enumerate(lines):
        text = line.strip()
        if text.startswith("IF (") and text.endswith("THEN"):
            stack.append([i, None])
        elif text == "ELSE" and stack:
            stack[-1][1] = i
        elif text == "ENDIF" and stack:
            if_idx, else_idx = stack.pop()
            if else_idx is not None:
                found.append((if_idx, else_idx, i))
    return found


def _swap_if_arms(lines, rng):
    blocks = _if_blocks(lines)
    if not blocks:
        return None
    if_idx, else_idx, endif_idx = rng.choice(blocks)
    then_arm = lines[if_idx + 1 : else_idx]
    else_arm = lines[else_idx + 1 : endif_idx]
    return (
        lines[: if_idx + 1]
        + else_arm
        + [lines[else_idx]]
        + then_arm
        + lines[endif_idx:]
    )


def _perturb_trip(lines, rng):
    sites = [i for i, line in enumerate(lines) if _DO_RE.match(line)]
    if not sites:
        return None
    i = rng.choice(sites)
    match = _DO_RE.match(lines[i])
    stop = int(match.group(5))
    new_stop = rng.choice([stop + 1, max(stop - 1, 0), stop * 2, 0, 1])
    out = list(lines)
    out[i] = (
        f"{match.group(1)}DO {match.group(2)} {match.group(3)} = "
        f"{match.group(4)}, {new_stop}"
    )
    return out


def _inject_stop(lines, rng):
    sites = [
        i
        for i, line in enumerate(lines)
        if re.match(r"^\s+(\w+(\([^)]*\))? = |PRINT |CALL )", line)
    ]
    if not sites:
        return None
    i = rng.choice(sites)
    return lines[:i] + ["      STOP"] + lines[i:]


def _negate_relop(lines, rng):
    sites = [
        (i, op)
        for i, line in enumerate(lines)
        for op in _RELOP_FLIPS
        if op in line
    ]
    if not sites:
        return None
    i, op = rng.choice(sites)
    out = list(lines)
    out[i] = out[i].replace(op, _RELOP_FLIPS[op], 1)
    return out


def _perturb_const(lines, rng):
    sites = [i for i, line in enumerate(lines) if _FLOAT_RE.search(line)]
    if not sites:
        return None
    i = rng.choice(sites)
    old = _FLOAT_RE.search(lines[i]).group(0)
    new = f"{float(old) + rng.choice([-1.0, 0.5, 2.0]):.3f}"
    out = list(lines)
    out[i] = out[i].replace(old, new, 1)
    return out


MUTATORS = {
    "swap-if-arms": _swap_if_arms,
    "perturb-trip": _perturb_trip,
    "inject-stop": _inject_stop,
    "negate-relop": _negate_relop,
    "perturb-const": _perturb_const,
}


def _make_plan(case: int):
    """The deterministic mutation plan for one fuzz case."""
    rng = random.Random(0x5EED ^ (case * 2654435761))
    k = 1 + rng.randrange(3)
    return [
        (rng.choice(sorted(MUTATORS)), rng.getrandbits(32)) for _ in range(k)
    ]


def _apply_plan(source: str, plan):
    """Apply a mutation plan; returns (mutant_source, applied_steps)."""
    lines = source.splitlines()
    applied = []
    for op, op_seed in plan:
        mutated = MUTATORS[op](lines, random.Random(op_seed))
        if mutated is not None:
            lines = mutated
            applied.append((op, op_seed))
    return "\n".join(lines) + "\n", applied


# -- the oracle ----------------------------------------------------------


def _check_mutant(source: str, *, seed: int):
    """None if conformant (or codegen opted out); the failure otherwise."""
    try:
        program = compile_source(source)
    except ReproError:
        return None  # mutant does not compile: vacuous, not a divergence
    try:
        assert_conformance(program, seed=seed, max_steps=100_000)
    except LoweringError:
        return None  # explicit opt-out is allowed; silence is not
    except AssertionError as failure:
        return failure
    return None


def _minimize(source: str, applied, *, seed: int):
    """Greedily drop mutations while the conformance failure persists."""
    current = list(applied)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for drop in range(len(current)):
            candidate = current[:drop] + current[drop + 1 :]
            mutant, replayed = _apply_plan(source, candidate)
            if replayed == candidate and _check_mutant(mutant, seed=seed):
                current = candidate
                shrunk = True
                break
    return current


def _failure_dir(tmp_path):
    configured = os.environ.get("REPRO_FUZZ_FAILURES")
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    return str(tmp_path)


@pytest.mark.parametrize("case", range(N_CASES))
def test_fuzzed_mutant_conforms(case, tmp_path):
    base = ProgramGenerator(case).source()
    plan = _make_plan(case)
    mutant, applied = _apply_plan(base, plan)
    if not applied:
        pytest.skip("no mutation site in this program")
    run_seed = 104729 * (case + 1)
    failure = _check_mutant(mutant, seed=run_seed)
    if failure is None:
        return
    minimal = _minimize(base, applied, seed=run_seed)
    repro_source, _ = _apply_plan(base, minimal)
    out_dir = _failure_dir(tmp_path)
    stem = os.path.join(out_dir, f"fuzz-case-{case}")
    with open(stem + ".f", "w") as handle:
        handle.write(repro_source)
    with open(stem + ".json", "w") as handle:
        json.dump(
            {
                "case": case,
                "generator_seed": case,
                "run_seed": run_seed,
                "mutations": [list(step) for step in minimal],
                "failure": str(failure),
            },
            handle,
            indent=2,
        )
    raise AssertionError(
        f"fuzz case {case} diverges across backends "
        f"(minimized reproducer: {stem}.f): {failure}"
    ) from failure


def test_corpus_is_not_vacuous():
    """Most fuzz cases must mutate and most mutants must still compile."""
    mutated = compiled = 0
    for case in range(N_CASES):
        base = ProgramGenerator(case).source()
        mutant, applied = _apply_plan(base, _make_plan(case))
        if not applied:
            continue
        mutated += 1
        try:
            compile_source(mutant)
        except ReproError:
            continue
        compiled += 1
    assert mutated >= int(N_CASES * 0.8), mutated
    assert compiled >= int(N_CASES * 0.5), compiled


@pytest.mark.parametrize("op", sorted(MUTATORS))
def test_each_mutator_fires(op):
    """Every mutator finds a site somewhere in the first 40 programs."""
    for case in range(N_CASES):
        lines = ProgramGenerator(case).source().splitlines()
        if MUTATORS[op](lines, random.Random(7)) is not None:
            return
    raise AssertionError(f"mutator {op} never fired on the corpus")
