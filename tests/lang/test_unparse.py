"""Unit tests for the unparser (used by CFG node labels and reports)."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.unparse import stmt_text, unparse_expr


def expr_of(text):
    unit = parse_program(f"PROGRAM MAIN\nQ = {text}\nEND\n")
    return unit.main.body[0].value


def roundtrip(text):
    """unparse(parse(text)) must re-parse to an identical rendering."""
    first = unparse_expr(expr_of(text))
    second = unparse_expr(expr_of(first))
    return first, second


class TestExpressions:
    def test_literals(self):
        assert unparse_expr(expr_of("42")) == "42"
        assert unparse_expr(expr_of(".TRUE.")) == ".TRUE."
        assert unparse_expr(expr_of("'HI'")) == "'HI'"

    def test_operators_normalized_to_dot_form(self):
        assert unparse_expr(expr_of("A >= B")) == "A .GE. B"
        assert unparse_expr(expr_of("A == B")) == "A .EQ. B"

    def test_precedence_no_redundant_parens(self):
        assert unparse_expr(expr_of("A + B * C")) == "A + B * C"

    def test_necessary_parens_kept(self):
        assert unparse_expr(expr_of("(A + B) * C")) == "(A + B) * C"

    def test_left_associative_subtraction(self):
        # A - (B - C) must not lose its parentheses.
        text = unparse_expr(expr_of("A - (B - C)"))
        assert text == "A - (B - C)"

    def test_power_right_associativity_preserved(self):
        text = unparse_expr(expr_of("(A ** B) ** C"))
        assert "(" in text

    def test_function_and_array_forms(self):
        assert unparse_expr(expr_of("SQRT(X + 1.0)")) == "SQRT(X + 1.0)"

    def test_unary_and_not(self):
        assert unparse_expr(expr_of("-X")) == "-X"
        assert unparse_expr(expr_of(".NOT. L .AND. M .GT. 0")) == (
            ".NOT. L .AND. M .GT. 0"
        )

    @pytest.mark.parametrize(
        "text",
        [
            "A + B * C - D / E",
            "(A + B) * (C - D)",
            "A .LT. B .OR. C .GE. D .AND. E .NE. F",
            "-A ** 2 + ABS(B)",
            "MOD(I + 1, 7) * 2",
        ],
    )
    def test_roundtrip_stable(self, text):
        first, second = roundtrip(text)
        assert first == second


class TestStatements:
    def stmt_of(self, line, prefix=()):
        src = "PROGRAM MAIN\n" + "\n".join(prefix) + ("\n" if prefix else "")
        src += line + "\nEND\n"
        body = parse_program(src).main.body
        return body[-1]

    def test_assignment(self):
        assert stmt_text(self.stmt_of("X = Y + 1.0")) == "X = Y + 1.0"

    def test_logical_if(self):
        text = stmt_text(self.stmt_of("10 CONTINUE", ()))  # target first
        stmt = self.stmt_of("IF (X .GT. 0) GOTO 10", ["10 CONTINUE"])
        assert stmt_text(stmt) == "IF (X .GT. 0) GOTO 10"

    def test_do_loop_header(self):
        stmt = self.stmt_of("DO 10 I = 1, N, 2\nX = 1.0\n10 CONTINUE")
        assert stmt_text(stmt) == "DO I = 1, N, 2"

    def test_computed_goto(self):
        body = parse_program(
            "PROGRAM MAIN\nGOTO (10, 20), K\n10 CONTINUE\n20 CONTINUE\nEND\n"
        ).main.body
        assert stmt_text(body[0]) == "GOTO (10, 20), K"

    def test_call_with_and_without_args(self):
        src = (
            "PROGRAM MAIN\nCALL A\nCALL B(X, 1)\nEND\n"
            "SUBROUTINE A\nY = 1.0\nEND\nSUBROUTINE B(P, Q)\nY = P\nEND\n"
        )
        body = parse_program(src).main.body
        assert stmt_text(body[0]) == "CALL A"
        assert stmt_text(body[1]) == "CALL B(X, 1)"

    def test_declaration(self):
        stmt = self.stmt_of("REAL X, A(10)\nX = 1.0")
        body = parse_program(
            "PROGRAM MAIN\nREAL X, A(10)\nX = 1.0\nEND\n"
        ).main.body
        assert stmt_text(body[0]) == "REAL X, A"
