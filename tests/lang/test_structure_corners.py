"""Structural corner cases of the language and its lowering."""

import pytest

from repro import compile_source, run_program
from repro.errors import ParseError


def outputs_of(body_lines, extra="", **kwargs):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n" + extra
    return run_program(compile_source(source), **kwargs).outputs


class TestEmptyAndDegenerate:
    def test_empty_then_arm(self):
        assert outputs_of(
            ["IF (1 .GT. 0) THEN", "ENDIF", "PRINT *, 'OK'"]
        ) == ["OK"]

    def test_empty_else(self):
        assert outputs_of(
            ["IF (1 .LT. 0) THEN", "X = 1.0", "ELSE", "ENDIF",
             "PRINT *, 'OK'"]
        ) == ["OK"]

    def test_body_is_only_declarations(self):
        assert outputs_of(
            ["REAL X", "INTEGER I", "PRINT *, 'OK'"]
        ) == ["OK"]

    def test_do_terminator_is_executable(self):
        # the labelled terminator may be a real statement, included in
        # the body (executed every iteration).
        assert outputs_of(
            ["K = 0", "DO 10 I = 1, 4", "10 K = K + I", "PRINT *, K"]
        ) == ["10"]

    def test_goto_to_last_statement(self):
        assert outputs_of(
            ["GOTO 10", "X = 1.0", "10 PRINT *, 'END'"]
        ) == ["END"]


class TestThreeDimensionalArrays:
    def test_declare_store_load(self):
        assert outputs_of(
            [
                "REAL CUBE(3, 4, 5)",
                "CUBE(2, 3, 4) = 6.5",
                "PRINT *, CUBE(2, 3, 4)",
            ]
        ) == ["6.5"]

    def test_bounds_checked_per_dimension(self):
        from repro.errors import InterpreterError

        with pytest.raises(InterpreterError):
            outputs_of(["REAL CUBE(2, 2, 2)", "CUBE(1, 3, 1) = 0.0"])

    def test_triple_loop_fill(self):
        body = [
            "INTEGER C(2, 3, 2)",
            "K = 0",
            "DO 30 I = 1, 2",
            "DO 20 J = 1, 3",
            "DO 10 L = 1, 2",
            "K = K + 1",
            "C(I, J, L) = K",
            "10 CONTINUE",
            "20 CONTINUE",
            "30 CONTINUE",
            "PRINT *, C(2, 3, 2), K",
        ]
        assert outputs_of(body) == ["12 12"]


class TestLabelCorners:
    def test_label_on_if_block(self):
        assert outputs_of(
            [
                "K = 0",
                "10 IF (K .LT. 3) THEN",
                "K = K + 1",
                "GOTO 10",
                "ENDIF",
                "PRINT *, K",
            ]
        ) == ["3"]

    def test_label_on_do_statement(self):
        assert outputs_of(
            [
                "K = 0",
                "5 DO 10 I = 1, 2",
                "K = K + 1",
                "10 CONTINUE",
                "IF (K .LT. 6) GOTO 5",
                "PRINT *, K",
            ]
        ) == ["6"]

    def test_shared_do_terminator_rejected(self):
        with pytest.raises(ParseError):
            compile_source(
                "PROGRAM MAIN\nDO 10 I = 1, 2\nDO 10 J = 1, 2\n"
                "X = 1.0\n10 CONTINUE\nEND\n"
            )

    def test_label_zero_padding_irrelevant(self):
        # labels are integers: 010 and 10 are the same label.
        assert outputs_of(["GOTO 010", "10 PRINT *, 'OK'"]) == ["OK"]


class TestExpressionCorners:
    def test_deeply_nested_parens(self):
        expr = "1.0" + " + (1.0" * 15 + ")" * 15
        assert outputs_of([f"X = {expr}", "PRINT *, X"]) == ["16"]

    def test_chained_unary_minus(self):
        assert outputs_of(["I = - - -3", "PRINT *, I"]) == ["-3"]

    def test_power_tower(self):
        assert outputs_of(["I = 2 ** 2 ** 3", "PRINT *, I"]) == ["256"]

    def test_mixed_comparisons_spellings(self):
        assert outputs_of(
            ["IF (2 >= 2 .AND. 3 .NE. 4) PRINT *, 'OK'"]
        ) == ["OK"]

    def test_function_call_as_array_index(self):
        extra = "INTEGER FUNCTION IDX(N)\nINTEGER N\nIDX = N + 1\nEND\n"
        assert outputs_of(
            ["REAL A(5)", "A(IDX(2)) = 9.0", "PRINT *, A(3)"], extra=extra
        ) == ["9"]
