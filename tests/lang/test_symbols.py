"""Unit tests for minifort semantic checking."""

import pytest

from repro.errors import SemanticError
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.symbols import check_program, implicit_type


def check(source):
    return check_program(parse_program(source))


def check_main_body(body_lines):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n"
    return check(source)


class TestImplicitTyping:
    def test_i_through_n_integer(self):
        for name in ["I", "J", "K", "L", "M", "N", "INDEX", "NROWS"]:
            assert implicit_type(name) is ast.Type.INTEGER

    def test_other_names_real(self):
        for name in ["A", "H", "O", "X", "SUM", "ZETA"]:
            assert implicit_type(name) is ast.Type.REAL

    def test_undeclared_scalar_gets_implicit_type(self):
        checked = check_main_body(["X = 1.0", "I = 2"])
        table = checked.tables["MAIN"]
        assert table.lookup("X").type is ast.Type.REAL
        assert table.lookup("I").type is ast.Type.INTEGER


class TestDeclarations:
    def test_explicit_declaration_wins(self):
        checked = check_main_body(["INTEGER X", "X = 1"])
        assert checked.tables["MAIN"].lookup("X").type is ast.Type.INTEGER

    def test_array_declaration(self):
        checked = check_main_body(["REAL A(10, 20)", "A(1, 2) = 0.0"])
        info = checked.tables["MAIN"].lookup("A")
        assert info.is_array
        assert info.dims == (10, 20)

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["INTEGER X", "REAL X", "X = 1"])

    def test_parameter_constants_evaluated(self):
        checked = check_main_body(["PARAMETER (N = 10 * 10, H = 1.0 / 4.0)", "X = N"])
        consts = checked.tables["MAIN"].constants
        assert consts["N"] == 100
        assert consts["H"] == 0.25

    def test_parameter_referencing_earlier_constant(self):
        checked = check_main_body(["PARAMETER (N = 4)", "PARAMETER (M = N + 1)", "X = M"])
        assert checked.tables["MAIN"].constants["M"] == 5

    def test_nonconstant_parameter_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["PARAMETER (N = K + 1)", "X = N"])

    def test_assignment_to_constant_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["PARAMETER (N = 4)", "N = 5"])

    def test_param_redeclaration_allowed(self):
        source = (
            "PROGRAM MAIN\nCALL S(1)\nEND\n"
            "SUBROUTINE S(A)\nREAL A\nX = A\nEND\n"
        )
        checked = check(source)
        info = checked.tables["S"].lookup("A")
        assert info.is_param
        assert info.type is ast.Type.REAL


class TestUsageChecks:
    def test_goto_unknown_label_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["GOTO 99"])

    def test_computed_goto_unknown_label_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["GOTO (10, 99), K", "10 CONTINUE"])

    def test_duplicate_label_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["10 CONTINUE", "10 X = 1"])

    def test_call_unknown_subroutine_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["CALL NOPE"])

    def test_call_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            check(
                "PROGRAM MAIN\nCALL FOO(1)\nEND\n"
                "SUBROUTINE FOO(A, B)\nX = A + B\nEND\n"
            )

    def test_call_to_function_rejected(self):
        with pytest.raises(SemanticError):
            check(
                "PROGRAM MAIN\nCALL F(1)\nEND\n"
                "FUNCTION F(X)\nF = X\nEND\n"
            )

    def test_array_used_without_subscripts_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["REAL A(10)", "X = A + 1.0"])

    def test_wrong_subscript_count_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["REAL A(10)", "A(1, 2) = 0.0"])

    def test_assign_whole_array_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["REAL A(10)", "A = 0.0"])

    def test_undeclared_array_target_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["Q(1) = 0.0"])

    def test_do_variable_must_be_scalar(self):
        with pytest.raises(SemanticError):
            check_main_body(["INTEGER I(5)", "DO I = 1, 3", "X = 1", "ENDDO"])


class TestCallResolution:
    def test_intrinsic_ok(self):
        check_main_body(["X = SQRT(2.0) + MOD(7, 3)"])

    def test_intrinsic_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["X = SQRT(1.0, 2.0)"])

    def test_user_function_in_expression(self):
        check(
            "PROGRAM MAIN\nX = F(1.0)\nEND\n"
            "FUNCTION F(Y)\nF = Y * 2.0\nEND\n"
        )

    def test_user_function_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            check(
                "PROGRAM MAIN\nX = F(1.0, 2.0)\nEND\n"
                "FUNCTION F(Y)\nF = Y\nEND\n"
            )

    def test_array_reference_disambiguated_from_call(self):
        # A(I) where A is a declared array is an array ref, not a call.
        check_main_body(["REAL A(10)", "I = 1", "X = A(I) + 1.0"])

    def test_unknown_callable_rejected(self):
        with pytest.raises(SemanticError):
            check_main_body(["X = MYSTERY(1)"])

    def test_function_name_assignable_inside_function(self):
        checked = check(
            "PROGRAM MAIN\nX = F(1.0)\nEND\n"
            "FUNCTION F(Y)\nF = Y\nEND\n"
        )
        assert checked.tables["F"].lookup("F") is not None

    def test_paper_example_checks(self):
        check(
            """
      PROGRAM MAIN
      M = INPUT(1)
      N = INPUT(2)
10    IF (M .GE. 0) THEN
        IF (N .LT. 0) GOTO 20
      ELSE
        IF (N .GE. 0) GOTO 20
      ENDIF
      CALL FOO(M, N)
      GOTO 10
20    CONTINUE
      END

      SUBROUTINE FOO(M, N)
      M = M - 1
      END
"""
        )
