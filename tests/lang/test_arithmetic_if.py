"""Tests for the arithmetic IF statement (three-way sign branch)."""

import pytest

from repro import (
    compile_source,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.errors import InterpreterError, SemanticError
from repro.lang import ast
from repro.lang.parser import parse_program
from repro.lang.symbols import check_program
from repro.cfg.graph import StmtKind
from repro.profiling import PlanExecutor, reconstruct_profile

SOURCE = """\
      PROGRAM MAIN
      K = INT(INPUT(1))
      IF (K) 10, 20, 30
10    PRINT *, 'NEG'
      GOTO 40
20    PRINT *, 'ZERO'
      GOTO 40
30    PRINT *, 'POS'
40    CONTINUE
      END
"""


class TestParsing:
    def test_parses_to_arithmetic_if(self):
        unit = parse_program(SOURCE)
        stmt = unit.main.body[1]
        assert isinstance(stmt, ast.ArithmeticIf)
        assert stmt.targets == (10, 20, 30)

    def test_labels_validated(self):
        with pytest.raises(SemanticError):
            check_program(
                parse_program("PROGRAM MAIN\nIF (K) 10, 20, 99\n"
                              "10 CONTINUE\n20 CONTINUE\nEND\n")
            )

    def test_unparse(self):
        from repro.lang.unparse import stmt_text

        stmt = parse_program(SOURCE).main.body[1]
        assert stmt_text(stmt) == "IF (K) 10, 20, 30"


class TestCFG:
    def test_three_labelled_edges(self):
        program = compile_source(SOURCE)
        cfg = program.cfgs["MAIN"]
        aif = next(n for n in cfg if n.kind is StmtKind.AIF)
        assert sorted(e.label for e in cfg.out_edges(aif.id)) == [
            "EQ",
            "GT",
            "LT",
        ]

    def test_duplicate_targets_allowed(self):
        source = (
            "PROGRAM MAIN\nIF (K) 10, 10, 20\n10 PRINT *, 'NP'\n"
            "20 CONTINUE\nEND\n"
        )
        program = compile_source(source)
        cfg = program.cfgs["MAIN"]
        aif = next(n for n in cfg if n.kind is StmtKind.AIF)
        assert len(cfg.out_edges(aif.id)) == 3


class TestExecution:
    @pytest.mark.parametrize(
        "value,expected",
        [(-5.0, "NEG"), (0.0, "ZERO"), (7.0, "POS")],
    )
    def test_sign_dispatch(self, value, expected):
        program = compile_source(SOURCE)
        result = run_program(program, inputs=(value,))
        assert result.outputs == [expected]

    def test_logical_value_rejected(self):
        source = "PROGRAM MAIN\nLOGICAL L\nIF (L) 10, 10, 10\n10 CONTINUE\nEND\n"
        program = compile_source(source)
        with pytest.raises(InterpreterError):
            run_program(program)


class TestProfiling:
    def test_three_way_condition_counters(self):
        # Opt 2 keeps n-1 of the n=3 labels.
        program = compile_source(SOURCE)
        plan = smart_program_plan(program).plans["MAIN"]
        aif_edges = [k for k in plan.edge_counters if k[1] in ("LT", "EQ", "GT")]
        assert len(aif_edges) == 2

    def test_reconstruction_exact(self):
        program = compile_source(SOURCE)
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        specs = [{"inputs": (v,)} for v in (-1.0, -2.0, 0.0, 3.0, 4.0, 5.0)]
        for spec in specs:
            run_program(program, hooks=executor, **spec)
        oracle = oracle_program_profile(program, runs=specs)
        rec = reconstruct_profile(plan, executor, runs=len(specs))
        cfg = program.cfgs["MAIN"]
        aif = next(n for n in cfg if n.kind is StmtKind.AIF)
        for label, want in [("LT", 2.0), ("EQ", 1.0), ("GT", 3.0)]:
            assert rec.proc("MAIN").branch_counts[(aif.id, label)] == want
            assert oracle.proc("MAIN").branch_counts.get(
                (aif.id, label), 0.0
            ) == want

    def test_time_identity_holds(self):
        from repro import SCALAR_MACHINE, analyze

        program = compile_source(SOURCE)
        specs = [{"inputs": (v,)} for v in (-1.0, 0.0, 2.0)]
        total = sum(
            run_program(program, model=SCALAR_MACHINE, **s).total_cost
            for s in specs
        )
        profile = oracle_program_profile(program, runs=specs)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_time == pytest.approx(total / 3, rel=1e-9)

    def test_variance_from_three_way_branch(self):
        from repro import SCALAR_MACHINE, analyze

        # Arms of different cost: the three-way mixture has variance.
        source = (
            "PROGRAM MAIN\n"
            "K = INT(INPUT(1))\n"
            "IF (K) 10, 20, 30\n"
            "10 X = 1.0\n"
            "GOTO 40\n"
            "20 X = SQRT(2.0) + EXP(1.0)\n"
            "GOTO 40\n"
            "30 CONTINUE\n"
            "40 CONTINUE\n"
            "END\n"
        )
        program = compile_source(source)
        specs = [{"inputs": (v,)} for v in (-1.0, 0.0, 2.0)]
        profile = oracle_program_profile(program, runs=specs)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_var > 0

    def test_equal_cost_arms_have_zero_variance(self):
        from repro import SCALAR_MACHINE, analyze

        # All three arms cost the same: the mixture degenerates and
        # Case 2 correctly reports zero variance.
        program = compile_source(SOURCE)
        specs = [{"inputs": (v,)} for v in (-1.0, 0.0, 2.0)]
        profile = oracle_program_profile(program, runs=specs)
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_var == pytest.approx(0.0)
