"""Unit tests for the minifort lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.NEWLINE][:-1]


def values(source):
    return [t.value for t in tokenize(source) if t.kind is not TokenKind.NEWLINE][:-1]


class TestBasicTokens:
    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind is TokenKind.INT
        assert toks[0].value == "42"

    def test_real_literal(self):
        toks = tokenize("3.14")
        assert toks[0].kind is TokenKind.REAL
        assert toks[0].value == "3.14"

    def test_real_with_exponent(self):
        assert values("1.5E3") == ["1.5E3"]
        assert kinds("1.5E3") == [TokenKind.REAL]

    def test_real_with_negative_exponent(self):
        assert kinds("2.0E-6") == [TokenKind.REAL]

    def test_double_precision_exponent_normalized(self):
        toks = tokenize("1.0D0")
        assert toks[0].kind is TokenKind.REAL
        assert toks[0].value == "1.0E0"

    def test_real_starting_with_dot(self):
        assert kinds(".5") == [TokenKind.REAL]

    def test_integer_then_dot_operator(self):
        # `1.GE.` must lex as INT then GE, not a real literal.
        assert kinds("1.GE.2") == [TokenKind.INT, TokenKind.GE, TokenKind.INT]

    def test_name_uppercased(self):
        toks = tokenize("alpha")
        assert toks[0].kind is TokenKind.NAME
        assert toks[0].value == "ALPHA"

    def test_keyword_recognized_case_insensitively(self):
        toks = tokenize("Program")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[0].value == "PROGRAM"

    def test_string_literal(self):
        toks = tokenize("'hello'")
        assert toks[0].kind is TokenKind.STRING
        assert toks[0].value == "hello"

    def test_string_with_escaped_quote(self):
        toks = tokenize("'it''s'")
        assert toks[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("A = 1 ; B = 2")


class TestOperators:
    def test_dot_operators(self):
        assert kinds("A .GE. B .AND. C .LT. D") == [
            TokenKind.NAME,
            TokenKind.GE,
            TokenKind.NAME,
            TokenKind.AND,
            TokenKind.NAME,
            TokenKind.LT,
            TokenKind.NAME,
        ]

    def test_modern_comparisons(self):
        assert kinds("A >= B") == [TokenKind.NAME, TokenKind.GE, TokenKind.NAME]
        assert kinds("A == B") == [TokenKind.NAME, TokenKind.EQ, TokenKind.NAME]
        assert kinds("A /= B") == [TokenKind.NAME, TokenKind.NE, TokenKind.NAME]
        assert kinds("A < B") == [TokenKind.NAME, TokenKind.LT, TokenKind.NAME]

    def test_power_vs_star(self):
        assert kinds("A ** 2 * B") == [
            TokenKind.NAME,
            TokenKind.POWER,
            TokenKind.INT,
            TokenKind.STAR,
            TokenKind.NAME,
        ]

    def test_logical_constants(self):
        assert kinds(".TRUE. .FALSE.") == [TokenKind.TRUE, TokenKind.FALSE]

    def test_not_operator(self):
        assert kinds(".NOT. X") == [TokenKind.NOT, TokenKind.NAME]

    def test_malformed_dot_operator_raises(self):
        with pytest.raises(LexError):
            tokenize(".FOO. 1")


class TestCommentsAndLines:
    def test_bang_comment(self):
        assert values("A = 1 ! set A") == ["A", "=", "1"]

    def test_c_comment_line(self):
        toks = tokenize("C this is a comment\nA = 1")
        assert toks[0].value == "A"

    def test_star_comment_line(self):
        toks = tokenize("* star comment\nA = 1")
        assert toks[0].value == "A"

    def test_bang_inside_string_preserved(self):
        toks = tokenize("PRINT *, 'A!B'")
        strings = [t for t in toks if t.kind is TokenKind.STRING]
        assert strings[0].value == "A!B"

    def test_blank_lines_produce_no_tokens(self):
        toks = tokenize("\n\nA = 1\n\n")
        assert toks[0].value == "A"

    def test_line_numbers_tracked(self):
        toks = tokenize("A = 1\nB = 2")
        b_tok = next(t for t in toks if t.value == "B")
        assert b_tok.line == 2

    def test_eof_is_last(self):
        assert tokenize("A = 1")[-1].kind is TokenKind.EOF

    def test_newline_between_statements(self):
        toks = tokenize("A = 1\nB = 2")
        newlines = [t for t in toks if t.kind is TokenKind.NEWLINE]
        assert len(newlines) == 2
