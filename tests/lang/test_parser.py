"""Unit tests for the minifort parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_program


def parse_main_body(body_lines):
    source = "PROGRAM MAIN\n" + "\n".join(body_lines) + "\nEND\n"
    return parse_program(source).main.body


class TestProgramStructure:
    def test_single_program_unit(self):
        unit = parse_program("PROGRAM MAIN\nX = 1\nEND\n")
        assert set(unit.procedures) == {"MAIN"}
        assert unit.main.kind is ast.ProcKind.PROGRAM

    def test_subroutine_with_params(self):
        unit = parse_program(
            "PROGRAM MAIN\nCALL FOO(1, 2)\nEND\n"
            "SUBROUTINE FOO(M, N)\nX = M + N\nEND\n"
        )
        foo = unit.procedures["FOO"]
        assert foo.kind is ast.ProcKind.SUBROUTINE
        assert foo.params == ["M", "N"]

    def test_typed_function(self):
        unit = parse_program(
            "PROGRAM MAIN\nX = 1\nEND\n"
            "INTEGER FUNCTION TWICE(N)\nTWICE = 2 * N\nEND\n"
        )
        fn = unit.procedures["TWICE"]
        assert fn.kind is ast.ProcKind.FUNCTION
        assert fn.return_type is ast.Type.INTEGER

    def test_untyped_function_defaults_to_real(self):
        unit = parse_program(
            "PROGRAM MAIN\nX = 1\nEND\nFUNCTION HALF(X)\nHALF = X / 2.0\nEND\n"
        )
        assert unit.procedures["HALF"].return_type is ast.Type.REAL

    def test_duplicate_procedure_rejected(self):
        with pytest.raises(ParseError):
            parse_program("PROGRAM A\nX=1\nEND\nPROGRAM A\nX=2\nEND\n")

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_main_property_requires_program(self):
        unit = parse_program("SUBROUTINE S\nX = 1\nEND\n")
        with pytest.raises(KeyError):
            unit.main


class TestSimpleStatements:
    def test_assignment(self):
        (stmt,) = parse_main_body(["X = 1 + 2"])
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.VarRef)
        assert isinstance(stmt.value, ast.Binary)

    def test_array_assignment(self):
        (stmt,) = parse_main_body(["A(I, J) = 0.0"])
        assert isinstance(stmt.target, ast.ArrayRef)
        assert len(stmt.target.indices) == 2

    def test_statement_label(self):
        (stmt,) = parse_main_body(["10 CONTINUE"])
        assert stmt.label == 10
        assert isinstance(stmt, ast.ContinueStmt)

    def test_goto(self):
        stmts = parse_main_body(["10 CONTINUE", "GOTO 10"])
        assert isinstance(stmts[1], ast.Goto)
        assert stmts[1].target == 10

    def test_computed_goto(self):
        stmts = parse_main_body(
            ["GOTO (10, 20, 30), K", "10 CONTINUE", "20 CONTINUE", "30 CONTINUE"]
        )
        cg = stmts[0]
        assert isinstance(cg, ast.ComputedGoto)
        assert cg.targets == [10, 20, 30]
        assert isinstance(cg.selector, ast.VarRef)

    def test_call_no_args(self):
        (stmt,) = parse_main_body(["CALL INIT"])
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.args == []

    def test_call_with_args(self):
        (stmt,) = parse_main_body(["CALL FOO(M, N + 1)"])
        assert len(stmt.args) == 2

    def test_return_stop_print(self):
        stmts = parse_main_body(["PRINT *, X, Y", "STOP", "RETURN"])
        assert isinstance(stmts[0], ast.PrintStmt)
        assert len(stmts[0].items) == 2
        assert isinstance(stmts[1], ast.StopStmt)
        assert isinstance(stmts[2], ast.ReturnStmt)

    def test_declaration(self):
        (stmt,) = parse_main_body(["REAL X, A(10), B(5, 5)"])
        assert isinstance(stmt, ast.Declaration)
        assert stmt.names == [("X", ()), ("A", (10,)), ("B", (5, 5))]

    def test_parameter_statement(self):
        (stmt,) = parse_main_body(["PARAMETER (N = 100, M = 2)"])
        assert isinstance(stmt, ast.ParameterStmt)
        assert [name for name, _ in stmt.bindings] == ["N", "M"]


class TestIfStatements:
    def test_logical_if(self):
        (stmt,) = parse_main_body(["IF (X .GT. 0) X = X - 1"])
        assert isinstance(stmt, ast.LogicalIf)
        assert isinstance(stmt.stmt, ast.Assign)

    def test_logical_if_goto(self):
        stmts = parse_main_body(["10 CONTINUE", "IF (N .LT. 0) GOTO 10"])
        assert isinstance(stmts[1], ast.LogicalIf)
        assert isinstance(stmts[1].stmt, ast.Goto)

    def test_block_if(self):
        (stmt,) = parse_main_body(["IF (X > 0) THEN", "Y = 1", "ENDIF"])
        assert isinstance(stmt, ast.IfBlock)
        assert len(stmt.arms) == 1
        assert stmt.else_body == []

    def test_if_else(self):
        (stmt,) = parse_main_body(
            ["IF (X > 0) THEN", "Y = 1", "ELSE", "Y = 2", "ENDIF"]
        )
        assert len(stmt.arms) == 1
        assert len(stmt.else_body) == 1

    def test_elseif_chain(self):
        (stmt,) = parse_main_body(
            [
                "IF (X > 0) THEN",
                "Y = 1",
                "ELSEIF (X < 0) THEN",
                "Y = 2",
                "ELSE IF (X == 0) THEN",
                "Y = 3",
                "ELSE",
                "Y = 4",
                "ENDIF",
            ]
        )
        assert len(stmt.arms) == 3
        assert len(stmt.else_body) == 1

    def test_end_if_spelling(self):
        (stmt,) = parse_main_body(["IF (X > 0) THEN", "Y = 1", "END IF"])
        assert isinstance(stmt, ast.IfBlock)

    def test_nested_if(self):
        (stmt,) = parse_main_body(
            ["IF (A > 0) THEN", "IF (B > 0) THEN", "C = 1", "ENDIF", "ENDIF"]
        )
        inner = stmt.arms[0][1][0]
        assert isinstance(inner, ast.IfBlock)

    def test_block_if_in_logical_if_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body(["IF (X > 0) IF (Y > 0) Z = 1"])

    def test_missing_endif_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body(["IF (X > 0) THEN", "Y = 1"])


class TestDoLoops:
    def test_enddo_form(self):
        (stmt,) = parse_main_body(["DO I = 1, 10", "S = S + I", "ENDDO"])
        assert isinstance(stmt, ast.DoLoop)
        assert stmt.var == "I"
        assert stmt.step is None
        assert len(stmt.body) == 1

    def test_end_do_spelling(self):
        (stmt,) = parse_main_body(["DO I = 1, 10", "S = S + I", "END DO"])
        assert isinstance(stmt, ast.DoLoop)

    def test_do_with_step(self):
        (stmt,) = parse_main_body(["DO I = 10, 1, -1", "S = S + I", "ENDDO"])
        assert isinstance(stmt.step, ast.Unary)

    def test_labelled_do(self):
        (stmt,) = parse_main_body(["DO 10 I = 1, N", "S = S + I", "10 CONTINUE"])
        assert isinstance(stmt, ast.DoLoop)
        assert len(stmt.body) == 2
        assert stmt.body[-1].label == 10

    def test_nested_labelled_do(self):
        (stmt,) = parse_main_body(
            [
                "DO 20 I = 1, N",
                "DO 10 J = 1, M",
                "A(I, J) = 0.0",
                "10 CONTINUE",
                "20 CONTINUE",
            ]
        )
        inner = stmt.body[0]
        assert isinstance(inner, ast.DoLoop)
        assert inner.var == "J"

    def test_do_while(self):
        (stmt,) = parse_main_body(["DO WHILE (X > 0)", "X = X - 1", "ENDDO"])
        assert isinstance(stmt, ast.DoWhile)

    def test_missing_terminator_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body(["DO 10 I = 1, N", "S = S + I"])


class TestExpressions:
    def expr(self, text):
        (stmt,) = parse_main_body([f"X = {text}"])
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op is ast.BinOp.ADD
        assert e.right.op is ast.BinOp.MUL

    def test_power_right_associative(self):
        e = self.expr("2 ** 3 ** 2")
        assert e.op is ast.BinOp.POW
        assert e.right.op is ast.BinOp.POW

    def test_power_binds_tighter_than_unary_minus(self):
        e = self.expr("-2 ** 2")
        assert isinstance(e, ast.Unary)
        assert e.operand.op is ast.BinOp.POW

    def test_comparison_below_arithmetic(self):
        e = self.expr("A + 1 .GT. B * 2")
        assert e.op is ast.BinOp.GT

    def test_and_or_precedence(self):
        e = self.expr("A .GT. 0 .OR. B .GT. 0 .AND. C .GT. 0")
        assert e.op is ast.BinOp.OR
        assert e.right.op is ast.BinOp.AND

    def test_not_binds_tighter_than_and(self):
        e = self.expr(".NOT. A .GT. 0 .AND. B .GT. 0")
        assert e.op is ast.BinOp.AND
        assert isinstance(e.left, ast.Unary)

    def test_parenthesized_grouping(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op is ast.BinOp.MUL
        assert e.left.op is ast.BinOp.ADD

    def test_function_call_expression(self):
        e = self.expr("SQRT(Y + 1.0)")
        assert isinstance(e, ast.FuncCall)
        assert e.name == "SQRT"

    def test_unary_minus(self):
        e = self.expr("-Y")
        assert isinstance(e, ast.Unary)
        assert e.op is ast.UnOp.NEG

    def test_malformed_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body(["X = 1 +"])

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_main_body(["X = (1 + 2"])


class TestPaperExample:
    """Figure 1 of the paper parses and has the expected structure."""

    SOURCE = """
      PROGRAM MAIN
      M = INPUT(1)
      N = INPUT(2)
10    IF (M .GE. 0) THEN
        IF (N .LT. 0) GOTO 20
      ELSE
        IF (N .GE. 0) GOTO 20
      ENDIF
      CALL FOO(M, N)
      GOTO 10
20    CONTINUE
      END

      SUBROUTINE FOO(M, N)
      M = M - 1
      END
"""

    def test_parses(self):
        unit = parse_program(self.SOURCE)
        assert set(unit.procedures) == {"MAIN", "FOO"}

    def test_if_block_with_labels(self):
        unit = parse_program(self.SOURCE)
        body = unit.main.body
        if_block = body[2]
        assert isinstance(if_block, ast.IfBlock)
        assert if_block.label == 10
        assert isinstance(if_block.arms[0][1][0], ast.LogicalIf)
        assert isinstance(if_block.else_body[0], ast.LogicalIf)
