"""Deep structural combinations: nesting, exits, and their analysis.

Table-driven end-to-end checks: each scenario states a program, its
expected printed output, and is additionally pushed through the full
exactness pipeline (reconstruction == oracle, TIME == measured).
"""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.profiling import PlanExecutor, reconstruct_profile

SCENARIOS = {
    "triple_nested_do": (
        "PROGRAM MAIN\nK = 0\n"
        "DO 30 I = 1, 3\nDO 20 J = 1, 4\nDO 10 L = 1, 5\n"
        "K = K + 1\n10 CONTINUE\n20 CONTINUE\n30 CONTINUE\n"
        "PRINT *, K\nEND\n",
        ["60"],
    ),
    "if_ladder_in_loop": (
        "PROGRAM MAIN\nN2 = 0\nN3 = 0\nNR = 0\n"
        "DO 10 I = 1, 30\n"
        "IF (MOD(I, 6) .EQ. 0) THEN\nN2 = N2 + 1\n"
        "ELSEIF (MOD(I, 2) .EQ. 0) THEN\nN3 = N3 + 1\n"
        "ELSE\nNR = NR + 1\nENDIF\n"
        "10 CONTINUE\nPRINT *, N2, N3, NR\nEND\n",
        ["5 10 15"],
    ),
    "while_inside_do": (
        "PROGRAM MAIN\nK = 0\nDO 10 I = 1, 4\nM = I\n"
        "DO WHILE (M .GT. 0)\nM = M - 1\nK = K + 1\nENDDO\n"
        "10 CONTINUE\nPRINT *, K\nEND\n",
        ["10"],
    ),
    "goto_loop_inside_do": (
        "PROGRAM MAIN\nK = 0\nDO 20 I = 1, 3\nM = 0\n"
        "10 M = M + 1\nK = K + 1\nIF (M .LT. I) GOTO 10\n"
        "20 CONTINUE\nPRINT *, K\nEND\n",
        ["6"],
    ),
    "exit_two_levels": (
        "PROGRAM MAIN\nK = 0\nDO 20 I = 1, 10\nDO 10 J = 1, 10\n"
        "K = K + 1\nIF (K .GE. 25) GOTO 99\n10 CONTINUE\n20 CONTINUE\n"
        "99 PRINT *, I, J, K\nEND\n",
        ["3 5 25"],
    ),
    "loop_after_loop": (
        "PROGRAM MAIN\nA = 0.0\nDO 10 I = 1, 5\nA = A + 1.0\n10 CONTINUE\n"
        "DO 20 J = 1, 7\nA = A + 2.0\n20 CONTINUE\nPRINT *, A\nEND\n",
        ["19"],
    ),
    "conditional_loop_entry": (
        "PROGRAM MAIN\nK = INT(INPUT(1))\nS = 0.0\n"
        "IF (K .GT. 0) THEN\nDO 10 I = 1, K\nS = S + 1.0\n10 CONTINUE\n"
        "ENDIF\nPRINT *, S\nEND\n",
        None,  # checked separately for both inputs
    ),
    "computed_goto_in_loop": (
        "PROGRAM MAIN\nN1 = 0\nN2 = 0\nNF = 0\n"
        "DO 40 I = 1, 9\nGOTO (10, 20), MOD(I, 3) + 1\n"
        "NF = NF + 1\nGOTO 40\n"
        "10 N1 = N1 + 1\nGOTO 40\n"
        "20 N2 = N2 + 1\n40 CONTINUE\n"
        "PRINT *, N1, N2, NF\nEND\n",
        ["3 3 3"],
    ),
    "aif_in_while": (
        "PROGRAM MAIN\nK = 5\nNN = 0\nNZ = 0\n"
        "DO WHILE (K .GT. -3)\nK = K - 1\n"
        "IF (K) 10, 20, 30\n"
        "10 NN = NN + 1\nGOTO 40\n"
        "20 NZ = NZ + 1\nGOTO 40\n"
        "30 CONTINUE\n40 CONTINUE\nENDDO\n"
        "PRINT *, NN, NZ\nEND\n",
        ["3 1"],
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_output(name):
    source, expected = SCENARIOS[name]
    if expected is None:
        return
    program = compile_source(source)
    assert run_program(program).outputs == expected


def test_conditional_loop_entry_both_ways():
    source, _ = SCENARIOS["conditional_loop_entry"]
    program = compile_source(source)
    assert run_program(program, inputs=(4.0,)).outputs == ["4"]
    assert run_program(program, inputs=(-1.0,)).outputs == ["0"]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_pipeline_exact(name):
    source, _ = SCENARIOS[name]
    program = compile_source(source)
    specs = [{"inputs": (4.0,), "seed": 0}, {"inputs": (-1.0,), "seed": 1}]
    total = 0.0
    plan = smart_program_plan(program)
    executor = PlanExecutor(plan)
    for spec in specs:
        total += run_program(program, model=SCALAR_MACHINE, **spec).total_cost
        run_program(program, hooks=executor, **spec)
    oracle = oracle_program_profile(program, runs=specs)
    reconstructed = reconstruct_profile(plan, executor, runs=len(specs))
    for proc_name in program.cfgs:
        rec = reconstructed.proc(proc_name)
        orc = oracle.proc(proc_name)
        for key, value in rec.branch_counts.items():
            assert value == orc.branch_counts.get(key, 0.0), (name, key)
        for header, value in rec.header_counts.items():
            assert value == orc.header_counts.get(header, 0.0), (
                name,
                header,
            )
    analysis = analyze(program, oracle, SCALAR_MACHINE)
    assert analysis.total_time == pytest.approx(
        total / len(specs), rel=1e-9
    ), name


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_fcdg_structure(name):
    source, _ = SCENARIOS[name]
    program = compile_source(source)
    for fcdg in program.fcdgs.values():
        fcdg.validate()


class TestMultiLevelExitStructure:
    def test_postexit_placed_at_lca(self):
        source, _ = SCENARIOS["exit_two_levels"]
        program = compile_source(source)
        ecfg = program.ecfgs["MAIN"]
        # the GOTO 99 exit leaves both loops: its postexit lives at
        # the root interval.
        root_level_postexits = [
            pe
            for pe, origin in ecfg.postexit_source.items()
            if ecfg.ehdr[pe] == ecfg.intervals.root
            and "K .GE. 25" in ecfg.graph.nodes[origin.src].text
        ]
        assert len(root_level_postexits) == 1

    def test_pseudo_edge_from_innermost_preheader(self):
        source, _ = SCENARIOS["exit_two_levels"]
        program = compile_source(source)
        ecfg = program.ecfgs["MAIN"]
        outer, inner = ecfg.intervals.loop_headers
        inner_preheader = ecfg.preheader_of[inner]
        origins = {
            ecfg.graph.nodes[origin.src].text
            for pe, origin in ecfg.postexit_source.items()
            if pe in ecfg.postexits_of(inner)
        }
        assert any("K .GE. 25" in text for text in origins)
