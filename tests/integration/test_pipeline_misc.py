"""Miscellaneous pipeline façade behaviors."""

import pytest

from repro import (
    SCALAR_MACHINE,
    CompiledProgram,
    compile_source,
    estimate,
    profile_program,
    run_program,
)
from repro.errors import InterpreterLimitError, ReproError


SOURCE = (
    "PROGRAM MAIN\nDO 10 I = 1, 10\nX = X + RAND()\n10 CONTINUE\n"
    "PRINT *, X\nEND\n"
)


class TestCompiledProgram:
    def test_artifacts_cover_all_procedures(self):
        program = compile_source(SOURCE)
        artifacts = program.artifacts()
        assert set(artifacts) == set(program.cfgs)
        for name, (ecfg, fcdg) in artifacts.items():
            assert ecfg is program.ecfgs[name]
            assert fcdg is program.fcdgs[name]

    def test_main_name(self):
        program = compile_source(SOURCE)
        assert program.main_name == "MAIN"

    def test_source_retained(self):
        program = compile_source(SOURCE)
        assert program.source == SOURCE

    def test_no_splits_for_reducible(self):
        program = compile_source(SOURCE)
        assert program.splits == {}


class TestRunKnobs:
    def test_max_steps_forwarded(self):
        program = compile_source(SOURCE)
        with pytest.raises(InterpreterLimitError):
            run_program(program, max_steps=5)

    def test_profile_program_run_count_shorthand(self):
        program = compile_source(SOURCE)
        profile, stats = profile_program(program, runs=4)
        assert stats.runs == 4
        assert profile.proc("MAIN").invocations == 4.0

    def test_profile_program_distinct_seeds(self):
        # the integer shorthand uses distinct seeds per run, so the
        # accumulated branch counts are not just N copies of run 0.
        branchy = (
            "PROGRAM MAIN\nIF (RAND() .GT. 0.5) X = 1.0\nEND\n"
        )
        program = compile_source(branchy)
        profile, _ = profile_program(program, runs=20)
        counts = list(profile.proc("MAIN").branch_counts.values())
        assert any(0.0 < c < 20.0 for c in counts)

    def test_estimate_runs_shorthand(self):
        analysis = estimate(SOURCE, runs=3)
        assert analysis.total_time > 0

    def test_estimate_profiled_variance(self):
        analysis = estimate(SOURCE, runs=3, loop_variance="profiled")
        assert analysis.total_var >= 0


class TestProfileStatsAccounting:
    def test_counter_updates_match_executor(self):
        program = compile_source(SOURCE)
        profile, stats = profile_program(
            program, runs=2, model=SCALAR_MACHINE
        )
        assert stats.counter_cost == pytest.approx(
            stats.counter_updates * SCALAR_MACHINE.counter_update
        )

    def test_base_cost_accumulates_over_runs(self):
        program = compile_source(SOURCE)
        _, one = profile_program(program, runs=1, model=SCALAR_MACHINE)
        _, three = profile_program(program, runs=3, model=SCALAR_MACHINE)
        assert three.base_cost > 2 * one.base_cost
