"""Regression tests for subtle bugs found while building the pipeline.

Each test documents a real failure mode of an earlier implementation;
keep them even if they look redundant with unit tests elsewhere.
"""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.analysis.freq import compute_frequencies
from repro.profiling import PlanExecutor, reconstruct_profile


class TestLoopCarriedControlDependence:
    """A global CDG on the cyclic ECFG makes statements after the
    header control dependent on the *previous* iteration's branches,
    creating FCDG cycles (first seen on Livermore kernel 16)."""

    KERN16_SHAPE = (
        "PROGRAM MAIN\n"
        "K = 0\n"
        "J = 1\n"
        "10 K = K + 1\n"
        "IF (K .GT. 10) GOTO 70\n"
        "NZ = MOD(K, 3) + 1\n"
        "GOTO (20, 30, 40), NZ\n"
        "20 X = X + 0.5\n"
        "GOTO 10\n"
        "30 X = X * 0.9\n"
        "GOTO 10\n"
        "40 IF (X .GT. 2.0) GOTO 50\n"
        "X = X + 0.1\n"
        "GOTO 10\n"
        "50 J = J + 2\n"
        "GOTO 10\n"
        "70 CONTINUE\n"
        "END\n"
    )

    def test_fcdg_builds_acyclically(self):
        program = compile_source(self.KERN16_SHAPE)
        fcdg = program.fcdgs["MAIN"]
        fcdg.validate()

    def test_frequencies_match_ground_truth(self):
        program = compile_source(self.KERN16_SHAPE)
        result = run_program(program)
        profile = oracle_program_profile(program, runs=[{}])
        freqs = compute_frequencies(
            program.fcdgs["MAIN"], profile.proc("MAIN")
        )
        for node, count in result.node_counts["MAIN"].items():
            assert freqs.node_freq[node] == pytest.approx(count), node


class TestNestedWhileBackEdgeChain:
    """When an inner loop's exit edge is simultaneously the outer
    loop's back edge, the ECFG routes it through a postexit; the
    acyclification must redirect the postexit→header edge, not the
    original (source, label) edge."""

    SOURCE = (
        "PROGRAM MAIN\n"
        "I3 = 3\n"
        "DO WHILE (I3 .GT. 0)\n"
        "  I3 = I3 - 1\n"
        "  I4 = 2\n"
        "  DO WHILE (I4 .GT. 0)\n"
        "    I4 = I4 - 1\n"
        "    K = K + 8\n"
        "  ENDDO\n"
        "ENDDO\n"
        "PRINT *, K\n"
        "END\n"
    )

    def test_compiles_and_runs(self):
        program = compile_source(self.SOURCE)
        result = run_program(program)
        assert result.outputs == ["48"]

    def test_time_identity(self):
        program = compile_source(self.SOURCE)
        measured = run_program(program, model=SCALAR_MACHINE).total_cost
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_time == pytest.approx(measured, rel=1e-9)


class TestInnerLoopFollowedByOuterWork:
    """Statements after a nested loop were once only *pseudo*-dependent
    on the inner preheader, making their NODE_FREQ zero and dropping
    their cost from TIME."""

    SOURCE = (
        "PROGRAM MAIN\n"
        "DO 20 I = 1, 5\n"
        "  DO 10 J = 1, 3\n"
        "    X = X + 1.0\n"
        "10 CONTINUE\n"
        "  Y = Y + SQRT(2.0)\n"
        "20 CONTINUE\n"
        "END\n"
    )

    def test_post_inner_statement_frequency(self):
        program = compile_source(self.SOURCE)
        result = run_program(program)
        profile = oracle_program_profile(program, runs=[{}])
        freqs = compute_frequencies(
            program.fcdgs["MAIN"], profile.proc("MAIN")
        )
        y_node = next(
            n.id for n in program.cfgs["MAIN"] if "Y = Y" in n.text
        )
        assert freqs.node_freq[y_node] == pytest.approx(5.0)
        assert result.node_counts["MAIN"][y_node] == 5

    def test_time_includes_post_inner_work(self):
        program = compile_source(self.SOURCE)
        measured = run_program(program, model=SCALAR_MACHINE).total_cost
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_time == pytest.approx(measured, rel=1e-9)


class TestParameterConstantAsArgument:
    """PARAMETER constants passed as call arguments once bound as
    fresh zero-valued cells instead of their values."""

    def test_constant_value_received(self):
        source = (
            "PROGRAM MAIN\nPARAMETER (N = 7)\nCALL SHOW(N)\nEND\n"
            "SUBROUTINE SHOW(K)\nINTEGER K\nPRINT *, K * 2\nEND\n"
        )
        program = compile_source(source)
        assert run_program(program).outputs == ["14"]

    def test_constant_not_writable_through_callee(self):
        source = (
            "PROGRAM MAIN\nPARAMETER (N = 7)\nCALL BUMP(N)\nPRINT *, N\nEND\n"
            "SUBROUTINE BUMP(K)\nINTEGER K\nK = K + 1\nEND\n"
        )
        program = compile_source(source)
        assert run_program(program).outputs == ["7"]


class TestContinuationAndComments:
    """A continuation line starting with '*' was once swallowed as a
    column-one comment, gluing unrelated statements together."""

    def test_star_continuation_line(self):
        source = (
            "      PROGRAM MAIN\n"
            "      X = (1.0 + 2.0) &\n"
            "            * 3.0\n"
            "      Y = X + 1.0\n"
            "      PRINT *, X, Y\n"
            "      END\n"
        )
        program = compile_source(source)
        assert run_program(program).outputs == ["9 10"]

    def test_column_one_star_still_comment(self):
        source = (
            "      PROGRAM MAIN\n"
            "* a star comment in column one\n"
            "      PRINT *, 1\n"
            "      END\n"
        )
        assert run_program(compile_source(source)).outputs == ["1"]


class TestSingleExitLoopConditions:
    """A single-exit loop's test branch produces no FCDG conditions
    (its postexit postdominates the loop); the smart plan must still
    reconstruct the header count and drop the right counters."""

    def test_roundtrip(self):
        source = (
            "PROGRAM MAIN\nN = INT(INPUT(1))\nDO 10 I = 1, N\n"
            "X = X + 1.0\n10 CONTINUE\nEND\n"
        )
        program = compile_source(source)
        plan = smart_program_plan(program)
        executor = PlanExecutor(plan)
        run_program(program, hooks=executor, inputs=(13.0,))
        reconstructed = reconstruct_profile(plan, executor)
        assert list(
            reconstructed.proc("MAIN").header_counts.values()
        ) == [14.0]
