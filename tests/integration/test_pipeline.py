"""End-to-end tests of the pipeline façade."""

import pytest

from repro import (
    OPTIMIZING_MACHINE,
    SCALAR_MACHINE,
    analyze,
    compile_source,
    estimate,
    naive_program_plan,
    profile_program,
    run_program,
    smart_program_plan,
)
from repro.pipeline import oracle_program_profile
from repro.profiling.database import ProfileDatabase


SOURCE = (
    "PROGRAM MAIN\n"
    "N = INT(INPUT(1))\n"
    "S = 0.0\n"
    "DO 10 I = 1, N\n"
    "IF (RAND() .GT. 0.5) S = S + SQRT(REAL(I))\n"
    "10 CONTINUE\n"
    "PRINT *, S\n"
    "END\n"
)


class TestEstimate:
    def test_one_shot_estimate(self):
        analysis = estimate(
            "PROGRAM MAIN\nDO 10 I = 1, 20\nX = X + RAND()\n10 CONTINUE\nEND\n"
        )
        assert analysis.total_time > 0
        assert analysis.total_std_dev >= 0

    def test_profiled_variance_mode(self):
        analysis = estimate(
            SOURCE.replace("INT(INPUT(1))", "IRAND(5, 30)"),
            runs=6,
            loop_variance="profiled",
        )
        assert analysis.total_var > 0


class TestProfileProgram:
    def test_profile_returns_stats(self):
        program = compile_source(SOURCE)
        profile, stats = profile_program(
            program, runs=[{"inputs": (10.0,)}, {"inputs": (20.0,)}]
        )
        assert stats.runs == 2
        assert stats.counters == smart_program_plan(program).n_counters
        assert stats.counter_updates > 0
        assert profile.runs == 2

    def test_profile_with_cost_model_reports_overhead(self):
        program = compile_source(SOURCE)
        _, stats = profile_program(
            program, runs=[{"inputs": (10.0,)}], model=SCALAR_MACHINE
        )
        assert stats.base_cost > 0
        assert stats.counter_cost > 0

    def test_naive_plan_costs_more(self):
        program = compile_source(SOURCE)
        _, smart_stats = profile_program(
            program, runs=[{"inputs": (30.0,)}], model=SCALAR_MACHINE
        )
        _, naive_stats = profile_program(
            program,
            runs=[{"inputs": (30.0,)}],
            plan=naive_program_plan(program),
            model=SCALAR_MACHINE,
        )
        assert smart_stats.counter_cost < naive_stats.counter_cost

    def test_profile_feeds_analysis(self):
        program = compile_source(SOURCE)
        profile, _ = profile_program(program, runs=[{"inputs": (12.0,)}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        measured = run_program(
            program, inputs=(12.0,), model=SCALAR_MACHINE
        ).total_cost
        assert analysis.total_time == pytest.approx(measured, rel=1e-9)


class TestMultiArchitecture:
    def test_same_profile_two_machines(self):
        # The paper's point: frequencies are architecture-neutral;
        # the same profile prices differently per machine.
        program = compile_source(SOURCE)
        profile, _ = profile_program(program, runs=[{"inputs": (15.0,)}])
        slow = analyze(program, profile, SCALAR_MACHINE)
        fast = analyze(program, profile, OPTIMIZING_MACHINE)
        assert fast.total_time < slow.total_time

    def test_relative_frequencies_identical(self):
        program = compile_source(SOURCE)
        profile, _ = profile_program(program, runs=[{"inputs": (15.0,)}])
        slow = analyze(program, profile, SCALAR_MACHINE)
        fast = analyze(program, profile, OPTIMIZING_MACHINE)
        assert slow.main.freqs.freq == fast.main.freqs.freq


class TestDatabaseIntegration:
    def test_accumulate_profiles_through_database(self, tmp_path):
        program = compile_source(SOURCE)
        db = ProfileDatabase(tmp_path / "db.json")
        for inputs in [(5.0,), (10.0,)]:
            profile, _ = profile_program(program, runs=[{"inputs": inputs}])
            db.record("demo", profile)
        db.save()

        reloaded = ProfileDatabase(tmp_path / "db.json")
        accumulated = reloaded.lookup("demo")
        assert accumulated.runs == 2
        analysis = analyze(program, accumulated, SCALAR_MACHINE)
        costs = [
            run_program(program, inputs=i, model=SCALAR_MACHINE).total_cost
            for i in [(5.0,), (10.0,)]
        ]
        assert analysis.total_time == pytest.approx(
            sum(costs) / 2, rel=1e-9
        )


class TestOracleVsSmartProfiles:
    def test_equivalent_analysis_results(self):
        program = compile_source(SOURCE)
        specs = [{"inputs": (8.0,), "seed": 4}]
        smart_profile, _ = profile_program(program, runs=specs)
        oracle = oracle_program_profile(program, runs=specs)
        a = analyze(program, smart_profile, SCALAR_MACHINE)
        b = analyze(program, oracle, SCALAR_MACHINE)
        assert a.total_time == pytest.approx(b.total_time)
        assert a.total_var == pytest.approx(b.total_var)
