"""The paper's running example, end to end (Figures 1-3).

This is the repo's headline regression: the exact numbers printed in
the paper's Figure 3 — TIME(START) = 920, STD_DEV(START) = 300 — must
come out of the full pipeline (parse → CFG → intervals → ECFG → FCDG →
profile → analyze).
"""

import pytest

from repro import analyze, oracle_program_profile, run_program
from repro import profile_program
from repro.cfg.graph import NodeType
from repro.workloads.paper_example import (
    EXPECTED_STD_DEV,
    EXPECTED_TIME,
    EXPECTED_VAR,
    FigureCostEstimator,
)


@pytest.fixture
def figure3(paper_program):
    profile = oracle_program_profile(paper_program, runs=[{}])
    analysis = analyze(
        paper_program, profile, model=None, estimator=FigureCostEstimator()
    )
    return paper_program, profile, analysis


class TestFigure1Profile:
    """'the IF statement with label 10 is executed 10 times, and the
    loop is exited by taking the IF(N.LT.0) branch'."""

    def test_header_executes_ten_times(self, paper_program):
        result = run_program(paper_program)
        graph = paper_program.cfgs["MAIN"]
        header = next(n.id for n in graph if "IF (M .GE. 0)" in n.text)
        assert result.node_counts["MAIN"][header] == 10

    def test_exit_via_n_lt_0(self, paper_program):
        result = run_program(paper_program)
        graph = paper_program.cfgs["MAIN"]
        n2 = next(n.id for n in graph if "IF (N .LT. 0)" in n.text)
        n3 = next(n.id for n in graph if "IF (N .GE. 0)" in n.text)
        assert result.edge_counts["MAIN"][(n2, "T")] == 1
        assert (n3, "T") not in result.edge_counts["MAIN"]

    def test_foo_called_nine_times(self, paper_program):
        result = run_program(paper_program)
        assert result.call_counts["FOO"] == 9


class TestFigure2Structure:
    def test_node_types_match_figure(self, paper_program):
        graph = paper_program.ecfgs["MAIN"].graph
        types = [n.type for n in graph]
        assert types.count(NodeType.PREHEADER) == 1
        assert types.count(NodeType.POSTEXIT) == 2
        assert types.count(NodeType.START) == 1
        assert types.count(NodeType.STOP) == 1
        assert types.count(NodeType.HEADER) == 1


class TestFigure3Values:
    def test_headline_numbers(self, figure3):
        _, _, analysis = figure3
        assert analysis.total_time == pytest.approx(EXPECTED_TIME)
        assert analysis.total_var == pytest.approx(EXPECTED_VAR)
        assert analysis.total_std_dev == pytest.approx(EXPECTED_STD_DEV)

    def test_foo_time_100(self, figure3):
        _, _, analysis = figure3
        assert analysis.procedures["FOO"].time == pytest.approx(100.0)

    def test_branch_frequencies(self, figure3):
        program, _, analysis = figure3
        main = analysis.main
        graph = main.ecfg.graph
        header = next(n.id for n in graph if "IF (M .GE. 0)" in n.text)
        n2 = next(n.id for n in graph if "IF (N .LT. 0)" in n.text)
        assert main.freqs.freq[(header, "T")] == pytest.approx(1.0)
        assert main.freqs.freq[(n2, "T")] == pytest.approx(0.1)
        assert main.freqs.freq[(n2, "F")] == pytest.approx(0.9)

    def test_loop_frequency_ten(self, figure3):
        program, _, analysis = figure3
        main = analysis.main
        (preheader,) = main.ecfg.header_of
        assert main.freqs.loop_frequency(preheader) == pytest.approx(10.0)

    def test_smart_profile_reproduces_same_numbers(self, paper_program):
        profile, _ = profile_program(paper_program, runs=[{}])
        analysis = analyze(
            paper_program, profile, model=None, estimator=FigureCostEstimator()
        )
        assert analysis.total_time == pytest.approx(EXPECTED_TIME)
        assert analysis.total_std_dev == pytest.approx(EXPECTED_STD_DEV)

    def test_e_t_squared_consistency(self, figure3):
        _, _, analysis = figure3
        main = analysis.main
        start = main.ecfg.start
        assert main.variances.second_moment[start] == pytest.approx(
            EXPECTED_VAR + EXPECTED_TIME**2
        )
