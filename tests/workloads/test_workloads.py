"""Tests for the workload programs (LOOPS, SIMPLE, unstructured)."""

import pytest

from repro import compile_source, run_program
from repro.cfg.graph import StmtKind
from repro.workloads.generators import ProgramGenerator
from repro.workloads.livermore import livermore_source
from repro.workloads.simple_cfd import simple_source
from repro.workloads.unstructured import ALL_SOURCES


class TestLivermore:
    def test_all_24_kernels_present(self):
        source = livermore_source(n=24, n2=4)
        program = compile_source(source)
        kernels = [p for p in program.cfgs if p.startswith("KERN")]
        assert len(kernels) == 24

    def test_runs_to_completion(self):
        program = compile_source(livermore_source(n=24, n2=4))
        result = run_program(program)
        assert result.halted == "end"
        assert len(result.outputs) == 1

    def test_each_kernel_invoked(self):
        program = compile_source(livermore_source(n=24, n2=4))
        result = run_program(program)
        for name in program.cfgs:
            if name.startswith("KERN"):
                assert result.call_counts[name] == 1, name

    def test_ncycles_multiplies_invocations(self):
        program = compile_source(livermore_source(n=24, n2=4, ncycles=3))
        result = run_program(program)
        assert result.call_counts["KERN01"] == 3

    def test_inner_product_value(self):
        # Kernel 3 stores the inner product in Z(1); it must be
        # deterministic across runs.
        program = compile_source(livermore_source(n=24, n2=4))
        a = run_program(program).outputs
        b = run_program(program).outputs
        assert a == b

    def test_branchy_kernels_take_both_sides(self):
        program = compile_source(livermore_source(n=40, n2=6))
        result = run_program(program)
        counts = result.edge_counts["KERN24"]
        t_edges = [c for (n, l), c in counts.items() if l == "T"]
        assert any(t_edges)  # the IF inside kernel 24 fires

    def test_size_validation(self):
        with pytest.raises(ValueError):
            livermore_source(n=4)

    def test_goto_kernels_reducible(self):
        program = compile_source(livermore_source(n=24, n2=4))
        assert program.splits == {}


class TestSimple:
    def test_runs_to_completion(self):
        program = compile_source(simple_source(n=8, ncycles=2))
        result = run_program(program)
        assert result.halted == "end"

    def test_energy_is_finite_positive(self):
        program = compile_source(simple_source(n=8, ncycles=2))
        result = run_program(program)
        time_str, esum_str = result.outputs[0].split()
        assert float(esum_str) > 0.0

    def test_cycle_loop_runs_ncycles(self):
        program = compile_source(simple_source(n=8, ncycles=4))
        result = run_program(program)
        assert result.call_counts["LAGRAN"] == 4

    def test_viscosity_branch_is_data_dependent(self):
        program = compile_source(simple_source(n=8, ncycles=3))
        result = run_program(program)
        counts = result.edge_counts["VISCOS"]
        labels = {l for (n, l) in counts}
        assert "T" in labels or "F" in labels

    def test_size_validation(self):
        with pytest.raises(ValueError):
            simple_source(n=3)


class TestUnstructured:
    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_compiles_and_runs(self, name):
        program = compile_source(ALL_SOURCES[name])
        result = run_program(program, inputs=(9.0,), seed=1)
        assert result.outputs

    def test_two_exit_loop_exits(self):
        program = compile_source(ALL_SOURCES["TWO_EXIT_LOOP"])
        result = run_program(program, seed=2)
        k = int(result.outputs[0].split()[0])
        assert 1 <= k <= 100

    def test_state_machine_uses_computed_goto(self):
        program = compile_source(ALL_SOURCES["STATE_MACHINE"])
        kinds = {n.kind for n in program.cfgs["STATES"]}
        assert StmtKind.CGOTO in kinds

    def test_early_returns_multiple_paths_to_exit(self):
        program = compile_source(ALL_SOURCES["EARLY_RETURNS"])
        cfg = program.cfgs["CLASSIFY"]
        assert len(cfg.in_edges(cfg.exit)) >= 3


class TestGenerator:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_programs_compile_and_run(self, seed):
        source = ProgramGenerator(seed).source()
        program = compile_source(source)
        result = run_program(program, seed=seed, max_steps=2_000_000)
        assert result.halted in ("end", "stop")

    def test_same_seed_same_program(self):
        assert ProgramGenerator(5).source() == ProgramGenerator(5).source()

    def test_different_seeds_differ(self):
        assert ProgramGenerator(1).source() != ProgramGenerator(2).source()

    def test_shape_parameters_respected(self):
        gen = ProgramGenerator(3, allow_calls=False)
        source = gen.source()
        assert "SUBROUTINE" not in source
        assert "FUNCTION" not in source

    def test_goto_free_mode(self):
        source = ProgramGenerator(4, allow_gotos=False).source()
        program = compile_source(source)
        run_program(program, seed=4)
