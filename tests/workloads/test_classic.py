"""Tests for the classic algorithm workloads — correctness of the
computed results AND full-pipeline exactness on each."""

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
    smart_program_plan,
)
from repro.profiling import PlanExecutor, reconstruct_profile
from repro.workloads.classic import (
    binsearch_source,
    gauss_source,
    newton_source,
    shellsort_source,
)


def pipeline_exact(source, run_specs):
    """TIME == measured and reconstruction == oracle for the program."""
    program = compile_source(source)
    total = 0.0
    plan = smart_program_plan(program)
    executor = PlanExecutor(plan)
    for spec in run_specs:
        total += run_program(program, model=SCALAR_MACHINE, **spec).total_cost
        run_program(program, hooks=executor, **spec)
    oracle = oracle_program_profile(program, runs=run_specs)
    reconstructed = reconstruct_profile(plan, executor, runs=len(run_specs))
    for name in program.cfgs:
        rec, orc = reconstructed.proc(name), oracle.proc(name)
        assert rec.invocations == orc.invocations
        for key, value in rec.branch_counts.items():
            assert value == orc.branch_counts.get(key, 0.0), (name, key)
    analysis = analyze(program, oracle, SCALAR_MACHINE)
    assert analysis.total_time == pytest.approx(
        total / len(run_specs), rel=1e-9
    )
    return program, analysis


class TestShellsort:
    def test_sorts_correctly(self):
        program = compile_source(shellsort_source(n=50))
        for seed in range(3):
            result = run_program(program, seed=seed)
            assert result.outputs == ["0"]  # zero out-of-order pairs

    def test_pipeline_exact(self):
        pipeline_exact(shellsort_source(n=30), [{"seed": 1}, {"seed": 2}])

    def test_goto_loops_found(self):
        program = compile_source(shellsort_source(n=20))
        # gap loop, insertion scan loop, shift loop + 2 DO loops.
        assert len(program.ecfgs["SHELLSORT"].preheader_of) >= 4


class TestGauss:
    def test_solves_system(self):
        program = compile_source(gauss_source(n=8))
        for seed in range(3):
            result = run_program(program, seed=seed)
            residual = float(result.outputs[0])
            assert residual < 1e-4

    def test_pivot_branch_taken_sometimes(self):
        program = compile_source(gauss_source(n=8))
        result = run_program(program, seed=0)
        swap_if = next(
            n.id
            for n in program.cfgs["GAUSS"]
            if "IF (IP .NE. K)" in n.text
        )
        counts = result.edge_counts["GAUSS"]
        assert (swap_if, "T") in counts or (swap_if, "F") in counts

    def test_pipeline_exact(self):
        pipeline_exact(gauss_source(n=6), [{"seed": 3}])

    def test_triangular_loop_frequencies(self):
        # the elimination loop runs N-1 times; inner loops shrink.
        program = compile_source(gauss_source(n=6))
        profile = oracle_program_profile(program, runs=[{}])
        analysis = analyze(program, profile, SCALAR_MACHINE)
        assert analysis.total_time > 0


class TestNewton:
    @pytest.mark.parametrize("value", [2.0, 10.0, 1234.5])
    def test_converges(self, value):
        program = compile_source(newton_source())
        result = run_program(program, inputs=(value,))
        iters, err = result.outputs[0].split()
        assert int(iters) < 30
        assert float(err) < 1e-5

    def test_iteration_count_grows_with_input(self):
        program = compile_source(newton_source())
        small = int(run_program(program, inputs=(2.0,)).outputs[0].split()[0])
        large = int(
            run_program(program, inputs=(1.0e6,)).outputs[0].split()[0]
        )
        assert large > small

    def test_pipeline_exact(self):
        pipeline_exact(
            newton_source(), [{"inputs": (2.0,)}, {"inputs": (99.0,)}]
        )


class TestBinsearch:
    def test_hit_count_plausible(self):
        program = compile_source(binsearch_source(n=64, queries=40))
        result = run_program(program, seed=5)
        hits = int(result.outputs[0])
        assert 0 <= hits <= 40

    def test_uses_arithmetic_if(self):
        from repro.cfg.graph import StmtKind

        program = compile_source(binsearch_source())
        kinds = {n.kind for n in program.cfgs["BINSEARCH"]}
        assert StmtKind.AIF in kinds

    def test_search_is_logarithmic(self):
        # per query, the probe loop runs at most log2(64)+1 = 7 times.
        program = compile_source(binsearch_source(n=64, queries=10))
        profile = oracle_program_profile(program, runs=[{"seed": 1}])
        main = profile.proc("BINSEARCH")
        probe_header = max(main.header_counts.values())
        assert probe_header <= 10 * 8

    def test_pipeline_exact(self):
        pipeline_exact(binsearch_source(n=32, queries=15), [{"seed": 2}])
