"""Compile-time analysis vs execution profiles (Section 3's opening).

"We believe that program analysis is feasible for only a few
restricted cases ... and should be complemented by execution profile
information wherever compile-time analysis is unsuccessful."

This benchmark quantifies that belief: TIME(START) estimated from

* a purely static profile (constant folding + heuristics),
* a measured profile,
* the hybrid (measured where executed, static elsewhere),

compared against ground-truth measured cost, on workloads ranging from
fully static (LOOPS: constant-trip DO loops) to data-driven (SIMPLE's
branches, GOTO search loops).
"""

from __future__ import annotations

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.analysis import hybrid_profile, static_profile
from repro.report import format_table
from repro.workloads.unstructured import STATE_MACHINE, TWO_EXIT_LOOP

from conftest import publish


def _evaluate(program, run_specs):
    measured_cost = sum(
        run_program(program, model=SCALAR_MACHINE, **spec).total_cost
        for spec in run_specs
    ) / len(run_specs)
    measured = oracle_program_profile(program, runs=run_specs)
    static = static_profile(program)
    hybrid = hybrid_profile(program, measured)

    def err(profile):
        estimate = analyze(program, profile, SCALAR_MACHINE).total_time
        return estimate, abs(estimate - measured_cost) / measured_cost

    static_time, static_err = err(static)
    profiled_time, profiled_err = err(measured)
    hybrid_time, hybrid_err = err(hybrid)
    return {
        "truth": measured_cost,
        "static": (static_time, static_err),
        "profiled": (profiled_time, profiled_err),
        "hybrid": (hybrid_time, hybrid_err),
    }


def test_static_vs_profiled(benchmark, loops_program, simple_program):
    def run_all():
        return {
            "LOOPS": _evaluate(loops_program, [{}]),
            "SIMPLE": _evaluate(simple_program, [{}]),
            "TWO_EXIT": _evaluate(
                compile_source(TWO_EXIT_LOOP),
                [{"seed": s} for s in range(5)],
            ),
            "STATE_MACHINE": _evaluate(
                compile_source(STATE_MACHINE),
                [{"seed": s} for s in range(5)],
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, data in results.items():
        rows.append(
            [
                name,
                data["truth"],
                data["static"][0],
                f"{100 * data['static'][1]:.1f}%",
                f"{100 * data['profiled'][1]:.2g}%",
                f"{100 * data['hybrid'][1]:.2g}%",
            ]
        )
    publish(
        "static_vs_profiled",
        format_table(
            ["program", "measured", "static TIME", "static err",
             "profiled err", "hybrid err"],
            rows,
            title=(
                "TIME estimation error: compile-time analysis vs "
                "execution profiles"
            ),
        ),
    )

    # Profiled estimates are exact everywhere.
    for name, data in results.items():
        assert data["profiled"][1] < 1e-9, name
        assert data["hybrid"][1] < 1e-9, name  # everything executed

    # Static analysis is competitive on constant-control code …
    assert results["LOOPS"]["static"][1] < 0.40
    # … but the data-driven loops can be badly misestimated, which is
    # the paper's argument for profiles.
    worst = max(data["static"][1] for data in results.values())
    assert worst > 0.40