"""Batch-profiling throughput: serial loop vs engine vs cached pool.

The paper's Table 1 argues optimized counter placement makes the
*runtime* side of profiling cheap.  This benchmark measures the
*toolchain* side over a (program × run-configuration) matrix:

* ``serial loop`` — today's one-at-a-time pipeline: every task calls
  ``compile_source`` + ``profile_program``, re-deriving CFGs, ECFGs,
  FCDGs and the counter plan for every run configuration;
* ``engine, cold cache`` — the batch engine with an empty disk cache:
  static artifacts derived once per *program*, amortized over its run
  configurations;
* ``engine, warm cache (serial/pooled)`` — a second invocation over
  the same workload: every compilation is served from the cache.

Acceptance: cached batch profiling (pooled, warm) must be at least
2× faster than the serial loop on the 32-program workload, and serial
and pooled execution must return byte-identical aggregates.
"""

from __future__ import annotations

import time

from repro import compile_source, profile_program
from repro.batch import BatchItem, run_batch
from repro.report import format_table
from repro.workloads.generators import ProgramGenerator

from conftest import publish

N_PROGRAMS = 32
RUN_CONFIGS = [{"seed": seed} for seed in range(6)]
_SPEEDUP_FLOOR = 2.0


def _workload() -> list[BatchItem]:
    return [
        BatchItem(
            id=f"gen-{seed}",
            source=ProgramGenerator(seed).source(),
            runs=tuple(dict(spec) for spec in RUN_CONFIGS),
        )
        for seed in range(N_PROGRAMS)
    ]


def _serial_loop(items: list[BatchItem]) -> float:
    """The pre-batch pipeline: re-derive everything per (program, run)."""
    started = time.perf_counter()
    for item in items:
        for spec in item.runs:
            program = compile_source(item.source)
            profile_program(program, runs=[dict(spec)])
    return time.perf_counter() - started


def test_batch_throughput(tmp_path):
    items = _workload()
    n_tasks = N_PROGRAMS * len(RUN_CONFIGS)
    cache_dir = tmp_path / "artifact-cache"

    serial_loop = _serial_loop(items)

    cold = run_batch(items, mode="serial", cache=cache_dir)
    # Shared CI machines throttle long runs; take the best of two
    # passes for the warm configurations so a noise spike in one pass
    # does not masquerade as engine cost.
    warm_serial = min(
        (run_batch(items, mode="serial", cache=cache_dir) for _ in range(2)),
        key=lambda report: report.elapsed,
    )
    warm_pooled = min(
        (
            run_batch(items, mode="process", jobs=2, cache=cache_dir)
            for _ in range(2)
        ),
        key=lambda report: report.elapsed,
    )

    assert all(r.ok for r in cold.results)
    assert cold.cache_stats["misses"] == N_PROGRAMS
    assert warm_serial.cache_stats["misses"] == 0
    assert warm_pooled.cache_stats["misses"] == 0

    # Determinism: execution mode and cache temperature must not leak
    # into the aggregate.  Byte-identical, not just numerically close.
    assert cold.aggregate_json() == warm_serial.aggregate_json()
    assert warm_serial.aggregate_json() == warm_pooled.aggregate_json()

    rows = [
        ["serial loop (recompile per task)", n_tasks, serial_loop, 1.0],
        [
            "engine, cold cache (serial)",
            n_tasks,
            cold.elapsed,
            serial_loop / cold.elapsed,
        ],
        [
            "engine, warm cache (serial)",
            n_tasks,
            warm_serial.elapsed,
            serial_loop / warm_serial.elapsed,
        ],
        [
            "engine, warm cache (pooled)",
            n_tasks,
            warm_pooled.elapsed,
            serial_loop / warm_pooled.elapsed,
        ],
    ]
    publish(
        "batch_throughput",
        format_table(
            ["configuration", "tasks", "seconds", "speedup"],
            rows,
            title=(
                f"batch profiling throughput: {N_PROGRAMS} programs x "
                f"{len(RUN_CONFIGS)} run configs"
            ),
        ),
    )

    pooled_speedup = serial_loop / warm_pooled.elapsed
    assert pooled_speedup >= _SPEEDUP_FLOOR, (
        f"pooled+cached batch is only {pooled_speedup:.2f}x the serial loop"
    )


def test_cache_amortizes_repeated_configs(tmp_path):
    """More run configs per program -> bigger win from cached artifacts."""
    source = ProgramGenerator(5).source()
    many_runs = tuple({"seed": seed} for seed in range(8))
    item = BatchItem(id="hot", source=source, runs=many_runs)

    started = time.perf_counter()
    for spec in many_runs:
        program = compile_source(source)
        profile_program(program, runs=[dict(spec)])
    loop_elapsed = time.perf_counter() - started

    report = run_batch([item], mode="serial", cache=tmp_path)
    assert report.cache_stats["misses"] == 1
    assert report.results[0].ok
    # One compilation instead of eight: the engine must not be slower.
    assert report.elapsed < loop_elapsed
