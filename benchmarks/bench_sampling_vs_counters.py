"""Sampling-based vs counter-based profiling (Section 3's argument).

The paper: "the coarse granularity of the sampling interval makes this
approach unsuitable for determining execution frequencies of
individual statements", while counters give "an exact measure".  This
benchmark quantifies both halves on the LOOPS program:

* procedure-level time shares: the sampler converges as the interval
  shrinks (what sampling *is* good for);
* statement-level frequencies: the sampler's best-effort estimate has
  large relative errors even at fine intervals, while the optimized
  counter plan is exact by construction.
"""

from __future__ import annotations

import pytest

from repro import SCALAR_MACHINE, run_program, smart_program_plan
from repro.costs.estimate import CostEstimator
from repro.profiling import PlanExecutor, reconstruct_profile
from repro.profiling.sampling import SamplingProfiler, true_procedure_shares
from repro.report import format_table

from conftest import publish

INTERVALS = [10_000.0, 1_000.0, 100.0]


def _cost_tables(program):
    estimator = CostEstimator(program.checked, SCALAR_MACHINE)
    return {
        name: {
            nid: nc.local
            for nid, nc in estimator.cfg_costs(cfg, name).items()
        }
        for name, cfg in program.cfgs.items()
    }


def _share_error(estimated, truth):
    """Total variation distance between two share distributions."""
    keys = set(estimated) | set(truth)
    return 0.5 * sum(
        abs(estimated.get(k, 0.0) - truth.get(k, 0.0)) for k in keys
    )


def _frequency_error(sampler, run_result):
    """Mean relative error of per-node frequency estimates over nodes
    that actually executed (missed nodes count as 100% error)."""
    estimates = sampler.estimate_node_frequencies()
    errors = []
    for proc, counts in run_result.node_counts.items():
        for node, true_count in counts.items():
            if true_count == 0:
                continue
            estimate = estimates.get((proc, node), 0.0)
            errors.append(abs(estimate - true_count) / true_count)
    return sum(errors) / len(errors)


def test_sampling_vs_counters(benchmark, loops_program):
    def run_all():
        costs = _cost_tables(loops_program)
        truth_run = run_program(loops_program, model=SCALAR_MACHINE)
        truth_shares = true_procedure_shares(truth_run, costs)

        rows = []
        share_errors = {}
        freq_errors = {}
        for interval in INTERVALS:
            sampler = SamplingProfiler(
                loops_program.checked,
                loops_program.cfgs,
                SCALAR_MACHINE,
                interval,
            )
            run_program(loops_program, model=SCALAR_MACHINE, hooks=sampler)
            share_errors[interval] = _share_error(
                sampler.procedure_shares(), truth_shares
            )
            freq_errors[interval] = _frequency_error(sampler, truth_run)
            rows.append(
                [
                    f"sampling @{interval:g}",
                    sampler.report.total_samples,
                    f"{100 * share_errors[interval]:.2f}%",
                    f"{100 * freq_errors[interval]:.1f}%",
                ]
            )

        plan = smart_program_plan(loops_program)
        executor = PlanExecutor(plan)
        run_program(loops_program, model=SCALAR_MACHINE, hooks=executor)
        reconstructed = reconstruct_profile(plan, executor)
        # Counter frequencies are exact: verify against ground truth.
        exact = all(
            reconstructed.proc(name).branch_counts.get(key, 0.0)
            == float(truth_run.edge_counts[name].get(key, 0))
            for name, proc_plan in plan.plans.items()
            for key in proc_plan.edge_counters
        )
        rows.append(
            [
                "smart counters",
                executor.updates,
                "0.00%",
                "0.0% (exact)" if exact else "NOT EXACT",
            ]
        )
        return rows, share_errors, freq_errors, exact

    rows, share_errors, freq_errors, exact = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    publish(
        "sampling_vs_counters",
        format_table(
            ["profiler", "events", "proc-share error", "stmt-freq error"],
            rows,
            title=(
                "Sampling vs counter profiling on LOOPS "
                "(errors vs ground truth)"
            ),
        ),
    )

    assert exact
    # Sampling's procedure shares improve with finer intervals …
    assert share_errors[100.0] <= share_errors[10_000.0]
    assert share_errors[100.0] < 0.05
    # … but statement frequencies stay badly wrong even at the finest
    # interval (the paper's point).
    assert freq_errors[100.0] > 0.30
