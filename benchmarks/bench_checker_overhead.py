"""Verifier overhead: full artifact verification vs compilation.

The cache re-verifies every disk hit and CI re-checks the whole
corpus, so the verifier must stay cheap relative to the work it
guards.  This benchmark times, over the Livermore corpus (the paper's
LOOPS benchmark) plus a slice of generator programs:

* ``compile``      — ``compile_source`` + both counter plans (the work
  a cache miss performs and a disk hit avoids);
* ``verify``       — structural checks + plan checks over those
  artifacts (the work a verified disk hit adds);
* ``lint``         — the REP3xx source lints (only ``repro check``
  pays this).

Acceptance: verification costs < 15 % of compile-and-plan time,
averaged over the corpus.
"""

from __future__ import annotations

import time

from repro import compile_source, naive_program_plan, smart_program_plan
from repro.checker import lint_program, verify_program
from repro.report import format_table
from repro.workloads import builtin_sources
from repro.workloads.generators import ProgramGenerator

from conftest import publish

N_GENERATED = 12
REPEATS = 5
_OVERHEAD_CEILING = 0.15


def _corpus() -> list[tuple[str, str]]:
    programs = [
        (pid, source)
        for pid, source in builtin_sources()
        if pid in ("paper", "livermore", "simple", "shellsort", "gauss")
    ]
    programs += [
        (f"gen-{seed}", ProgramGenerator(seed).source())
        for seed in range(N_GENERATED)
    ]
    return programs


def _time(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_checker_overhead():
    rows = []
    total_compile = total_verify = total_lint = 0.0
    for program_id, source in _corpus():
        compile_s = _time(
            lambda: (
                lambda p: (smart_program_plan(p), naive_program_plan(p))
            )(compile_source(source))
        )
        program = compile_source(source)
        plans = {
            "smart": smart_program_plan(program),
            "naive": naive_program_plan(program),
        }
        verify_s = _time(lambda: verify_program(program, plans))
        lint_s = _time(lambda: lint_program(program.checked, program.cfgs))
        assert not verify_program(program, plans).diagnostics

        total_compile += compile_s
        total_verify += verify_s
        total_lint += lint_s
        rows.append(
            [
                program_id,
                f"{1e3 * compile_s:.2f}",
                f"{1e3 * verify_s:.2f}",
                f"{1e3 * lint_s:.2f}",
                f"{100 * verify_s / compile_s:.1f}%",
            ]
        )

    overhead = total_verify / total_compile
    rows.append(
        [
            "TOTAL",
            f"{1e3 * total_compile:.2f}",
            f"{1e3 * total_verify:.2f}",
            f"{1e3 * total_lint:.2f}",
            f"{100 * overhead:.1f}%",
        ]
    )
    publish(
        "checker_overhead",
        format_table(
            ["program", "compile+plans ms", "verify ms", "lint ms",
             "verify/compile"],
            rows,
            title=(
                "artifact verification overhead "
                f"(best of {REPEATS}, ceiling {100 * _OVERHEAD_CEILING:.0f}%)"
            ),
        ),
    )
    assert overhead < _OVERHEAD_CEILING, (
        f"verification costs {100 * overhead:.1f}% of compile time "
        f"(ceiling {100 * _OVERHEAD_CEILING:.0f}%)"
    )
