"""The chunk-size application (Sections 1 & 5, after Kruskal-Weiss).

"When the execution time of the loop body has zero variance, we would
prefer to use a chunk size of N/P ...  However, when the variance is
large, we have to move to smaller chunk sizes."  This benchmark sweeps
chunk sizes for a low-variance and a high-variance parallel loop,
using the framework's compile-time (TIME, VAR) estimates to pick the
chunk, and validates against a self-scheduling simulation.

Shape: the variance-aware choice ties static N/P on the steady loop
and beats it clearly on the bursty loop; the crossover moves to
smaller chunks as variance grows.
"""

from __future__ import annotations

import pytest

from repro import SCALAR_MACHINE, analyze, compile_source, profile_program
from repro.apps.chunking import (
    estimate_makespan,
    loop_iteration_stats,
    optimal_chunk_size,
    simulate_chunked_loop,
)
from repro.report import format_table

from conftest import publish

STEADY = """\
      PROGRAM STEADY
      INTEGER I
      DO 10 I = 1, 400
        X = X + SQRT(REAL(I)) * 1.5 + 2.0
10    CONTINUE
      END
"""

BURSTY = """\
      PROGRAM BURSTY
      INTEGER I, J, M
      DO 20 I = 1, 400
        M = IRAND(0, 40)
        DO 10 J = 1, M
          X = X + SQRT(REAL(J))
10      CONTINUE
20    CONTINUE
      END
"""

PROCESSORS = 8
OVERHEAD = 40.0
SWEEP = [1, 2, 5, 10, 25, 50]


def _loop_stats(source):
    program = compile_source(source)
    profile, _ = profile_program(program, runs=3, record_loop_moments=True)
    analysis = analyze(
        program, profile, SCALAR_MACHINE, loop_variance="profiled"
    )
    main = analysis.main
    outer = min(
        main.ecfg.preheader_of,
        key=lambda h: main.ecfg.intervals.depth_of(h),
    )
    mean, var = loop_iteration_stats(main, outer)
    n_iter = round(
        main.freqs.loop_frequency(main.ecfg.preheader_of[outer])
    )
    return n_iter, mean, var**0.5


def _sweep(n_iter, mean, std):
    """chunk -> (estimated makespan, simulated average makespan)."""
    out = {}
    for chunk in SWEEP:
        estimated = estimate_makespan(
            n_iter, PROCESSORS, mean, std, OVERHEAD, chunk
        )
        simulated = sum(
            simulate_chunked_loop(
                n_iter, PROCESSORS, mean, std, OVERHEAD, chunk, seed=s
            ).makespan
            for s in range(25)
        ) / 25
        out[chunk] = (estimated, simulated)
    return out


def test_chunk_size_sweep(benchmark):
    def run_all():
        results = {}
        for name, source in [("STEADY", STEADY), ("BURSTY", BURSTY)]:
            n_iter, mean, std = _loop_stats(source)
            advised = optimal_chunk_size(
                n_iter, PROCESSORS, mean, std, OVERHEAD
            )
            results[name] = (n_iter, mean, std, advised, _sweep(n_iter, mean, std))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (n_iter, mean, std, advised, sweep) in results.items():
        for chunk, (estimated, simulated) in sweep.items():
            rows.append(
                [
                    name,
                    chunk,
                    estimated,
                    simulated,
                    "advised" if chunk == advised else "",
                ]
            )
    publish(
        "chunking_sweep",
        format_table(
            ["loop", "chunk", "est. makespan", "sim. makespan", ""],
            rows,
            title=(
                f"Chunk-size sweep, P={PROCESSORS}, overhead={OVERHEAD} "
                "(compile-time estimate vs self-scheduling simulation)"
            ),
        ),
    )

    steady_iter, steady_mean, steady_std, steady_k, steady_sweep = results[
        "STEADY"
    ]
    bursty_iter, bursty_mean, bursty_std, bursty_k, bursty_sweep = results[
        "BURSTY"
    ]

    # Low variance -> big chunks; high variance -> smaller chunks.
    assert steady_std / steady_mean < 0.25
    assert bursty_std / bursty_mean > 0.4
    assert bursty_k < steady_k

    # Simulation agrees: on the bursty loop, the advised chunk beats
    # the static N/P split; on the steady loop, big chunks win.
    static = max(SWEEP)
    bursty_best = min(bursty_sweep, key=lambda k: bursty_sweep[k][1])
    assert bursty_sweep[bursty_best][1] <= bursty_sweep[static][1]
    assert bursty_best < static
    steady_best = min(steady_sweep, key=lambda k: steady_sweep[k][1])
    assert steady_best >= 25
