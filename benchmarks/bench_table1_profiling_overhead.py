"""Table 1 — sequential execution times with and without profiling.

The paper measured LOOPS and SIMPLE on an IBM 3090 (VS Fortran),
original vs "smart" vs "naive" profiling, with compiler optimization
ON and OFF.  Here the same three configurations run on the cycle
model's two machines; the wall-clock of the instrumented interpreter
is additionally measured by pytest-benchmark.

Shape to reproduce: smart overhead < naive overhead, both small, and
the *relative* profiling overhead larger on the optimized machine
(counter updates do not optimize away).
"""

from __future__ import annotations

import os

import pytest

from repro import (
    OPTIMIZING_MACHINE,
    SCALAR_MACHINE,
    naive_program_plan,
    run_program,
    smart_program_plan,
)
from repro.profiling import PlanExecutor
from repro.report import format_table

from conftest import publish


def _measure(program, model):
    """(original, smart, naive) total cycles for one run each."""
    original = run_program(program, model=model).total_cost
    smart_exec = PlanExecutor(smart_program_plan(program))
    smart = run_program(
        program, model=model, hooks=smart_exec
    ).cost_with_profiling
    naive_exec = PlanExecutor(naive_program_plan(program))
    naive = run_program(
        program, model=model, hooks=naive_exec
    ).cost_with_profiling
    return original, smart, naive


def _table1(programs):
    rows = []
    shape_ok = True
    overheads = {}
    for prog_name, program in programs:
        for model in (OPTIMIZING_MACHINE, SCALAR_MACHINE):
            original, smart, naive = _measure(program, model)
            smart_ovh = (smart - original) / original
            naive_ovh = (naive - original) / original
            overheads[(prog_name, model.name)] = (smart_ovh, naive_ovh)
            rows.append(
                [
                    prog_name,
                    "ON" if model is OPTIMIZING_MACHINE else "OFF",
                    original,
                    smart,
                    naive,
                    f"{100 * smart_ovh:.2f}%",
                    f"{100 * naive_ovh:.2f}%",
                ]
            )
            shape_ok &= original <= smart < naive
            shape_ok &= smart_ovh < naive_ovh
    # Relative overhead larger with optimization ON (paper's effect).
    for prog_name, _ in programs:
        on = overheads[(prog_name, OPTIMIZING_MACHINE.name)]
        off = overheads[(prog_name, SCALAR_MACHINE.name)]
        shape_ok &= on[0] > off[0] and on[1] > off[1]
    table = format_table(
        ["program", "opt", "original", "smart", "naive",
         "smart ovh", "naive ovh"],
        rows,
        title=(
            "Table 1: execution cycles with and without profiling "
            "(LOOPS / SIMPLE, optimization ON and OFF)"
        ),
    )
    return table, shape_ok


def test_table1_cycle_model(benchmark, loops_program, simple_program):
    programs = [("LOOPS", loops_program), ("SIMPLE", simple_program)]
    table, shape_ok = benchmark(_table1, programs)
    publish("table1_profiling_overhead", table)
    assert shape_ok, "Table 1 shape violated:\n" + table


@pytest.mark.parametrize("config", ["original", "smart", "naive"])
def test_loops_wall_clock(benchmark, loops_program, config):
    """Wall-clock analog of Table 1's LOOPS rows."""
    if config == "original":
        hooks = None
    elif config == "smart":
        hooks = PlanExecutor(smart_program_plan(loops_program))
    else:
        hooks = PlanExecutor(naive_program_plan(loops_program))
    benchmark(
        lambda: run_program(loops_program, model=SCALAR_MACHINE, hooks=hooks)
    )


@pytest.mark.parametrize("config", ["original", "smart", "naive"])
def test_simple_wall_clock(benchmark, simple_program, config):
    """Wall-clock analog of Table 1's SIMPLE rows."""
    if config == "original":
        hooks = None
    elif config == "smart":
        hooks = PlanExecutor(smart_program_plan(simple_program))
    else:
        hooks = PlanExecutor(naive_program_plan(simple_program))
    benchmark(
        lambda: run_program(simple_program, model=SCALAR_MACHINE, hooks=hooks)
    )


def test_overhead_independent_of_problem_size(benchmark):
    """Relative profiling overhead is a property of the *code*, not
    the problem size — the reason Table 1's percentages generalize
    beyond the paper's particular inputs."""
    from repro import compile_source
    from repro.workloads.livermore import livermore_source

    def measure():
        overheads = []
        for n in (24, 48, 96):
            program = compile_source(livermore_source(n=n, n2=4))
            original, smart, _ = _measure(program, SCALAR_MACHINE)
            overheads.append((smart - original) / original)
        return overheads

    overheads = benchmark.pedantic(measure, rounds=1, iterations=1)
    spread = max(overheads) - min(overheads)
    assert spread < 0.01, overheads  # percentages stay put as N grows


@pytest.mark.skipif(
    not os.environ.get("REPRO_FULLSIZE"),
    reason="paper-size SIMPLE (100x100, NCYCLES=10) takes minutes; "
    "set REPRO_FULLSIZE=1 to include it",
)
def test_table1_paper_size(benchmark):
    """Table 1 at the paper's stated SIMPLE configuration."""
    from repro import compile_source
    from repro.workloads.simple_cfd import simple_source

    program = compile_source(simple_source(n=100, ncycles=10))

    def measure():
        return _measure(program, SCALAR_MACHINE)

    original, smart, naive = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert original <= smart < naive
