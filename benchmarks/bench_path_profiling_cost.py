"""Path-register cost vs the Section 3 counter ladder.

A Ball–Larus path register answers strictly more than edge counters —
it records *which* acyclic paths ran, and Definition-3 frequencies
reconstruct from the spectrum bit-for-bit — but it pays for that with
a register update on every nonzero-increment edge plus a two-update
flush per back edge.  This benchmark quantifies the price in the
paper's own currency (dynamic counter-update operations, Section 3.3)
against the full counter-placement ladder (naive, Opt 1, Opt 1+2,
Opt 1+2+3) on the paper example, the Livermore kernel and a seeded
generator-corpus composite, and measures the wall-clock overhead of
path mode vs counter mode on every execution backend.

Emits a human table plus machine-readable
``benchmarks/results/BENCH_paths.json``.

Gate: ``REPRO_PATHS_GATE`` (default 1.5) — on the codegen backend,
aggregate path-profiled wall time must stay within that factor of
aggregate counter-profiled (smart plan) wall time across the gated
cells.  The fused lowering makes path mode a handful of ``r += k`` /
``paths[r] += 1.0`` statements per iteration, so it should ride close
to counter mode, not multiples of it.
"""

from __future__ import annotations

import json
import os
import time

from repro import (
    SCALAR_MACHINE,
    compile_source,
    naive_program_plan,
    run_program,
    smart_program_plan,
)
from repro.paths import PathExecutor, path_program_plan
from repro.profiling import PlanExecutor
from repro.report import format_table
from repro.workloads.generators import ProgramGenerator

from conftest import RESULTS_DIR, publish

REPS = 5

#: Iterate tiny workloads inside one timing sample so a 61-step
#: program is not measured against clock granularity and noise.
TARGET_STEPS_PER_SAMPLE = 40_000

N_GENERATORS = 15
GEN_MAX_STEPS = 300_000

BACKENDS = ("reference", "threaded", "codegen")

#: The gate covers the throughput workloads; the dispatch-shaped
#: `paper` fixture is reported but measures per-run latency.
GATED_WORKLOADS = frozenset({"livermore", "generators"})

#: The Section 3 ladder path registers are judged against.
LADDER = (
    ("naive", None),
    ("opt1", {"enable_drops": False, "enable_do_batch": False}),
    ("opt1+2", {"enable_drops": True, "enable_do_batch": False}),
    ("opt1+2+3", {"enable_drops": True, "enable_do_batch": True}),
)


def _counter_plan(program, level_kwargs):
    if level_kwargs is None:
        return naive_program_plan(program)
    return smart_program_plan(program, **level_kwargs)


def _ladder_updates(items):
    """Dynamic update ops per ladder level and for the path register.

    ``items`` is ``[(program, run_kwargs), ...]``; each cell sums the
    whole composite.  Also returns the static site counts (counters
    placed vs path-register update sites emitted).
    """
    updates = {level: 0 for level, _ in LADDER}
    updates["paths"] = 0
    sites = {level: 0 for level, _ in LADDER}
    sites["paths"] = 0
    for program, kwargs in items:
        for level, level_kwargs in LADDER:
            plan = _counter_plan(program, level_kwargs)
            executor = PlanExecutor(plan)
            run_program(program, hooks=executor, **kwargs)
            updates[level] += executor.updates
            sites[level] += plan.n_counters
        path_plan = path_program_plan(program)
        path_executor = PathExecutor(path_plan)
        run_program(program, hooks=path_executor, **kwargs)
        path_executor.finalize_run()
        updates["paths"] += path_executor.updates
        sites["paths"] += path_plan.n_sites
    return updates, sites


def _time_cell(items, backend, mode):
    """Best-of-REPS total wall time for one (workload, backend, mode).

    One iteration runs the whole composite back to back; tiny cells
    iterate enough times to amortize clock granularity.
    """
    plans = [
        path_program_plan(program)
        if mode == "paths"
        else smart_program_plan(program)
        for program, _kwargs in items
    ]
    cell_steps = sum(
        run_program(program, backend=backend, **kwargs).steps
        for program, kwargs in items
    )
    count = max(1, TARGET_STEPS_PER_SAMPLE // max(1, cell_steps))
    best = float("inf")
    for _ in range(REPS):
        hooks = [
            PathExecutor(plan) if mode == "paths" else PlanExecutor(plan)
            for plan in plans
        ]
        start = time.perf_counter()
        for index, (program, kwargs) in enumerate(items):
            for _ in range(count):
                run_program(
                    program,
                    hooks=hooks[index],
                    model=SCALAR_MACHINE,
                    backend=backend,
                    **kwargs,
                )
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def test_path_profiling_cost(paper_program, loops_program):
    gate = float(os.environ.get("REPRO_PATHS_GATE", "1.5"))

    generators = [
        (
            compile_source(ProgramGenerator(seed).source()),
            {"seed": 7919 * (seed + 1), "max_steps": GEN_MAX_STEPS},
        )
        for seed in range(N_GENERATORS)
    ]
    workloads = {
        "paper": [(paper_program, {})],
        "livermore": [(loops_program, {})],
        "generators": generators,
    }

    update_rows = []
    wall_rows = []
    records = {}
    gated = {"counters": 0.0, "paths": 0.0}
    for name, items in workloads.items():
        updates, sites = _ladder_updates(items)
        update_rows.append(
            [name]
            + [updates[level] for level, _ in LADDER]
            + [updates["paths"]]
            + [sites["opt1+2+3"], sites["paths"]]
        )
        seconds = {
            mode: {
                backend: _time_cell(items, backend, mode)
                for backend in BACKENDS
            }
            for mode in ("counters", "paths")
        }
        overhead = {
            backend: seconds["paths"][backend] / seconds["counters"][backend]
            for backend in BACKENDS
        }
        if name in GATED_WORKLOADS:
            for mode in ("counters", "paths"):
                gated[mode] += seconds[mode]["codegen"]
        wall_rows.append(
            [name]
            + [
                f"{seconds[mode][backend] * 1e3:.1f}"
                for backend in BACKENDS
                for mode in ("counters", "paths")
            ]
            + [f"{overhead['codegen']:.2f}x"]
        )
        records[name] = {
            "updates": dict(updates),
            "static_sites": dict(sites),
            "seconds": seconds,
            "paths_vs_counters_overhead": overhead,
        }

    aggregate = gated["paths"] / gated["counters"]
    update_table = format_table(
        ["workload", "naive", "opt1", "opt1+2", "opt1+2+3", "paths",
         "smart sites", "path sites"],
        update_rows,
        title="dynamic counter-update operations: "
        "Section 3 ladder vs Ball–Larus path register",
    )
    wall_table = format_table(
        ["workload"]
        + [
            f"{backend[:4]} {mode[:4]} ms"
            for backend in BACKENDS
            for mode in ("counters", "paths")
        ]
        + ["codegen ovh"],
        wall_rows,
        title=f"wall-clock per backend, counter vs path mode "
        f"(best of {REPS}, scalar model); "
        f"gated codegen aggregate {aggregate:.2f}x (gate {gate:.1f}x)",
    )
    publish("path_profiling_cost", update_table + "\n\n" + wall_table)

    payload = {
        "benchmark": "bench_path_profiling_cost",
        "reps": REPS,
        "model": "scalar",
        "generators": N_GENERATORS,
        "ladder": [level for level, _ in LADDER] + ["paths"],
        "gated_workloads": sorted(GATED_WORKLOADS),
        "gate": gate,
        "codegen_paths_vs_counters_aggregate": aggregate,
        "workloads": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_paths.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Shape: the fully optimized counter plan stays the cheapest way
    # to measure Definition 3 — path registers pay extra updates for
    # the extra information.  Structurally a path register costs about
    # what the un-dropped per-condition placement (Opt 1) costs: its
    # increments live on a subset of the condition edges and each back
    # edge adds a two-update flush, so it must track that ladder rung
    # closely rather than the per-block naive plan (which DO-dominated
    # code makes artificially cheap: one bump covers a whole block).
    for name in workloads:
        updates = records[name]["updates"]
        assert updates["opt1+2+3"] <= updates["paths"], (name, updates)
        assert updates["paths"] <= 1.1 * updates["opt1"], (name, updates)
    assert aggregate <= gate, (
        f"codegen path-mode aggregate overhead {aggregate:.2f}x above "
        f"the {gate:.1f}x gate vs counter mode"
    )
