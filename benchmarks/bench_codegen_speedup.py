"""Codegen-backend speedup over the reference and threaded backends.

The tentpole claim of the codegen backend: emitting each checked CFG
once as plain Python source — native ``while`` loops, locals, folded
constants, fused straight-line blocks, counter bumps as direct
``slots[i] += 1.0`` adds — makes runs ≥10x faster than the
tree-walking reference interpreter and ≥2.5x faster than the threaded
backend in *aggregate* over the Livermore/generator corpus, while
staying bit-identical.  This benchmark measures both ratios across
plain, costed and profiled modes and emits a human table plus
machine-readable ``benchmarks/results/BENCH_codegen.json``.

Gates (applied to the aggregate = total reference time / total
codegen time across the gated Livermore/generator cells, and likewise
vs threaded; the `paper`/`simple` cells are reported but ungated —
they are per-run-latency microbenchmarks, not throughput workloads):

* ``REPRO_CODEGEN_GATE``          — vs reference, default 10.0
  (CI uses 6.0 as a jitter margin);
* ``REPRO_CODEGEN_THREADED_GATE`` — vs threaded, default 2.5
  (CI uses 1.8).
"""

from __future__ import annotations

import json
import os
import time

from repro import SCALAR_MACHINE, compile_source, smart_program_plan
from repro.pipeline import run_program
from repro.profiling import PlanExecutor
from repro.report import format_table
from repro.workloads.generators import ProgramGenerator

from conftest import RESULTS_DIR, publish

REPS = 5

#: Iterate tiny workloads inside one timing sample so a 61-step
#: program is not measured against clock granularity and noise.
TARGET_STEPS_PER_SAMPLE = 40_000

#: The generator-corpus composite: these programs run back to back
#: inside one timing sample, like a batch-engine sweep would.
N_GENERATORS = 20
GEN_MAX_STEPS = 300_000

BACKENDS = ("reference", "threaded", "codegen")

#: The ISSUE's speedup claim is over the Livermore/generator corpus;
#: the tiny dispatch-shaped `paper` fixture (61 steps, irreducible
#: main) and `simple` ride along for visibility but measure per-run
#: latency more than execution throughput, so they are not gated.
GATED_WORKLOADS = frozenset({"livermore", "generators"})

#: (mode name, costed, profiled) — plain interpretation, cost
#: accounting, and full §3 counter profiling with the smart plan.
MODES = (
    ("plain", False, False),
    ("costed", True, False),
    ("profiled", True, True),
)


def _comparable(result):
    return (
        result.halted,
        result.steps,
        result.outputs,
        result.total_cost,
        result.counter_ops,
        result.counter_cost,
        result.node_counts,
        result.edge_counts,
        result.call_counts,
    )


def _time_cell(items, backend, *, costed, profiled):
    """Best-of-REPS total wall time for one (workload, mode) cell.

    ``items`` is a list of ``(program, plan, run_kwargs)``; every
    program in the cell runs back to back each iteration.  Returns
    ``(seconds, steps, observations)`` where ``observations`` pins the
    full comparable state (results + final counter arrays) so a
    speedup only counts when the answers are identical.
    """
    model = SCALAR_MACHINE if costed else None
    plans = [plan if profiled else None for _program, plan, _kw in items]
    # One iteration executes the whole cell back to back (a composite
    # cell behaves like one batch sweep, not N independent loops), and
    # the iteration count amortizes clock granularity for small cells.
    cell_steps = sum(
        run_program(program, backend=backend, **kwargs).steps
        for program, _plan, kwargs in items
    )
    count = max(1, TARGET_STEPS_PER_SAMPLE // max(1, cell_steps))
    iterations = [count] * len(items)
    best = float("inf")
    observations = None
    steps = 0
    for _ in range(REPS):
        hooks = [
            PlanExecutor(plan) if plan is not None else None
            for plan in plans
        ]
        results = [None] * len(items)
        start = time.perf_counter()
        for index, (program, _plan, kwargs) in enumerate(items):
            for _ in range(iterations[index]):
                results[index] = run_program(
                    program,
                    hooks=hooks[index],
                    model=model,
                    backend=backend,
                    **kwargs,
                )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            steps = sum(
                result.steps * n for result, n in zip(results, iterations)
            )
            observations = [
                (
                    _comparable(result),
                    executor.counters if executor is not None else None,
                    executor.updates if executor is not None else None,
                )
                for result, executor in zip(results, hooks)
            ]
    return best, steps, observations


def test_codegen_speedup(paper_program, loops_program, simple_program):
    gate = float(os.environ.get("REPRO_CODEGEN_GATE", "10.0"))
    threaded_gate = float(
        os.environ.get("REPRO_CODEGEN_THREADED_GATE", "2.5")
    )

    def suite(program, **kwargs):
        return [(program, smart_program_plan(program), kwargs)]

    generators = [
        compile_source(ProgramGenerator(seed).source())
        for seed in range(N_GENERATORS)
    ]
    workloads = {
        "paper": suite(paper_program),
        "livermore": suite(loops_program),
        "simple": suite(simple_program),
        "generators": [
            (
                program,
                smart_program_plan(program),
                {"seed": 7919 * (seed + 1), "max_steps": GEN_MAX_STEPS},
            )
            for seed, program in enumerate(generators)
        ],
    }

    rows = []
    records = {}
    totals = {backend: 0.0 for backend in BACKENDS}
    gated_totals = {backend: 0.0 for backend in BACKENDS}
    for name, items in workloads.items():
        record = {}
        for mode, costed, profiled in MODES:
            times = {}
            observed = {}
            for backend in BACKENDS:
                times[backend], steps, observed[backend] = _time_cell(
                    items, backend, costed=costed, profiled=profiled
                )
                totals[backend] += times[backend]
                if name in GATED_WORKLOADS:
                    gated_totals[backend] += times[backend]
            # The speedup only counts if the answers are identical.
            for backend in ("threaded", "codegen"):
                assert observed[backend] == observed["reference"], (
                    name, mode, backend,
                )
            speedup = times["reference"] / times["codegen"]
            vs_threaded = times["threaded"] / times["codegen"]
            record[mode] = {
                "reference_seconds": times["reference"],
                "threaded_seconds": times["threaded"],
                "codegen_seconds": times["codegen"],
                "speedup_vs_reference": speedup,
                "speedup_vs_threaded": vs_threaded,
                "steps": steps,
                "codegen_steps_per_second": steps / times["codegen"],
            }
            rows.append(
                [
                    name,
                    mode,
                    steps,
                    f"{times['reference'] * 1e3:.1f}",
                    f"{times['threaded'] * 1e3:.1f}",
                    f"{times['codegen'] * 1e3:.1f}",
                    f"{speedup:.2f}x",
                    f"{vs_threaded:.2f}x",
                ]
            )
        records[name] = record

    aggregate = gated_totals["reference"] / gated_totals["codegen"]
    aggregate_threaded = gated_totals["threaded"] / gated_totals["codegen"]
    all_aggregate = totals["reference"] / totals["codegen"]
    all_aggregate_threaded = totals["threaded"] / totals["codegen"]
    rows.append(
        [
            "corpus (gated)",
            "all",
            "",
            f"{gated_totals['reference'] * 1e3:.1f}",
            f"{gated_totals['threaded'] * 1e3:.1f}",
            f"{gated_totals['codegen'] * 1e3:.1f}",
            f"{aggregate:.2f}x",
            f"{aggregate_threaded:.2f}x",
        ]
    )
    rows.append(
        [
            "everything",
            "all",
            "",
            f"{totals['reference'] * 1e3:.1f}",
            f"{totals['threaded'] * 1e3:.1f}",
            f"{totals['codegen'] * 1e3:.1f}",
            f"{all_aggregate:.2f}x",
            f"{all_aggregate_threaded:.2f}x",
        ]
    )
    table = format_table(
        [
            "workload",
            "mode",
            "steps",
            "reference ms",
            "threaded ms",
            "codegen ms",
            "vs reference",
            "vs threaded",
        ],
        rows,
        title="codegen backend vs reference and threaded "
        f"(best of {REPS}, scalar model)",
    )
    publish("codegen_speedup", table)

    payload = {
        "benchmark": "bench_codegen_speedup",
        "reps": REPS,
        "model": "scalar",
        "generators": N_GENERATORS,
        "gated_workloads": sorted(GATED_WORKLOADS),
        "gate_vs_reference": gate,
        "gate_vs_threaded": threaded_gate,
        "aggregate_speedup_vs_reference": aggregate,
        "aggregate_speedup_vs_threaded": aggregate_threaded,
        "all_workloads_speedup_vs_reference": all_aggregate,
        "all_workloads_speedup_vs_threaded": all_aggregate_threaded,
        "workloads": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_codegen.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    assert aggregate >= gate, (
        f"codegen aggregate speedup {aggregate:.2f}x below the "
        f"{gate:.1f}x gate vs reference"
    )
    assert aggregate_threaded >= threaded_gate, (
        f"codegen aggregate speedup {aggregate_threaded:.2f}x below the "
        f"{threaded_gate:.1f}x gate vs threaded"
    )
