"""Figures 1-3 — the paper's running example through the pipeline.

Regenerates the three figures as text (CFG, ECFG, annotated FCDG) and
asserts the paper's exact numbers: TIME(START) = 920 and
STD_DEV(START) = 300, with all the intermediate FREQ/TIME/VAR values
of Figure 3.  The benchmark measures the full compile-profile-analyze
pipeline latency.
"""

from __future__ import annotations

import pytest

from repro import analyze, compile_source, oracle_program_profile
from repro.report import render_cfg, render_fcdg
from repro.workloads.paper_example import (
    EXPECTED_STD_DEV,
    EXPECTED_TIME,
    EXPECTED_VAR,
    FigureCostEstimator,
    PAPER_SOURCE,
)

from conftest import publish


def _pipeline():
    program = compile_source(PAPER_SOURCE)
    profile = oracle_program_profile(program, runs=[{}])
    analysis = analyze(
        program, profile, model=None, estimator=FigureCostEstimator()
    )
    return program, analysis


def test_figures_1_2_3(benchmark):
    program, analysis = benchmark(_pipeline)

    figure1 = render_cfg(program.cfgs["MAIN"], title="Figure 1: CFG of MAIN")
    figure2 = render_cfg(
        program.ecfgs["MAIN"].graph, title="Figure 2: extended CFG of MAIN"
    )
    figure3 = render_fcdg(analysis.main)
    publish(
        "figures_1_2_3",
        figure1 + "\n\n" + figure2 + "\n\nFigure 3:\n" + figure3,
    )

    main = analysis.main
    graph = main.ecfg.graph
    assert analysis.total_time == pytest.approx(EXPECTED_TIME)
    assert analysis.total_var == pytest.approx(EXPECTED_VAR)
    assert analysis.total_std_dev == pytest.approx(EXPECTED_STD_DEV)

    n2 = next(n.id for n in graph if "IF (N .LT. 0)" in n.text)
    header = next(n.id for n in graph if "IF (M .GE. 0)" in n.text)
    call = next(n.id for n in graph if "CALL FOO" in n.text)
    (preheader,) = main.ecfg.header_of

    # Figure 3's interior annotations.
    assert main.freqs.freq[(n2, "F")] == pytest.approx(0.9)
    assert main.freqs.loop_frequency(preheader) == pytest.approx(10.0)
    assert main.times[call] == pytest.approx(100.0)
    assert main.times[n2] == pytest.approx(91.0)
    assert main.times[header] == pytest.approx(92.0)
    assert main.variances.var[n2] == pytest.approx(900.0)
    assert main.variances.var[preheader] == pytest.approx(90000.0)
