"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one of the paper's tables/figures
(see DESIGN.md's per-experiment index).  Reproduced tables are printed
AND written to ``benchmarks/results/*.txt`` so they survive pytest's
output capture; shape assertions live inside the benchmark tests so
``--benchmark-only`` still validates the reproduction.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


@pytest.fixture(scope="session")
def loops_program():
    from repro import compile_source
    from repro.workloads.livermore import livermore_source

    return compile_source(livermore_source(n=60, n2=8))


@pytest.fixture(scope="session")
def simple_program():
    from repro import compile_source
    from repro.workloads.simple_cfd import simple_source

    return compile_source(simple_source(n=10, ncycles=3))


@pytest.fixture(scope="session")
def paper_program():
    from repro.workloads.paper_example import paper_program as build

    return build()
