"""The linear-time claim (Section 7).

"The average execution times and variance values can be computed in a
single, linear time, bottom-up traversal of the forward control
dependence graph."  This benchmark grows generated programs by an
order of magnitude and checks that analysis latency grows roughly
linearly with FCDG size (within a generous constant for Python-level
noise and the small super-linear pieces: postdominators, closures).
"""

from __future__ import annotations

import time

import pytest

from repro import SCALAR_MACHINE, compile_source, oracle_program_profile
from repro.analysis import (
    compute_frequencies,
    compute_times,
    compute_variances,
)
from repro.costs.estimate import CostEstimator
from repro.report import format_table
from repro.workloads.generators import ProgramGenerator

from conftest import publish


def _concatenate_program(n_copies: int) -> str:
    """A MAIN of ``n_copies`` structurally distinct chunks."""
    body: list[str] = []
    for i in range(n_copies):
        gen = ProgramGenerator(1000 + i, allow_calls=False, max_depth=2)
        gen._label = i * 1000  # keep statement labels globally unique
        gen._loop_var = (i * 37) % 5000
        body.extend(gen._block(0, []))
    return (
        "      PROGRAM BIG\n      REAL ARR(20)\n"
        + "\n".join("      " + line for line in body)
        + "\n      END\n"
    )


def _analysis_passes(program, profile, estimator):
    """Time only the three per-FCDG passes the paper calls linear."""
    name = program.main_name
    fcdg = program.fcdgs[name]
    costs = {
        nid: nc.local
        for nid, nc in estimator.cfg_costs(program.cfgs[name], name).items()
    }
    start = time.perf_counter()
    freqs = compute_frequencies(fcdg, profile.proc(name))
    times = compute_times(fcdg, freqs, costs)
    compute_variances(fcdg, freqs, times)
    return time.perf_counter() - start


def test_analysis_scales_linearly(benchmark):
    sizes = [4, 16, 64]
    rows = []
    points = []
    for n_copies in sizes:
        source = _concatenate_program(n_copies)
        program = compile_source(source)
        profile = oracle_program_profile(
            program, runs=[{"seed": 0}], max_steps=20_000_000
        )
        estimator = CostEstimator(program.checked, SCALAR_MACHINE)
        fcdg_nodes = len(program.fcdgs[program.main_name].nodes)
        # median of repeated measurements for stability
        elapsed = min(
            _analysis_passes(program, profile, estimator) for _ in range(5)
        )
        points.append((fcdg_nodes, elapsed))
        rows.append(
            [n_copies, fcdg_nodes, elapsed * 1e3, 1e6 * elapsed / fcdg_nodes]
        )

    publish(
        "analysis_scaling",
        format_table(
            ["chunks", "FCDG nodes", "analysis ms", "us per node"],
            rows,
            title="FREQ+TIME+VAR pass latency vs program size",
        ),
    )

    # per-node cost must stay roughly flat: within 4x from the
    # smallest to the largest program (linear-time claim).
    smallest = points[0][1] / points[0][0]
    largest = points[-1][1] / points[-1][0]
    assert largest < 4.0 * smallest, (smallest, largest)

    # benchmark the largest program's analysis for the timing table.
    source = _concatenate_program(sizes[-1])
    program = compile_source(source)
    profile = oracle_program_profile(
        program, runs=[{"seed": 0}], max_steps=20_000_000
    )
    estimator = CostEstimator(program.checked, SCALAR_MACHINE)
    benchmark(lambda: _analysis_passes(program, profile, estimator))
