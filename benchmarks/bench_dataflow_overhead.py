"""Dataflow-solver overhead: the four analyses vs compilation.

`repro check` now runs reaching definitions, liveness, SCCP and value
ranges on every procedure, and `optimize=True` codegen replans them on
demand — so the solver must stay cheap relative to the compile work it
rides on.  This benchmark times, over the Livermore corpus plus a
slice of generator programs:

* ``compile``   — ``compile_source`` + both counter plans + lowering
  the codegen backend (``ensure_lowered`` emits and ``compile()``s the
  module): everything ``repro run`` pays before the first statement
  executes, and a subset of what ``repro check`` pays (its REP405
  audit lowers *two* variants);
* ``dataflow``  — ``analyze_procedure`` (all four fixpoints) over
  every procedure, including the interprocedural ``param_summaries``
  pass.

Acceptance: the dataflow sweep costs < 20 % of compile time, averaged
over the corpus.  Besides the usual results table this benchmark
emits ``benchmarks/results/BENCH_dataflow.json`` with the per-program
timings for CI trending.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import compile_source, naive_program_plan, smart_program_plan
from repro.codegen import codegen_backend_for
from repro.dataflow import analyze_procedure, param_summaries
from repro.report import format_table
from repro.workloads import builtin_sources
from repro.workloads.generators import ProgramGenerator

from conftest import RESULTS_DIR, publish

N_GENERATED = 12
REPEATS = 7
_OVERHEAD_CEILING = 0.20


def _corpus() -> list[tuple[str, str]]:
    programs = [
        (pid, source)
        for pid, source in builtin_sources()
        if pid in ("paper", "livermore", "simple", "shellsort", "gauss")
    ]
    programs += [
        (f"gen-{seed}", ProgramGenerator(seed).source())
        for seed in range(N_GENERATED)
    ]
    return programs


def _time_pair(fn_a, fn_b) -> tuple[float, float]:
    """Best-of-REPEATS for two thunks, interleaved A/B each round.

    Interleaving means a slow scheduling window hits both legs alike
    instead of skewing whichever leg happened to run through it, so
    the *ratio* of the two minima is much more stable than timing the
    legs back to back.
    """
    best_a = best_b = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn_a()
        t1 = time.perf_counter()
        fn_b()
        t2 = time.perf_counter()
        best_a = min(best_a, t1 - t0)
        best_b = min(best_b, t2 - t1)
    return best_a, best_b


def _compile_and_lower(source: str) -> None:
    program = compile_source(source)
    smart_program_plan(program)
    naive_program_plan(program)
    codegen_backend_for(program).ensure_lowered()


def _dataflow_sweep(program) -> None:
    summaries = param_summaries(program.checked)
    for name, cfg in program.cfgs.items():
        analyze_procedure(
            program.checked, name, cfg, summaries=summaries
        )


def test_dataflow_overhead():
    rows = []
    records = []
    total_compile = total_dataflow = 0.0
    for program_id, source in _corpus():
        program = compile_source(source)
        compile_s, dataflow_s = _time_pair(
            lambda: _compile_and_lower(source),
            lambda: _dataflow_sweep(program),
        )

        total_compile += compile_s
        total_dataflow += dataflow_s
        records.append(
            {
                "program": program_id,
                "procedures": len(program.cfgs),
                "compile_s": compile_s,
                "dataflow_s": dataflow_s,
            }
        )
        rows.append(
            [
                program_id,
                str(len(program.cfgs)),
                f"{1e3 * compile_s:.2f}",
                f"{1e3 * dataflow_s:.2f}",
                f"{100 * dataflow_s / compile_s:.1f}%",
            ]
        )

    overhead = total_dataflow / total_compile
    rows.append(
        [
            "TOTAL",
            "",
            f"{1e3 * total_compile:.2f}",
            f"{1e3 * total_dataflow:.2f}",
            f"{100 * overhead:.1f}%",
        ]
    )
    publish(
        "dataflow_overhead",
        format_table(
            ["program", "procs", "compile+lower ms", "dataflow ms",
             "dataflow/compile"],
            rows,
            title=(
                "dataflow solver overhead "
                f"(best of {REPEATS}, ceiling {100 * _OVERHEAD_CEILING:.0f}%)"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = Path(RESULTS_DIR) / "BENCH_dataflow.json"
    artifact.write_text(
        json.dumps(
            {
                "ceiling": _OVERHEAD_CEILING,
                "overhead": overhead,
                "repeats": REPEATS,
                "programs": records,
            },
            indent=2,
        )
        + "\n"
    )
    assert overhead < _OVERHEAD_CEILING, (
        f"dataflow analyses cost {100 * overhead:.1f}% of compile time "
        f"(ceiling {100 * _OVERHEAD_CEILING:.0f}%)"
    )
