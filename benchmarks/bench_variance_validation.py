"""Validation of the Section-5 variance model against Monte Carlo.

The paper derives VAR(u) assuming independent branch outcomes; for a
program whose branches really are i.i.d. coin flips, the model's
VAR(START) should match the sample variance of measured per-run
costs.  Loops expose the model's two deliberate approximations:

* the trip-test branch of a counted loop is treated as probabilistic,
  so a deterministic loop gets nonzero variance;
* Case 1 scales body variance by FREQ², treating iterations as
  perfectly correlated rather than independent.

The benchmark quantifies all three regimes (the paper reports no such
validation — this reproduces what its model *implies*).
"""

from __future__ import annotations

import statistics

import pytest

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    oracle_program_profile,
    run_program,
)
from repro.report import format_table

from conftest import publish

#: Branch-only DAG: three independent coin flips with different costs.
BRANCH_DAG = """\
      PROGRAM FLIPS
      IF (RAND() .LT. 0.3) X = X + SQRT(2.0)
      IF (RAND() .LT. 0.5) THEN
        Y = Y * 2.0 + 1.0
      ELSE
        Y = Y - 1.0
      ENDIF
      IF (RAND() .LT. 0.7) Z = Z + X * Y
      END
"""

#: Geometric loop: continue with probability 0.9 each iteration.
GEOMETRIC_LOOP = """\
      PROGRAM GEO
      K = 0
10    K = K + 1
      X = X + SQRT(REAL(K))
      IF (RAND() .LT. 0.9) GOTO 10
      END
"""

#: Deterministic counted loop (zero true variance).
COUNTED_LOOP = """\
      PROGRAM DET
      DO 10 I = 1, 50
        X = X + SQRT(REAL(I))
10    CONTINUE
      END
"""

N_RUNS = 600


def _validate(source):
    """Measured (mean, var) plus the model under each VAR(FREQ) route."""
    from repro import profile_program
    from repro.analysis.distributions import LoopDistribution

    program = compile_source(source)
    specs = [{"seed": s} for s in range(N_RUNS)]
    costs = [
        run_program(program, model=SCALAR_MACHINE, **spec).total_cost
        for spec in specs
    ]
    profile, _ = profile_program(
        program, runs=specs, record_loop_moments=True
    )
    models = {
        "zero": analyze(program, profile, SCALAR_MACHINE),
        "geometric": analyze(
            program,
            profile,
            SCALAR_MACHINE,
            loop_variance=LoopDistribution.GEOMETRIC,
        ),
        "profiled": analyze(
            program, profile, SCALAR_MACHINE, loop_variance="profiled"
        ),
    }
    return models, statistics.fmean(costs), statistics.pvariance(costs)


def test_variance_validation(benchmark):
    def run_all():
        return {
            "branch DAG (iid)": _validate(BRANCH_DAG),
            "geometric loop": _validate(GEOMETRIC_LOOP),
            "counted loop": _validate(COUNTED_LOOP),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (models, mean, var) in results.items():
        rows.append(
            [
                name,
                mean,
                var,
                models["zero"].total_var,
                models["geometric"].total_var,
                models["profiled"].total_var,
            ]
        )
    publish(
        "variance_validation",
        format_table(
            ["program", "mean (MC)", "var (MC)", "VAR zero",
             "VAR geometric", "VAR profiled"],
            rows,
            title=(
                f"Section-5 variance model vs {N_RUNS}-run Monte Carlo, "
                "under the three VAR(FREQ) routes (scalar machine)"
            ),
        ),
    )

    # TIME always matches the measured mean exactly.
    for name, (models, mean, _) in results.items():
        assert models["zero"].total_time == pytest.approx(mean, rel=1e-9), name

    # Branch-only DAG: no loops, every route identical and exact up
    # to sampling noise.
    models, _, var = results["branch DAG (iid)"]
    assert models["zero"].total_var == pytest.approx(var, rel=0.25)
    assert models["zero"].total_var == models["profiled"].total_var

    # Geometric loop: with VAR(FREQ) = 0 the model sees no variance
    # (all per-iteration work is deterministic); the profiled E[F²]
    # route recovers the true variance almost exactly, and the
    # assumed-geometric route lands the right order of magnitude.
    models, _, var = results["geometric loop"]
    assert models["zero"].total_var == pytest.approx(0.0)
    assert models["profiled"].total_var == pytest.approx(var, rel=0.35)
    assert 0.1 < models["geometric"].total_var / var < 10.0

    # Deterministic loop: reality has zero variance.  The model keeps
    # a conservative Case-2 term (the trip test is treated as a
    # probabilistic branch), identical under the zero and profiled
    # routes (profiling observes VAR(FREQ) = 0); it stays small
    # relative to TIME².  The assumed-geometric route, wrong for a
    # counted loop, overestimates by orders of magnitude.
    models, _, var = results["counted loop"]
    assert var == pytest.approx(0.0)
    assert models["profiled"].total_var == pytest.approx(
        models["zero"].total_var
    )
    assert models["zero"].total_var < (0.2 * models["zero"].total_time) ** 2
    assert models["geometric"].total_var > 10 * models["zero"].total_var
