"""Threaded-backend speedup over the reference interpreter.

The tentpole claim of the threaded backend (ISSUE 5): compiling CFGs
to specialized closures with flat counter arrays makes runs ≥3x faster
than the tree-walking interpreter while producing bit-identical
``RunResult`` counts.  This benchmark measures that ratio on the
standard workloads — plain runs and smart-plan profiled runs — and
emits both a human table and a machine-readable
``benchmarks/results/BENCH_threaded.json`` so later PRs have a perf
baseline to diff against.

The gate is ``REPRO_SPEEDUP_GATE`` (default 3.0; CI uses 2.0 as a
jitter margin) applied to the *minimum* speedup across workloads.
"""

from __future__ import annotations

import json
import os
import time

from repro import SCALAR_MACHINE, smart_program_plan
from repro.pipeline import run_program
from repro.profiling import PlanExecutor
from repro.report import format_table

from conftest import RESULTS_DIR, publish

REPS = 3

#: Iterate tiny workloads inside one timing sample so a 61-step
#: program is not measured against clock granularity and noise.
TARGET_STEPS_PER_SAMPLE = 20_000


def _time_run(program, backend: str, *, plan=None, seed: int = 0):
    """Best-of-REPS per-run wall time and the last run's result."""
    probe = run_program(program, seed=seed, backend=backend)
    iterations = max(1, TARGET_STEPS_PER_SAMPLE // max(1, probe.steps))
    best = float("inf")
    result = None
    for _ in range(REPS):
        hooks = PlanExecutor(plan) if plan is not None else None
        start = time.perf_counter()
        for _ in range(iterations):
            result = run_program(
                program,
                hooks=hooks,
                model=SCALAR_MACHINE,
                seed=seed,
                backend=backend,
            )
        best = min(best, (time.perf_counter() - start) / iterations)
    return best, result


def _comparable(result):
    return (
        result.halted,
        result.steps,
        result.outputs,
        result.total_cost,
        result.counter_ops,
        result.counter_cost,
        result.node_counts,
        result.edge_counts,
        result.call_counts,
    )


def test_threaded_speedup(paper_program, loops_program, simple_program):
    gate = float(os.environ.get("REPRO_SPEEDUP_GATE", "3.0"))
    workloads = {
        "paper": paper_program,
        "livermore": loops_program,
        "simple": simple_program,
    }
    rows = []
    records = {}
    for name, program in workloads.items():
        plan = smart_program_plan(program)
        record = {}
        for mode, mode_plan in (("plain", None), ("profiled", plan)):
            ref_time, ref_result = _time_run(
                program, "reference", plan=mode_plan
            )
            thr_time, thr_result = _time_run(
                program, "threaded", plan=mode_plan
            )
            # The speedup only counts if the answers are identical.
            assert _comparable(thr_result) == _comparable(ref_result), (
                name, mode,
            )
            speedup = ref_time / thr_time
            record[mode] = {
                "reference_seconds": ref_time,
                "threaded_seconds": thr_time,
                "speedup": speedup,
                "steps": ref_result.steps,
                "threaded_steps_per_second": ref_result.steps / thr_time,
            }
            rows.append(
                [
                    name,
                    mode,
                    ref_result.steps,
                    f"{ref_time * 1e3:.1f}",
                    f"{thr_time * 1e3:.1f}",
                    f"{speedup:.2f}x",
                    f"{ref_result.steps / thr_time:,.0f}",
                ]
            )
        records[name] = record

    table = format_table(
        [
            "workload",
            "mode",
            "steps",
            "reference ms",
            "threaded ms",
            "speedup",
            "threaded steps/s",
        ],
        rows,
        title="threaded backend vs reference interpreter "
        f"(best of {REPS}, scalar model)",
    )
    publish("threaded_speedup", table)

    worst = min(
        record[mode]["speedup"]
        for record in records.values()
        for mode in record
    )
    payload = {
        "benchmark": "bench_threaded_speedup",
        "reps": REPS,
        "model": "scalar",
        "gate": gate,
        "min_speedup": worst,
        "workloads": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_threaded.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    assert worst >= gate, (
        f"threaded backend speedup {worst:.2f}x below the "
        f"{gate:.1f}x gate"
    )
