"""Ablation of the three profiling optimizations (Section 3).

For each workload, counts static counters and dynamic counter-update
operations under: naive (per basic block), Opt 1 (one counter per
control condition), Opt 1+2 (sum-constraint drops) and Opt 1+2+3
(DO-loop batching) — quantifying each optimization's contribution,
which the paper reports only in aggregate ("smart" vs "naive").

Shape: counters and updates decrease (weakly) monotonically along the
ladder, and the full smart plan beats naive on both metrics.
"""

from __future__ import annotations

import pytest

from repro import (
    compile_source,
    naive_program_plan,
    run_program,
    smart_program_plan,
)
from repro.profiling import PlanExecutor
from repro.report import format_table
from repro.workloads.unstructured import STATE_MACHINE, TWO_EXIT_LOOP

from conftest import publish

LADDER = [
    ("naive", None),
    ("opt1", {"enable_drops": False, "enable_do_batch": False}),
    ("opt1+2", {"enable_drops": True, "enable_do_batch": False}),
    ("opt1+2+3", {"enable_drops": True, "enable_do_batch": True}),
]


def _plan_for(program, level_kwargs):
    if level_kwargs is None:
        return naive_program_plan(program)
    return smart_program_plan(program, **level_kwargs)


def _measure_ladder(workloads):
    rows = []
    per_workload = {}
    for name, program, run_kwargs in workloads:
        stats = []
        for level, kwargs in LADDER:
            plan = _plan_for(program, kwargs)
            executor = PlanExecutor(plan)
            run_program(program, hooks=executor, **run_kwargs)
            stats.append((level, plan.n_counters, executor.updates))
            rows.append([name, level, plan.n_counters, executor.updates])
        per_workload[name] = stats
    return rows, per_workload


def test_counter_ablation(benchmark, loops_program, simple_program):
    workloads = [
        ("LOOPS", loops_program, {}),
        ("SIMPLE", simple_program, {}),
        ("TWO_EXIT", compile_source(TWO_EXIT_LOOP), {"seed": 1}),
        ("STATE_MACHINE", compile_source(STATE_MACHINE), {"seed": 1}),
    ]
    rows, per_workload = benchmark(_measure_ladder, workloads)
    publish(
        "counter_ablation",
        format_table(
            ["workload", "plan", "counters", "dynamic updates"],
            rows,
            title="Counter-placement ablation (Section 3 optimizations)",
        ),
    )
    for name, stats in per_workload.items():
        levels = {level: (c, u) for level, c, u in stats}
        # Opt 1 alone already beats naive on counters for loopy code;
        # each further optimization must not regress either metric.
        assert levels["opt1+2"][0] <= levels["opt1"][0], name
        assert levels["opt1+2+3"][0] <= levels["opt1+2"][0], name
        assert levels["opt1+2"][1] <= levels["opt1"][1], name
        assert levels["opt1+2+3"][1] <= levels["opt1+2"][1], name
        # The paper's headline: smart < naive on both metrics.
        assert levels["opt1+2+3"][0] <= levels["naive"][0], name
        assert levels["opt1+2+3"][1] <= levels["naive"][1], name


def test_do_batching_dominates_on_loops(benchmark, loops_program):
    """Opt 3 is the big win on DO-loop-dominated code (LOOPS)."""

    def measure():
        no_batch = PlanExecutor(
            smart_program_plan(loops_program, enable_do_batch=False)
        )
        run_program(loops_program, hooks=no_batch)
        batch = PlanExecutor(smart_program_plan(loops_program))
        run_program(loops_program, hooks=batch)
        return no_batch.updates, batch.updates

    without, with_batch = benchmark(measure)
    assert with_batch < without / 2, (
        f"DO batching should halve updates on LOOPS: {without} -> {with_batch}"
    )
