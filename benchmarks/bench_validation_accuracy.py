"""Calibrated-prediction accuracy against measured wall clock.

The validation observatory's acceptance gate (ISSUE 9): calibrating
the abstract cost model on a corpus of real executions must bring the
paper's TIME predictions within 25% median relative error of the
measured per-run wall-clock mean.  This benchmark runs the full loop
— measure the corpus, fit the calibration, score every program — and
emits a human table plus machine-readable
``benchmarks/results/BENCH_validation.json`` so later PRs can diff
prediction accuracy.

The gate is ``REPRO_VALIDATION_GATE`` (default 0.25) applied to the
**median** TIME relative error across the corpus; per-program errors
and CI coverage are recorded but not gated (a single noisy trial on a
shared CI box must not flake the build).
"""

from __future__ import annotations

import json
import os

from repro.report import format_table
from repro.validate import AccuracyScorer, median_relative_error
from repro.validate.corpus import corpus_sources, run_calibration

from conftest import RESULTS_DIR, publish

TRIALS = 5
WARMUP = 2


def test_calibrated_time_accuracy():
    gate = float(os.environ.get("REPRO_VALIDATION_GATE", "0.25"))
    sources = corpus_sources(builtins=True, generated=4, gen_seed=1000)
    calibration, measured = run_calibration(
        sources, trials=TRIALS, warmup=WARMUP
    )
    scores = AccuracyScorer(calibration).score_corpus(measured)
    median = median_relative_error(scores)

    rows = []
    records = {}
    for score in scores:
        rows.append(
            [
                score.label,
                f"{score.measured_mean_ns / 1e3:.1f}",
                f"{score.predicted_time_ns / 1e3:.1f}",
                f"{100 * score.time_relative_error:.1f}%",
                f"{score.time_z_score:+.2f}",
                "yes" if score.time_in_ci else "no",
                "yes" if score.var_in_ci else "no",
            ]
        )
        records[score.label] = score.as_dict()

    table = format_table(
        [
            "program",
            "measured µs",
            "predicted µs",
            "rel err",
            "z",
            "TIME in CI",
            "VAR in CI",
        ],
        rows,
        title=(
            f"calibrated TIME vs wall clock ({TRIALS} trials, "
            f"R² = {calibration.r_squared:.4f}, "
            f"median rel err {100 * median:.1f}%)"
        ),
    )
    publish("validation_accuracy", table)

    in_ci = sum(1 for s in scores if s.time_in_ci)
    payload = {
        "benchmark": "bench_validation_accuracy",
        "trials": TRIALS,
        "warmup": WARMUP,
        "gate": gate,
        "median_relative_error": median,
        "time_in_ci": in_ci,
        "programs": len(scores),
        "r_squared": calibration.r_squared,
        "intercept_ns": calibration.intercept_ns,
        "coefficients_ns": calibration.coefficients_ns,
        "fingerprint": calibration.fingerprint,
        "scores": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_validation.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    assert median <= gate, (
        f"median TIME relative error {100 * median:.1f}% exceeds the "
        f"{100 * gate:.0f}% gate"
    )
