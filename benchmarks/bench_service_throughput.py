"""Profiling-service throughput: micro-batching vs one-request-per-batch.

A closed-loop load generator (each worker thread owns one keep-alive
:class:`ServiceClient` and immediately issues its next request when
the previous one returns) drives two server configurations over the
same repeat-heavy workload:

* **baseline** — ``max_batch=1``: every request is its own engine
  invocation, the serving shape the service replaces;
* **micro-batched** — ``max_batch=32`` with a short linger: requests
  that arrive together ride one engine invocation, and identical
  requests (same source, plan, run specs — deterministic, so results
  are interchangeable) are coalesced singleflight-style into a single
  batch item whose result fans out to every waiter.

The workload models serving traffic: many clients hammering a hot
working set — a few programs under a few deterministic run
configurations, exactly the accumulate-across-runs usage the paper
recommends.  Because the working set is smaller than the concurrency
level, most in-flight requests are duplicates of one another, which
is precisely the regime micro-batching is built for.  Acceptance
(ISSUE 3): at concurrency 16 the micro-batched server must sustain
at least 2x the baseline's request rate, and an overloaded server
(tiny admission queue) must shed load with 429s while every ingest
it *accepted* survives.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.service import (
    FrontDoorConfig,
    FrontDoorThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.report import format_table
from repro.workloads.generators import ProgramGenerator
from repro.workloads.paper_example import PAPER_SOURCE

from conftest import RESULTS_DIR, publish

#: Hot working set: fewer distinct (program, run-config) signatures
#: than concurrent clients, so in-flight duplication is the norm.
N_PROGRAMS = 2
N_SEEDS = 2
CONCURRENCY_LEVELS = (1, 4, 16)
REQUESTS_PER_LEVEL = 96
ACCEPTANCE_CONCURRENCY = 16
ACCEPTANCE_SPEEDUP = 2.0


def _workload() -> list[tuple[str, list[dict]]]:
    sources = [
        ProgramGenerator(seed, max_depth=2, max_stmts=3).source()
        for seed in range(N_PROGRAMS)
    ]
    tasks = []
    for i in range(REQUESTS_PER_LEVEL):
        source = sources[i % N_PROGRAMS]
        runs = [{"seed": (i // N_PROGRAMS) % N_SEEDS}]
        tasks.append((source, runs))
    return tasks


def _run_closed_loop(
    port: int, concurrency: int, tasks: list[tuple[str, list[dict]]]
) -> dict:
    """Drive the service until every task is done; report rates."""
    cursor = {"next": 0}
    lock = threading.Lock()
    latencies: list[float] = []
    errors: list[str] = []

    def worker():
        with ServiceClient(port=port, timeout=120) as client:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(tasks):
                        return
                    cursor["next"] = index + 1
                source, runs = tasks[index]
                started = time.perf_counter()
                try:
                    client.profile(source, runs=runs)
                except ServiceError as exc:  # pragma: no cover - surfaced
                    with lock:
                        errors.append(str(exc))
                    return
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    assert not errors, f"load generation failed: {errors[:3]}"
    assert len(latencies) == len(tasks)
    ordered = sorted(latencies)

    def percentile(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "requests": len(tasks),
        "wall_s": wall,
        "rps": len(tasks) / wall,
        "p50_ms": percentile(0.50) * 1e3,
        "p95_ms": percentile(0.95) * 1e3,
    }


def test_micro_batching_beats_request_per_batch():
    tasks = _workload()
    configs = {
        "baseline (max_batch=1)": ServiceConfig(max_batch=1, linger=0.0),
        "micro-batched (max_batch=32)": ServiceConfig(
            max_batch=32, linger=0.002
        ),
    }
    rows = []
    rates: dict[tuple[str, int], float] = {}
    batcher_stats = {}
    for label, config in configs.items():
        with ServiceThread(config) as handle:
            # One warm-up pass compiles the working set into the
            # shared LRU tier, so both servers measure steady state.
            with ServiceClient(port=handle.port) as warm:
                for source, _ in tasks[:N_PROGRAMS]:
                    warm.compile(source)
            for concurrency in CONCURRENCY_LEVELS:
                outcome = _run_closed_loop(handle.port, concurrency, tasks)
                rates[(label, concurrency)] = outcome["rps"]
                rows.append(
                    [
                        label,
                        concurrency,
                        outcome["requests"],
                        f"{outcome['rps']:.1f}",
                        f"{outcome['p50_ms']:.1f}",
                        f"{outcome['p95_ms']:.1f}",
                    ]
                )
            with ServiceClient(port=handle.port) as probe:
                batcher_stats[label] = probe.metrics()["batcher"]

    speedup = (
        rates[("micro-batched (max_batch=32)", ACCEPTANCE_CONCURRENCY)]
        / rates[("baseline (max_batch=1)", ACCEPTANCE_CONCURRENCY)]
    )
    stats = batcher_stats["micro-batched (max_batch=32)"]
    rows.append(
        [
            f"speedup at c={ACCEPTANCE_CONCURRENCY}",
            "",
            "",
            f"{speedup:.2f}x",
            "",
            "",
        ]
    )
    publish(
        "service_throughput",
        format_table(
            ["configuration", "conc", "reqs", "req/s", "p50 ms", "p95 ms"],
            rows,
            title=(
                f"profiling service closed-loop load: {N_PROGRAMS} programs "
                f"x {N_SEEDS} run configs, {REQUESTS_PER_LEVEL} reqs/level "
                f"(batched flushes={stats['flushes']}, "
                f"coalesced={stats['coalesced']})"
            ),
        ),
    )
    # Micro-batching must amortize and coalesce its way to >= 2x.
    assert stats["coalesced"] > 0, "no coalescing happened at concurrency 16"
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"micro-batched server is only {speedup:.2f}x the "
        f"one-request-per-batch baseline at concurrency "
        f"{ACCEPTANCE_CONCURRENCY}"
    )


#: The multi-worker scaling scenario (ISSUE 10).  Unlike the
#: micro-batching workload above, this one is *distinct-key-heavy*:
#: every request profiles a different (program, seed) signature, so
#: coalescing cannot help and the only way to go faster is to put
#: more cores to work.  One process is GIL-bound on CPU-heavy
#: profiling; N worker processes behind the consistent-hash front
#: door should approach N-fold throughput on an N-core box.
SHARD_WORKERS = 4
SHARD_CONCURRENCY = 64
SHARD_PROGRAMS = 16
SHARD_REQUESTS = 192
SHARD_GATE = float(os.environ.get("REPRO_SHARD_GATE", "2.5"))


def _sharded_workload() -> list[tuple[str, list[dict]]]:
    sources = [
        ProgramGenerator(seed, max_depth=2, max_stmts=4).source()
        for seed in range(SHARD_PROGRAMS)
    ]
    return [
        (sources[i % SHARD_PROGRAMS], [{"seed": i // SHARD_PROGRAMS}])
        for i in range(SHARD_REQUESTS)
    ]


def test_sharded_workers_scale_throughput(tmp_path):
    """``--workers 4`` vs one worker on a distinct-key-heavy load.

    Always measures and records honest numbers (including the core
    count) into ``BENCH_service_sharding.json``; the >=GATE assertion
    only arms when the box actually has enough cores for four workers
    to run in parallel — on fewer cores the measurement is still
    recorded, with ``gated: false``.
    """
    cores = os.cpu_count() or 1
    tasks = _sharded_workload()
    worker_config = ServiceConfig(linger=0.001, request_timeout=120.0)

    outcomes = {}
    with ServiceThread(worker_config) as single:
        outcomes[1] = _run_closed_loop(
            single.port, SHARD_CONCURRENCY, tasks
        )
    door_config = FrontDoorConfig(
        workers=SHARD_WORKERS,
        worker=ServiceConfig(
            db=str(tmp_path / "profiles.json"),
            linger=0.001,
            request_timeout=120.0,
        ),
    )
    with FrontDoorThread(door_config) as door:
        outcomes[SHARD_WORKERS] = _run_closed_loop(
            door.port, SHARD_CONCURRENCY, tasks
        )
        with ServiceClient(port=door.port) as probe:
            health = probe.healthz()
            assert health["healthy_workers"] == SHARD_WORKERS

    speedup = outcomes[SHARD_WORKERS]["rps"] / outcomes[1]["rps"]
    gated = cores >= SHARD_WORKERS
    rows = [
        [
            f"{workers} worker{'s' if workers > 1 else ''}",
            SHARD_CONCURRENCY,
            outcome["requests"],
            f"{outcome['rps']:.1f}",
            f"{outcome['p50_ms']:.1f}",
            f"{outcome['p95_ms']:.1f}",
        ]
        for workers, outcome in sorted(outcomes.items())
    ]
    rows.append(["scaling", "", "", f"{speedup:.2f}x", "", ""])
    publish(
        "service_sharding",
        format_table(
            ["configuration", "conc", "reqs", "req/s", "p50 ms", "p95 ms"],
            rows,
            title=(
                f"sharded service scaling: {SHARD_PROGRAMS} distinct "
                f"programs, {SHARD_REQUESTS} reqs, {cores} cores "
                f"(gate {SHARD_GATE:g}x {'armed' if gated else 'skipped'})"
            ),
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "scenario": "service_sharding",
        "cores": cores,
        "workers": SHARD_WORKERS,
        "concurrency": SHARD_CONCURRENCY,
        "distinct_programs": SHARD_PROGRAMS,
        "requests": SHARD_REQUESTS,
        "rps": {
            str(workers): round(outcome["rps"], 2)
            for workers, outcome in outcomes.items()
        },
        "p95_ms": {
            str(workers): round(outcome["p95_ms"], 2)
            for workers, outcome in outcomes.items()
        },
        "speedup": round(speedup, 3),
        "gate": SHARD_GATE,
        "gated": gated,
    }
    (RESULTS_DIR / "BENCH_service_sharding.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    if not gated:
        print(
            f"\n[gate skipped: {cores} cores cannot parallelize "
            f"{SHARD_WORKERS} workers — recorded {speedup:.2f}x honestly]"
        )
        return
    assert speedup >= SHARD_GATE, (
        f"{SHARD_WORKERS} workers are only {speedup:.2f}x one worker "
        f"at concurrency {SHARD_CONCURRENCY} (gate {SHARD_GATE:g}x)"
    )


def test_overload_sheds_load_without_losing_accepted_ingests(tmp_path):
    """Fill a tiny admission queue; 429s shed load, accepted work lands."""
    db_path = tmp_path / "profiles.json"
    config = ServiceConfig(
        db=str(db_path), max_batch=4, linger=0.05, queue_limit=4
    )
    accepted = []
    rejected = []
    lock = threading.Lock()

    with ServiceThread(config) as handle:

        def slam(worker_id: int):
            with ServiceClient(port=handle.port, timeout=120) as client:
                for i in range(6):
                    try:
                        response = client.profile(
                            PAPER_SOURCE,
                            runs=[{"seed": (worker_id * 7 + i) % 5}],
                            ingest=f"overload-{worker_id}",
                        )
                    except ServiceError as exc:
                        assert exc.status in (429, 503), str(exc)
                        with lock:
                            rejected.append(exc.status)
                    else:
                        with lock:
                            accepted.append(
                                (f"overload-{worker_id}", response)
                            )

        threads = [
            threading.Thread(target=slam, args=(i,)) for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        with ServiceClient(port=handle.port) as probe:
            health = probe.healthz()
            assert health["status"] == "ok"  # overload never killed it
            stats = probe.metrics()["batcher"]

    assert accepted, "the overload test never got a request through"
    assert stats["rejected_queue_full"] == len(rejected)

    # Every 200-answered ingest survived the drain into the database.
    from repro.profiling.database import ProfileDatabase

    reloaded = ProfileDatabase(db_path)
    expected: dict[str, int] = {}
    for key, _response in accepted:
        expected[key] = expected.get(key, 0) + 1
    for key, runs in expected.items():
        assert reloaded.lookup(key).runs == runs, key
