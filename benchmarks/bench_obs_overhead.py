"""Observability overhead: the instrumentation must pay for itself.

The paper's Table 1 argument is that measurement is only credible
when its own cost is measured and bounded; PR 4 applies that to the
reproduction's self-instrumentation.  Two regimes are gated:

* **disabled** (the default) — ``span()`` returns a shared no-op
  object.  We time the no-op path directly and require that the spans
  a full pipeline pass would have opened cost well under 0.5% of that
  pass, i.e. no measurable overhead when nobody is tracing;
* **enabled** (a ring-buffer sink, what ``repro trace`` uses) — a
  compile → plan → profile → analyze pass over the paper's program is
  timed with tracing off and on, best-of-``REPEATS`` loops of
  ``PASSES_PER_LOOP`` passes each.  Acceptance (ISSUE 4): enabled
  tracing costs < 5% wall time on the compile path.
"""

from __future__ import annotations

import time

from repro import analyze, compile_source, profile_program, smart_program_plan
from repro.obs import RingBufferSink, configure_tracing, disable_tracing, span
from repro.report import format_table
from repro.workloads.paper_example import PAPER_SOURCE

from conftest import publish

REPEATS = 5
PASSES_PER_LOOP = 20
NOOP_CALLS = 100_000
#: Spans opened by one pipeline pass (compile 6, plan 1, check 0 here,
#: profile 2 + per-run, analyze 1) — rounded up for headroom.
SPANS_PER_PASS = 16
ENABLED_CEILING = 0.05
DISABLED_CEILING = 0.005


def _pipeline_pass() -> None:
    program = compile_source(PAPER_SOURCE)
    plan = smart_program_plan(program)
    profile, _stats = profile_program(program, runs=1, plan=plan)
    analyze(program, profile)


def _best_loop_seconds() -> float:
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(PASSES_PER_LOOP):
            _pipeline_pass()
        best = min(best, time.perf_counter() - started)
    return best


def test_observability_overhead():
    # -- disabled: the no-op span itself -----------------------------
    disable_tracing()
    best_noop = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with span("bench.noop"):
                pass
        best_noop = min(best_noop, time.perf_counter() - started)
    noop_per_call = best_noop / NOOP_CALLS

    # -- disabled vs enabled pipeline passes -------------------------
    disable_tracing()
    disabled = _best_loop_seconds()
    sink = RingBufferSink(capacity=SPANS_PER_PASS * PASSES_PER_LOOP * 2)
    configure_tracing(sink)
    try:
        enabled = _best_loop_seconds()
    finally:
        disable_tracing()

    per_pass_disabled = disabled / PASSES_PER_LOOP
    per_pass_enabled = enabled / PASSES_PER_LOOP
    enabled_overhead = max(0.0, enabled / disabled - 1.0)
    disabled_overhead = (SPANS_PER_PASS * noop_per_call) / per_pass_disabled

    publish(
        "obs_overhead",
        format_table(
            ["regime", "per pass", "overhead", "ceiling"],
            [
                [
                    "tracing disabled (no-op spans)",
                    f"{1e3 * per_pass_disabled:.3f} ms",
                    f"{100 * disabled_overhead:.3f}%",
                    f"{100 * DISABLED_CEILING:.1f}%",
                ],
                [
                    "tracing enabled (ring sink)",
                    f"{1e3 * per_pass_enabled:.3f} ms",
                    f"{100 * enabled_overhead:.2f}%",
                    f"{100 * ENABLED_CEILING:.0f}%",
                ],
                [
                    "no-op span call",
                    f"{1e9 * noop_per_call:.0f} ns",
                    "-",
                    "-",
                ],
            ],
            title=(
                "self-instrumentation overhead "
                f"(best of {REPEATS} loops x {PASSES_PER_LOOP} passes)"
            ),
        ),
    )

    assert disabled_overhead < DISABLED_CEILING, (
        f"disabled spans would cost {100 * disabled_overhead:.3f}% of a "
        f"pipeline pass (ceiling {100 * DISABLED_CEILING:.1f}%)"
    )
    assert enabled_overhead < ENABLED_CEILING, (
        f"enabled tracing costs {100 * enabled_overhead:.2f}% wall time "
        f"(ceiling {100 * ENABLED_CEILING:.0f}%)"
    )
