"""The paper's running example: Figures 1, 2 and 3 reproduced.

Prints the statement-level CFG (Figure 1), the extended CFG with
preheaders/postexits and pseudo edges (Figure 2), and the annotated
forward control dependence graph with the paper's exact numbers
(Figure 3): TIME(START) = 920, STD_DEV(START) = 300.

Usage:  python examples/paper_example.py
"""

from repro import analyze, oracle_program_profile, run_program
from repro.report import render_cfg, render_fcdg
from repro.workloads.paper_example import (
    EXPECTED_STD_DEV,
    EXPECTED_TIME,
    FigureCostEstimator,
    PAPER_SOURCE,
    paper_program,
)


def main() -> None:
    print("== Source (Figure 1 fragment) ==")
    print(PAPER_SOURCE)

    program = paper_program()
    print("== Figure 1: control flow graph ==")
    print(render_cfg(program.cfgs["MAIN"]))

    print("\n== Figure 2: extended control flow graph ==")
    print(render_cfg(program.ecfgs["MAIN"].graph, title="ECFG of MAIN"))

    result = run_program(program)
    header = next(
        n.id for n in program.cfgs["MAIN"] if "IF (M .GE. 0)" in n.text
    )
    print(
        f"\nprofile: header executed "
        f"{result.node_counts['MAIN'][header]} times, "
        f"FOO called {result.call_counts['FOO']} times"
    )

    profile = oracle_program_profile(program, runs=[{}])
    analysis = analyze(
        program, profile, model=None, estimator=FigureCostEstimator()
    )
    print("\n== Figure 3: annotated FCDG ==")
    print(render_fcdg(analysis.main))

    assert abs(analysis.total_time - EXPECTED_TIME) < 1e-9
    assert abs(analysis.total_std_dev - EXPECTED_STD_DEV) < 1e-9
    print(
        f"\nreproduced the paper exactly: TIME(START) = "
        f"{analysis.total_time:.0f} (expected {EXPECTED_TIME:.0f}), "
        f"STD_DEV(START) = {analysis.total_std_dev:.0f} "
        f"(expected {EXPECTED_STD_DEV:.0f})"
    )


if __name__ == "__main__":
    main()
