"""Variance-driven chunk sizing for a parallel loop (Section 5's
motivating application, after Kruskal & Weiss).

Profiles two versions of a loop — one with near-constant iterations,
one with highly variable iterations — extracts per-iteration (mean,
variance) from the compile-time analysis, picks a chunk size, and
validates the choice with a self-scheduling simulation.

Usage:  python examples/chunk_advisor.py
"""

from repro import SCALAR_MACHINE, analyze, compile_source, profile_program
from repro.apps.chunking import (
    loop_iteration_stats,
    optimal_chunk_size,
    simulate_chunked_loop,
)
from repro.report import format_table

STEADY = """\
      PROGRAM STEADY
      INTEGER I
      DO 10 I = 1, 400
        X = X + SQRT(REAL(I)) * 1.5
10    CONTINUE
      END
"""

# Each iteration does between 0 and ~40 units of inner work.
BURSTY = """\
      PROGRAM BURSTY
      INTEGER I, J, M
      DO 20 I = 1, 400
        M = IRAND(0, 40)
        DO 10 J = 1, M
          X = X + SQRT(REAL(J))
10      CONTINUE
20    CONTINUE
      END
"""

PROCESSORS = 8
OVERHEAD = 40.0  # cycles of scheduling cost per chunk


def advise(name, source):
    program = compile_source(source)
    profile, _ = profile_program(program, runs=3, record_loop_moments=True)
    analysis = analyze(
        program, profile, SCALAR_MACHINE, loop_variance="profiled"
    )
    main = analysis.main
    # the outermost loop of the program
    outer = min(
        main.ecfg.preheader_of,
        key=lambda h: main.ecfg.intervals.depth_of(h),
    )
    mean, var = loop_iteration_stats(main, outer)
    std = var**0.5
    n_iter = round(main.freqs.loop_frequency(main.ecfg.preheader_of[outer]))
    chunk = optimal_chunk_size(n_iter, PROCESSORS, mean, std, OVERHEAD)

    naive_chunk = max(1, n_iter // PROCESSORS)
    sims = {
        k: sum(
            simulate_chunked_loop(
                n_iter, PROCESSORS, mean, std, OVERHEAD, k, seed=s
            ).makespan
            for s in range(20)
        )
        / 20
        for k in sorted({1, chunk, naive_chunk})
    }
    return name, n_iter, mean, std, chunk, naive_chunk, sims


def main() -> None:
    rows = []
    for name, source in [("STEADY", STEADY), ("BURSTY", BURSTY)]:
        label, n, mean, std, chunk, naive, sims = advise(name, source)
        rows.append([label, n, mean, std, naive, chunk])
        print(f"{label}: simulated average makespans on P={PROCESSORS}:")
        for k, makespan in sims.items():
            marker = " <- advised" if k == chunk else (
                " <- static N/P" if k == naive and k != chunk else ""
            )
            print(f"   chunk {k:>3}: {makespan:12.1f}{marker}")
        print()
    print(
        format_table(
            ["loop", "iters", "mean/iter", "std/iter", "static N/P",
             "advised chunk"],
            rows,
            title="Variance-aware chunk size advice",
        )
    )


if __name__ == "__main__":
    main()
