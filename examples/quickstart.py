"""Quickstart: estimate a program's average execution time and variance.

Runs the whole framework end to end on a small program:

1. compile minifort source (CFG -> intervals -> ECFG -> FCDG);
2. build the optimized counter plan and profile a few runs;
3. reconstruct frequencies and compute TIME / VAR / STD_DEV.

Usage:  python examples/quickstart.py
"""

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    profile_program,
    smart_program_plan,
)
from repro.report import render_fcdg

SOURCE = """\
      PROGRAM DEMO
      INTEGER I, N
      REAL TOTAL
      N = 50
      TOTAL = 0.0
      DO 10 I = 1, N
        IF (RAND() .LT. 0.3) THEN
          TOTAL = TOTAL + SQRT(REAL(I))
        ELSE
          TOTAL = TOTAL + 1.0
        ENDIF
10    CONTINUE
      PRINT *, TOTAL
      END
"""


def main() -> None:
    program = compile_source(SOURCE)

    plan = smart_program_plan(program)
    print("== Optimized counter plan ==")
    for name, proc_plan in plan.plans.items():
        print(
            f"  {name}: {proc_plan.n_counters} counters "
            f"(edge={len(proc_plan.edge_counters)}, "
            f"node={len(proc_plan.node_counters)}, "
            f"batched={len(proc_plan.batch_counters)})"
        )

    profile, stats = profile_program(program, runs=5, model=SCALAR_MACHINE)
    print(
        f"\nprofiled {stats.runs} runs: {stats.counter_updates} counter "
        f"updates, {stats.counter_cost:.0f} cycles of profiling overhead "
        f"on {stats.base_cost:.0f} cycles of work "
        f"({100 * stats.counter_cost / stats.base_cost:.2f}%)"
    )

    analysis = analyze(program, profile, SCALAR_MACHINE)
    print(f"\nTIME(START)    = {analysis.total_time:.1f} cycles")
    print(f"VAR(START)     = {analysis.total_var:.1f}")
    print(f"STD_DEV(START) = {analysis.total_std_dev:.1f} cycles")

    print("\n== Annotated forward control dependence graph ==")
    print(render_fcdg(analysis.main))


if __name__ == "__main__":
    main()
