"""PTRAN-style automatic task partitioning from TIME/VAR estimates.

"Currently, the primary use of execution time information in PTRAN is
in automatically partitioning the input program into tasks for
parallel execution."  This example profiles a small numeric program
and lets the partitioner decide which loops to run as chunked parallel
tasks and which calls are worth spawning asynchronously.

Usage:  python examples/task_partitioning.py
"""

from repro import SCALAR_MACHINE, analyze, compile_source, profile_program
from repro.apps.partitioning import partition_program
from repro.report import format_table

SOURCE = """\
      PROGRAM PIPELINE
      REAL GRID(40), OUT(40)
      INTEGER STEP
      CALL SETUP(GRID, 40)
      DO 10 STEP = 1, 5
        CALL RELAX(GRID, OUT, 40)
        CALL SWAP(GRID, OUT, 40)
10    CONTINUE
      CALL REDUCE(GRID, 40)
      END

      SUBROUTINE SETUP(G, N)
      REAL G(1)
      INTEGER N, I
      DO 10 I = 1, N
        G(I) = RAND()
10    CONTINUE
      END

      SUBROUTINE RELAX(G, O, N)
      REAL G(1), O(1)
      INTEGER N, I
      DO 10 I = 2, N - 1
        O(I) = 0.25 * G(I - 1) + 0.5 * G(I) + 0.25 * G(I + 1)
        O(I) = O(I) + SQRT(ABS(G(I))) * 0.001
10    CONTINUE
      END

      SUBROUTINE SWAP(G, O, N)
      REAL G(1), O(1)
      INTEGER N, I
      DO 10 I = 2, N - 1
        G(I) = O(I)
10    CONTINUE
      END

      SUBROUTINE REDUCE(G, N)
      REAL G(1), S
      INTEGER N, I
      S = 0.0
      DO 10 I = 1, N
        S = S + G(I)
10    CONTINUE
      PRINT *, S
      END
"""

PROCESSORS = 4
OVERHEAD = 60.0


def main() -> None:
    program = compile_source(SOURCE)
    profile, _ = profile_program(program, runs=3, record_loop_moments=True)
    analysis = analyze(
        program, profile, SCALAR_MACHINE, loop_variance="profiled"
    )
    partition = partition_program(
        analysis, n_processors=PROCESSORS, spawn_overhead=OVERHEAD
    )

    rows = [
        [
            task.proc,
            task.text,
            task.iterations,
            task.iter_mean,
            task.chunk,
            task.sequential_time,
            task.parallel_time,
            task.profitable,
        ]
        for task in partition.loops
    ]
    print(
        format_table(
            ["proc", "loop", "iters", "mean/iter", "chunk", "seq", "par",
             "spawn?"],
            rows,
            title=(
                f"Loop task decisions (P={PROCESSORS}, spawn overhead "
                f"{OVERHEAD:g} cycles)"
            ),
        )
    )

    call_rows = [
        [c.proc, c.text, c.calls_per_run, c.callee_time, c.profitable]
        for c in partition.calls
    ]
    print()
    print(
        format_table(
            ["proc", "call site", "calls/run", "callee TIME", "async?"],
            call_rows,
            title="Call-site task decisions",
        )
    )
    print(
        f"\nsequential TIME = {partition.sequential_time:.0f} cycles; "
        f"partitioned estimate = {partition.parallel_time:.0f} cycles "
        f"(speedup ~{partition.estimated_speedup:.2f}x on "
        f"{PROCESSORS} processors)"
    )


if __name__ == "__main__":
    main()
