"""Observed hot paths vs frequency-guessed traces.

Edge frequencies tell a trace scheduler which *edges* are hot;
Fisher's mutual-most-likely heuristic then guesses a hot path by
chaining them.  A Ball–Larus path spectrum (``mode="paths"``) removes
the guesswork: it records which whole acyclic paths actually ran, per
iteration.  This example profiles the same branchy kernel both ways
and puts the two answers side by side — the heuristic's top trace and
the spectrum's top observed paths, with the exact share of iterations
each path took.

Usage:  python examples/hot_paths.py
"""

from repro import (
    SCALAR_MACHINE,
    analyze,
    compile_source,
    profile_program,
    run_program,
)
from repro.apps.traces import hot_paths, select_traces, trace_from_path
from repro.paths import PathExecutor, path_program_plan
from repro.report import format_table

SOURCE = """\
      PROGRAM HOTPATH
      INTEGER I, NERR
      REAL V, LIMIT
      LIMIT = 0.95
      NERR = 0
      DO 10 I = 1, 200
        V = RAND()
        IF (V .GT. LIMIT) THEN
          NERR = NERR + 1
          CALL LOGERR(V)
        ELSE
          IF (V .GT. 0.5) THEN
            X = X + V * 2.0
          ELSE
            X = X + V
          ENDIF
        ENDIF
10    CONTINUE
      PRINT *, NERR, X
      END

      SUBROUTINE LOGERR(V)
      REAL V
      Y = Y + V * V
      END
"""

RUNS = 5


def main() -> None:
    program = compile_source(SOURCE)
    cfg = program.cfgs["HOTPATH"]

    # -- the counter-mode consumer: frequency-guessed traces ----------
    profile, _ = profile_program(program, runs=RUNS)
    analysis = analyze(program, profile, SCALAR_MACHINE)
    guessed = select_traces(analysis.main)[0]

    # -- the path-mode consumer: record the spectrum ------------------
    plan = path_program_plan(program)
    executor = PathExecutor(plan)
    for seed in range(RUNS):
        run_program(program, seed=seed, hooks=executor)
        executor.finalize_run()

    top = hot_paths(plan, executor.path_counts, k=5)
    print("== Top observed paths (Ball–Larus spectrum, 5 runs) ==")
    rows = [
        [
            path.proc,
            path.path_id,
            f"{path.count:.0f}",
            f"{100 * path.fraction:5.1f}%",
            path.end,
            " -> ".join(
                cfg.nodes[n].text or str(n)
                for n in trace_from_path(cfg, path).nodes
            )
            if path.proc == "HOTPATH"
            else "(subroutine body)",
        ]
        for path in top
    ]
    print(
        format_table(
            ["proc", "id", "count", "share", "ends", "statements"], rows
        )
    )

    hottest = next(p for p in top if p.proc == "HOTPATH")
    observed = trace_from_path(cfg, hottest)
    print("\n== Fisher trace vs hottest observed path (HOTPATH) ==")
    print(
        "guessed :",
        " -> ".join(cfg.nodes[n].text or str(n) for n in guessed.nodes),
    )
    print(
        "observed:",
        " -> ".join(cfg.nodes[n].text or str(n) for n in observed.nodes),
    )
    shared = set(guessed.nodes) & set(observed.nodes)
    print(
        f"\nthe heuristic's trace shares {len(shared)} of "
        f"{len(observed)} nodes with the hottest real path; the "
        f"spectrum also shows that path took {100 * hottest.fraction:.1f}% "
        "of all recorded paths — a number edge frequencies cannot give."
    )


if __name__ == "__main__":
    main()
