"""Unstructured control flow: the framework's raison d'être.

The paper generalizes earlier SISAL (structured-programs-only) work to
arbitrary reducible control flow via control dependence.  This example
pushes GOTO-heavy programs through the pipeline: a two-exit search
loop, a computed-GOTO state machine, and an *irreducible* program that
node splitting makes tractable.

Usage:  python examples/unstructured_goto.py
"""

from repro import SCALAR_MACHINE, analyze, compile_source, profile_program
from repro.report import format_table
from repro.workloads.unstructured import (
    IRREDUCIBLE,
    STATE_MACHINE,
    TWO_EXIT_LOOP,
)


def analyze_source(name, source, runs):
    program = compile_source(source)
    profile, stats = profile_program(program, runs=runs)
    analysis = analyze(program, profile, SCALAR_MACHINE)
    splits = sum(program.splits.values())
    return [
        name,
        len(program.cfgs[program.main_name]),
        stats.counters,
        splits,
        analysis.total_time,
        analysis.total_std_dev,
    ]


def main() -> None:
    rows = [
        analyze_source(
            "two-exit loop",
            TWO_EXIT_LOOP,
            [{"seed": s} for s in range(5)],
        ),
        analyze_source(
            "computed-GOTO machine",
            STATE_MACHINE,
            [{"seed": s} for s in range(5)],
        ),
        analyze_source(
            "irreducible (split)",
            IRREDUCIBLE,
            [{"inputs": (k,)} for k in (3.0, 9.0, 17.0)],
        ),
    ]
    print(
        format_table(
            ["program", "CFG nodes", "counters", "nodes split",
             "TIME", "STD_DEV"],
            rows,
            title="Unstructured programs through the full pipeline",
        )
    )
    print(
        "\nNode splitting made the irreducible program reducible; all "
        "frequencies were\nrecovered from the optimized counter set, and "
        "TIME/STD_DEV computed as usual."
    )


if __name__ == "__main__":
    main()
