"""Frequency-driven trace selection and branch layout.

The paper's introduction lists the compiler optimizations that the
frequency framework enables: trace scheduling [FERN84], register
allocation [Wal86], delayed-branch optimization [MH86].  This example
plays compiler back end: it profiles a branchy kernel, derives CFG
edge frequencies, selects Fisher-style traces, and recommends branch
fall-through layouts with estimated savings.

Usage:  python examples/trace_scheduling.py
"""

from repro import SCALAR_MACHINE, analyze, compile_source, profile_program
from repro.analysis.edge_freq import edge_frequencies
from repro.apps.traces import branch_layout_advice, select_traces
from repro.report import format_table

SOURCE = """\
      PROGRAM HOTPATH
      INTEGER I, NERR
      REAL V, LIMIT
      LIMIT = 0.95
      NERR = 0
      DO 10 I = 1, 200
        V = RAND()
        IF (V .GT. LIMIT) THEN
          NERR = NERR + 1
          CALL LOGERR(V)
        ELSE
          IF (V .GT. 0.5) THEN
            X = X + V * 2.0
          ELSE
            X = X + V
          ENDIF
        ENDIF
10    CONTINUE
      PRINT *, NERR, X
      END

      SUBROUTINE LOGERR(V)
      REAL V
      Y = Y + V * V
      END
"""


def main() -> None:
    program = compile_source(SOURCE)
    profile, _ = profile_program(program, runs=5)
    analysis = analyze(program, profile, SCALAR_MACHINE)
    main_proc = analysis.main
    cfg = program.cfgs["HOTPATH"]

    print("== Selected traces (hottest first) ==")
    for i, trace in enumerate(select_traces(main_proc)):
        path = " -> ".join(
            cfg.nodes[n].text or str(n) for n in trace.nodes
        )
        print(
            f"trace {i}: seed freq {trace.seed_frequency:8.2f}  "
            f"weight {trace.weight:8.2f}\n   {path}"
        )

    print("\n== Branch layout advice (taken-branch penalty = 2 cycles) ==")
    rows = [
        [
            advice.text,
            advice.fallthrough_label,
            advice.not_taken_count,
            advice.taken_count,
            advice.saving,
        ]
        for advice in branch_layout_advice(main_proc)
    ]
    print(
        format_table(
            ["branch", "fall-through", "hot count", "cold count",
             "cycles saved/run"],
            rows,
        )
    )

    counts = edge_frequencies(main_proc)
    hot_edge = max(counts, key=lambda e: counts[e])
    print(
        f"\nhottest CFG edge: {hot_edge.src} --{hot_edge.label}--> "
        f"{hot_edge.dst} ({counts[hot_edge]:.1f} executions/run)"
    )


if __name__ == "__main__":
    main()
