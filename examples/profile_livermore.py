"""Profiling-overhead comparison on the Livermore Loops (Table 1).

Runs the LOOPS benchmark three ways — uninstrumented, with the
optimized ("smart") counter plan, and with the naive
one-counter-per-basic-block plan — on both machine models, and prints
a Table-1-style summary of costs and overheads, plus the per-kernel
TIME breakdown the framework produces.

Usage:  python examples/profile_livermore.py
"""

from repro import (
    OPTIMIZING_MACHINE,
    SCALAR_MACHINE,
    analyze,
    compile_source,
    naive_program_plan,
    profile_program,
    run_program,
    smart_program_plan,
)
from repro.report import format_table
from repro.workloads.livermore import livermore_source


def measure(program, model):
    base = run_program(program, model=model).total_cost
    _, smart_stats = profile_program(program, runs=1, model=model)
    _, naive_stats = profile_program(
        program, runs=1, plan=naive_program_plan(program), model=model
    )
    return (
        base,
        base + smart_stats.counter_cost,
        base + naive_stats.counter_cost,
    )


def main() -> None:
    program = compile_source(livermore_source(n=60, n2=8))

    rows = []
    for model in (OPTIMIZING_MACHINE, SCALAR_MACHINE):
        base, smart, naive = measure(program, model)
        rows.append(
            [
                model.name,
                base,
                smart,
                naive,
                f"{100 * (smart - base) / base:.2f}%",
                f"{100 * (naive - base) / base:.2f}%",
            ]
        )
    print(
        format_table(
            ["machine", "original", "smart", "naive", "smart ovh", "naive ovh"],
            rows,
            title="LOOPS: cycles with and without profiling (Table 1 analog)",
        )
    )

    profile, _ = profile_program(program, runs=1)
    analysis = analyze(program, profile, SCALAR_MACHINE)
    kernel_rows = [
        [name, analysis.procedures[name].time, analysis.procedures[name].std_dev]
        for name in sorted(analysis.procedures)
        if name.startswith("KERN")
    ]
    print()
    print(
        format_table(
            ["kernel", "TIME", "STD_DEV"],
            kernel_rows,
            title="Per-kernel average execution time (scalar machine)",
        )
    )

    smart = smart_program_plan(program)
    naive = naive_program_plan(program)
    print(
        f"\ncounters: smart={smart.n_counters} naive={naive.n_counters} "
        f"({100 * smart.n_counters / naive.n_counters:.0f}% of naive)"
    )


if __name__ == "__main__":
    main()
