"""gprof-style reports from the framework's analysis results.

The paper cites the Unix profiler gprof [GKM82] as the precedent for
its procedure-call cost treatment (rule 2 assumes the same average per
call site, "commonly made in execution profilers e.g. the Unix
profiler").  This module produces the familiar gprof artifacts from
the *analytical* results — no sampling required:

* a **flat profile**: self time per procedure (frequency-weighted local
  COST, excluding callees), calls, and time per call;
* a **call-graph profile**: for every procedure, its callers with call
  counts and the total time attributed through each edge;
* a **hot-spot listing**: the statements with the highest
  self-time × frequency product.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interprocedural import ProgramAnalysis
from repro.report.tables import format_table


@dataclass
class FlatEntry:
    name: str
    self_time: float
    cumulative_time: float
    calls: float
    self_per_call: float
    share: float


def _self_time_per_invocation(proc) -> float:
    """Frequency-weighted local COST of one invocation (no callees)."""
    total = 0.0
    for node_id, node_cost in proc.node_costs.items():
        total += proc.freqs.node_freq.get(node_id, 0.0) * node_cost.local
    return total


def _call_counts(analysis: ProgramAnalysis) -> dict[tuple[str, str], float]:
    """(caller, callee) -> expected calls per program run."""
    invocations = {
        name: proc.freqs.invocations
        for name, proc in analysis.procedures.items()
    }
    runs = max(1.0, invocations.get(analysis.checked.unit.main.name, 1.0))
    counts: dict[tuple[str, str], float] = {}
    for name, proc in analysis.procedures.items():
        caller_invocations = invocations.get(name, 0.0) / runs
        for node_id, node_cost in proc.node_costs.items():
            if not node_cost.calls:
                continue
            node_frequency = proc.freqs.node_freq.get(node_id, 0.0)
            for callee in node_cost.calls:
                key = (name, callee)
                counts[key] = counts.get(key, 0.0) + (
                    caller_invocations * node_frequency
                )
    return counts


def flat_profile(analysis: ProgramAnalysis) -> list[FlatEntry]:
    """Per-procedure flat profile, heaviest self time first.

    Times are per program run: self time = invocations × per-invocation
    frequency-weighted local COST; cumulative = invocations × TIME.
    """
    runs = max(
        1.0,
        analysis.procedures[
            analysis.checked.unit.main.name
        ].freqs.invocations,
    )
    entries: list[FlatEntry] = []
    total_self = 0.0
    raw: list[tuple[str, float, float, float]] = []
    for name, proc in sorted(analysis.procedures.items()):
        calls = proc.freqs.invocations / runs
        self_time = calls * _self_time_per_invocation(proc)
        cumulative = calls * proc.time
        raw.append((name, self_time, cumulative, calls))
        total_self += self_time
    for name, self_time, cumulative, calls in raw:
        entries.append(
            FlatEntry(
                name=name,
                self_time=self_time,
                cumulative_time=cumulative,
                calls=calls,
                self_per_call=(self_time / calls) if calls else 0.0,
                share=(self_time / total_self) if total_self else 0.0,
            )
        )
    entries.sort(key=lambda e: -e.self_time)
    return entries


@dataclass
class HotSpot:
    procedure: str
    node: int
    text: str
    executions: float
    self_time: float


def hot_spots(analysis: ProgramAnalysis, top: int = 10) -> list[HotSpot]:
    """The statements consuming the most self time per program run."""
    runs = max(
        1.0,
        analysis.procedures[
            analysis.checked.unit.main.name
        ].freqs.invocations,
    )
    spots: list[HotSpot] = []
    for name, proc in analysis.procedures.items():
        calls = proc.freqs.invocations / runs
        for node_id, node_cost in proc.node_costs.items():
            executions = calls * proc.freqs.node_freq.get(node_id, 0.0)
            self_time = executions * node_cost.local
            if self_time <= 0:
                continue
            spots.append(
                HotSpot(
                    procedure=name,
                    node=node_id,
                    text=proc.cfg.nodes[node_id].text,
                    executions=executions,
                    self_time=self_time,
                )
            )
    spots.sort(key=lambda s: -s.self_time)
    return spots[:top]


def render_profile_report(analysis: ProgramAnalysis, top: int = 10) -> str:
    """The full gprof-style text report."""
    sections: list[str] = []

    entries = flat_profile(analysis)
    sections.append(
        format_table(
            ["%self", "self", "cumulative", "calls", "self/call",
             "procedure"],
            [
                [
                    f"{100 * e.share:.1f}%",
                    e.self_time,
                    e.cumulative_time,
                    e.calls,
                    e.self_per_call,
                    e.name,
                ]
                for e in entries
            ],
            title="Flat profile (per program run)",
        )
    )

    counts = _call_counts(analysis)
    if counts:
        rows = [
            [
                caller,
                callee,
                count,
                count * analysis.procedures[callee].time,
            ]
            for (caller, callee), count in sorted(counts.items())
        ]
        sections.append(
            format_table(
                ["caller", "callee", "calls", "time through edge"],
                rows,
                title="Call graph (per program run)",
            )
        )

    spots = hot_spots(analysis, top=top)
    sections.append(
        format_table(
            ["procedure", "node", "statement", "executions", "self time"],
            [
                [s.procedure, s.node, s.text, s.executions, s.self_time]
                for s in spots
            ],
            title=f"Hottest {len(spots)} statements",
        )
    )
    return "\n\n".join(sections)
