"""Monospace table formatting for benchmark output."""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
) -> str:
    """Render a simple aligned table.

    Numeric cells are right-aligned and formatted compactly; text is
    left-aligned.
    """
    rendered: list[list[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: list[str], row_values: list[object] | None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            value = row_values[i] if row_values is not None else None
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers, None))
    lines.append("  ".join("-" * w for w in widths))
    for row, raw in zip(rendered, rows):
        lines.append(fmt_row(row, raw))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return "n/a" if value != value else (
                "inf" if value > 0 else "-inf"
            )
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
