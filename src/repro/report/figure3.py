"""Figure-3-style rendering of an analyzed forward control dependence
graph.

Each node line carries the paper's ``[COST, TIME, E[TIME²], VAR,
STD_DEV]`` tuple; each edge line carries ``<FREQ, TOTAL_FREQ>``.
"""

from __future__ import annotations

import math

from repro.analysis.interprocedural import ProcedureAnalysis
from repro.cfg.graph import ControlFlowGraph


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def render_fcdg(proc: ProcedureAnalysis) -> str:
    """Render the annotated FCDG of one analyzed procedure."""
    fcdg = proc.fcdg
    graph = proc.ecfg.graph
    times = proc.times
    variances = proc.variances
    lines = [
        f"FCDG of {proc.name}: "
        f"TIME(START) = {_fmt(proc.time)}, "
        f"STD_DEV(START) = {_fmt(proc.std_dev)}",
        "node tuples are [COST, TIME, E[TIME^2], VAR, STD_DEV]; "
        "edge tuples are <FREQ, TOTAL_FREQ>",
        "",
    ]
    for node_id in fcdg.topological_order():
        node = graph.nodes[node_id]
        cost = proc.effective_costs.get(node_id, 0.0)
        var = variances.var[node_id]
        second = variances.second_moment[node_id]
        lines.append(
            f"{node_id:>4} {node.text or node.kind.value:<28} "
            f"[{_fmt(cost)}, {_fmt(times[node_id])}, {_fmt(second)}, "
            f"{_fmt(var)}, {_fmt(math.sqrt(max(0.0, var)))}]"
        )
        for label in fcdg.labels(node_id):
            freq = proc.freqs.freq[(node_id, label)]
            total = proc.freqs.total_freq[(node_id, label)]
            for child in fcdg.children(node_id, label):
                child_text = graph.nodes[child].text or str(child)
                lines.append(
                    f"       --{label}--> {child:>3} {child_text:<24} "
                    f"<{_fmt(freq)}, {_fmt(total)}>"
                )
    return "\n".join(lines)


def render_cfg(cfg: ControlFlowGraph, title: str = "") -> str:
    """A compact textual rendering of a CFG (Figure-1/2 style)."""
    lines = [title or f"CFG of {cfg.name}"]
    for node in cfg:
        marker = ""
        if node.id == cfg.entry:
            marker = "  <- entry"
        elif node.id == cfg.exit:
            marker = "  <- exit"
        lines.append(f"{node.id:>4} [{node.type.value:<9}] {node.text}{marker}")
        for edge in cfg.out_edges(node.id):
            lines.append(f"       --{edge.label}--> {edge.dst}")
    return "\n".join(lines)
