"""Human-readable reports: annotated FCDGs and benchmark tables."""

from repro.report.figure3 import render_fcdg, render_cfg
from repro.report.tables import format_table
from repro.report.profile_report import (
    flat_profile,
    hot_spots,
    render_profile_report,
)

__all__ = [
    "render_fcdg",
    "render_cfg",
    "format_table",
    "flat_profile",
    "hot_spots",
    "render_profile_report",
]
