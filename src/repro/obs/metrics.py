"""Process-wide metrics: counters, gauges and histograms with labels.

The paper's whole program is cheap, principled measurement; this
module applies the same discipline to the reproduction itself.  A
:class:`MetricsRegistry` holds named metrics of three kinds —

* **counters** — monotonically increasing totals
  (``repro_compile_total``, ``repro_cache_lookups_total{tier=...}``);
* **gauges** — point-in-time values that go up and down
  (``repro_queue_depth``, ``repro_uptime_seconds``);
* **histograms** — fixed-bucket latency/size distributions with the
  Prometheus cumulative-bucket semantics
  (``repro_http_request_seconds{route=...}``).

All operations are get-or-create and idempotent: instrumentation
sites call ``metrics.counter("name").inc()`` without registration
ceremony, and re-declaring a metric with a *different* type or label
set is an error (catching copy-paste taxonomy drift early).

The module keeps one process-global registry (what the service, the
batch engine and the pipeline all record into) but the registry is an
ordinary object — tests inject a fresh one with :func:`set_registry`
and restore the old one afterwards.  Every mutating operation takes
the registry's lock, so counts are exact under free-threading *and*
the :meth:`MetricsRegistry.snapshot` used by ``/metrics`` is atomic:
no torn reads between related series mid-batch-flush.
"""

from __future__ import annotations

import bisect
import threading
from math import inf


class MetricError(ValueError):
    """A metric misuse: type/label mismatch or invalid value."""


#: Default latency buckets (seconds), Prometheus-style.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Sub-millisecond latency buckets (seconds) for operations that
#: finish in microseconds — codegen-backend runs land entirely in the
#: first bucket of :data:`DEFAULT_BUCKETS`, which tells you nothing.
SUBMILLI_BUCKETS = (
    0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.025,
)

#: Buckets for micro-batch sizes (requests per flush).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class _Metric:
    """Common naming/label plumbing for the three metric kinds."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labels: tuple[str, ...]):
        self._registry = registry
        self._lock = registry._lock
        self.name = name
        self.help = help
        self.labels = tuple(labels)

    def _key(self, labelvalues: dict) -> tuple[str, ...]:
        if set(labelvalues) != set(self.labels):
            raise MetricError(
                f"metric {self.name!r} takes labels {list(self.labels)}, "
                f"got {sorted(labelvalues)}"
            )
        return tuple(str(labelvalues[label]) for label in self.labels)


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, registry, name, help, labels):
        super().__init__(registry, name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labelvalues) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labelvalues) -> float:
        with self._lock:
            return self._values.get(self._key(labelvalues), 0.0)

    def _snapshot(self) -> list[dict]:
        return [
            {"labels": dict(zip(self.labels, key)), "value": value}
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def __init__(self, registry, name, help, labels):
        super().__init__(registry, name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labelvalues) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labelvalues) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labelvalues) -> None:
        self.inc(-amount, **labelvalues)

    def value(self, **labelvalues) -> float:
        with self._lock:
            return self._values.get(self._key(labelvalues), 0.0)

    _snapshot = Counter._snapshot


class Histogram(_Metric):
    """A fixed-bucket distribution (cumulative-bucket exposition)."""

    kind = "histogram"

    def __init__(self, registry, name, help, labels,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {self.name!r} needs >= 1 bucket")
        self.buckets = bounds
        #: key -> [per-bucket counts..., overflow count, sum, count]
        self._values: dict[tuple[str, ...], list] = {}

    def _series(self, key: tuple[str, ...]) -> list:
        series = self._values.get(key)
        if series is None:
            series = self._values[key] = [0] * (len(self.buckets) + 1) + [0.0, 0]
        return series

    def observe(self, value: float, **labelvalues) -> None:
        key = self._key(labelvalues)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series(key)
            series[index] += 1
            series[-2] += value
            series[-1] += 1

    def count(self, **labelvalues) -> int:
        with self._lock:
            series = self._values.get(self._key(labelvalues))
            return series[-1] if series else 0

    def sum(self, **labelvalues) -> float:
        with self._lock:
            series = self._values.get(self._key(labelvalues))
            return series[-2] if series else 0.0

    def _snapshot(self) -> list[dict]:
        out = []
        for key, series in sorted(self._values.items()):
            cumulative, counts = 0, {}
            for bound, n in zip(self.buckets, series):
                cumulative += n
                counts[bound] = cumulative
            counts[inf] = cumulative + series[len(self.buckets)]
            out.append(
                {
                    "labels": dict(zip(self.labels, key)),
                    "buckets": counts,
                    "sum": series[-2],
                    "count": series[-1],
                }
            )
        return out


class MetricsRegistry:
    """A set of named metrics sharing one lock.

    One process-global instance backs the module-level helpers; tests
    create their own and swap it in with :func:`set_registry`.

    ``default_buckets`` is what histograms created without an explicit
    ``buckets=`` get — a deployment timing microsecond-scale codegen
    runs can build its registry with :data:`SUBMILLI_BUCKETS` and
    every implicit histogram follows.
    """

    def __init__(self, default_buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}
        self.default_buckets = tuple(default_buckets)

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(self, name, help, tuple(labels), **kwargs)
                self._metrics[name] = metric
                return metric
        if type(metric) is not cls:
            raise MetricError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        if tuple(labels) != metric.labels:
            raise MetricError(
                f"metric {name!r} is declared with labels "
                f"{list(metric.labels)}, not {list(labels)}"
            )
        return metric

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels,
            buckets=self.default_buckets if buckets is None else buckets,
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """An atomic, JSON-ready copy of every series.

        Taken under the registry lock, so no increment can interleave
        between two series of the same snapshot.
        """
        with self._lock:
            return {
                name: {
                    "type": metric.kind,
                    "help": metric.help,
                    "values": metric._snapshot(),
                }
                for name, metric in sorted(self._metrics.items())
            }


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The current process-global registry."""
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _REGISTRY
    old, _REGISTRY = _REGISTRY, new
    return old


def counter(name: str, help: str = "",
            labels: tuple[str, ...] = ()) -> Counter:
    return registry().counter(name, help, labels)


def gauge(name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
    return registry().gauge(name, help, labels)


def histogram(name: str, help: str = "", labels: tuple[str, ...] = (),
              buckets: tuple[float, ...] | None = None) -> Histogram:
    return registry().histogram(name, help, labels, buckets)
