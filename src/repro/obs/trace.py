"""Tracing spans: monotonic timings with parent/child nesting.

A *span* measures one named stage of work.  Spans nest through a
``contextvars`` context variable, so concurrently executing asyncio
tasks and worker threads each see their own ancestry; every span
carries a 128-bit trace id (shared by a whole request tree) and a
64-bit span id, W3C-traceparent style, so service-side spans can be
stitched to the client request that caused them.

Instrumentation sites use the module-level :func:`span` context
manager (or the :func:`traced` decorator)::

    with span("compile.fcdg", attrs={"procedures": 3}):
        ...

The cost discipline mirrors the paper's Table 1: when no sink is
configured (the default) :func:`span` returns a shared no-op object
— one attribute load and one truthiness test, no allocation — so an
uninstrumented-feeling fast path stays the default, and
``benchmarks/bench_obs_overhead.py`` enforces it.  When enabled,
finished spans are dispatched to pluggable sinks:

* :class:`RingBufferSink` — a bounded in-memory buffer (what
  ``repro trace`` renders);
* :class:`JsonlSink`  — one JSON object per line, append-only (the
  ``--trace-out`` flag of ``repro batch`` / ``repro serve``).
"""

from __future__ import annotations

import atexit
import collections
import contextlib
import functools
import json
import os
import random
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

#: (trace_id, span_id) of the innermost active span, per context.
_CURRENT: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Span ids need uniqueness, not unpredictability: a PRNG seeded from
#: the OS once is ~10x cheaper per id than an ``os.urandom`` syscall,
#: which matters at one id per span on the compile path.
_RNG = random.Random(os.urandom(16))


def _new_trace_id() -> str:
    return f"{_RNG.getrandbits(128):032x}"


def _new_span_id() -> str:
    return f"{_RNG.getrandbits(64) or 1:016x}"


@dataclass
class SpanRecord:
    """One finished (or in-flight) span."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    #: ``time.perf_counter()`` at entry/exit — durations, not wall time.
    start: float
    end: float = 0.0
    #: ``time.time()`` at entry, for cross-process correlation.
    wall_start: float = 0.0
    attrs: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "wall_start": self.wall_start,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.error is not None:
            record["error"] = self.error
        return record


class RingBufferSink:
    """Keep the most recent ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 4096):
        self.spans: collections.deque[SpanRecord] = collections.deque(
            maxlen=capacity
        )
        self._lock = threading.Lock()

    def on_end(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def drain(self) -> list[SpanRecord]:
        """Pop and return everything collected so far."""
        with self._lock:
            spans = list(self.spans)
            self.spans.clear()
        return spans

    def close(self) -> None:  # sink protocol symmetry
        pass


class JsonlSink:
    """Append every finished span as one JSON line.

    Writes are record-atomic on abnormal exit: the file is opened
    line-buffered, so each span record (always one line, written in a
    single call) is pushed to the OS whole at its trailing newline —
    an exception or SIGTERM mid-batch leaves complete lines only,
    never a record truncated partway.  An ``atexit`` hook closes the
    handle when the interpreter dies with the sink still configured
    (an unhandled exception unwinding past the owner).
    """

    def __init__(self, path):
        self._handle = open(path, "a", buffering=1, encoding="utf-8")
        self._lock = threading.Lock()
        self.path = path
        atexit.register(self.close)

    def on_end(self, record: SpanRecord) -> None:
        line = json.dumps(record.as_dict(), sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()
        atexit.unregister(self.close)


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span: context manager that records and dispatches."""

    __slots__ = ("_tracer", "record", "_token")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record
        self._token = None

    def set_attr(self, **attrs) -> None:
        self.record.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._token = _CURRENT.set(
            (self.record.trace_id, self.record.span_id)
        )
        self.record.wall_start = time.time()
        self.record.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        self.record.end = time.perf_counter()
        if self._token is not None:
            _CURRENT.reset(self._token)
        if exc_type is not None:
            self.record.error = f"{exc_type.__name__}: {exc}"
        for sink in self._tracer._sinks:
            try:
                sink.on_end(self.record)
            except Exception:  # a broken sink must never fail the work
                pass
        return False


class Tracer:
    """Span factory with pluggable sinks; disabled (no-op) by default."""

    def __init__(self):
        self._sinks: tuple = ()
        self.enabled = False

    def configure(self, *sinks) -> None:
        """Install sinks and enable span recording."""
        self._sinks = tuple(sinks)
        self.enabled = bool(sinks)

    def disable(self) -> None:
        """Back to the no-op fast path (sinks are not closed)."""
        self._sinks = ()
        self.enabled = False

    def span(self, name: str, attrs: dict | None = None,
             parent: tuple[str, str] | None = None):
        """A context manager timing ``name``.

        ``parent`` overrides the ambient context — how a worker
        thread attaches engine spans to the request that queued the
        work (see :func:`parse_traceparent`).
        """
        if not self.enabled:
            return _NULL_SPAN
        context = parent if parent is not None else _CURRENT.get()
        if context is None:
            trace_id, parent_id = _new_trace_id(), None
        else:
            trace_id, parent_id = context[0], context[1]
        record = SpanRecord(
            name=name,
            trace_id=trace_id,
            span_id=_new_span_id(),
            parent_id=parent_id,
            start=0.0,
            attrs=dict(attrs) if attrs else {},
        )
        return _ActiveSpan(self, record)

    def current(self) -> tuple[str, str] | None:
        """(trace_id, span_id) of the innermost active span, if any."""
        if not self.enabled:
            return None
        return _CURRENT.get()

    @contextlib.contextmanager
    def attach(self, context: tuple[str, str] | None):
        """Adopt an explicit trace context in this thread/task."""
        token = _CURRENT.set(context)
        try:
            yield
        finally:
            _CURRENT.reset(token)


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def span(name: str, attrs: dict | None = None,
         parent: tuple[str, str] | None = None):
    """``tracer().span(...)`` — the instrumentation-site spelling."""
    return _TRACER.span(name, attrs, parent)


def configure_tracing(*sinks) -> None:
    _TRACER.configure(*sinks)


def disable_tracing() -> None:
    _TRACER.disable()


def current_context() -> tuple[str, str] | None:
    return _TRACER.current()


def traced(name: str | None = None, **attrs):
    """Decorator form: time every call of the wrapped function."""

    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(span_name, attrs=attrs or None):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- W3C-traceparent-style propagation ----------------------------------


def format_traceparent(context: tuple[str, str]) -> str:
    """``00-<trace-id>-<parent-span-id>-01`` for an HTTP header."""
    trace_id, span_id = context
    return f"00-{trace_id:0>32}-{span_id:0>16}-01"


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """The (trace_id, span_id) of a traceparent header, or ``None``."""
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    _version, trace_id, span_id, _flags = parts
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id.lower(), span_id.lower()
