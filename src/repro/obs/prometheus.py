"""Prometheus text-exposition (version 0.0.4) rendering.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot as the
plain-text format every Prometheus-compatible scraper understands::

    # HELP repro_http_requests_total Requests by route and status.
    # TYPE repro_http_requests_total counter
    repro_http_requests_total{route="compile",status="200"} 12

Histograms expose cumulative ``_bucket`` series with ``le`` labels
plus ``_sum`` and ``_count``, exactly as the Prometheus client
libraries do.  Output is deterministically ordered (metric name, then
label values), so the rendering is golden-file testable.
"""

from __future__ import annotations

from math import inf

from repro.obs.metrics import MetricsRegistry, registry as _global_registry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    if value == inf:
        return "+Inf"
    if value == -inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in merged.items()
    )
    return "{" + inner + "}"


def render_prometheus(reg: MetricsRegistry | None = None) -> str:
    """The registry as Prometheus text exposition (one atomic snapshot)."""
    snapshot = (reg or _global_registry()).snapshot()
    lines: list[str] = []
    for name, metric in snapshot.items():
        if metric["help"]:
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['type']}")
        if metric["type"] == "histogram":
            for series in metric["values"]:
                for bound, count in series["buckets"].items():
                    le = _labels_text(
                        series["labels"], {"le": _format_value(bound)}
                    )
                    lines.append(f"{name}_bucket{le} {count}")
                labels = _labels_text(series["labels"])
                lines.append(
                    f"{name}_sum{labels} {_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{labels} {series['count']}")
        else:
            for series in metric["values"]:
                labels = _labels_text(series["labels"])
                lines.append(
                    f"{name}{labels} {_format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""
