"""Self-profiling instrumentation: tracing spans + metrics.

The paper's discipline — measure where time goes, and measure what
the measuring costs — applied to this reproduction itself.  Three
stdlib-only pieces:

* :mod:`repro.obs.trace` — nested spans over the compile pipeline,
  batch engine, checker and service, with ring-buffer / JSONL sinks
  and a near-zero-cost no-op path when disabled (the default);
* :mod:`repro.obs.metrics` — a process-global (but injectable)
  registry of counters, gauges and fixed-bucket histograms;
* :mod:`repro.obs.prometheus` — the text exposition ``/metrics``
  serves to Prometheus-compatible scrapers.

Surfaces: ``repro trace <file>`` renders a per-stage latency tree,
``repro batch --trace-out`` / ``repro serve --trace-out`` export
spans as JSONL, and ``GET /metrics`` with ``Accept: text/plain``
returns the Prometheus rendering.  ``benchmarks/bench_obs_overhead.py``
enforces the Table-1-style overhead budget (< 5 % enabled, ~0 %
disabled) on the compile path.
"""

from repro.obs import metrics
from repro.obs.chrome import (
    chrome_trace_events,
    render_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    SUBMILLI_BUCKETS,
    set_registry,
)
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus
from repro.obs.render import render_trace_tree
from repro.obs.trace import (
    JsonlSink,
    RingBufferSink,
    SpanRecord,
    Tracer,
    configure_tracing,
    current_context,
    disable_tracing,
    format_traceparent,
    parse_traceparent,
    span,
    traced,
    tracer,
)

__all__ = [
    "metrics",
    "MetricsRegistry",
    "set_registry",
    "DEFAULT_BUCKETS",
    "SUBMILLI_BUCKETS",
    "chrome_trace_events",
    "render_chrome_trace",
    "write_chrome_trace",
    "CONTENT_TYPE",
    "render_prometheus",
    "render_trace_tree",
    "JsonlSink",
    "RingBufferSink",
    "SpanRecord",
    "Tracer",
    "configure_tracing",
    "current_context",
    "disable_tracing",
    "format_traceparent",
    "parse_traceparent",
    "span",
    "traced",
    "tracer",
]
