"""Chrome trace-event export for collected spans.

``chrome://tracing`` and Perfetto load a JSON object with a
``traceEvents`` array; each finished span becomes one complete
("ph": "X") event with microsecond timestamps.  Spans already carry
everything required — the only mapping decisions are the time base
(timestamps are rebased to the earliest span so traces start at 0)
and the lane assignment (each trace id gets its own ``tid``, so
concurrent request trees render as separate rows instead of
overlapping in one).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import SpanRecord


def chrome_trace_events(spans: list[SpanRecord]) -> list[dict]:
    """Map finished spans to Chrome complete events, oldest first."""
    if not spans:
        return []
    ordered = sorted(spans, key=lambda r: r.start)
    base = ordered[0].start
    lanes: dict[str, int] = {}
    events = []
    for record in ordered:
        lane = lanes.setdefault(record.trace_id, len(lanes) + 1)
        args = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
        }
        if record.parent_id:
            args["parent_id"] = record.parent_id
        if record.attrs:
            args.update(record.attrs)
        if record.error is not None:
            args["error"] = record.error
        events.append(
            {
                "name": record.name,
                "cat": record.name.split(".")[0],
                "ph": "X",
                "ts": (record.start - base) * 1e6,
                "dur": record.duration * 1e6,
                "pid": 1,
                "tid": lane,
                "args": args,
            }
        )
    return events


def render_chrome_trace(spans: list[SpanRecord]) -> str:
    """The full JSON document Perfetto/chrome://tracing loads."""
    return json.dumps(
        {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"},
        sort_keys=True,
    )


def write_chrome_trace(spans: list[SpanRecord], path: str | Path) -> int:
    """Write the trace document; returns the number of events."""
    events = chrome_trace_events(spans)
    Path(path).write_text(
        json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, sort_keys=True
        )
        + "\n",
        encoding="utf-8",
    )
    return len(events)
