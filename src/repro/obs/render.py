"""Rendering of collected spans as a per-stage latency tree.

The ``repro trace`` CLI runs a pipeline under a
:class:`~repro.obs.trace.RingBufferSink` and hands the spans here.
Each node prints its *total* time (entry to exit) and its *self* time
(total minus the totals of its direct children) so hot stages stand
out even when deeply nested::

    trace                               total 12.41ms  self 0.02ms
    └─ compile                          total  4.18ms  self 0.31ms
       ├─ compile.parse                 total  1.02ms  self 1.02ms
       ...
"""

from __future__ import annotations

from repro.obs.trace import SpanRecord


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{inner}]"


def render_trace_tree(spans, *, max_width: int = 48) -> str:
    """A self/total latency tree of the given spans.

    Spans whose parent is not among ``spans`` become roots; children
    are ordered by start time.  Returns a printable multi-line string.
    """
    records: list[SpanRecord] = sorted(spans, key=lambda s: s.start)
    if not records:
        return "(no spans recorded)"
    by_id = {record.span_id: record for record in records}
    children: dict[str | None, list[SpanRecord]] = {}
    roots: list[SpanRecord] = []
    for record in records:
        if record.parent_id in by_id:
            children.setdefault(record.parent_id, []).append(record)
        else:
            roots.append(record)

    lines: list[str] = []

    def emit(record: SpanRecord, prefix: str, tail: str) -> None:
        kids = children.get(record.span_id, [])
        self_time = record.duration - sum(k.duration for k in kids)
        label = prefix + record.name
        pad = max(1, max_width - len(label))
        error = f"  !! {record.error}" if record.error else ""
        lines.append(
            f"{label}{' ' * pad}"
            f"total {_format_ms(record.duration)}  "
            f"self {_format_ms(max(0.0, self_time))}"
            f"{_format_attrs(record.attrs)}{error}"
        )
        for i, kid in enumerate(kids):
            last = i == len(kids) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            emit(kid, tail + branch, tail + cont)

    for root in roots:
        emit(root, "", "")
    total = sum(root.duration for root in roots)
    lines.append(
        f"\n{len(records)} span(s), {len(roots)} root(s), "
        f"{total * 1e3:.2f}ms total"
    )
    return "\n".join(lines)
