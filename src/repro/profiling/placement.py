"""Counter placement plans (Section 3).

Two families of plans:

* :func:`naive_plan` — one counter per basic block, with the paper's
  caveat that the DO-loop batching trick is applied "only when the
  body consists of straight-line code";
* :func:`smart_plan` — the optimized scheme:

  - **Opt 1**: one counter per FCDG *control condition* rather than
    per basic block (identically control-dependent blocks share);
  - **Opt 2**: drop counters whose values follow from sum
    constraints — one branch label per fully-covered branch node, the
    loop-frequency counter when back-edge takings are derivable, one
    exit condition per loop when the rest are derivable;
  - **Opt 3**: for exit-free DO loops, add the trip count once at
    loop entry instead of counting header executions per iteration;
    when the trip count is a compile-time constant, keep no counter.

Every drop is validated symbolically: a counter is only removed when
the full measure set remains derivable (see
:class:`repro.profiling.measures.RuleSet.closure`), so reconstruction
can never get stuck.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProfilingError
from repro.lang import ast
from repro.lang.symbols import CheckedProgram
from repro.cdg.fcdg import FCDG
from repro.cfg.graph import (
    LABEL_FALSE,
    ControlFlowGraph,
    StmtKind,
    is_pseudo_label,
)
from repro.profiling.measures import (
    DerivedRule,
    Measure,
    RuleSet,
    block_measure,
    cond_measure,
    exec_measure,
    header_measure,
    invoc_measure,
)


@dataclass
class CounterPlan:
    """A counter placement for one procedure.

    Counter ids are small integers.  The runtime actions:

    * ``edge_counters[(u, l)] = cid`` — increment when edge taken;
    * ``node_counters[u] = cid``      — increment when node executes;
    * ``batch_counters[do_init] = [(cid, offset), ...]`` — when the
      DO_INIT node executes with iteration count *trip*, add
      ``trip + offset`` to each counter.
    """

    proc: str
    kind: str
    edge_counters: dict[tuple[int, str], int] = field(default_factory=dict)
    node_counters: dict[int, int] = field(default_factory=dict)
    batch_counters: dict[int, list[tuple[int, int]]] = field(
        default_factory=dict
    )
    #: counter id -> the measure its final value equals.
    counter_measures: dict[int, Measure] = field(default_factory=dict)
    #: rules recovering dropped / derived measures.
    rules: RuleSet = field(default_factory=RuleSet)
    #: all measures a full profile needs (reconstruction targets).
    targets: list[Measure] = field(default_factory=list)
    _next_id: int = 0

    @property
    def n_counters(self) -> int:
        """Live counters (allocated ids minus dropped ones)."""
        return len(self.counter_measures)

    @property
    def id_space(self) -> int:
        """Upper bound on counter ids (dropped ids are not reused)."""
        return self._next_id

    def new_counter(self, measure: Measure) -> int:
        cid = self._next_id
        self._next_id += 1
        self.counter_measures[cid] = measure
        return cid

    def measured(self) -> set[Measure]:
        return set(self.counter_measures.values())


@dataclass
class ProgramPlan:
    """Counter plans for every procedure of a program."""

    kind: str
    plans: dict[str, CounterPlan] = field(default_factory=dict)

    @property
    def n_counters(self) -> int:
        return sum(plan.n_counters for plan in self.plans.values())


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _exec_rules(fcdg: FCDG, rules: RuleSet) -> None:
    """exec(n) = Σ parent condition counts, for every FCDG node.

    ``_condition_measure`` is inlined into the loop: this runs once
    per CD edge for every plan build *and* every artifact
    verification, so the per-edge call overhead is measurable.
    """
    ecfg = fcdg.ecfg
    start = ecfg.start
    header_of = ecfg.header_of
    add = rules.add
    for node in fcdg.nodes:
        if node == fcdg.root:
            add(
                DerivedRule(
                    target=exec_measure(node),
                    kind="exec",
                    terms=((1.0, invoc_measure()),),
                )
            )
            continue
        terms: list[tuple[float, object]] = []
        for edge in fcdg.parents(node):
            src = edge.src
            if is_pseudo_label(edge.label):
                terms.append((1.0, 0.0))  # pseudo conditions never fire
            elif src == start:
                terms.append((1.0, invoc_measure()))
            elif src in header_of:
                terms.append((1.0, header_measure(header_of[src])))
            else:
                terms.append((1.0, cond_measure(src, edge.label)))
        add(
            DerivedRule(
                target=exec_measure(node), kind="exec", terms=tuple(terms)
            )
        )


def _taken_term(fcdg: FCDG, src: int, label: str):
    """The measure equal to the takings of CFG edge (src, label).

    For a single-successor source, takings equal executions; for a
    branching source they are the label's ``cond`` measure (which is
    a valid unknown even when no FCDG condition exists for it — the
    complement rules define it).
    """
    out_labels = fcdg.ecfg.graph.out_labels(src)
    if len(out_labels) == 1:
        return exec_measure(src)
    return cond_measure(src, label)


def _sum_constraint_rules(fcdg: FCDG, rules: RuleSet) -> None:
    """The Opt-2 sum constraints, as general derivation rules.

    * complement, for every label of every branching node:
      ``cond(u, l) = exec(u) − Σ_{l'≠l} cond(u, l')``;
    * loop frequency from back edges:
      ``header(h) = exec(preheader) + Σ back-edge takings``;
    * exit sums (each loop entry exits exactly once):
      ``cond(exit e) = exec(preheader) − Σ other exits' takings``.

    Which constraints are *used* is decided later: a counter is only
    dropped when the full target set remains in the rule closure.
    """
    ecfg = fcdg.ecfg
    intervals = ecfg.intervals
    graph = ecfg.graph

    for node in ecfg.intervals.cfg.nodes:
        labels = graph.out_labels(node)
        if len(labels) < 2:
            continue
        for dropped in labels:
            terms: list[tuple[float, object]] = [(1.0, exec_measure(node))]
            terms += [
                (-1.0, cond_measure(node, label))
                for label in labels
                if label != dropped
            ]
            rules.add(
                DerivedRule(
                    target=cond_measure(node, dropped),
                    kind="complement",
                    terms=tuple(terms),
                )
            )

    for header in intervals.loop_headers:
        preheader = ecfg.preheader_of[header]
        back_terms: list[tuple[float, object]] = [
            (1.0, exec_measure(preheader))
        ]
        for edge in intervals.loop_back_edges[header]:
            back_terms.append((1.0, _taken_term(fcdg, edge.src, edge.label)))
        rules.add(
            DerivedRule(
                target=header_measure(header),
                kind="backedge_sum",
                terms=tuple(back_terms),
            )
        )
        exits = intervals.exit_edges(header)
        for dropped_edge in exits:
            if len(graph.out_labels(dropped_edge.src)) < 2:
                continue  # its takings equal an exec measure anyway
            terms = [(1.0, exec_measure(preheader))]
            terms += [
                (-1.0, _taken_term(fcdg, edge.src, edge.label))
                for edge in exits
                if edge is not dropped_edge
            ]
            rules.add(
                DerivedRule(
                    target=cond_measure(dropped_edge.src, dropped_edge.label),
                    kind="exit_sum",
                    terms=tuple(terms),
                )
            )


def _constant_trip(stmt: ast.DoLoop, checked: CheckedProgram, proc: str) -> int | None:
    """The compile-time trip count of a DO loop, if it has one."""
    table = checked.tables[proc]

    def const_value(expr: ast.Expr | None):
        if expr is None:
            return 1
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.VarRef) and expr.name in table.constants:
            return table.constants[expr.name]
        if isinstance(expr, ast.Unary) and expr.op is ast.UnOp.NEG:
            inner = const_value(expr.operand)
            return None if inner is None else -inner
        return None

    start = const_value(stmt.start)
    stop = const_value(stmt.stop)
    step = const_value(stmt.step)
    if start is None or stop is None or step is None or step == 0:
        return None
    span = stop - start + step
    if isinstance(span, int) and isinstance(step, int):
        quotient = abs(span) // abs(step)
        trip = quotient if (span >= 0) == (step >= 0) else -quotient
    else:
        trip = int(span / step)
    return max(0, trip)


# ---------------------------------------------------------------------------
# The optimized (smart) plan
# ---------------------------------------------------------------------------


def smart_plan(
    checked: CheckedProgram,
    cfg: ControlFlowGraph,
    fcdg: FCDG,
    *,
    enable_drops: bool = True,
    enable_do_batch: bool = True,
) -> CounterPlan:
    """Build the optimized counter plan for one procedure.

    ``enable_drops`` toggles Opt 2 and ``enable_do_batch`` Opt 3, so
    ablation benchmarks can measure each optimization separately
    (Opt 1 — conditions instead of basic blocks — is inherent).
    """
    ecfg = fcdg.ecfg
    intervals = ecfg.intervals
    plan = CounterPlan(proc=cfg.name, kind="smart")
    _exec_rules(fcdg, plan.rules)

    conditions: set[tuple[int, str]] = set()
    branch_conditions: list[tuple[int, str]] = []
    headers: list[int] = []
    for node, label in fcdg.conditions():
        if is_pseudo_label(label):
            continue
        if node == ecfg.start:
            continue  # measured by the invocation counter
        if ecfg.is_preheader(node):
            headers.append(ecfg.header_of[node])
            continue
        conditions.add((node, label))
        branch_conditions.append((node, label))

    # Targets: what a complete profile must contain.
    plan.targets = (
        [invoc_measure()]
        + [cond_measure(u, l) for u, l in branch_conditions]
        + [header_measure(h) for h in headers]
    )

    # Opt 1 base placement: one counter per control condition.
    plan.node_counters[cfg.entry] = plan.new_counter(invoc_measure())
    for node, label in branch_conditions:
        plan.edge_counters[(node, label)] = plan.new_counter(
            cond_measure(node, label)
        )

    # Loop-frequency counters, with Opt 3 batching where it applies.
    batched: set[int] = set()
    for header in headers:
        header_node = ecfg.graph.nodes[header]
        do_init = _exit_free_do_init(cfg, intervals, header)
        if enable_do_batch and header_node.kind is StmtKind.DO_TEST and (
            do_init is not None
        ):
            stmt = header_node.stmt
            assert isinstance(stmt, ast.DoLoop)
            trip = _constant_trip(stmt, checked, cfg.name)
            preheader = ecfg.preheader_of[header]
            if trip is not None:
                # Constant trip: no counter at all (second half of Opt 3).
                plan.rules.add(
                    DerivedRule(
                        target=header_measure(header),
                        kind="const_trip",
                        terms=((float(trip + 1), exec_measure(preheader)),),
                    )
                )
                batched.add(header)
                continue
            cid = plan.new_counter(header_measure(header))
            plan.batch_counters.setdefault(do_init, []).append((cid, 1))
            batched.add(header)
            continue
        plan.node_counters[header] = plan.new_counter(header_measure(header))

    # Opt 2: the sum constraints hold whether or not we exploit them;
    # record them all, then greedily drop counters as long as the
    # target set stays inside the rule closure.
    _sum_constraint_rules(fcdg, plan.rules)
    if enable_drops:
        for header in sorted(h for h in headers if h in plan.node_counters):
            _try_drop(plan, plan.node_counters, header)
        for key in _edge_drop_order(plan):
            _try_drop(plan, plan.edge_counters, key)

    _validate_plan(plan)
    return plan


def _edge_drop_order(plan: CounterPlan) -> list[tuple[int, str]]:
    """Candidate drop order for edge counters: F labels first (the
    usually-hotter fall-through), then lexicographic."""
    keys = sorted(plan.edge_counters)
    return sorted(keys, key=lambda k: (k[0], k[1] != LABEL_FALSE, k[1]))


def _exit_free_do_init(cfg, intervals, header: int) -> int | None:
    """The DO_INIT node of an exit-free DO loop, else None.

    "Exit-free" in the paper's Opt-3 sense: the only way out of the
    interval is the DO test's normal completion (its F edge).
    """
    header_node = cfg.nodes.get(header)
    if header_node is None or header_node.kind is not StmtKind.DO_TEST:
        return None
    for edge in intervals.exit_edges(header):
        if edge.src != header or edge.label != LABEL_FALSE:
            return None
    for edge in cfg.in_edges(header):
        source = cfg.nodes[edge.src]
        if (
            source.kind is StmtKind.DO_INIT
            and source.trip_var == header_node.trip_var
        ):
            return edge.src
    return None


def _try_drop(plan: CounterPlan, registry: dict, key) -> bool:
    """Drop a counter if the full target set stays derivable."""
    cid = registry.get(key)
    if cid is None:
        return False
    measure = plan.counter_measures[cid]
    remaining = plan.measured() - {measure}
    closure = plan.rules.closure(remaining)
    if not all(target in closure for target in plan.targets):
        return False
    del registry[key]
    del plan.counter_measures[cid]
    return True


def _validate_plan(plan: CounterPlan) -> None:
    closure = plan.rules.closure(plan.measured())
    missing = [t for t in plan.targets if t not in closure]
    if missing:
        raise ProfilingError(
            f"{plan.proc}: plan cannot reconstruct measures {missing}"
        )


# ---------------------------------------------------------------------------
# The naive plan
# ---------------------------------------------------------------------------


def basic_blocks(cfg: ControlFlowGraph) -> dict[int, list[int]]:
    """Basic blocks of the statement-level CFG: leader -> members."""
    leaders: set[int] = {cfg.entry}
    for node in cfg.nodes:
        preds = cfg.in_edges(node)
        if len(preds) != 1:
            leaders.add(node)
        elif len(cfg.out_edges(preds[0].src)) > 1:
            leaders.add(node)
    blocks: dict[int, list[int]] = {}
    for leader in leaders:
        members = [leader]
        cursor = leader
        while True:
            outs = cfg.out_edges(cursor)
            if len(outs) != 1:
                break
            nxt = outs[0].dst
            if nxt in leaders:
                break
            members.append(nxt)
            cursor = nxt
        blocks[leader] = members
    return blocks


def naive_plan(
    checked: CheckedProgram,
    cfg: ControlFlowGraph,
    *,
    straightline_do_opt: bool = True,
) -> CounterPlan:
    """One counter per basic block (the paper's Table-1 baseline).

    With ``straightline_do_opt`` (the paper's configuration), a DO
    loop whose body is straight-line code has its body-block and
    test-block counters replaced by two batched adds at loop entry.
    """
    plan = CounterPlan(proc=cfg.name, kind="naive")
    blocks = basic_blocks(cfg)
    block_of: dict[int, int] = {}
    for leader, members in blocks.items():
        for member in members:
            block_of[member] = leader

    batched_blocks: set[int] = set()
    if straightline_do_opt:
        for node in cfg:
            if node.kind is not StmtKind.DO_INIT:
                continue
            stmt = node.stmt
            assert isinstance(stmt, ast.DoLoop)
            if not _is_straightline_body(stmt.body):
                continue
            test = next(
                (
                    e.dst
                    for e in cfg.out_edges(node.id)
                    if cfg.nodes[e.dst].kind is StmtKind.DO_TEST
                ),
                None,
            )
            if test is None:
                continue
            body_leader = next(
                (
                    e.dst
                    for e in cfg.out_edges(test)
                    if e.label == "T"
                ),
                None,
            )
            test_block = block_of[test]
            # Header executions: trip + 1 per entry.
            cid = plan.new_counter(block_measure(test_block))
            plan.batch_counters.setdefault(node.id, []).append((cid, 1))
            batched_blocks.add(test_block)
            if body_leader is not None:
                body_block = block_of[body_leader]
                if body_block not in batched_blocks:
                    cid = plan.new_counter(block_measure(body_block))
                    plan.batch_counters.setdefault(node.id, []).append(
                        (cid, 0)
                    )
                    batched_blocks.add(body_block)

    for leader in sorted(blocks):
        if leader in batched_blocks:
            continue
        plan.node_counters[leader] = plan.new_counter(block_measure(leader))
    plan.targets = [block_measure(leader) for leader in sorted(blocks)]
    return plan


def _is_straightline_body(body: list[ast.Stmt]) -> bool:
    allowed = (ast.Assign, ast.CallStmt, ast.PrintStmt, ast.ContinueStmt)
    return all(isinstance(stmt, allowed) for stmt in body)
