"""Measure keys and derivation rules shared by placement/reconstruction.

A *measure* is one quantity a profile needs.  Measures are plain
tuples so they serialize and hash naturally:

* ``("invoc",)``          — invocations of the procedure
  (``TOTAL_FREQ(START, U)``);
* ``("cond", u, l)``      — times node ``u`` took branch ``l``;
* ``("header", h)``       — executions of loop header ``h``
  (the loop-frequency condition of ``h``'s preheader);
* ``("exec", n)``         — executions of ECFG node ``n``; always
  derived as the sum of the node's firing control conditions;
* ``("block", n)``        — executions of the basic block led by ``n``
  (naive plans only).

A :class:`DerivedRule` states how a dropped measure is recovered from
others; the reconstruction engine evaluates rules to a fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Union

Measure = tuple  # ("invoc",) | ("cond", u, l) | ("header", h) | ...


def invoc_measure() -> Measure:
    return ("invoc",)


def cond_measure(node: int, label: str) -> Measure:
    return ("cond", node, label)


def header_measure(header: int) -> Measure:
    return ("header", header)


def exec_measure(node: int) -> Measure:
    return ("exec", node)


def block_measure(leader: int) -> Measure:
    return ("block", leader)


#: A dependency term: either a measure key or a literal constant.
Term = Union[Measure, float]


class DerivedRule(NamedTuple):
    """target = bias + Σ (coefficient × term).

    All four of the paper's derivations are linear, so one rule shape
    suffices:

    * complement (Opt 2, branches):
      ``cond(u, l*) = exec(u) − Σ_{l≠l*} cond(u, l)``
    * back-edge sum (Opt 2, loops):
      ``header(h) = exec(preheader) + Σ back-edge takings``
    * exit sum (Opt 2, loops):
      ``cond(u, l*) = exec(preheader) − Σ other exit takings``
    * constant trip count (Opt 3):
      ``header(h) = (trip + 1) × exec(preheader)``

    ``exec`` measures themselves are generated for every FCDG node as
    the sum of its parents' condition measures.

    A NamedTuple rather than a frozen dataclass: plan building and
    artifact verification construct and hash hundreds of rules per
    procedure, and tuple construction/hashing is several times
    cheaper than ``object.__setattr__``-based field init.
    """

    target: Measure
    kind: str
    terms: tuple[tuple[float, Term], ...]
    bias: float = 0.0

    def dependencies(self) -> list[Measure]:
        return [term for _, term in self.terms if isinstance(term, tuple)]

    def evaluate(self, values: dict[Measure, float]) -> float | None:
        """The rule's value, or None if a dependency is unresolved."""
        total = self.bias
        for coefficient, term in self.terms:
            if isinstance(term, tuple):
                if term not in values:
                    return None
                total += coefficient * values[term]
            else:
                total += coefficient * term
        return total


@dataclass
class RuleSet:
    """All rules of one plan, indexed for fixpoint evaluation."""

    rules: list[DerivedRule] = field(default_factory=list)

    def add(self, rule: DerivedRule) -> None:
        self.rules.append(rule)

    def closure(self, known: set[Measure]) -> set[Measure]:
        """All measures derivable from ``known`` via the rules."""
        resolved = set(known)
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                if rule.target in resolved:
                    continue
                if all(dep in resolved for dep in rule.dependencies()):
                    resolved.add(rule.target)
                    changed = True
        return resolved

    def solve(self, values: dict[Measure, float]) -> dict[Measure, float]:
        """Numerically resolve every derivable measure (fixpoint)."""
        resolved = dict(values)
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                if rule.target in resolved:
                    continue
                value = rule.evaluate(resolved)
                if value is not None:
                    resolved[rule.target] = value
                    changed = True
        return resolved
