"""Counter-based execution profiling (Section 3 of the paper).

The package provides:

* :mod:`repro.profiling.database` — the profile data model and the
  PTRAN-style program database that accumulates ``TOTAL_FREQ`` counts
  over multiple runs;
* :mod:`repro.profiling.placement` — counter *placement plans*: the
  naive one-counter-per-basic-block scheme and the optimized scheme
  built from the paper's three optimizations;
* :mod:`repro.profiling.runtime` — interpreter hooks that execute a
  plan's counter updates during a run;
* :mod:`repro.profiling.reconstruct` — recovery of every control
  condition's ``TOTAL_FREQ`` from the reduced counter set;
* :mod:`repro.profiling.oracle` — exact profiles derived from the
  interpreter's ground-truth counts (for validation).
"""

from repro.profiling.database import (
    ProcedureProfile,
    ProfileDatabase,
    ProgramProfile,
)
from repro.profiling.placement import (
    CounterPlan,
    ProgramPlan,
    naive_plan,
    smart_plan,
)
from repro.profiling.runtime import PlanExecutor
from repro.profiling.reconstruct import (
    ReconstructionSchedule,
    expand_block_counts,
    reconstruct_profile,
    reconstruction_schedule,
)
from repro.profiling.oracle import oracle_profile

__all__ = [
    "ReconstructionSchedule",
    "reconstruction_schedule",
    "ProcedureProfile",
    "ProgramProfile",
    "ProfileDatabase",
    "CounterPlan",
    "ProgramPlan",
    "naive_plan",
    "smart_plan",
    "PlanExecutor",
    "reconstruct_profile",
    "expand_block_counts",
    "oracle_profile",
]
