"""Runtime execution of counter plans, as interpreter hooks.

``PlanExecutor`` maintains the counter variables of a
:class:`ProgramPlan` during interpretation and reports how many
counter-update operations it performed (the interpreter charges each
one ``counter_update`` cycles).  ``LoopMomentRecorder`` optionally
accumulates per-entry squared iteration counts for the profile-based
loop-variance model of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecfg import ExtendedCFG
from repro.interp.machine import ExecutionHooks
from repro.profiling.placement import ProgramPlan


class PlanExecutor(ExecutionHooks):
    """Executes the counter updates a plan prescribes."""

    def __init__(self, plan: ProgramPlan):
        self.plan = plan
        self.counters: dict[str, list[float]] = {
            name: [0.0] * p.id_space for name, p in plan.plans.items()
        }
        self.updates = 0

    def on_node(self, proc: str, node_id: int, trip: int | None = None) -> int:
        plan = self.plan.plans.get(proc)
        if plan is None:
            return 0
        ops = 0
        counters = self.counters[proc]
        cid = plan.node_counters.get(node_id)
        if cid is not None:
            counters[cid] += 1.0
            ops += 1
        if trip is not None:
            for cid, offset in plan.batch_counters.get(node_id, ()):
                counters[cid] += trip + offset
                ops += 1
        self.updates += ops
        return ops

    def on_edge(self, proc: str, src: int, label: str) -> int:
        plan = self.plan.plans.get(proc)
        if plan is None:
            return 0
        cid = plan.edge_counters.get((src, label))
        if cid is None:
            return 0
        self.counters[proc][cid] += 1.0
        self.updates += 1
        return 1

    def counter_values(self, proc: str) -> dict[int, float]:
        return dict(enumerate(self.counters[proc]))

    def reset(self) -> None:
        for name, plan in self.plan.plans.items():
            self.counters[name] = [0.0] * plan.id_space


@dataclass
class _LoopState:
    current: float = 0.0


class LoopMomentRecorder(ExecutionHooks):
    """Records Σ(iterations per entry)² for every loop.

    Iterations are counted as header executions; a loop entry's count
    finalizes when one of the loop's exit edges is taken.  Chain this
    recorder with a PlanExecutor via :class:`HookChain`.

    Limitation: per-loop state is global, so recursion *through an
    active loop* would interleave counts; the paper's framework does
    not model recursion either.
    """

    def __init__(self, ecfgs: dict[str, ExtendedCFG]):
        self.sumsq: dict[str, dict[int, float]] = {}
        self.entries: dict[str, dict[int, float]] = {}
        self._headers: dict[str, set[int]] = {}
        self._exit_edges: dict[str, dict[tuple[int, str], list[int]]] = {}
        self._state: dict[str, dict[int, _LoopState]] = {}
        for name, ecfg in ecfgs.items():
            headers = set(ecfg.preheader_of)
            self._headers[name] = headers
            self.sumsq[name] = {h: 0.0 for h in headers}
            self.entries[name] = {h: 0.0 for h in headers}
            self._state[name] = {h: _LoopState() for h in headers}
            exits: dict[tuple[int, str], list[int]] = {}
            for header in headers:
                for edge in ecfg.intervals.exit_edges(header):
                    exits.setdefault((edge.src, edge.label), []).append(header)
            self._exit_edges[name] = exits

    def on_node(self, proc: str, node_id: int, trip: int | None = None) -> int:
        headers = self._headers.get(proc)
        if headers and node_id in headers:
            self._state[proc][node_id].current += 1.0
        return 0

    def on_edge(self, proc: str, src: int, label: str) -> int:
        exits = self._exit_edges.get(proc)
        if not exits:
            return 0
        for header in exits.get((src, label), ()):
            state = self._state[proc][header]
            self.sumsq[proc][header] += state.current * state.current
            self.entries[proc][header] += 1.0
            state.current = 0.0
        return 0


class HookChain(ExecutionHooks):
    """Fans interpreter events out to several hooks; sums their ops."""

    def __init__(self, *hooks: ExecutionHooks):
        self.hooks = hooks

    def on_node(self, proc: str, node_id: int, trip: int | None = None) -> int:
        return sum(h.on_node(proc, node_id, trip) for h in self.hooks)

    def on_edge(self, proc: str, src: int, label: str) -> int:
        return sum(h.on_edge(proc, src, label) for h in self.hooks)
