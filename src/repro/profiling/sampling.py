"""A simulated PC-sampling profiler (Section 3's foil).

The paper argues that sampling-based profilers — "Procedure P was found
executing x% of the time" — are too coarse for statement-level
execution frequencies, motivating the counter-based scheme.  This
module simulates such a profiler so the claim can be quantified: the
interpreter's virtual clock advances by each node's cost, and every
``interval`` cycles a sample attributes the currently-executing node
(and its procedure) with one hit, exactly like a timer interrupt
reading the program counter.

What a sampling profile can and cannot do:

* procedure-level *time shares* converge to the truth as samples
  accumulate (:meth:`SamplingProfiler.procedure_shares`);
* per-node *frequencies* are fundamentally unavailable — a sample
  sees where time is spent, not how often a statement ran; the
  :meth:`SamplingProfiler.estimate_node_frequencies` heuristic
  (hits × interval / cost, the best one can do) carries large errors
  for cheap or rarely-hit statements, which
  ``benchmarks/bench_sampling_vs_counters.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costs.estimate import CostEstimator
from repro.costs.model import MachineModel
from repro.interp.machine import ExecutionHooks
from repro.lang.symbols import CheckedProgram
from repro.cfg.graph import ControlFlowGraph


@dataclass
class SamplingReport:
    """Aggregated samples of one or more runs."""

    interval: float
    total_samples: int = 0
    #: procedure -> samples landing in it.
    per_procedure: dict[str, int] = field(default_factory=dict)
    #: (procedure, node) -> samples landing on that node.
    per_node: dict[tuple[str, int], int] = field(default_factory=dict)


class SamplingProfiler(ExecutionHooks):
    """Interpreter hooks implementing virtual-time PC sampling.

    ``interval`` is the sampling period in model cycles (the paper's
    complaint is precisely that OS timer periods dwarf statement
    costs).  The profiler keeps its own virtual clock from the same
    static COST(u) table the interpreter charges, so samples land
    exactly where a hardware timer would.
    """

    def __init__(
        self,
        checked: CheckedProgram,
        cfgs: dict[str, ControlFlowGraph],
        model: MachineModel,
        interval: float,
        phase: float = 0.0,
    ):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        estimator = CostEstimator(checked, model)
        self._costs = {
            name: {
                nid: nc.local
                for nid, nc in estimator.cfg_costs(cfg, name).items()
            }
            for name, cfg in cfgs.items()
        }
        self.report = SamplingReport(interval=interval)
        self._clock = phase
        self._next_sample = interval

    def on_node(self, proc: str, node_id: int, trip: int | None = None) -> int:
        cost = self._costs[proc][node_id]
        if cost <= 0:
            return 0
        end = self._clock + cost
        while self._next_sample <= end:
            # The timer fires while this node is executing.
            self.report.total_samples += 1
            self.report.per_procedure[proc] = (
                self.report.per_procedure.get(proc, 0) + 1
            )
            key = (proc, node_id)
            self.report.per_node[key] = self.report.per_node.get(key, 0) + 1
            self._next_sample += self.report.interval
        self._clock = end
        return 0  # sampling performs no counter updates in the program

    # -- estimates ---------------------------------------------------------

    def procedure_shares(self) -> dict[str, float]:
        """Estimated fraction of execution time per procedure."""
        total = self.report.total_samples
        if total == 0:
            return {}
        return {
            name: hits / total
            for name, hits in sorted(self.report.per_procedure.items())
        }

    def estimate_node_frequencies(self) -> dict[tuple[str, int], float]:
        """The best statement-frequency guess a sampler can make:
        ``hits × interval / COST(node)`` (time attributed to the node
        divided by its unit cost).  Zero-hit nodes estimate zero even
        if they executed — the coarse-granularity failure the paper
        describes."""
        estimates: dict[tuple[str, int], float] = {}
        for (proc, node), hits in self.report.per_node.items():
            cost = self._costs[proc][node]
            estimates[(proc, node)] = hits * self.report.interval / cost
        return estimates


def true_procedure_shares(run_result, costs_by_proc) -> dict[str, float]:
    """Exact per-procedure time shares from ground-truth counts."""
    totals: dict[str, float] = {}
    for name, counts in run_result.node_counts.items():
        table = costs_by_proc[name]
        totals[name] = sum(
            count * table[node] for node, count in counts.items()
        )
    grand = sum(totals.values())
    if grand == 0:
        return {}
    return {name: value / grand for name, value in sorted(totals.items())}
