"""Profile data model and the PTRAN-style program database.

A :class:`ProcedureProfile` stores raw ``TOTAL_FREQ`` material keyed by
*original CFG* artifacts, so it is independent of how the extended CFG
numbered its synthetic nodes:

* ``branch_counts[(u, l)]`` — times node ``u`` took its branch ``l``;
* ``header_counts[h]``     — executions of loop header node ``h``
  (the counter behind Definition 3's loop frequency);
* ``invocations``          — executions of the procedure
  (``TOTAL_FREQ(START, U)``);
* ``loop_sumsq[h]`` / ``loop_entries[h]`` — optional Σ(iterations²)
  and entry counts per loop, enabling the profile-based
  ``VAR(FREQ(u,l))`` of Section 5 Case 1;
* ``block_counts[leader]`` — executions of the basic block led by
  node ``leader`` (only produced by *naive* per-block plans; the
  differential tests compare these against node-level ground truth).

Profiles accumulate: the paper recommends summing ``TOTAL_FREQ`` over
several program runs, since only ratios matter.  The
:class:`ProfileDatabase` persists accumulated profiles as JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ProfilingError


@dataclass
class ProcedureProfile:
    """Accumulated raw counts for one procedure."""

    name: str
    branch_counts: dict[tuple[int, str], float] = field(default_factory=dict)
    header_counts: dict[int, float] = field(default_factory=dict)
    invocations: float = 0.0
    loop_sumsq: dict[int, float] = field(default_factory=dict)
    loop_entries: dict[int, float] = field(default_factory=dict)
    block_counts: dict[int, float] = field(default_factory=dict)

    def merge(self, other: "ProcedureProfile") -> None:
        """Accumulate another profile of the same procedure into this one."""
        if other.name != self.name:
            raise ProfilingError(
                f"cannot merge profile of {other.name} into {self.name}"
            )
        for key, value in other.branch_counts.items():
            self.branch_counts[key] = self.branch_counts.get(key, 0.0) + value
        for key, value in other.header_counts.items():
            self.header_counts[key] = self.header_counts.get(key, 0.0) + value
        self.invocations += other.invocations
        for key, value in other.loop_sumsq.items():
            self.loop_sumsq[key] = self.loop_sumsq.get(key, 0.0) + value
        for key, value in other.loop_entries.items():
            self.loop_entries[key] = self.loop_entries.get(key, 0.0) + value
        for key, value in other.block_counts.items():
            self.block_counts[key] = self.block_counts.get(key, 0.0) + value

    def loop_freq_second_moment(self, header: int) -> float | None:
        """E[F²] for the loop headed by ``header``, if recorded."""
        entries = self.loop_entries.get(header)
        if not entries:
            return None
        return self.loop_sumsq.get(header, 0.0) / entries


@dataclass
class ProgramProfile:
    """Raw counts for a whole program, over ``runs`` accumulated runs."""

    runs: int = 0
    procedures: dict[str, ProcedureProfile] = field(default_factory=dict)

    def proc(self, name: str) -> ProcedureProfile:
        if name not in self.procedures:
            self.procedures[name] = ProcedureProfile(name)
        return self.procedures[name]

    def merge(self, other: "ProgramProfile") -> None:
        self.runs += other.runs
        for name, profile in other.procedures.items():
            self.proc(name).merge(profile)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "procedures": {
                name: {
                    "branch_counts": [
                        [node, label, value]
                        for (node, label), value in sorted(
                            profile.branch_counts.items()
                        )
                    ],
                    "header_counts": sorted(profile.header_counts.items()),
                    "invocations": profile.invocations,
                    "loop_sumsq": sorted(profile.loop_sumsq.items()),
                    "loop_entries": sorted(profile.loop_entries.items()),
                    "block_counts": sorted(profile.block_counts.items()),
                }
                for name, profile in sorted(self.procedures.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProgramProfile":
        profile = cls(runs=int(data["runs"]))
        for name, raw in data["procedures"].items():
            proc = profile.proc(name)
            proc.branch_counts = {
                (int(node), label): float(value)
                for node, label, value in raw["branch_counts"]
            }
            proc.header_counts = {
                int(node): float(value) for node, value in raw["header_counts"]
            }
            proc.invocations = float(raw["invocations"])
            proc.loop_sumsq = {
                int(node): float(value) for node, value in raw["loop_sumsq"]
            }
            proc.loop_entries = {
                int(node): float(value) for node, value in raw["loop_entries"]
            }
            # Databases written before block counts existed lack the key.
            proc.block_counts = {
                int(node): float(value)
                for node, value in raw.get("block_counts", [])
            }
        return profile


class ProfileDatabase:
    """A tiny on-disk program database for accumulated profiles.

    Mirrors the role of PTRAN's program database: frequency counts are
    recorded at the end of each execution and summed across runs, per
    program key.  With ``path=None`` the database lives purely in
    memory (``save()`` is a no-op) — the profiling service uses this
    when started without a ``--db``.

    Saves are atomic (temp file + ``os.replace``), so a reader or a
    crash mid-save never observes a truncated file.  A corrupt or
    truncated database file is quarantined on load: the broken bytes
    are preserved next to the database under a ``.corrupt`` suffix,
    ``recovered_corrupt`` is set, and accumulation restarts empty
    rather than refusing to start.

    ``absorb_shards=True`` additionally scans the database directory
    for per-shard siblings a multi-worker service left behind
    (``profiles.json`` owns ``profiles.shard0.json``,
    ``profiles.shard1.json``, ...; see :func:`shard_path`) and merges
    them in — ``TOTAL_FREQ`` sums are additive, so absorbing a shard
    is exact.  Absorbed files are deleted only after the *next
    successful* :meth:`save`, so a crash between load and save leaves
    every count on disk somewhere.
    """

    def __init__(
        self, path: str | Path | None, *, absorb_shards: bool = False
    ):
        self.path = Path(path) if path is not None else None
        self._data: dict[str, ProgramProfile] = {}
        #: Set when ``__init__`` found an unreadable database file.
        self.recovered_corrupt = False
        #: Shard files merged at load time, deleted after the next save.
        self.absorbed_shards: list[Path] = []
        if self.path is not None and self.path.exists():
            self._load()
        if absorb_shards and self.path is not None:
            self._absorb_shards()

    @staticmethod
    def shard_path(path: str | Path, shard: int) -> Path:
        """Where shard ``shard`` of a sharded service persists its slice."""
        base = Path(path)
        return base.with_name(f"{base.stem}.shard{shard}{base.suffix}")

    def _absorb_shards(self) -> None:
        assert self.path is not None
        pattern = f"{self.path.stem}.shard*{self.path.suffix or ''}"
        for shard_file in sorted(self.path.parent.glob(pattern)):
            # `profiles.shard3.json`, not `profiles.shard3.corrupt` etc.
            middle = shard_file.name[len(self.path.stem) + 1 :]
            if self.path.suffix:
                middle = middle[: -len(self.path.suffix)]
            if not middle.startswith("shard") or not middle[5:].isdigit():
                continue
            shard_db = ProfileDatabase(shard_file)
            if shard_db.recovered_corrupt:
                continue  # quarantined by the nested load; skip it
            self.merge(shard_db)
            self.absorbed_shards.append(shard_file)

    def _load(self) -> None:
        assert self.path is not None
        try:
            raw = json.loads(self.path.read_text())
            self._data = {
                key: ProgramProfile.from_dict(value)
                for key, value in raw.items()
            }
        except (ValueError, KeyError, TypeError, AttributeError):
            # Truncated write, foreign file, hand-edited JSON, ...:
            # keep the evidence, restart empty.
            self.recovered_corrupt = True
            self._data = {}
            backup = self.path.with_name(self.path.name + ".corrupt")
            try:
                os.replace(self.path, backup)
            except OSError:
                pass

    def save(self) -> None:
        """Atomically persist every accumulated profile."""
        if self.path is None:
            return
        payload = {key: prof.to_dict() for key, prof in self._data.items()}
        text = json.dumps(payload, indent=1, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=f".{self.path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # The absorbed counts are now durable in the main file; the
        # leftover shard slices would double-count on the next boot.
        for shard_file in self.absorbed_shards:
            try:
                os.unlink(shard_file)
            except OSError:
                pass
        self.absorbed_shards = []

    def record(self, program_key: str, profile: ProgramProfile) -> None:
        """Accumulate one (or more) runs' worth of counts."""
        if program_key not in self._data:
            self._data[program_key] = ProgramProfile()
        self._data[program_key].merge(profile)

    def merge(self, other: "ProfileDatabase") -> None:
        """Accumulate every entry of another database into this one.

        The paper's Definition 3 only needs *ratios* of ``TOTAL_FREQ``
        counts, so databases accumulated by independent collectors
        (e.g. several profiling-service replicas) can simply be
        summed key by key.
        """
        for key in other.keys():
            self.record(key, other.lookup(key))

    def lookup(self, program_key: str) -> ProgramProfile | None:
        return self._data.get(program_key)

    def keys(self) -> list[str]:
        return sorted(self._data)

    def total_runs(self) -> float:
        """Accumulated run count over all keys (a service gauge)."""
        return sum(profile.runs for profile in self._data.values())
