"""Reconstruction of full profiles from reduced counter sets.

Given final counter values and the plan that produced them, resolve
every dropped measure via the plan's derivation rules (a linear
fixpoint, guaranteed to complete because placement validated the rule
closure symbolically) and assemble a :class:`ProcedureProfile`.
"""

from __future__ import annotations

from repro.errors import ProfilingError
from repro.profiling.database import ProcedureProfile, ProgramProfile
from repro.profiling.measures import Measure
from repro.profiling.placement import CounterPlan, ProgramPlan
from repro.profiling.runtime import PlanExecutor


def reconstruct_procedure(
    plan: CounterPlan, counter_values: dict[int, float]
) -> ProcedureProfile:
    """Resolve all target measures of one procedure's plan."""
    values: dict[Measure, float] = {}
    for cid, measure in plan.counter_measures.items():
        if cid not in counter_values:
            raise ProfilingError(
                f"{plan.proc}: missing value for counter {cid}"
            )
        values[measure] = counter_values[cid]
    resolved = plan.rules.solve(values)

    profile = ProcedureProfile(plan.proc)
    for target in plan.targets:
        if target not in resolved:
            raise ProfilingError(
                f"{plan.proc}: could not reconstruct measure {target}"
            )
        value = resolved[target]
        if target == ("invoc",):
            profile.invocations = value
        elif target[0] == "cond":
            profile.branch_counts[(target[1], target[2])] = value
        elif target[0] == "header":
            profile.header_counts[target[1]] = value
        elif target[0] == "block":
            # Naive plans measure basic blocks; the condition-level
            # material the analysis needs is absent, but the block
            # counts themselves are a full node-execution profile
            # (see :func:`expand_block_counts`).
            profile.block_counts[target[1]] = value
    return profile


def reconstruct_profile(
    plan: ProgramPlan, executor: PlanExecutor, runs: int = 1
) -> ProgramProfile:
    """Reconstruct a whole program's profile from an executed plan."""
    profile = ProgramProfile(runs=runs)
    for name, proc_plan in plan.plans.items():
        profile.procedures[name] = reconstruct_procedure(
            proc_plan, executor.counter_values(name)
        )
    return profile


def expand_block_counts(
    cfg, block_counts: dict[int, float]
) -> dict[int, float]:
    """Per-node execution counts from per-block counts.

    Every member of a basic block executes exactly as often as its
    leader, so a naive plan's block profile expands to the same
    node-execution profile the interpreter observes — the differential
    tests compare the two directly.
    """
    from repro.profiling.placement import basic_blocks

    counts: dict[int, float] = {}
    for leader, members in basic_blocks(cfg).items():
        value = block_counts.get(leader, 0.0)
        for member in members:
            counts[member] = value
    return counts
