"""Reconstruction of full profiles from reduced counter sets.

Given final counter values and the plan that produced them, resolve
every dropped measure via the plan's derivation rules (a linear
fixpoint, guaranteed to complete because placement validated the rule
closure symbolically) and assemble a :class:`ProcedureProfile`.

Which rules fire, and in which order, depends only on *which* measures
the counters provide — never on their numeric values — so the fixpoint
search is done once per plan and cached as a
:class:`ReconstructionSchedule`: the precomputed topological firing
order of the rule-dependency DAG.  Replaying the schedule performs the
same float additions in the same order as :meth:`RuleSet.solve`, so
results are bit-identical, without the per-call fixpoint scan.
"""

from __future__ import annotations

from repro.errors import ProfilingError
from repro.profiling.database import ProcedureProfile, ProgramProfile
from repro.profiling.measures import DerivedRule, Measure
from repro.profiling.placement import CounterPlan, ProgramPlan
from repro.profiling.runtime import PlanExecutor


class ReconstructionSchedule:
    """The precomputed firing order of one plan's derivation rules."""

    __slots__ = ("order",)

    def __init__(self, order: tuple[DerivedRule, ...]):
        self.order = order

    def replay(self, values: dict[Measure, float]) -> dict[Measure, float]:
        """Resolve every derivable measure; bit-identical to ``solve``.

        ``values`` must provide exactly the plan's counter measures —
        the known set the schedule was computed against.
        """
        resolved = dict(values)
        for rule in self.order:
            total = rule.bias
            for coefficient, term in rule.terms:
                if isinstance(term, tuple):
                    total += coefficient * resolved[term]
                else:
                    total += coefficient * term
            resolved[rule.target] = total
        return resolved


def reconstruction_schedule(plan: CounterPlan) -> ReconstructionSchedule:
    """The (cached) rule schedule of one procedure's plan.

    Symbolically replays :meth:`RuleSet.solve`'s pass-ordered fixpoint
    with the counter measures as the initially-known set, recording
    the exact sequence in which rules first become evaluable.
    """
    cached = getattr(plan, "_cached_schedule", None)
    if cached is not None:
        return cached
    resolved = set(plan.counter_measures.values())
    order: list[DerivedRule] = []
    rules = plan.rules.rules
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if rule.target in resolved:
                continue
            if all(dep in resolved for dep in rule.dependencies()):
                order.append(rule)
                resolved.add(rule.target)
                changed = True
    schedule = ReconstructionSchedule(tuple(order))
    plan._cached_schedule = schedule
    return schedule


def reconstruct_procedure(
    plan: CounterPlan, counter_values: dict[int, float]
) -> ProcedureProfile:
    """Resolve all target measures of one procedure's plan."""
    values: dict[Measure, float] = {}
    for cid, measure in plan.counter_measures.items():
        if cid not in counter_values:
            raise ProfilingError(
                f"{plan.proc}: missing value for counter {cid}"
            )
        values[measure] = counter_values[cid]
    resolved = reconstruction_schedule(plan).replay(values)

    profile = ProcedureProfile(plan.proc)
    for target in plan.targets:
        if target not in resolved:
            raise ProfilingError(
                f"{plan.proc}: could not reconstruct measure {target}"
            )
        value = resolved[target]
        if target == ("invoc",):
            profile.invocations = value
        elif target[0] == "cond":
            profile.branch_counts[(target[1], target[2])] = value
        elif target[0] == "header":
            profile.header_counts[target[1]] = value
        elif target[0] == "block":
            # Naive plans measure basic blocks; the condition-level
            # material the analysis needs is absent, but the block
            # counts themselves are a full node-execution profile
            # (see :func:`expand_block_counts`).
            profile.block_counts[target[1]] = value
    return profile


def reconstruct_profile(
    plan: ProgramPlan, executor: PlanExecutor, runs: int = 1
) -> ProgramProfile:
    """Reconstruct a whole program's profile from an executed plan."""
    profile = ProgramProfile(runs=runs)
    for name, proc_plan in plan.plans.items():
        profile.procedures[name] = reconstruct_procedure(
            proc_plan, executor.counter_values(name)
        )
    return profile


def expand_block_counts(
    cfg, block_counts: dict[int, float]
) -> dict[int, float]:
    """Per-node execution counts from per-block counts.

    Every member of a basic block executes exactly as often as its
    leader, so a naive plan's block profile expands to the same
    node-execution profile the interpreter observes — the differential
    tests compare the two directly.
    """
    from repro.profiling.placement import basic_blocks

    counts: dict[int, float] = {}
    for leader, members in basic_blocks(cfg).items():
        value = block_counts.get(leader, 0.0)
        for member in members:
            counts[member] = value
    return counts
