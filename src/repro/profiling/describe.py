"""Human-readable rendering of counter placement plans.

Shows exactly what the Section-3 optimizations did to a procedure:
which counters remain (and where they sit), which were dropped, and
the derivation rule that recovers each dropped measure.
"""

from __future__ import annotations

from repro.cfg.graph import ControlFlowGraph
from repro.profiling.measures import DerivedRule, Measure
from repro.profiling.placement import CounterPlan


def _measure_text(measure: Measure) -> str:
    kind = measure[0]
    if kind == "invoc":
        return "invocations"
    if kind == "cond":
        return f"branch({measure[1]}, {measure[2]})"
    if kind == "header":
        return f"loopfreq(header {measure[1]})"
    if kind == "exec":
        return f"exec({measure[1]})"
    if kind == "block":
        return f"block({measure[1]})"
    return repr(measure)


def _rule_text(rule: DerivedRule) -> str:
    parts: list[str] = []
    if rule.bias:
        parts.append(f"{rule.bias:g}")
    for coefficient, term in rule.terms:
        text = (
            _measure_text(term) if isinstance(term, tuple) else f"{term:g}"
        )
        if coefficient == 1.0:
            parts.append(f"+ {text}")
        elif coefficient == -1.0:
            parts.append(f"- {text}")
        else:
            parts.append(f"+ {coefficient:g}*{text}")
    body = " ".join(parts).lstrip("+ ")
    return f"{_measure_text(rule.target)} = {body}   [{rule.kind}]"


def describe_plan(plan: CounterPlan, cfg: ControlFlowGraph) -> str:
    """A multi-line description of one procedure's plan."""
    lines = [
        f"plan for {plan.proc} ({plan.kind}): {plan.n_counters} counters"
    ]
    for node_id, cid in sorted(plan.node_counters.items()):
        what = _measure_text(plan.counter_measures[cid])
        text = cfg.nodes[node_id].text if node_id in cfg.nodes else "?"
        lines.append(
            f"  counter {cid}: ++ at node {node_id} ({text}) -> {what}"
        )
    for (node_id, label), cid in sorted(plan.edge_counters.items()):
        what = _measure_text(plan.counter_measures[cid])
        lines.append(
            f"  counter {cid}: ++ on edge ({node_id}, {label}) -> {what}"
        )
    for node_id, entries in sorted(plan.batch_counters.items()):
        for cid, offset in entries:
            what = _measure_text(plan.counter_measures[cid])
            extra = f"trip+{offset}" if offset else "trip"
            lines.append(
                f"  counter {cid}: += {extra} at DO entry node "
                f"{node_id} -> {what}"
            )
    derived = [
        target
        for target in plan.targets
        if target not in plan.measured()
    ]
    if derived:
        lines.append(f"  derived measures ({len(derived)}):")
        useful_rules = {
            rule.target: rule
            for rule in plan.rules.rules
            if rule.kind != "exec"
        }
        for target in derived:
            rule = useful_rules.get(target)
            if rule is not None:
                lines.append(f"    {_rule_text(rule)}")
            else:
                lines.append(f"    {_measure_text(target)} (via exec sums)")
    return "\n".join(lines)
