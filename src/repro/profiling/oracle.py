"""Exact profiles from the interpreter's ground-truth counts.

The interpreter records every node and edge execution regardless of
any counter plan.  ``oracle_profile`` turns one run's counts into a
:class:`ProgramProfile` — the reference against which optimized
counter plans are validated (their reconstructed profiles must be
*identical*).
"""

from __future__ import annotations

from repro.ecfg import ExtendedCFG
from repro.interp.machine import RunResult
from repro.profiling.database import ProgramProfile


def oracle_profile(
    run: RunResult,
    ecfgs: dict[str, ExtendedCFG],
) -> ProgramProfile:
    """Build the exact profile of one run from interpreter counts.

    ``ecfgs`` supplies each procedure's loop headers, so header
    execution counts can be extracted for the loop-frequency
    conditions.  Loop second moments are *not* recorded here (they
    need per-entry granularity); use the LoopMomentRecorder hooks for
    that.
    """
    profile = ProgramProfile(runs=1)
    for name, ecfg in ecfgs.items():
        proc = profile.proc(name)
        proc.invocations = float(run.call_counts.get(name, 0))
        edge_counts = run.edge_counts.get(name, {})
        node_counts = run.node_counts.get(name, {})
        for (src, label), count in edge_counts.items():
            proc.branch_counts[(src, label)] = float(count)
        for header in ecfg.preheader_of:
            proc.header_counts[header] = float(node_counts.get(header, 0))
    return profile
