"""A SIMPLE-like 2-D hydrodynamics / heat-flow benchmark.

Models the structure of the Lawrence Livermore SIMPLE code [CHR78]
that the paper profiled: an ``NCYCLES`` time-step loop over a 2-D
grid, each cycle performing a Lagrangian velocity/position update,
an artificial-viscosity computation with data-dependent branches, an
equation-of-state evaluation, a heat-conduction sweep, and an energy
sum with a convergence test.  The paper ran 100×100 with NCYCLES=10;
any grid size works here (the interpreter is the bottleneck, and
relative profiling overheads are size-independent).
"""

from __future__ import annotations


def simple_source(n: int = 12, ncycles: int = 3) -> str:
    """The SIMPLE-like program on an ``n`` × ``n`` grid."""
    if n < 6:
        raise ValueError("simple_source: need n >= 6")
    return f"""\
      PROGRAM SIMPLE
      PARAMETER (N = {n}, NCYC = {ncycles})
      REAL R({n}, {n}), Z({n}, {n}), U({n}, {n}), V({n}, {n})
      REAL P({n}, {n}), Q({n}, {n}), E({n}, {n}), RHO({n}, {n})
      REAL TK({n}, {n})
      REAL DT, TIME, ESUM
      INTEGER IC
      CALL GENMSH(R, Z, N)
      CALL INITLZ(U, V, P, Q, E, RHO, TK, N)
      DT = 0.002
      TIME = 0.0
      DO 100 IC = 1, NCYC
        CALL LAGRAN(R, Z, U, V, P, Q, RHO, DT, N)
        CALL VISCOS(U, V, Q, RHO, N)
        CALL EQSTAT(P, E, RHO, N)
        CALL CONDUC(TK, E, DT, N)
        CALL ENERGY(E, P, Q, RHO, ESUM, N)
        CALL TSTEP(U, V, DT, N)
        TIME = TIME + DT
100   CONTINUE
      PRINT *, TIME, ESUM
      END

C     Mesh generation: logically rectangular grid.
      SUBROUTINE GENMSH(R, Z, N)
      REAL R(1, 1), Z(1, 1)
      INTEGER N, I, J
      DO 20 J = 1, N
        DO 10 I = 1, N
          R(I, J) = 1.0 + 0.1 * REAL(I)
          Z(I, J) = 0.1 * REAL(J)
10      CONTINUE
20    CONTINUE
      END

C     Initial thermodynamic state.
      SUBROUTINE INITLZ(U, V, P, Q, E, RHO, TK, N)
      REAL U(1, 1), V(1, 1), P(1, 1), Q(1, 1), E(1, 1)
      REAL RHO(1, 1), TK(1, 1)
      INTEGER N, I, J
      DO 20 J = 1, N
        DO 10 I = 1, N
          U(I, J) = 0.0
          V(I, J) = 0.0
          P(I, J) = 1.0 + 0.01 * REAL(I + J)
          Q(I, J) = 0.0
          E(I, J) = 2.5 + 0.02 * REAL(I)
          RHO(I, J) = 1.0 + 0.005 * REAL(J)
          TK(I, J) = 0.3
10      CONTINUE
20    CONTINUE
      END

C     Lagrangian phase: accelerate and move the mesh.
      SUBROUTINE LAGRAN(R, Z, U, V, P, Q, RHO, DT, N)
      REAL R(1, 1), Z(1, 1), U(1, 1), V(1, 1)
      REAL P(1, 1), Q(1, 1), RHO(1, 1), DT, GRADP, GRADZ
      INTEGER N, I, J
      DO 20 J = 2, N - 1
        DO 10 I = 2, N - 1
          GRADP = (P(I + 1, J) - P(I - 1, J) + Q(I + 1, J) - Q(I - 1, J)) &
            * 0.5
          GRADZ = (P(I, J + 1) - P(I, J - 1)) * 0.5
          U(I, J) = U(I, J) - DT * GRADP / RHO(I, J)
          V(I, J) = V(I, J) - DT * GRADZ / RHO(I, J)
          R(I, J) = R(I, J) + DT * U(I, J)
          Z(I, J) = Z(I, J) + DT * V(I, J)
10      CONTINUE
20    CONTINUE
      END

C     Artificial viscosity: only in compressing zones (branchy).
      SUBROUTINE VISCOS(U, V, Q, RHO, N)
      REAL U(1, 1), V(1, 1), Q(1, 1), RHO(1, 1), DIV, C0
      INTEGER N, I, J
      C0 = 1.5
      DO 20 J = 2, N - 1
        DO 10 I = 2, N - 1
          DIV = U(I + 1, J) - U(I - 1, J) + V(I, J + 1) - V(I, J - 1)
          IF (DIV .LT. 0.0) THEN
            Q(I, J) = C0 * RHO(I, J) * DIV * DIV
          ELSE
            Q(I, J) = 0.0
          ENDIF
10      CONTINUE
20    CONTINUE
      END

C     Equation of state: gamma-law gas.
      SUBROUTINE EQSTAT(P, E, RHO, N)
      REAL P(1, 1), E(1, 1), RHO(1, 1), GAMMA
      INTEGER N, I, J
      GAMMA = 1.4
      DO 20 J = 1, N
        DO 10 I = 1, N
          P(I, J) = (GAMMA - 1.0) * RHO(I, J) * E(I, J)
10      CONTINUE
20    CONTINUE
      END

C     Heat conduction: explicit 5-point sweep with flux limiting.
      SUBROUTINE CONDUC(TK, E, DT, N)
      REAL TK(1, 1), E(1, 1), DT, FLUX
      INTEGER N, I, J
      DO 20 J = 2, N - 1
        DO 10 I = 2, N - 1
          FLUX = TK(I, J) * (E(I + 1, J) + E(I - 1, J) + &
            E(I, J + 1) + E(I, J - 1) - 4.0 * E(I, J))
          IF (FLUX .GT. 1.0) FLUX = 1.0
          IF (FLUX .LT. -1.0) FLUX = -1.0
          E(I, J) = E(I, J) + DT * FLUX
10      CONTINUE
20    CONTINUE
      END

C     Total energy, with a positivity fixup loop.
      SUBROUTINE ENERGY(E, P, Q, RHO, ESUM, N)
      REAL E(1, 1), P(1, 1), Q(1, 1), RHO(1, 1), ESUM
      INTEGER N, I, J
      ESUM = 0.0
      DO 20 J = 1, N
        DO 10 I = 1, N
          IF (E(I, J) .LT. 0.0) E(I, J) = 0.0
          ESUM = ESUM + RHO(I, J) * E(I, J) + &
            0.5 * (P(I, J) + Q(I, J))
10      CONTINUE
20    CONTINUE
      END

C     New stable time step from the velocity field (reduction + IFs).
      SUBROUTINE TSTEP(U, V, DT, N)
      REAL U(1, 1), V(1, 1), DT, VMAX, S
      INTEGER N, I, J
      VMAX = 0.0001
      DO 20 J = 2, N - 1
        DO 10 I = 2, N - 1
          S = ABS(U(I, J)) + ABS(V(I, J))
          IF (S .GT. VMAX) VMAX = S
10      CONTINUE
20    CONTINUE
      DT = MIN(0.1 / VMAX, 0.01)
      END
"""
