"""The paper's running example (Figures 1-3).

The Fortran fragment of Figure 1, arranged so that one run reproduces
the profile of Figure 3 exactly: the IF statement with label 10
executes 10 times and the loop exits by taking the ``IF (N.LT.0)``
branch.  With the figure's COST assignment (1 for IF nodes, 100 for
the call, 0 elsewhere) the paper's results are

    TIME(START) = 920        STD_DEV(START) = 300

which :class:`FigureCostEstimator` lets the analysis reproduce
exactly.
"""

from __future__ import annotations

from repro.lang import ast
from repro.cfg.graph import StmtKind
from repro.costs.estimate import NodeCost

#: MAIN initializes M=5, N=8; FOO decrements N, so the loop header
#: executes 10 times and exits when N reaches -1 via IF (N.LT.0).
PAPER_SOURCE = """\
      PROGRAM MAIN
      INTEGER M, N
      M = 5
      N = 8
10    IF (M .GE. 0) THEN
        IF (N .LT. 0) GOTO 20
      ELSE
        IF (N .GE. 0) GOTO 20
      ENDIF
      CALL FOO(M, N)
      GOTO 10
20    CONTINUE
      END

      SUBROUTINE FOO(M, N)
      N = N - 1
      END
"""

#: The paper's expected headline numbers.
EXPECTED_TIME = 920.0
EXPECTED_VAR = 90000.0
EXPECTED_STD_DEV = 300.0


class FigureCostEstimator:
    """The COST assignment of Figure 3.

    IF nodes cost 1; the CALL node costs TIME(FOO) = 100 (realized by
    giving FOO's single assignment a cost of 100 and the call zero
    local cost); every other node costs 0.
    """

    def cfg_costs(self, cfg, name: str) -> dict[int, NodeCost]:
        costs: dict[int, NodeCost] = {}
        for node in cfg:
            if node.kind is StmtKind.IF:
                costs[node.id] = NodeCost(1.0, [])
            elif node.kind is StmtKind.CALL:
                assert isinstance(node.stmt, ast.CallStmt)
                costs[node.id] = NodeCost(0.0, [node.stmt.name])
            elif name == "FOO" and node.kind is StmtKind.ASSIGN:
                costs[node.id] = NodeCost(100.0, [])
            else:
                costs[node.id] = NodeCost(0.0, [])
        return costs


def paper_program():
    """Compile the paper example (convenience for tests/benchmarks)."""
    from repro.pipeline import compile_source

    return compile_source(PAPER_SOURCE)
