"""GOTO-heavy workloads exercising the unstructured generality.

The paper's motivation for basing the framework on control dependence
(rather than lexical nesting) is exactly these programs: loops built
from IF/GOTO, multi-exit loops, computed-GOTO state machines, and
premature RETURNs.
"""

from __future__ import annotations

#: A GOTO-built loop with two conditional exits (the paper's shape).
TWO_EXIT_LOOP = """\
      PROGRAM TWOEXIT
      INTEGER K
      REAL ACC
      K = 0
      ACC = 0.0
10    K = K + 1
      ACC = ACC + RAND()
      IF (ACC .GT. 12.5) GOTO 20
      IF (K .GE. 100) GOTO 30
      GOTO 10
20    ACC = ACC + 1000.0
30    PRINT *, K, ACC
      END
"""

#: A computed-GOTO token-machine: four states, data-driven hops.
STATE_MACHINE = """\
      PROGRAM STATES
      INTEGER S, STEPS, NHOPS
      S = 1
      STEPS = 0
      NHOPS = 0
10    STEPS = STEPS + 1
      IF (STEPS .GT. 200) GOTO 90
      GOTO (20, 30, 40, 50), S
      GOTO 90
20    S = IRAND(2, 3)
      NHOPS = NHOPS + 1
      GOTO 10
30    IF (RAND() .LT. 0.3) GOTO 60
      S = 4
      GOTO 10
40    S = IRAND(1, 4)
      GOTO 10
50    S = 2
      NHOPS = NHOPS + 2
      GOTO 10
60    S = 1
      GOTO 10
90    PRINT *, STEPS, NHOPS
      END
"""

#: Nested loops with a GOTO that exits both levels at once.
MULTI_LEVEL_EXIT = """\
      PROGRAM MLEXIT
      INTEGER I, J, HITS
      HITS = 0
      DO 20 I = 1, 30
        DO 10 J = 1, 30
          IF (RAND() .LT. 0.002) GOTO 99
          IF (MOD(I + J, 7) .EQ. 0) HITS = HITS + 1
10      CONTINUE
20    CONTINUE
99    PRINT *, HITS
      END
"""

#: Premature RETURNs from a subroutine (multiple "last" nodes).
EARLY_RETURNS = """\
      PROGRAM EARLYR
      INTEGER I, NPOS
      REAL X
      NPOS = 0
      DO 10 I = 1, 50
        X = RAND() - 0.5
        CALL CLASSIFY(X, NPOS)
10    CONTINUE
      PRINT *, NPOS
      END

      SUBROUTINE CLASSIFY(X, NPOS)
      REAL X
      INTEGER NPOS
      IF (X .LT. 0.0) RETURN
      IF (X .LT. 0.1) THEN
        NPOS = NPOS + 1
        RETURN
      ENDIF
      NPOS = NPOS + 2
      END
"""

#: An irreducible region: two GOTO entries into the same loop body.
#: (The paper assumes reducible graphs; node splitting handles this.)
IRREDUCIBLE = """\
      PROGRAM IRRED
      INTEGER K
      K = INT(INPUT(1))
      IF (K .GT. 5) GOTO 20
10    K = K - 1
      GOTO 30
20    K = K - 2
30    IF (K .LT. 0) GOTO 40
      IF (MOD(K, 3) .EQ. 0) GOTO 10
      GOTO 20
40    PRINT *, K
      END
"""

ALL_SOURCES = {
    "TWO_EXIT_LOOP": TWO_EXIT_LOOP,
    "STATE_MACHINE": STATE_MACHINE,
    "MULTI_LEVEL_EXIT": MULTI_LEVEL_EXIT,
    "EARLY_RETURNS": EARLY_RETURNS,
    "IRREDUCIBLE": IRREDUCIBLE,
}
