"""Seeded random minifort program generator.

Produces syntactically valid, *always terminating* programs with rich
control flow: nested DO / DO WHILE loops, IF/ELSEIF blocks, logical
IFs, conditional loop exits via forward GOTO, computed GOTOs and
subroutine/function calls.  Termination is guaranteed by construction
(counted loops, forward-only GOTOs apart from the loops' own back
edges), which the property-based tests rely on.

Branch outcomes are driven by ``RAND()``/``IRAND`` so different seeds
explore different paths of the same program.
"""

from __future__ import annotations

import random

_REAL_VARS = ["A", "B", "S", "T", "W"]
_INT_VARS = ["K", "L", "M", "N"]


class ProgramGenerator:
    """Generates one random program per (seed, shape parameters)."""

    def __init__(
        self,
        seed: int,
        *,
        max_depth: int = 3,
        max_stmts: int = 5,
        allow_calls: bool = True,
        allow_gotos: bool = True,
        allow_loops: bool = True,
    ):
        self.rng = random.Random(seed)
        self.max_depth = max_depth
        self.max_stmts = max_stmts
        self.allow_calls = allow_calls
        self.allow_gotos = allow_gotos
        self.allow_loops = allow_loops
        self._label = 0
        self._loop_var = 0
        self.sub_names: list[str] = []
        self.fn_names: list[str] = []

    # -- public ----------------------------------------------------------

    def source(self) -> str:
        """Generate a full program (MAIN plus 0-2 subroutines)."""
        n_subs = self.rng.randint(0, 2) if self.allow_calls else 0
        self.sub_names = [f"SUB{i + 1}" for i in range(n_subs)]
        self.fn_names = []
        if self.allow_calls and self.rng.random() < 0.5:
            self.fn_names = ["FN1"]
        units = [self._procedure("MAIN", kind="PROGRAM")]
        for name in self.sub_names:
            units.append(self._procedure(name, kind="SUBROUTINE"))
        for name in self.fn_names:
            units.append(self._function(name))
        return "\n".join(units)

    # -- labels and names --------------------------------------------------

    def _fresh_label(self) -> int:
        self._label += 10
        return self._label

    def _fresh_loop_var(self) -> str:
        self._loop_var += 1
        return f"I{self._loop_var}"

    def _real_var(self) -> str:
        return self.rng.choice(_REAL_VARS)

    def _int_var(self) -> str:
        return self.rng.choice(_INT_VARS)

    # -- expressions -----------------------------------------------------

    def _real_expr(self, depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.3:
            return f"{self.rng.uniform(0.1, 2.0):.3f}"
        if roll < 0.5:
            return self._real_var()
        if roll < 0.6:
            return "RAND()"
        if roll < 0.68:
            return f"ARR({self._index_expr()})"
        if roll < 0.73 and self.fn_names:
            return f"{self.fn_names[0]}({self._real_expr(depth + 1)})"
        op = self.rng.choice(["+", "-", "*"])
        return f"({self._real_expr(depth + 1)} {op} {self._real_expr(depth + 1)})"

    def _int_expr(self, depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.4:
            return str(self.rng.randint(0, 9))
        if roll < 0.7:
            return self._int_var()
        op = self.rng.choice(["+", "-", "*"])
        return f"({self._int_expr(depth + 1)} {op} {self._int_expr(depth + 1)})"

    def _index_expr(self) -> str:
        # ABS keeps Fortran MOD (sign of dividend) inside array bounds.
        return f"MOD(ABS({self._int_expr(1)}), 20) + 1"

    def _condition(self) -> str:
        roll = self.rng.random()
        if roll < 0.45:
            return f"RAND() .LT. {self.rng.uniform(0.1, 0.9):.2f}"
        if roll < 0.7:
            op = self.rng.choice([".LT.", ".GE.", ".GT.", ".LE."])
            return f"{self._real_var()} {op} {self._real_expr(1)}"
        op = self.rng.choice([".EQ.", ".NE.", ".LT."])
        return f"MOD({self._int_var()}, {self.rng.randint(2, 5)}) {op} 0"

    # -- statements ----------------------------------------------------------

    def _assign(self) -> str:
        if self.rng.random() < 0.2:
            return f"ARR({self._index_expr()}) = {self._real_expr()}"
        if self.rng.random() < 0.35:
            return f"{self._int_var()} = {self._int_expr()}"
        return f"{self._real_var()} = {self._real_expr()}"

    def _block(self, depth: int, exit_labels: list[int]) -> list[str]:
        lines: list[str] = []
        for _ in range(self.rng.randint(1, self.max_stmts)):
            lines.extend(self._statement(depth, exit_labels))
        return lines

    def _statement(self, depth: int, exit_labels: list[int]) -> list[str]:
        roll = self.rng.random()
        if depth >= self.max_depth or roll < 0.40:
            return [self._assign()]
        if roll < 0.5:
            inner = self._assign()
            return [f"IF ({self._condition()}) {inner}"]
        if roll < 0.62:
            return self._if_block(depth, exit_labels)
        if roll < 0.74:
            if not self.allow_loops:
                return self._if_block(depth, exit_labels)
            return self._do_loop(depth)
        if roll < 0.80:
            if not self.allow_loops:
                return [self._assign()]
            return self._do_while(depth)
        if roll < 0.84 and self.allow_gotos:
            return self._computed_goto()
        if roll < 0.88 and self.allow_gotos:
            return self._arithmetic_if()
        if roll < 0.92 and exit_labels and self.allow_gotos:
            target = self.rng.choice(exit_labels)
            return [f"IF ({self._condition()}) GOTO {target}"]
        if self.allow_calls and self.sub_names:
            name = self.rng.choice(self.sub_names)
            return [f"CALL {name}({self._real_expr(1)}, ARR)"]
        return [self._assign()]

    def _if_block(self, depth: int, exit_labels: list[int]) -> list[str]:
        lines = [f"IF ({self._condition()}) THEN"]
        lines += self._indent(self._block(depth + 1, exit_labels))
        n_arms = self.rng.randint(0, 2)
        for _ in range(n_arms):
            lines.append(f"ELSEIF ({self._condition()}) THEN")
            lines += self._indent(self._block(depth + 1, exit_labels))
        if self.rng.random() < 0.6:
            lines.append("ELSE")
            lines += self._indent(self._block(depth + 1, exit_labels))
        lines.append("ENDIF")
        return lines

    def _do_loop(self, depth: int) -> list[str]:
        var = self._fresh_loop_var()
        end_label = self._fresh_label()
        after_label = self._fresh_label()
        bound = self.rng.randint(2, 8)
        step = "" if self.rng.random() < 0.8 else ", 2"
        lines = [f"DO {end_label} {var} = 1, {bound}{step}"]
        # Conditional exits target the label *after* the loop.
        exits = [after_label] if self.rng.random() < 0.5 else []
        lines += self._indent(self._block(depth + 1, exits))
        lines.append(f"{end_label} CONTINUE")
        lines.append(f"{after_label} CONTINUE")
        return lines

    def _do_while(self, depth: int) -> list[str]:
        var = self._fresh_loop_var()
        bound = self.rng.randint(2, 6)
        lines = [
            f"{var} = {bound}",
            f"DO WHILE ({var} .GT. 0)",
            f"  {var} = {var} - 1",
        ]
        lines += self._indent(self._block(depth + 1, []))
        lines.append("ENDDO")
        return lines

    def _computed_goto(self) -> list[str]:
        n_ways = self.rng.randint(2, 3)
        labels = [self._fresh_label() for _ in range(n_ways)]
        join = self._fresh_label()
        lines = [f"GOTO ({', '.join(map(str, labels))}), IRAND(1, {n_ways + 1})"]
        lines.append(self._assign())  # fall-through section
        lines.append(f"GOTO {join}")
        for i, label in enumerate(labels):
            lines.append(f"{label} {self._assign()}")
            if i != len(labels) - 1:
                lines.append(f"GOTO {join}")
        lines.append(f"{join} CONTINUE")
        return lines

    def _arithmetic_if(self) -> list[str]:
        labels = [self._fresh_label() for _ in range(3)]
        join = self._fresh_label()
        selector = f"({self._int_expr(1)} - {self.rng.randint(0, 9)})"
        lines = [f"IF {selector} {labels[0]}, {labels[1]}, {labels[2]}"]
        for i, label in enumerate(labels):
            lines.append(f"{label} {self._assign()}")
            if i != len(labels) - 1:
                lines.append(f"GOTO {join}")
        lines.append(f"{join} CONTINUE")
        return lines

    @staticmethod
    def _indent(lines: list[str]) -> list[str]:
        out = []
        for line in lines:
            # Keep statement labels at line start.
            head = line.split(" ", 1)[0]
            if head.isdigit():
                out.append(line)
            else:
                out.append("  " + line)
        return out

    # -- program units -----------------------------------------------------

    def _procedure(self, name: str, kind: str) -> str:
        header = f"      {kind} {name}"
        if kind == "SUBROUTINE":
            header += "(X, ARR)"
        body: list[str] = ["REAL ARR(20)"] if kind == "PROGRAM" else [
            "REAL X, ARR(20)"
        ]
        body += [f"{v} = {self.rng.uniform(0.0, 2.0):.3f}" for v in _REAL_VARS[:3]]
        body += [f"{v} = {self.rng.randint(0, 9)}" for v in _INT_VARS[:2]]
        saved = (self.sub_names, self.fn_names)
        if kind == "SUBROUTINE":
            # Subroutines never call other generated procedures
            # (keeps the call graph acyclic).
            self.sub_names, self.fn_names = [], []
        body += self._block(0, [])
        if kind == "SUBROUTINE":
            self.sub_names, self.fn_names = saved
        body.append(f"PRINT *, {self._real_var()}")
        lines = [header] + ["      " + line for line in body] + ["      END", ""]
        return "\n".join(lines)

    def _function(self, name: str) -> str:
        lines = [
            f"      FUNCTION {name}(Y)",
            "      REAL Y",
            f"      IF (Y .GT. {self.rng.uniform(0.2, 1.5):.3f}) THEN",
            f"        {name} = Y * {self.rng.uniform(0.1, 0.9):.3f}",
            "      ELSE",
            f"        {name} = Y + {self.rng.uniform(0.1, 0.9):.3f}",
            "      ENDIF",
            "      END",
            "",
        ]
        return "\n".join(lines)
