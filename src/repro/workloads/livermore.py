"""The 24 Livermore Loops in minifort (the paper's LOOPS benchmark).

These are faithful-structure renditions of McMahon's Livermore Fortran
Kernels [McM86]: each kernel keeps the original's loop shape, data
dependences and branch structure (kernels 15, 16, 17 and 24 are the
branchy/GOTO ones), at a laptop-friendly problem size.  MAIN
initializes the shared arrays and calls all 24 kernels, mirroring the
LOOPS driver the paper profiled on the IBM 3090.

The problem size is parameterized: ``livermore_source(n, n2, ncycles)``
with loop length ``n``, 2-D extent ``n2`` and an outer repetition
count.
"""

from __future__ import annotations


def livermore_source(n: int = 100, n2: int = 10, ncycles: int = 1) -> str:
    """Build the LOOPS program; arrays are sized from ``n`` and ``n2``."""
    if n < 20 or n2 < 4:
        raise ValueError("livermore_source: need n >= 20 and n2 >= 4")
    size = 2 * n + 20  # kernel 2 walks to ~2n; slack for k+10 offsets
    return f"""\
      PROGRAM LOOPS
      PARAMETER (N = {n}, M = {n2}, NC = {ncycles})
      REAL X({size}), Y({size}), Z({size}), U({size}), V({size})
      REAL W({size}), B({size}), C({size}), D({size})
      REAL ZA({n2}, {n2}), ZB({n2}, {n2}), ZP({n2}, {n2}), ZQ({n2}, {n2})
      REAL ZR({n2}, {n2}), ZM({n2}, {n2}), ZU({n2}, {n2}), ZV({n2}, {n2})
      INTEGER IC, IX({size})
      DO 90 IC = 1, NC
      CALL SETUP(X, Y, Z, U, V, W, B, C, D, IX, {size})
      CALL SETUP2(ZA, ZB, ZP, ZQ, ZR, ZM, ZU, ZV, M)
      CALL KERN01(X, Y, Z, N)
      CALL KERN02(X, V, N)
      CALL KERN03(Z, X, N)
      CALL KERN04(X, Y, N)
      CALL KERN05(X, Y, Z, N)
      CALL KERN06(W, B, N)
      CALL KERN07(X, Y, Z, U, N)
      CALL KERN08(ZA, ZB, ZP, ZQ, M)
      CALL KERN09(X, Y, Z, U, V, N)
      CALL KERN10(X, Y, Z, N)
      CALL KERN11(X, Y, N)
      CALL KERN12(X, Y, N)
      CALL KERN13(ZP, ZQ, IX, Y, M, N)
      CALL KERN14(X, Y, Z, IX, N)
      CALL KERN15(ZA, ZB, ZR, M)
      CALL KERN16(X, Z, N)
      CALL KERN17(X, Y, Z, N)
      CALL KERN18(ZA, ZB, ZP, ZQ, ZR, ZM, M)
      CALL KERN19(X, Y, Z, N)
      CALL KERN20(X, Y, Z, U, V, W, N)
      CALL KERN21(ZA, ZB, ZR, M)
      CALL KERN22(X, Y, Z, U, N)
      CALL KERN23(ZA, ZB, ZP, ZQ, ZR, M)
      CALL KERN24(X, N)
90    CONTINUE
      PRINT *, X(1), Z(1), ZA(1, 1)
      END

      SUBROUTINE SETUP(X, Y, Z, U, V, W, B, C, D, IX, LEN)
      REAL X(1), Y(1), Z(1), U(1), V(1), W(1), B(1), C(1), D(1)
      INTEGER IX(1), LEN, K
      DO 10 K = 1, LEN
        X(K) = 0.01 * REAL(K)
        Y(K) = 0.02 * REAL(K) + 1.0
        Z(K) = 0.5 + 0.001 * REAL(K)
        U(K) = 1.0 / (0.1 * REAL(K) + 1.0)
        V(K) = 0.3
        W(K) = 0.7 + 0.002 * REAL(K)
        B(K) = 0.9
        C(K) = 1.1
        D(K) = 0.4
        IX(K) = MOD(K * 7, LEN) + 1
10    CONTINUE
      END

      SUBROUTINE SETUP2(ZA, ZB, ZP, ZQ, ZR, ZM, ZU, ZV, M)
      INTEGER M, I, J
      REAL ZA(1, 1), ZB(1, 1), ZP(1, 1), ZQ(1, 1)
      REAL ZR(1, 1), ZM(1, 1), ZU(1, 1), ZV(1, 1)
      DO 20 J = 1, M
        DO 10 I = 1, M
          ZA(I, J) = 0.001 * REAL(I + J)
          ZB(I, J) = 1.0 + 0.01 * REAL(I - J)
          ZP(I, J) = 0.5
          ZQ(I, J) = 0.25
          ZR(I, J) = 0.125 * REAL(I) + 0.1
          ZM(I, J) = 0.75
          ZU(I, J) = 1.0
          ZV(I, J) = 2.0
10      CONTINUE
20    CONTINUE
      END

C     Kernel 1 -- hydro fragment
      SUBROUTINE KERN01(X, Y, Z, N)
      REAL X(1), Y(1), Z(1), Q, R, T
      INTEGER N, K
      Q = 0.5
      R = 0.2
      T = 0.1
      DO 10 K = 1, N
        X(K) = Q + Y(K) * (R * Z(K + 10) + T * Z(K + 11))
10    CONTINUE
      END

C     Kernel 2 -- ICCG excerpt: stride-halving reduction
      SUBROUTINE KERN02(X, V, N)
      REAL X(1), V(1)
      INTEGER N, IPNTP, IPNT, II, I, K
      II = N
      IPNTP = 0
10    IPNT = IPNTP
      IPNTP = IPNTP + II
      II = II / 2
      I = IPNTP
      DO 20 K = IPNT + 2, IPNTP, 2
        I = I + 1
        X(I) = X(K) - V(K) * X(K - 1) - V(K + 1) * X(K + 1)
20    CONTINUE
      IF (II .GT. 1) GOTO 10
      END

C     Kernel 3 -- inner product
      SUBROUTINE KERN03(Z, X, N)
      REAL Z(1), X(1), Q
      INTEGER N, K
      Q = 0.0
      DO 10 K = 1, N
        Q = Q + Z(K) * X(K)
10    CONTINUE
      Z(1) = Q
      END

C     Kernel 4 -- banded linear equations
      SUBROUTINE KERN04(X, Y, N)
      REAL X(1), Y(1), XI
      INTEGER N, J, K, LW
      DO 20 K = 7, N, 5
        LW = K - 6
        XI = Y(K)
        DO 10 J = 5, N, 5
          XI = XI - X(LW) * Y(J)
          LW = LW + 1
10      CONTINUE
        X(K - 1) = Y(5) * XI
20    CONTINUE
      END

C     Kernel 5 -- tridiagonal elimination, below diagonal
      SUBROUTINE KERN05(X, Y, Z, N)
      REAL X(1), Y(1), Z(1)
      INTEGER N, I
      DO 10 I = 2, N
        X(I) = Z(I) * (Y(I) - X(I - 1))
10    CONTINUE
      END

C     Kernel 6 -- general linear recurrence equations
      SUBROUTINE KERN06(W, B, N)
      REAL W(1), B(1)
      INTEGER N, I, K
      DO 20 I = 2, N / 2
        W(I) = 0.0100
        DO 10 K = 1, I - 1
          W(I) = W(I) + B(K) * W(I - K) * 0.01
10      CONTINUE
20    CONTINUE
      END

C     Kernel 7 -- equation of state fragment
      SUBROUTINE KERN07(X, Y, Z, U, N)
      REAL X(1), Y(1), Z(1), U(1), Q, R, T
      INTEGER N, K
      Q = 0.5
      R = 0.2
      T = 0.1
      DO 10 K = 1, N
        X(K) = U(K) + R * (Z(K) + R * Y(K)) + &
          T * (U(K + 3) + R * (U(K + 2) + R * U(K + 1)) + &
          T * (U(K + 6) + Q * (U(K + 5) + Q * U(K + 4))))
10    CONTINUE
      END

C     Kernel 8 -- ADI integration (two-sweep fragment)
      SUBROUTINE KERN08(ZA, ZB, ZP, ZQ, M)
      REAL ZA(1, 1), ZB(1, 1), ZP(1, 1), ZQ(1, 1), QA
      INTEGER M, I, J
      DO 20 J = 2, M - 1
        DO 10 I = 2, M - 1
          QA = ZA(I, J + 1) * ZP(I, J) + ZA(I, J - 1) * ZQ(I, J) + &
            ZA(I + 1, J) * ZP(I, J) + ZA(I - 1, J) * ZQ(I, J)
          ZB(I, J) = ZA(I, J) + 0.175 * (QA - 4.0 * ZA(I, J))
10      CONTINUE
20    CONTINUE
      DO 40 J = 2, M - 1
        DO 30 I = 2, M - 1
          ZA(I, J) = ZB(I, J)
30      CONTINUE
40    CONTINUE
      END

C     Kernel 9 -- integrate predictors
      SUBROUTINE KERN09(X, Y, Z, U, V, N)
      REAL X(1), Y(1), Z(1), U(1), V(1)
      INTEGER N, I
      DO 10 I = 1, N
        X(I) = Y(I) + 0.5 * (Z(I) + U(I)) + &
          0.25 * (V(I) + Z(I)) + 0.125 * (U(I) + Y(I))
10    CONTINUE
      END

C     Kernel 10 -- difference predictors
      SUBROUTINE KERN10(X, Y, Z, N)
      REAL X(1), Y(1), Z(1), AR, BR, CR
      INTEGER N, I
      DO 10 I = 1, N
        AR = Z(I)
        BR = AR - X(I)
        X(I) = AR
        CR = BR - Y(I)
        Y(I) = BR
        Z(I) = CR
10    CONTINUE
      END

C     Kernel 11 -- first sum (prefix sum)
      SUBROUTINE KERN11(X, Y, N)
      REAL X(1), Y(1)
      INTEGER N, K
      X(1) = Y(1)
      DO 10 K = 2, N
        X(K) = X(K - 1) + Y(K)
10    CONTINUE
      END

C     Kernel 12 -- first difference
      SUBROUTINE KERN12(X, Y, N)
      REAL X(1), Y(1)
      INTEGER N, K
      DO 10 K = 1, N - 1
        X(K) = Y(K + 1) - Y(K)
10    CONTINUE
      END

C     Kernel 13 -- 2-D particle in cell
      SUBROUTINE KERN13(ZP, ZQ, IX, Y, M, N)
      REAL ZP(1, 1), ZQ(1, 1), Y(1)
      INTEGER IX(1), M, N, IP, I1, J1
      DO 10 IP = 1, N
        I1 = MOD(IX(IP), M - 1) + 1
        J1 = MOD(IX(IP) * 3, M - 1) + 1
        ZP(I1, J1) = ZP(I1, J1) + Y(IP)
        ZQ(I1, J1) = ZQ(I1, J1) + ZP(I1 + 1, J1)
10    CONTINUE
      END

C     Kernel 14 -- 1-D particle in cell
      SUBROUTINE KERN14(X, Y, Z, IX, N)
      REAL X(1), Y(1), Z(1), DEX
      INTEGER IX(1), N, K, IXK
      DO 10 K = 1, N
        DEX = ABS(Z(K)) * 10.0
        IXK = MOD(INT(DEX), N) + 1
        X(K) = Y(IXK + 1) + DEX - REAL(IXK)
        IX(K) = MOD(IXK + K, N) + 1
10    CONTINUE
      END

C     Kernel 15 -- casual Fortran: branchy 2-D stencil
      SUBROUTINE KERN15(ZA, ZB, ZR, M)
      REAL ZA(1, 1), ZB(1, 1), ZR(1, 1), T
      INTEGER M, I, J
      DO 20 J = 2, M - 1
        DO 10 I = 2, M - 1
          IF (ZB(I, J) .LT. ZR(I, J)) THEN
            T = ZR(I, J) - ZB(I, J)
          ELSE
            T = ZB(I, J) - ZR(I, J)
          ENDIF
          IF (T .GT. 0.5) THEN
            ZA(I, J) = ZA(I, J) + T * 0.5
          ELSE
            IF (ZA(I, J) .GT. 1.0) ZA(I, J) = 1.0
          ENDIF
10      CONTINUE
20    CONTINUE
      END

C     Kernel 16 -- Monte Carlo search loop (GOTO state machine)
      SUBROUTINE KERN16(X, Z, N)
      REAL X(1), Z(1)
      INTEGER N, K, J, M2, NZ
      M2 = N / 2
      K = 0
      J = 1
10    K = K + 1
      IF (K .GT. M2) GOTO 70
      NZ = MOD(ABS(K + INT(Z(K) * 10.0)), 3) + 1
      GOTO (20, 30, 40), NZ
20    X(J) = X(J) + 0.5
      J = J + 1
      GOTO 10
30    X(J) = X(J) * 0.9
      GOTO 10
40    IF (X(J) .GT. 2.0) GOTO 50
      X(J) = X(J) + 0.1
      GOTO 10
50    J = J + 2
      IF (J .GE. M2) GOTO 70
      GOTO 10
70    CONTINUE
      END

C     Kernel 17 -- implicit, conditional computation (GOTO loop)
      SUBROUTINE KERN17(X, Y, Z, N)
      REAL X(1), Y(1), Z(1), SCALE, XNM, E6
      INTEGER N, K, I
      SCALE = 0.625
      E6 = 0.1
      XNM = 0.0125
      K = N
      I = 1
10    IF (K .LE. 1) GOTO 30
      E6 = X(K) * SCALE + E6 * 0.5
      IF (E6 .GT. Y(K)) GOTO 20
      Y(K) = E6 + XNM
      K = K - 1
      GOTO 10
20    X(K) = E6 * 0.9
      K = K - 2
      GOTO 10
30    Z(I) = E6
      END

C     Kernel 18 -- 2-D explicit hydrodynamics fragment
      SUBROUTINE KERN18(ZA, ZB, ZP, ZQ, ZR, ZM, M)
      REAL ZA(1, 1), ZB(1, 1), ZP(1, 1), ZQ(1, 1), ZR(1, 1), ZM(1, 1)
      REAL S, T
      INTEGER M, J, K
      S = 0.01
      T = 0.0037
      DO 20 J = 2, M - 1
        DO 10 K = 2, M - 1
          ZA(J, K) = (ZP(J, K + 1) - ZP(J, K - 1)) * T + ZQ(J, K)
          ZB(J, K) = (ZR(J + 1, K) - ZR(J - 1, K)) * S + ZM(J, K)
10      CONTINUE
20    CONTINUE
      DO 40 J = 2, M - 1
        DO 30 K = 2, M - 1
          ZR(J, K) = ZR(J, K) + T * ZA(J, K)
          ZM(J, K) = ZM(J, K) + T * ZB(J, K)
30      CONTINUE
40    CONTINUE
      END

C     Kernel 19 -- general linear recurrence (forward and back)
      SUBROUTINE KERN19(X, Y, Z, N)
      REAL X(1), Y(1), Z(1), STB
      INTEGER N, K
      STB = 0.01
      DO 10 K = 1, N
        X(K) = X(K) + STB * Y(K) * Z(K)
10    CONTINUE
      DO 20 K = N, 1, -1
        Y(K) = Y(K) - STB * X(K)
20    CONTINUE
      END

C     Kernel 20 -- discrete ordinates transport
      SUBROUTINE KERN20(X, Y, Z, U, V, W, N)
      REAL X(1), Y(1), Z(1), U(1), V(1), W(1), DI, DN
      INTEGER N, K
      DO 10 K = 2, N
        DI = Y(K) - V(K) / (X(K - 1) + Z(K))
        DN = 0.2
        IF (DI .GT. 0.01) DN = MIN(V(K) / DI, 1.0)
        X(K) = ((W(K) + U(K) * DN) * X(K - 1) + Y(K)) / (U(K) * DN + 1.0)
10    CONTINUE
      END

C     Kernel 21 -- matrix * matrix product
      SUBROUTINE KERN21(ZA, ZB, ZR, M)
      REAL ZA(1, 1), ZB(1, 1), ZR(1, 1)
      INTEGER M, I, J, K
      DO 30 J = 1, M
        DO 20 I = 1, M
          DO 10 K = 1, M
            ZR(I, J) = ZR(I, J) + ZA(I, K) * ZB(K, J) * 0.001
10        CONTINUE
20      CONTINUE
30    CONTINUE
      END

C     Kernel 22 -- Planckian distribution
      SUBROUTINE KERN22(X, Y, Z, U, N)
      REAL X(1), Y(1), Z(1), U(1), EXPMAX
      INTEGER N, K
      EXPMAX = 20.0
      DO 10 K = 1, N
        Y(K) = MIN(U(K) / Z(K), EXPMAX)
        X(K) = Y(K) / (EXP(Y(K)) + 1.0E-6)
10    CONTINUE
      END

C     Kernel 23 -- 2-D implicit hydrodynamics fragment
      SUBROUTINE KERN23(ZA, ZB, ZP, ZQ, ZR, M)
      REAL ZA(1, 1), ZB(1, 1), ZP(1, 1), ZQ(1, 1), ZR(1, 1), QA
      INTEGER M, J, K
      DO 20 J = 2, M - 1
        DO 10 K = 2, M - 1
          QA = ZA(K, J + 1) * ZR(K, J) + ZA(K, J - 1) * ZB(K, J) + &
            ZA(K + 1, J) * ZP(K, J) + ZA(K - 1, J) * ZQ(K, J)
          ZA(K, J) = ZA(K, J) + 0.175 * (QA - ZA(K, J))
10      CONTINUE
20    CONTINUE
      END

C     Kernel 24 -- location of first minimum of an array
      SUBROUTINE KERN24(X, N)
      REAL X(1), XMIN
      INTEGER N, K, LOC
      LOC = 1
      XMIN = X(1)
      DO 10 K = 2, N
        IF (X(K) .LT. XMIN) THEN
          LOC = K
          XMIN = X(K)
        ENDIF
10    CONTINUE
      X(N) = REAL(LOC)
      END
"""
