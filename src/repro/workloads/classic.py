"""Classic Fortran-style algorithm workloads.

Programs with verifiable outputs, used to exercise the pipeline on
realistic algorithmic control flow beyond the paper's two benchmarks:

* ``SHELLSORT``  — Shell sort written with the traditional GOTO inner
  loop (data-dependent iteration counts, nested unstructured loops);
* ``GAUSS``      — Gaussian elimination with partial pivoting
  (triangular nested loops, data-dependent pivot swaps);
* ``NEWTON``     — Newton iteration with a convergence test (a
  DO WHILE whose trip count depends on the input);
* ``BINSEARCH``  — repeated binary search (logarithmic loops, three-way
  comparisons via arithmetic IF).
"""

from __future__ import annotations


def shellsort_source(n: int = 50) -> str:
    """Shell sort of a pseudo-random array; prints a sortedness check."""
    return f"""\
      PROGRAM SHELLSORT
      PARAMETER (N = {n})
      REAL A({n}), T
      INTEGER I, J, GAP, NBAD
      DO 10 I = 1, N
        A(I) = RAND()
10    CONTINUE
      GAP = N / 2
20    IF (GAP .LT. 1) GOTO 60
      I = GAP + 1
30    IF (I .GT. N) GOTO 50
      T = A(I)
      J = I
40    IF (J .LE. GAP) GOTO 45
      IF (A(J - GAP) .LE. T) GOTO 45
      A(J) = A(J - GAP)
      J = J - GAP
      GOTO 40
45    A(J) = T
      I = I + 1
      GOTO 30
50    GAP = GAP / 2
      GOTO 20
60    CONTINUE
      NBAD = 0
      DO 70 I = 2, N
        IF (A(I - 1) .GT. A(I)) NBAD = NBAD + 1
70    CONTINUE
      PRINT *, NBAD
      END
"""


def gauss_source(n: int = 8) -> str:
    """Gaussian elimination with partial pivoting; prints the max
    residual of A·x − b (should be ~0)."""
    return f"""\
      PROGRAM GAUSS
      PARAMETER (N = {n})
      REAL A({n}, {n}), B({n}), X({n}), SAVE({n}, {n}), BS({n})
      REAL PIV, FAC, T, RES, RMAX
      INTEGER I, J, K, IP
      DO 20 I = 1, N
        DO 10 J = 1, N
          A(I, J) = RAND() + 0.1
          SAVE(I, J) = A(I, J)
10      CONTINUE
        A(I, I) = A(I, I) + REAL(N)
        SAVE(I, I) = A(I, I)
        B(I) = RAND() * 10.0
        BS(I) = B(I)
20    CONTINUE
C     forward elimination with partial pivoting
      DO 60 K = 1, N - 1
        IP = K
        PIV = ABS(A(K, K))
        DO 30 I = K + 1, N
          IF (ABS(A(I, K)) .GT. PIV) THEN
            PIV = ABS(A(I, K))
            IP = I
          ENDIF
30      CONTINUE
        IF (IP .NE. K) THEN
          DO 40 J = 1, N
            T = A(K, J)
            A(K, J) = A(IP, J)
            A(IP, J) = T
40        CONTINUE
          T = B(K)
          B(K) = B(IP)
          B(IP) = T
        ENDIF
        DO 55 I = K + 1, N
          FAC = A(I, K) / A(K, K)
          DO 50 J = K, N
            A(I, J) = A(I, J) - FAC * A(K, J)
50        CONTINUE
          B(I) = B(I) - FAC * B(K)
55      CONTINUE
60    CONTINUE
C     back substitution
      DO 80 I = N, 1, -1
        T = B(I)
        DO 70 J = I + 1, N
          T = T - A(I, J) * X(J)
70      CONTINUE
        X(I) = T / A(I, I)
80    CONTINUE
C     residual against the saved system
      RMAX = 0.0
      DO 100 I = 1, N
        RES = BS(I)
        DO 90 J = 1, N
          RES = RES - SAVE(I, J) * X(J)
90      CONTINUE
        IF (ABS(RES) .GT. RMAX) RMAX = ABS(RES)
100   CONTINUE
      PRINT *, RMAX
      END
"""


def newton_source() -> str:
    """Newton's method for sqrt(INPUT(1)); prints iterations and error."""
    return """\
      PROGRAM NEWTON
      REAL C, X, XNEW, ERR
      INTEGER ITERS
      C = INPUT(1)
      X = C
      IF (X .LT. 1.0) X = 1.0
      ITERS = 0
      ERR = 1.0
      DO WHILE (ERR .GT. 1.0E-8)
        XNEW = 0.5 * (X + C / X)
        ERR = ABS(XNEW - X)
        X = XNEW
        ITERS = ITERS + 1
        IF (ITERS .GT. 100) ERR = 0.0
      ENDDO
      PRINT *, ITERS, ABS(X * X - C)
      END
"""


def binsearch_source(n: int = 64, queries: int = 40) -> str:
    """Binary searches over a sorted table, using arithmetic IF for
    the three-way comparison; prints hit count."""
    return f"""\
      PROGRAM BINSEARCH
      PARAMETER (N = {n}, NQ = {queries})
      INTEGER TAB({n}), KEY, LO, HI, MID, HITS, Q
      DO 10 I = 1, N
        TAB(I) = I * 3
10    CONTINUE
      HITS = 0
      DO 50 Q = 1, NQ
        KEY = IRAND(1, N * 3)
        LO = 1
        HI = N
20      IF (LO .GT. HI) GOTO 50
        MID = (LO + HI) / 2
        IF (TAB(MID) - KEY) 30, 40, 35
30      LO = MID + 1
        GOTO 20
35      HI = MID - 1
        GOTO 20
40      HITS = HITS + 1
50    CONTINUE
      PRINT *, HITS
      END
"""
