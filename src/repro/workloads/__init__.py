"""Workload programs used by the tests, examples and benchmarks.

* :mod:`repro.workloads.paper_example` — the Figure-1 fragment with
  the exact profile and COST assignment of the paper's Figure 3;
* :mod:`repro.workloads.livermore` — 24 Livermore-loop-style kernels
  (the paper's LOOPS benchmark);
* :mod:`repro.workloads.simple_cfd` — a SIMPLE-like 2-D
  hydrodynamics/heat-flow code (the paper's SIMPLE benchmark);
* :mod:`repro.workloads.unstructured` — GOTO-heavy programs
  exercising the unstructured-control-flow generality;
* :mod:`repro.workloads.generators` — a seeded random program
  generator for property-based testing.
"""

from repro.workloads.paper_example import (
    PAPER_SOURCE,
    FigureCostEstimator,
    paper_program,
)
from repro.workloads.livermore import livermore_source
from repro.workloads.simple_cfd import simple_source
from repro.workloads import classic, unstructured
from repro.workloads.generators import ProgramGenerator


def builtin_sources() -> list[tuple[str, str]]:
    """Every built-in workload as stable ``(id, source)`` pairs.

    The canonical corpus for the ``repro check`` CLI, the property
    tests and the CI gate: all of these must verify and lint clean.
    """
    pairs = [
        ("paper", PAPER_SOURCE),
        ("livermore", livermore_source()),
        ("simple", simple_source()),
        ("shellsort", classic.shellsort_source()),
        ("gauss", classic.gauss_source()),
        ("newton", classic.newton_source()),
        ("binsearch", classic.binsearch_source()),
    ]
    pairs.extend(
        (name.lower(), source)
        for name, source in sorted(unstructured.ALL_SOURCES.items())
    )
    return pairs


__all__ = [
    "builtin_sources",
    "PAPER_SOURCE",
    "FigureCostEstimator",
    "paper_program",
    "livermore_source",
    "simple_source",
    "classic",
    "unstructured",
    "ProgramGenerator",
]
