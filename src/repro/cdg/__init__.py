"""Control dependence (FOW87) and the forward control dependence graph."""

from repro.cdg.control_deps import CDEdge, compute_control_dependence
from repro.cdg.fcdg import FCDG, build_fcdg

__all__ = ["CDEdge", "compute_control_dependence", "FCDG", "build_fcdg"]
