"""Control dependence per Ferrante, Ottenstein and Warren (1987).

``y`` is control dependent on ``(x, l)`` iff ``y`` does not postdominate
``x``, and some path from ``x`` starting with the ``l``-labelled edge
reaches ``y`` with every intermediate node postdominated by ``y``.

The classic postdominator-tree formulation is used: for every CFG edge
``(u, v, l)``, each node on the postdominator-tree path from ``v`` up to
(but excluding) ``ipdom(u)`` is control dependent on ``(u, l)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.dominance import postdominator_tree
from repro.cfg.graph import ControlFlowGraph


@dataclass(frozen=True)
class CDEdge:
    """One control dependence: ``dst`` is control dependent on
    ``(src, label)``."""

    src: int
    dst: int
    label: str


def compute_control_dependence(
    cfg: ControlFlowGraph, ipdom: dict[int, int] | None = None
) -> list[CDEdge]:
    """All control dependence edges of ``cfg`` (back edges included).

    ``ipdom`` may be supplied to reuse a postdominator tree; otherwise
    it is computed here.
    """
    if ipdom is None:
        ipdom = postdominator_tree(cfg)
    deps: list[CDEdge] = []
    seen: set[tuple[int, int, str]] = set()
    for edge in cfg.edges:
        stop_at = ipdom[edge.src]
        runner = edge.dst
        while runner != stop_at:
            key = (edge.src, runner, edge.label)
            if key not in seen:
                seen.add(key)
                deps.append(CDEdge(edge.src, runner, edge.label))
            runner = ipdom[runner]
    return deps
