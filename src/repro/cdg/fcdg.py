"""The forward control dependence graph (FCDG).

The FCDG is the control dependence graph of an *acyclified* extended
CFG.  Cutting cycles the right way matters:

* every back edge ``(u, h, l)`` is redirected to a per-loop ITER_END
  node — taking a back edge ends the *iteration*, the unit whose
  control structure the FCDG describes, so nothing in the next
  iteration may become dependent on this iteration's branches;
* each ITER_END gets *pseudo* edges to its loop's postexits: after
  the last iteration, control really does leave through one of them.
  This keeps postdominance faithful (code after the loop still
  postdominates the loop body) without introducing taken-at-runtime
  edges;
* control dependence (FOW87) is then computed globally on the acyclic
  graph, and edges incident to ITER_END nodes are discarded.

The result — together with the PREHEADER/POSTEXIT/START/STOP pseudo
structure of the ECFG — is rooted at START, connected and acyclic,
with every node except STOP present, exactly as Section 2 claims.
Cross-interval dependences (a node after an inner loop depending on
the inner loop's normal-exit branch) are preserved, which the
frequency equations of Section 3 rely on.

The FCDG also exposes the vocabulary of Sections 3-5: *control
conditions* ``(u, l)``, the ``L(u)`` / ``C(u, l)`` notation of
Section 5, and topological orders for the frequency/TIME/VAR passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.cdg.control_deps import CDEdge, compute_control_dependence
from repro.cfg.dominance import postdominator_tree
from repro.cfg.graph import ControlFlowGraph, StmtKind
from repro.ecfg import ExtendedCFG


@dataclass
class FCDG:
    """Forward control dependence graph over an extended CFG."""

    ecfg: ExtendedCFG
    edges: list[CDEdge] = field(default_factory=list)
    #: node -> outgoing CD edges, grouped: label -> children.
    _children: dict[int, dict[str, list[int]]] = field(default_factory=dict)
    _parents: dict[int, list[CDEdge]] = field(default_factory=dict)
    _topo: list[int] = field(default_factory=list)

    # -- structure ---------------------------------------------------------

    @property
    def root(self) -> int:
        return self.ecfg.start

    @property
    def nodes(self) -> list[int]:
        """All FCDG nodes in topological order (root first)."""
        return list(self._topo)

    def labels(self, node: int) -> list[str]:
        """L(u): the labels on u's outgoing FCDG edges."""
        return list(self._children.get(node, {}))

    def children(self, node: int, label: str) -> list[int]:
        """C(u, l): u's FCDG children under label l."""
        return list(self._children.get(node, {}).get(label, []))

    def all_children(self, node: int) -> list[tuple[str, int]]:
        return [
            (label, child)
            for label, kids in self._children.get(node, {}).items()
            for child in kids
        ]

    def parents(self, node: int) -> list[CDEdge]:
        """The CD edges targeting ``node``."""
        return list(self._parents.get(node, []))

    def conditions(self) -> list[tuple[int, str]]:
        """All control conditions (u, l), in topological node order."""
        return [
            (node, label)
            for node in self._topo
            for label in self._children.get(node, {})
        ]

    def topological_order(self) -> list[int]:
        return list(self._topo)

    def bottom_up_order(self) -> list[int]:
        return list(reversed(self._topo))

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check the Section-2 structural claims; raises AnalysisError."""
        graph_nodes = set(self.ecfg.graph.nodes)
        expected = graph_nodes - {self.ecfg.stop}
        present = set(self._topo)
        if present != expected:
            missing = expected - present
            extra = present - expected
            raise AnalysisError(
                f"FCDG node set mismatch (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        for node in expected:
            if node != self.root and not self._parents.get(node):
                raise AnalysisError(f"FCDG node {node} has no parents")


def acyclic_ecfg(ecfg: ExtendedCFG) -> tuple[ControlFlowGraph, set[int]]:
    """The acyclified copy of the ECFG used for CD computation.

    Returns the graph and the set of ITER_END node ids added to it.
    """
    graph = ecfg.graph.copy()
    iter_ends: set[int] = set()
    for header in ecfg.intervals.loop_headers:
        preheader = ecfg.preheader_of[header]
        # Every ECFG in-edge of a header other than the preheader's is
        # the tail of a back-edge chain (interval entries were all
        # redirected through the preheader; a back edge that doubles
        # as an inner-loop exit arrives via that loop's postexit).
        back_edges = [
            edge for edge in graph.in_edges(header) if edge.src != preheader
        ]
        if not back_edges:
            continue
        iter_end = graph.add_node(
            StmtKind.ITER_END, text=f"ITER_END({header})"
        )
        iter_ends.add(iter_end.id)
        for current in back_edges:
            graph.remove_edge(current)
            graph.add_edge(current.src, iter_end.id, current.label)
        postexits = ecfg.postexits_of(header)
        if not postexits:
            raise AnalysisError(
                f"{graph.name}: loop at node {header} has no exits "
                "(nonterminating control flow)"
            )
        for i, postexit in enumerate(postexits, start=1):
            # Pseudo edges: never taken, but after the final iteration
            # control really leaves through one of these postexits.
            graph.add_edge(iter_end.id, postexit, f"Z{i}")
    return graph, iter_ends


def build_fcdg(ecfg: ExtendedCFG) -> FCDG:
    """Compute the FCDG of an extended CFG and validate its structure."""
    graph, iter_ends = acyclic_ecfg(ecfg)
    ipdom = postdominator_tree(graph)
    cd_edges = compute_control_dependence(graph, ipdom)
    forward = [
        e for e in cd_edges if e.src not in iter_ends and e.dst not in iter_ends
    ]

    fcdg = FCDG(ecfg=ecfg, edges=forward)
    for edge in forward:
        fcdg._children.setdefault(edge.src, {}).setdefault(
            edge.label, []
        ).append(edge.dst)
        fcdg._parents.setdefault(edge.dst, []).append(edge)

    fcdg._topo = _topological_sort(fcdg)
    fcdg.validate()
    return fcdg


def _topological_sort(fcdg: FCDG) -> list[int]:
    """Topological order of FCDG nodes from the root (Kahn's algorithm).

    Raises AnalysisError when a cycle survives acyclification — which
    would mean the construction is broken for this input.
    """
    indegree: dict[int, int] = {fcdg.root: 0}
    for edge in fcdg.edges:
        indegree.setdefault(edge.src, 0)
        indegree[edge.dst] = indegree.get(edge.dst, 0) + 1
    ready = sorted(node for node, deg in indegree.items() if deg == 0)
    order: list[int] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for label, child in fcdg.all_children(node):
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    if len(order) != len(indegree):
        leftover = sorted(n for n, d in indegree.items() if d > 0)
        raise AnalysisError(f"FCDG contains a cycle through {leftover}")
    return order
