"""Extended control flow graph construction (Section 2 of the paper)."""

from repro.ecfg.build import ExtendedCFG, build_ecfg

__all__ = ["ExtendedCFG", "build_ecfg"]
