"""The six-step extended-CFG construction of Section 2.

Starting from a reducible CFG and its interval structure, we insert:

* one PREHEADER node per loop header, redirecting interval-entry edges
  through it (steps 2a-2c);
* one POSTEXIT node per interval-exit edge, splitting the edge and
  adding a *pseudo* control flow edge from the exiting interval's
  preheader to the postexit (steps 3a-3c);
* START and STOP nodes and the pseudo START→STOP edge (steps 4-6).

Pseudo edges carry labels ``Z1``, ``Z2``, ... (one numbering per source
node) and can never be taken at run time; they exist so that the
forward control dependence graph acquires the nested interval
structure the rest of the framework relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.cfg.graph import (
    LABEL_UNCOND,
    CFGEdge,
    ControlFlowGraph,
    NodeType,
    StmtKind,
)
from repro.intervals import IntervalStructure, compute_intervals


@dataclass
class ExtendedCFG:
    """The ECFG plus the bookkeeping the later passes need."""

    graph: ControlFlowGraph
    intervals: IntervalStructure
    start: int
    stop: int
    #: loop header -> its preheader node (and the inverse).
    preheader_of: dict[int, int] = field(default_factory=dict)
    header_of: dict[int, int] = field(default_factory=dict)
    #: postexit node -> the original interval-exit edge it splits.
    postexit_source: dict[int, CFGEdge] = field(default_factory=dict)
    #: ECFG-level innermost interval header for every node (extends the
    #: original HDR mapping to the synthetic nodes).
    ehdr: dict[int, int] = field(default_factory=dict)

    def interval_members(self, header: int) -> set[int]:
        """All ECFG nodes inside the interval headed by ``header``."""

        def inside(node: int) -> bool:
            cursor = self.ehdr[node]
            while cursor != 0:
                if cursor == header:
                    return True
                cursor = self.intervals.hdr_parent.get(cursor, 0)
            return False

        return {node for node in self.graph.nodes if inside(node)}

    def loop_label(self, preheader: int) -> str:
        """The label of the preheader's edge to its header node.

        This is the edge whose FREQ is the loop frequency
        (Definition 3, case 1).
        """
        header = self.header_of[preheader]
        for edge in self.graph.out_edges(preheader):
            if edge.dst == header and not edge.is_pseudo:
                return edge.label
        raise AnalysisError(f"preheader {preheader} lost its header edge")

    def is_preheader(self, node: int) -> bool:
        return node in self.header_of

    def postexits_of(self, header: int) -> list[int]:
        """POSTEXIT nodes attached to the interval headed by ``header``."""
        preheader = self.preheader_of[header]
        return [
            edge.dst
            for edge in self.graph.out_edges(preheader)
            if edge.is_pseudo
        ]


class _PseudoLabels:
    """Per-source fresh Z labels (labels must be unique per source)."""

    def __init__(self) -> None:
        self._counters: dict[int, int] = {}

    def fresh(self, source: int) -> str:
        self._counters[source] = self._counters.get(source, 0) + 1
        return f"Z{self._counters[source]}"


def build_ecfg(cfg: ControlFlowGraph) -> ExtendedCFG:
    """Run the Section-2 construction on a reducible CFG.

    The input CFG is not modified; the ECFG is built on a copy.
    """
    intervals = compute_intervals(cfg)
    graph = cfg.copy()
    pseudo = _PseudoLabels()

    preheader_of: dict[int, int] = {}
    header_of: dict[int, int] = {}
    ehdr: dict[int, int] = dict(intervals.hdr)

    # Steps 2a-2c: preheaders for every real loop header.
    for header in intervals.loop_headers:
        graph.nodes[header].type = NodeType.HEADER
        preheader = graph.add_node(
            StmtKind.PREHEADER,
            type=NodeType.PREHEADER,
            text=f"PREHEADER({header})",
        )
        preheader_of[header] = preheader.id
        header_of[preheader.id] = header
        parent = intervals.hdr_parent[header]
        ehdr[preheader.id] = parent if parent != 0 else intervals.root
        for edge in graph.in_edges(header):
            source_hdr = intervals.hdr[edge.src]
            if intervals.lca(source_hdr, header) != header:
                graph.remove_edge(edge)
                graph.add_edge(edge.src, preheader.id, edge.label)
        graph.add_edge(preheader.id, header, LABEL_UNCOND)

    # Steps 3a-3c: postexits for every interval-exit edge.  We iterate
    # over the *original* edges; the current ECFG edge with the same
    # (source, label) may already have been redirected to a preheader.
    postexit_source: dict[int, CFGEdge] = {}
    for edge in list(cfg.edges):
        src_hdr = intervals.hdr[edge.src]
        dst_hdr = intervals.hdr[edge.dst]
        if intervals.lca(src_hdr, dst_hdr) == src_hdr:
            continue  # not an interval exit
        current = graph.edge_to(edge.src, edge.label)
        postexit = graph.add_node(
            StmtKind.POSTEXIT,
            type=NodeType.POSTEXIT,
            text=f"POSTEXIT({edge.src}->{edge.dst})",
        )
        postexit_source[postexit.id] = edge
        ehdr[postexit.id] = intervals.lca(src_hdr, dst_hdr)
        graph.remove_edge(current)
        graph.add_edge(edge.src, postexit.id, edge.label)
        graph.add_edge(postexit.id, current.dst, LABEL_UNCOND)
        exiting_preheader = preheader_of[src_hdr]
        graph.add_edge(
            exiting_preheader, postexit.id, pseudo.fresh(exiting_preheader)
        )

    # Steps 4-6: START, STOP and the pseudo START→STOP edge.
    start = graph.add_node(StmtKind.START, type=NodeType.START, text="START")
    stop = graph.add_node(StmtKind.STOP_NODE, type=NodeType.STOP, text="STOP")
    ehdr[start.id] = intervals.root
    ehdr[stop.id] = intervals.root
    graph.add_edge(start.id, graph.entry, LABEL_UNCOND)
    if not graph.in_edges(graph.exit):
        raise AnalysisError(
            f"{cfg.name or 'cfg'}: exit node is unreachable "
            "(nonterminating program)"
        )
    graph.add_edge(graph.exit, stop.id, LABEL_UNCOND)
    graph.add_edge(start.id, stop.id, pseudo.fresh(start.id))
    graph.entry = start.id
    graph.exit = stop.id

    return ExtendedCFG(
        graph=graph,
        intervals=intervals,
        start=start.id,
        stop=stop.id,
        preheader_of=preheader_of,
        header_of=header_of,
        postexit_source=postexit_source,
        ehdr=ehdr,
    )
