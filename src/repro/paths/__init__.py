"""Ball–Larus path profiling: the second profiling mode.

Where :mod:`repro.profiling` places *counters* on nodes and edges
(Section 3's Opt-1/2/3), this package numbers the acyclic paths of
each procedure's back-edge-split CFG and profiles *which paths ran*,
reconstructing the same Definition-3 material (bit-for-bit) with
strictly richer information — hot paths for trace scheduling, exact
path spectra for coverage.

Selected end-to-end as ``mode="paths"`` on
:func:`repro.pipeline.profile_program`, ``repro profile --mode
paths``, the batch engine and the service.  See
``docs/path_profiling.md``.
"""

from repro.paths.numbering import (
    DEFAULT_MAX_PATHS,
    DecodedPath,
    PathOverflowError,
    ProcPathPlan,
    ProgramPathPlan,
    build_proc_path_plan,
    path_plan_fingerprint,
    path_program_plan,
)
from repro.paths.reconstruct import (
    path_counts_to_totals,
    reconstruct_path_procedure,
    reconstruct_path_profile,
)
from repro.paths.runtime import PathExecutor

__all__ = [
    "DEFAULT_MAX_PATHS",
    "DecodedPath",
    "PathExecutor",
    "PathOverflowError",
    "ProcPathPlan",
    "ProgramPathPlan",
    "build_proc_path_plan",
    "path_counts_to_totals",
    "path_plan_fingerprint",
    "path_program_plan",
    "reconstruct_path_procedure",
    "reconstruct_path_profile",
]
