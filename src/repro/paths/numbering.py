"""Ball–Larus acyclic-path numbering over the back-edge-split CFG.

The counter plans of Section 3 measure *edges*; a path plan measures
which *acyclic paths* execute, following Ball and Larus: remove the
natural back edges (the interval machinery's ``back_edges`` — edges
whose target dominates their source), add a dummy edge ``ENTRY → h``
for every loop header ``h`` and a dummy edge ``u → EXIT`` for every
back edge ``u → h``, and number the paths of the resulting DAG with
the ``NumPaths`` recurrence::

    NumPaths(v) = 1                      if v is a sink (EXIT, STOP)
    NumPaths(v) = Σ_i NumPaths(w_i)      over ordered out-edges v → w_i

The i-th out-edge carries the increment ``Σ_{j<i} NumPaths(w_j)``
(the first ordered edge always carries 0), so summing increments
along any DAG path yields a distinct id in ``[0, NumPaths(entry))``
and every id decodes back to exactly one path.

At run time a per-invocation register ``r`` starts at 0, every
non-zero increment adds to it, and two kinds of *flush* record a
finished path:

* taking back edge ``u → h``: ``paths[r + bump_add] += 1; r = reset``
  where ``bump_add``/``reset`` are the increments of the dummy
  ``u → EXIT`` / ``ENTRY → h`` edges;
* reaching EXIT (or halting at a STOP sink): ``paths[r] += 1``.

The plan is a pure artifact — it stores increments, flush constants
and decode tables, pickles through the artifact cache next to counter
plans, and is fingerprintable for backend variant caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.reducibility import back_edges
from repro.errors import ProfilingError

#: Width guard: a procedure whose DAG has more acyclic paths than this
#: cannot be path-profiled (a real deployment keeps ``r`` in a machine
#: word; we keep ids decodable and tables auditable).
DEFAULT_MAX_PATHS = 1 << 31

#: Path tables are only materialized in full below this many paths
#: (decoding single executed ids never needs the full table).
ENUMERATION_LIMIT = 1 << 16


class PathOverflowError(ProfilingError):
    """A procedure exceeds the path-register width guard."""


# Decode-table entry kinds (see ProcPathPlan.choices).
_KIND_EDGE = 0  # a real CFG edge (src, label) -> dst
_KIND_ENTRY_DUMMY = 1  # dummy ENTRY -> header: the path starts at h
_KIND_EXIT_DUMMY = 2  # dummy u -> EXIT: the path ends taking back edge


class DecodedPath(NamedTuple):
    """One acyclic path regenerated from its id."""

    path_id: int
    #: First real node on the path: the procedure entry, or a loop
    #: header when the path begins with a dummy ``ENTRY → h`` edge.
    start: int
    #: Real nodes in execution order.  A path ending on a back edge
    #: ``u → h`` stops at ``u`` — node ``h`` belongs to the next path.
    nodes: tuple[int, ...]
    #: Real CFG edges traversed, *including* the ending back edge.
    edges: tuple[tuple[int, str], ...]
    #: "exit" | "backedge" | "stop"
    end: str
    #: The ``(src, label)`` of the ending back edge, if any.
    back_edge: tuple[int, str] | None


@dataclass
class ProcPathPlan:
    """The Ball–Larus path-numbering artifact for one procedure."""

    proc: str
    entry: int
    exit: int
    num_paths: int
    #: Register increment per real non-back DAG edge (zeros included,
    #: so audits can see the whole DAG; runtimes skip zero entries).
    increments: dict[tuple[int, str], int]
    #: Back edge ``(u, label)`` → ``(bump_add, reset)`` flush constants.
    flushes: dict[tuple[int, str], tuple[int, int]]
    #: ``(src, label) → dst`` for every real CFG edge (back edges too).
    edge_dst: dict[tuple[int, str], int]
    #: DAG sinks other than EXIT (STOP nodes): a register arriving
    #: here holds a complete path id.
    stop_sinks: frozenset[int]
    #: Ordered decode table: ``node → ((inc, kind, data), ...)`` with
    #: increments ascending.  ``data`` is ``(src, label, dst)`` for
    #: real edges, the header id for entry dummies, and the back-edge
    #: ``(src, label)`` for exit dummies.
    choices: dict[int, tuple[tuple[int, int, tuple], ...]]
    _paths_cache: tuple[DecodedPath, ...] | None = field(
        default=None, repr=False, compare=False
    )

    # -- static shape ----------------------------------------------------

    @property
    def kind(self) -> str:
        return "paths"

    @property
    def n_sites(self) -> int:
        """Static instrumentation sites: non-zero increments, back-edge
        flushes (each one bump + one reset) and the EXIT flush."""
        nonzero = sum(1 for inc in self.increments.values() if inc)
        return nonzero + 2 * len(self.flushes) + 1

    # -- decoding --------------------------------------------------------

    def decode(self, path_id: int) -> DecodedPath:
        """Regenerate the unique acyclic path with the given id."""
        if not 0 <= path_id < self.num_paths:
            raise ProfilingError(
                f"{self.proc}: path id {path_id} outside [0, {self.num_paths})"
            )
        remaining = path_id
        current = self.entry
        start = self.entry
        nodes: list[int] = []
        edges: list[tuple[int, str]] = []
        while True:
            options = self.choices.get(current, ())
            if not options:
                break  # sink: EXIT or STOP
            # Choose the last option whose increment fits; increments
            # ascend, so scan from the right (out-degrees are tiny).
            chosen = None
            for option in reversed(options):
                if option[0] <= remaining:
                    chosen = option
                    break
            if chosen is None:  # pragma: no cover - numbering invariant
                raise ProfilingError(
                    f"{self.proc}: path id {path_id} undecodable at node "
                    f"{current}"
                )
            inc, kind, data = chosen
            remaining -= inc
            if kind == _KIND_ENTRY_DUMMY:
                # Only ever the first step: the path starts at the header.
                current = data
                start = data
            elif kind == _KIND_EXIT_DUMMY:
                nodes.append(current)
                edges.append(data)
                if remaining:  # pragma: no cover - numbering invariant
                    raise ProfilingError(
                        f"{self.proc}: residue {remaining} decoding path "
                        f"{path_id}"
                    )
                return DecodedPath(
                    path_id, start, tuple(nodes), tuple(edges), "backedge", data
                )
            else:
                src, label, dst = data
                nodes.append(src)
                edges.append((src, label))
                current = dst
        nodes.append(current)
        if remaining:  # pragma: no cover - numbering invariant
            raise ProfilingError(
                f"{self.proc}: residue {remaining} decoding path {path_id}"
            )
        end = "exit" if current == self.exit else "stop"
        return DecodedPath(path_id, start, tuple(nodes), tuple(edges), end, None)

    def decode_partial(self, node: int, register: int) -> DecodedPath:
        """The executed *prefix* of a suspended frame.

        Ball–Larus ids have the prefix property: a register value ``r``
        at node ``v`` is the id of the full path "prefix then always
        first choice", so decoding ``r`` and truncating at ``v``
        regenerates exactly the executed prefix.
        """
        full = self.decode(register)
        if node not in full.nodes:
            raise ProfilingError(
                f"{self.proc}: register {register} is not a path prefix "
                f"ending at node {node}"
            )
        cut = full.nodes.index(node)
        return DecodedPath(
            register,
            full.start,
            full.nodes[: cut + 1],
            full.edges[:cut],
            "partial",
            None,
        )

    def enumerate_paths(
        self, limit: int = ENUMERATION_LIMIT
    ) -> tuple[DecodedPath, ...]:
        """The full path table (memoized); guarded by ``limit``."""
        if self._paths_cache is not None:
            return self._paths_cache
        if self.num_paths > limit:
            raise PathOverflowError(
                f"{self.proc}: {self.num_paths} paths exceed the "
                f"enumeration limit {limit}"
            )
        table = tuple(self.decode(i) for i in range(self.num_paths))
        self._paths_cache = table
        return table

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_paths_cache"] = None  # tables rebuild on demand
        return state


@dataclass
class ProgramPathPlan:
    """Per-procedure path plans for a whole program."""

    plans: dict[str, ProcPathPlan]
    _fingerprint_cache: tuple | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def kind(self) -> str:
        return "paths"

    @property
    def total_paths(self) -> int:
        return sum(plan.num_paths for plan in self.plans.values())

    @property
    def n_sites(self) -> int:
        return sum(plan.n_sites for plan in self.plans.values())

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_fingerprint_cache"] = None
        return state


def _ordered_dag_edges(
    cfg: ControlFlowGraph,
    backs: dict[tuple[int, str], int],
) -> tuple[dict[int, list[tuple[int, tuple]]], list[int]]:
    """The split DAG: per-node ordered (kind, data) choice skeletons
    plus the loop headers in first-appearance order."""
    headers: list[int] = []
    seen_headers: set[int] = set()
    for edge in cfg.edges:
        if (edge.src, edge.label) in backs and edge.dst not in seen_headers:
            seen_headers.add(edge.dst)
            headers.append(edge.dst)

    out: dict[int, list[tuple[int, tuple]]] = {n: [] for n in cfg.nodes}
    for node_id in cfg.nodes:
        for edge in cfg.out_edges(node_id):
            if edge.is_pseudo:
                continue
            if (edge.src, edge.label) in backs:
                continue
            out[node_id].append((_KIND_EDGE, (edge.src, edge.label, edge.dst)))
        # Dummy u -> EXIT edges, one per back edge out of this node, in
        # CFG edge order (kept after the real edges so the common
        # fall-through choice stays increment-free).
        for edge in cfg.out_edges(node_id):
            if (edge.src, edge.label) in backs:
                out[node_id].append((_KIND_EXIT_DUMMY, (edge.src, edge.label)))
    # Dummy ENTRY -> h edges, one per distinct header.
    for header in headers:
        out[cfg.entry].append((_KIND_ENTRY_DUMMY, header))
    return out, headers


def _reverse_topological(
    cfg: ControlFlowGraph,
    out: dict[int, list[tuple[int, tuple]]],
) -> list[int]:
    """DAG nodes in reverse topological order (iterative DFS postorder)."""
    order: list[int] = []
    state: dict[int, int] = {}  # 1 = on stack, 2 = done
    stack: list[tuple[int, Iterator]] = []

    def successors(node: int) -> Iterator[int]:
        for kind, data in out[node]:
            if kind == _KIND_EDGE:
                yield data[2]
            elif kind == _KIND_ENTRY_DUMMY:
                yield data
            # exit dummies lead out of the DAG; no successor to visit

    for root in cfg.nodes:
        if state.get(root):
            continue
        stack.append((root, successors(root)))
        state[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                mark = state.get(succ)
                if mark == 1:
                    raise ProfilingError(
                        f"{cfg.name}: cycle through node {succ} after "
                        "back-edge removal (irreducible CFG?)"
                    )
                if mark is None:
                    state[succ] = 1
                    stack.append((succ, successors(succ)))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                state[node] = 2
                order.append(node)
    return order


def build_proc_path_plan(
    cfg: ControlFlowGraph, *, max_paths: int = DEFAULT_MAX_PATHS
) -> ProcPathPlan:
    """Number the acyclic paths of one procedure's CFG."""
    backs: dict[tuple[int, str], int] = {
        (e.src, e.label): e.dst for e in back_edges(cfg)
    }
    out, _headers = _ordered_dag_edges(cfg, backs)
    order = _reverse_topological(cfg, out)

    num_paths: dict[int, int] = {}
    for node in order:  # reverse topological: successors first
        options = out[node]
        if not options:
            num_paths[node] = 1
            continue
        total = 0
        for kind, data in options:
            if kind == _KIND_EDGE:
                total += num_paths[data[2]]
            elif kind == _KIND_ENTRY_DUMMY:
                total += num_paths[data]
            else:  # exit dummy: one way to leave
                total += 1
        if total > max_paths:
            raise PathOverflowError(
                f"{cfg.name}: node {node} roots {total} acyclic paths "
                f"(limit {max_paths})"
            )
        num_paths[node] = total

    increments: dict[tuple[int, str], int] = {}
    choices: dict[int, tuple[tuple[int, int, tuple], ...]] = {}
    bump_adds: dict[tuple[int, str], int] = {}
    entry_resets: dict[int, int] = {}
    for node in cfg.nodes:
        options = out[node]
        if not options:
            continue
        prefix = 0
        decoded: list[tuple[int, int, tuple]] = []
        for kind, data in options:
            decoded.append((prefix, kind, data))
            if kind == _KIND_EDGE:
                increments[(data[0], data[1])] = prefix
                prefix += num_paths[data[2]]
            elif kind == _KIND_ENTRY_DUMMY:
                entry_resets[data] = prefix
                prefix += num_paths[data]
            else:
                bump_adds[data] = prefix
                prefix += 1
        choices[node] = tuple(decoded)

    flushes = {
        (src, label): (bump_adds[(src, label)], entry_resets[backs[(src, label)]])
        for (src, label) in backs
    }
    edge_dst = {
        (e.src, e.label): e.dst for e in cfg.edges if not e.is_pseudo
    }
    stop_sinks = frozenset(
        node
        for node in cfg.nodes
        if not out[node] and node != cfg.exit
    )
    return ProcPathPlan(
        proc=cfg.name,
        entry=cfg.entry,
        exit=cfg.exit,
        num_paths=num_paths.get(cfg.entry, 1),
        increments=increments,
        flushes=flushes,
        edge_dst=edge_dst,
        stop_sinks=stop_sinks,
        choices=choices,
    )


def path_program_plan(program, *, max_paths: int = DEFAULT_MAX_PATHS) -> ProgramPathPlan:
    """Build the path plan for every procedure of a compiled program."""
    return ProgramPathPlan(
        plans={
            name: build_proc_path_plan(cfg, max_paths=max_paths)
            for name, cfg in program.cfgs.items()
        }
    )


def path_plan_fingerprint(plan: ProgramPathPlan) -> tuple:
    """Content fingerprint for backend variant caching (memoized)."""
    cached = plan._fingerprint_cache
    if cached is not None:
        return cached
    per_proc = tuple(
        (
            name,
            proc.entry,
            proc.exit,
            proc.num_paths,
            tuple(sorted(proc.increments.items())),
            tuple(sorted(proc.flushes.items())),
        )
        for name, proc in sorted(plan.plans.items())
    )
    fingerprint = ("paths", per_proc)
    plan._fingerprint_cache = fingerprint
    return fingerprint
