"""Reconstruction of Definition-3 profile material from path counts.

Each executed path id decodes (sparsely — only observed ids are ever
decoded) to its node/edge membership; summing memberships weighted by
the path counts yields exact edge and node execution counts, from
which the same ``ProcedureProfile`` targets a smart counter plan
measures are assembled:

* ``invocations``          — paths starting at the procedure entry;
* ``branch_counts[(u,l)]`` — summed over paths containing edge (u,l);
* ``header_counts[h]``     — summed over paths containing node h.

The target *set* is derived from the FCDG exactly the way
``smart_plan`` derives its measures, and every value is an integer
carried in floats below 2**53, so the reconstructed profile — and the
FREQ/NODE_FREQ/TOTAL_FREQ analysis computed from it — is bit-for-bit
identical to the counter-based profile.  The conformance suite
asserts this on the whole corpus.
"""

from __future__ import annotations

from repro.cfg.graph import is_pseudo_label
from repro.paths.numbering import ProgramPathPlan
from repro.paths.runtime import PathExecutor
from repro.profiling.database import ProcedureProfile, ProgramProfile


def path_counts_to_totals(
    plan, counts: dict[int, float], partials=()
) -> tuple[dict[int, float], dict[tuple[int, str], float]]:
    """Node and edge execution totals for one procedure.

    ``counts`` maps executed path ids to accumulated counts;
    ``partials`` holds ``(node, register)`` prefixes of frames unwound
    by STOP while suspended in a call (each weighted 1).
    """
    node_counts: dict[int, float] = {}
    edge_counts: dict[tuple[int, str], float] = {}

    def accumulate(decoded, weight: float) -> None:
        for node in decoded.nodes:
            node_counts[node] = node_counts.get(node, 0.0) + weight
        for edge in decoded.edges:
            edge_counts[edge] = edge_counts.get(edge, 0.0) + weight

    for path_id, count in counts.items():
        if count:
            accumulate(plan.decode(path_id), count)
    for node, register in partials:
        accumulate(plan.decode_partial(node, register), 1.0)
    return node_counts, edge_counts


def reconstruct_path_procedure(
    program, name: str, plan, counts, partials=()
) -> ProcedureProfile:
    """Assemble one procedure's profile from its path counts."""
    node_counts, edge_counts = path_counts_to_totals(plan, counts, partials)
    ecfg = program.ecfgs[name]
    fcdg = program.fcdgs[name]
    profile = ProcedureProfile(name)
    profile.invocations = node_counts.get(plan.entry, 0.0)
    for node, label in fcdg.conditions():
        if is_pseudo_label(label):
            continue
        if node == ecfg.start:
            continue  # measured by the invocation count
        if ecfg.is_preheader(node):
            header = ecfg.header_of[node]
            profile.header_counts[header] = node_counts.get(header, 0.0)
        else:
            profile.branch_counts[(node, label)] = edge_counts.get(
                (node, label), 0.0
            )
    return profile


def reconstruct_path_profile(
    program, plan: ProgramPathPlan, executor: PathExecutor, runs: int = 1
) -> ProgramProfile:
    """Reconstruct a whole program's profile from executed path counts."""
    partials_by_proc: dict[str, list[tuple[int, int]]] = {}
    for proc, node, register in executor.partials:
        partials_by_proc.setdefault(proc, []).append((node, register))
    profile = ProgramProfile(runs=runs)
    for name, proc_plan in plan.plans.items():
        profile.procedures[name] = reconstruct_path_procedure(
            program,
            name,
            proc_plan,
            executor.path_counts.get(name, {}),
            partials_by_proc.get(name, ()),
        )
    return profile
