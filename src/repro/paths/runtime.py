"""Run-time execution of a path plan on the reference interpreter.

:class:`PathExecutor` is the path-profiling sibling of
:class:`repro.profiling.runtime.PlanExecutor`: it implements the
interpreter's hook protocol and maintains one *frame* per live
procedure invocation, each holding the Ball–Larus path register.

Event costs follow the counter-update accounting of Section 3.3 so
path and counter instrumentation are comparable in the same currency:

* a non-zero edge increment ``r += k`` is **1** update;
* a back-edge flush ``paths[r + b] += 1; r = reset`` is **2** updates;
* the EXIT flush ``paths[r] += 1`` is **1** update;
* recording the register of a frame unwound by STOP costs **0** —
  the program is over, nothing executes.

The fused fast backends (`repro.fastexec`, `repro.codegen`) bypass
these hooks entirely and write the same state — ``path_counts``,
``partials``, ``updates`` — directly, which the conformance suite
compares bit-for-bit.
"""

from __future__ import annotations

from repro.interp.machine import ExecutionHooks
from repro.paths.numbering import ProgramPathPlan


class PathExecutor(ExecutionHooks):
    """Executes a program path plan's register updates during a run."""

    def __init__(self, plan: ProgramPathPlan):
        self.plan = plan
        #: proc -> {path id -> accumulated count}; sparse, floats to
        #: match the counter arrays (integer-valued, exact < 2**53).
        self.path_counts: dict[str, dict[int, float]] = {
            name: {} for name in plan.plans
        }
        #: ``(proc, node, register)`` prefixes of frames that were
        #: suspended in a procedure call when STOP unwound them,
        #: innermost first.
        self.partials: list[tuple[str, int, int]] = []
        #: Total register updates performed (the Table-1 cost metric).
        self.updates: int = 0
        # Live frames, outermost first: [proc, current node, register].
        self._frames: list[list] = []

    # -- interpreter hook protocol --------------------------------------

    def on_node(self, proc: str, node: int, trip: float | None) -> int:
        plan = self.plan.plans[proc]
        if node == plan.entry:
            self._frames.append([proc, node, 0])
            return 0
        if node == plan.exit:
            frame = self._frames.pop()
            counts = self.path_counts[proc]
            register = frame[2]
            counts[register] = counts.get(register, 0.0) + 1.0
            self.updates += 1
            return 1
        return 0

    def on_edge(self, proc: str, src: int, label: str) -> int:
        plan = self.plan.plans[proc]
        frame = self._frames[-1]
        frame[1] = plan.edge_dst[(src, label)]
        flush = plan.flushes.get((src, label))
        if flush is not None:
            bump_add, reset = flush
            counts = self.path_counts[proc]
            key = frame[2] + bump_add
            counts[key] = counts.get(key, 0.0) + 1.0
            frame[2] = reset
            self.updates += 2
            return 2
        inc = plan.increments.get((src, label), 0)
        if inc:
            frame[2] += inc
            self.updates += 1
            return 1
        return 0

    # -- end of run ------------------------------------------------------

    def finalize_run(self) -> None:
        """Settle frames left live by a STOP halt (no-op after a normal
        EXIT-terminated run).  The innermost frame sits on a DAG sink,
        so its register is a complete path id; outer frames were
        suspended mid-call and are recorded as partial-path prefixes."""
        for proc, current, register in reversed(self._frames):
            plan = self.plan.plans[proc]
            if current in plan.stop_sinks or current == plan.exit:
                counts = self.path_counts[proc]
                counts[register] = counts.get(register, 0.0) + 1.0
            else:
                self.partials.append((proc, current, register))
        self._frames.clear()

    def abandon_run(self) -> None:
        """Drop frames after an error run (mirrors counter behavior:
        state accumulated before the error stays, nothing is settled)."""
        self._frames.clear()
