"""CFG edge frequencies derived from an analyzed procedure.

The FCDG frequency pass yields NODE_FREQ for every node and FREQ for
every control condition.  Optimizations that consume frequencies —
trace scheduling [FERN84], branch layout [MH86], register allocation
[Wal86] — want *CFG edge* frequencies instead.  These follow from flow
conservation: per procedure invocation,

    Σ out-edge counts of u = NODE_FREQ(u)        (u ≠ exit)
    Σ in-edge counts of v  = NODE_FREQ(v)        (v ≠ entry)

Condition edges are known directly (``NODE_FREQ(u) × FREQ(u, l)``);
single-successor edges equal their source's frequency; the remaining
unknowns (e.g. the untested label of a single-exit loop's trip test)
are resolved by propagating the conservation equations to a fixpoint.
"""

from __future__ import annotations

from repro.analysis.interprocedural import ProcedureAnalysis
from repro.cfg.graph import CFGEdge

#: Frequencies below this are treated as zero when checking residuals.
_EPS = 1e-12


def edge_frequencies(proc: ProcedureAnalysis) -> dict[CFGEdge, float]:
    """Expected executions of every CFG edge, per procedure invocation."""
    cfg = proc.cfg
    freqs = proc.freqs
    node_freq = freqs.node_freq

    counts: dict[CFGEdge, float] = {}
    for node in cfg.nodes:
        out_edges = cfg.out_edges(node)
        if not out_edges:
            continue
        nf = node_freq.get(node, 0.0)
        if len(out_edges) == 1:
            counts[out_edges[0]] = nf
            continue
        for edge in out_edges:
            frequency = freqs.freq.get((node, edge.label))
            if frequency is not None:
                counts[edge] = nf * frequency

    # Fixpoint: a node with exactly one unknown incident edge on one
    # side determines it by conservation.
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            nf = node_freq.get(node, 0.0)
            for edges in (cfg.out_edges(node), cfg.in_edges(node)):
                if not edges:
                    continue
                unknown = [e for e in edges if e not in counts]
                if len(unknown) != 1:
                    continue
                known_sum = sum(counts[e] for e in edges if e in counts)
                counts[unknown[0]] = max(0.0, nf - known_sum)
                changed = True

    # Anything still unknown (disconnected corners of never-executed
    # code): zero frequency.
    for edge in cfg.edges:
        counts.setdefault(edge, 0.0)
    return counts


def conservation_residual(proc: ProcedureAnalysis, counts=None) -> float:
    """Max violation of flow conservation — a quality diagnostic."""
    cfg = proc.cfg
    counts = counts if counts is not None else edge_frequencies(proc)
    worst = 0.0
    for node in cfg.nodes:
        nf = proc.freqs.node_freq.get(node, 0.0)
        outs = cfg.out_edges(node)
        if outs:
            worst = max(worst, abs(sum(counts[e] for e in outs) - nf))
        ins = cfg.in_edges(node)
        if ins and node != cfg.entry:
            worst = max(worst, abs(sum(counts[e] for e in ins) - nf))
    return worst
