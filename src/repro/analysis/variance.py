"""The bottom-up variance pass (Section 5).

Two cases, mirroring the paper exactly:

**Case 1 — u is a preheader.**  With loop frequency ``F = FREQ(u, l)``
over the loop-body children ``C(u, l)``::

    VAR(u) = F² · ΣVAR(v) + VAR(F) · (ΣTIME(v))² + VAR(F) · ΣVAR(v)

``VAR(F)`` comes from a pluggable loop-variance model (zero by
default; see :mod:`repro.analysis.distributions`).

**Case 2 — u is a branch (or any other) node.**  With mutually
exclusive labels ``l`` of probabilities ``FREQ(u, l)``::

    E[T_C(u)²] = Σ_l FREQ(u,l) · ( ΣVAR(v) + (ΣTIME(v))² )
    VAR(u)     = VAR(COST(u)) + E[T_C(u)²] − E[T_C(u)]²

``VAR(COST(u))`` is zero unless the caller supplies per-node cost
variance — the interprocedural driver uses it to propagate callee
variance through call nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.distributions import LoopVariance, zero_loop_variance
from repro.analysis.freq import FrequencyAnalysis
from repro.cdg.fcdg import FCDG
from repro.cfg.graph import is_pseudo_label


@dataclass
class VarianceResult:
    """VAR / E[T²] / STD_DEV for every FCDG node of one procedure."""

    fcdg: FCDG
    var: dict[int, float] = field(default_factory=dict)
    second_moment: dict[int, float] = field(default_factory=dict)

    def std_dev(self, node: int) -> float:
        return math.sqrt(max(0.0, self.var[node]))

    @property
    def total_var(self) -> float:
        return self.var[self.fcdg.ecfg.start]

    @property
    def total_std_dev(self) -> float:
        return self.std_dev(self.fcdg.ecfg.start)


def compute_variances(
    fcdg: FCDG,
    freqs: FrequencyAnalysis,
    times: Mapping[int, float],
    *,
    cost_variance: Mapping[int, float] | None = None,
    loop_variance: LoopVariance = zero_loop_variance,
) -> VarianceResult:
    """Run the bottom-up variance pass; see the module docstring."""
    ecfg = fcdg.ecfg
    cost_var = cost_variance or {}
    result = VarianceResult(fcdg=fcdg)

    for u in fcdg.bottom_up_order():
        if ecfg.is_preheader(u):
            variance = _preheader_variance(
                fcdg, freqs, times, result.var, u, loop_variance
            )
        else:
            variance = _branch_variance(
                fcdg, freqs, times, result.var, u, cost_var.get(u, 0.0)
            )
        # Tiny negative values arise from floating point cancellation.
        result.var[u] = max(0.0, variance)
        result.second_moment[u] = result.var[u] + times[u] ** 2
    return result


def _preheader_variance(
    fcdg: FCDG,
    freqs: FrequencyAnalysis,
    times: Mapping[int, float],
    var: Mapping[int, float],
    u: int,
    loop_variance: LoopVariance,
) -> float:
    label = fcdg.ecfg.loop_label(u)
    frequency = freqs.freq.get((u, label), 0.0)
    children = fcdg.children(u, label)
    sum_time = sum(times[v] for v in children)
    sum_var = sum(var[v] for v in children)
    freq_var = loop_variance(u, frequency)
    return (
        frequency * frequency * sum_var
        + freq_var * sum_time * sum_time
        + freq_var * sum_var
    )


def _branch_variance(
    fcdg: FCDG,
    freqs: FrequencyAnalysis,
    times: Mapping[int, float],
    var: Mapping[int, float],
    u: int,
    local_cost_var: float,
) -> float:
    expected = 0.0
    expected_sq = 0.0
    for label in fcdg.labels(u):
        if is_pseudo_label(label):
            continue  # frequency 0: contributes nothing
        frequency = freqs.freq[(u, label)]
        if frequency == 0.0:
            continue
        children = fcdg.children(u, label)
        sum_time = sum(times[v] for v in children)
        sum_var = sum(var[v] for v in children)
        expected += frequency * sum_time
        expected_sq += frequency * (sum_var + sum_time * sum_time)
    return local_cost_var + expected_sq - expected * expected
