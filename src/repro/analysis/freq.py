"""The top-down frequency pass (Section 3).

Converts raw ``TOTAL_FREQ`` counts into relative frequencies using the
paper's recurrences:

1. ``NODE_FREQ(START) = 1``
2. ``FREQ(u, l) = TOTAL_FREQ(u, l) / (TOTAL_FREQ(START, U) × NODE_FREQ(u))``
3. ``NODE_FREQ(v) = Σ_{(u,v,l)} NODE_FREQ(u) × FREQ(u, l)``

with the footnote's 0/0 → 0 convention.  A single pass in topological
order of the FCDG computes everything (the graph is acyclic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.cdg.fcdg import FCDG
from repro.cfg.graph import is_pseudo_label
from repro.profiling.database import ProcedureProfile

#: Tolerance for branch probabilities slightly exceeding 1 due to
#: floating point accumulation across merged profiles.
_PROBABILITY_SLACK = 1e-9


def condition_total(fcdg: FCDG, profile: ProcedureProfile, u: int, label: str) -> float:
    """TOTAL_FREQ(u, l) for one FCDG control condition.

    Profiles are keyed by original-CFG artifacts, so the three node
    categories of the ECFG map as follows: START → procedure
    invocations, preheader → loop-header execution count, anything
    else → branch-take count.  Pseudo (Z) conditions are never taken.
    """
    if is_pseudo_label(label):
        return 0.0
    ecfg = fcdg.ecfg
    if u == ecfg.start:
        return profile.invocations
    if ecfg.is_preheader(u):
        return profile.header_counts.get(ecfg.header_of[u], 0.0)
    return profile.branch_counts.get((u, label), 0.0)


@dataclass
class FrequencyAnalysis:
    """FREQ / NODE_FREQ / TOTAL_FREQ values for one procedure."""

    fcdg: FCDG
    invocations: float
    freq: dict[tuple[int, str], float] = field(default_factory=dict)
    node_freq: dict[int, float] = field(default_factory=dict)
    total_freq: dict[tuple[int, str], float] = field(default_factory=dict)

    def loop_frequency(self, preheader: int) -> float:
        """FREQ of the preheader's loop condition (avg iterations/entry)."""
        label = self.fcdg.ecfg.loop_label(preheader)
        return self.freq[(preheader, label)]


def compute_frequencies(
    fcdg: FCDG, profile: ProcedureProfile, *, strict: bool = True
) -> FrequencyAnalysis:
    """Run the top-down pass; see module docstring.

    With ``strict`` (the default), branch probabilities must lie in
    [0, 1] and any nonzero count over a zero-frequency node raises
    :class:`AnalysisError` — exact profiles always satisfy both.
    """
    ecfg = fcdg.ecfg
    runs = profile.invocations
    analysis = FrequencyAnalysis(fcdg=fcdg, invocations=runs)
    node_freq = {node: 0.0 for node in fcdg.nodes}
    node_freq[ecfg.start] = 1.0

    for u in fcdg.topological_order():
        nf = node_freq[u]
        for label in fcdg.labels(u):
            total = condition_total(fcdg, profile, u, label)
            denominator = runs * nf
            if denominator > 0:
                freq = total / denominator
            elif total == 0:
                freq = 0.0  # the paper's 0/0 convention
            else:
                raise AnalysisError(
                    f"inconsistent profile: TOTAL_FREQ({u}, {label}) = {total} "
                    "but the node never executes"
                )
            if strict and not ecfg.is_preheader(u) and u != ecfg.start:
                if freq > 1.0 + _PROBABILITY_SLACK:
                    raise AnalysisError(
                        f"branch probability FREQ({u}, {label}) = {freq} > 1"
                    )
                freq = min(freq, 1.0)
            analysis.freq[(u, label)] = freq
            analysis.total_freq[(u, label)] = total
            for child in fcdg.children(u, label):
                node_freq[child] += nf * freq
    analysis.node_freq = node_freq
    return analysis
