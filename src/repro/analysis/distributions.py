"""Models for the loop-frequency variance term VAR(FREQ(u, l)).

Section 5 Case 1 offers three routes for a loop's iteration-count
variance:

1. ignore it (``VAR(FREQ) = 0`` — the paper's Figure-3 choice);
2. assume a distribution for the number of iterations and derive the
   variance from its mean;
3. obtain ``E[FREQ²]`` from the execution profile.

All three are provided here as *loop-variance callables* with the
signature ``(preheader_node, mean_frequency) -> variance`` consumed by
:func:`repro.analysis.variance.compute_variances`.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.cdg.fcdg import FCDG
from repro.profiling.database import ProcedureProfile

LoopVariance = Callable[[int, float], float]


class LoopDistribution(enum.Enum):
    """Assumed distributions for a loop's iteration count.

    The variance is derived from the observed mean ``m``:

    * CONSTANT   — every entry iterates exactly m times: VAR = 0;
    * POISSON    — VAR = m;
    * GEOMETRIC  — iterate-again probability p with mean m = 1/(1-p):
      VAR = p/(1-p)² = m(m-1);
    * UNIFORM    — uniform over {0, ..., 2m}: VAR = m(m+1)/3.
    """

    CONSTANT = "constant"
    POISSON = "poisson"
    GEOMETRIC = "geometric"
    UNIFORM = "uniform"

    def variance(self, mean: float) -> float:
        if self is LoopDistribution.CONSTANT:
            return 0.0
        if self is LoopDistribution.POISSON:
            return max(0.0, mean)
        if self is LoopDistribution.GEOMETRIC:
            return max(0.0, mean * (mean - 1.0))
        return max(0.0, mean * (mean + 1.0) / 3.0)


def zero_loop_variance(preheader: int, mean: float) -> float:
    """The paper's simple default: VAR(FREQ(u, l)) = 0."""
    return 0.0


def distribution_loop_variance(kind: LoopDistribution) -> LoopVariance:
    """A loop-variance callable assuming ``kind`` for every loop."""

    def variance(preheader: int, mean: float) -> float:
        return kind.variance(mean)

    return variance


def profiled_loop_variance(fcdg: FCDG, profile: ProcedureProfile) -> LoopVariance:
    """VAR(FREQ) from profiled second moments: E[F²] − E[F]².

    Loops whose second moment was not recorded fall back to zero
    variance (the paper's default).
    """
    ecfg = fcdg.ecfg

    def variance(preheader: int, mean: float) -> float:
        header = ecfg.header_of.get(preheader)
        if header is None:
            return 0.0
        second = profile.loop_freq_second_moment(header)
        if second is None:
            return 0.0
        return max(0.0, second - mean * mean)

    return variance
