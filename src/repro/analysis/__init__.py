"""Average execution times and variance (Sections 3-5 of the paper).

* :mod:`repro.analysis.freq` — the top-down FREQ / NODE_FREQ pass
  (Definition 3 and recurrence equations 1-3);
* :mod:`repro.analysis.time` — the bottom-up TIME pass (Section 4);
* :mod:`repro.analysis.variance` — the bottom-up VAR / STD_DEV pass
  (Section 5, both the preheader and branch-node cases);
* :mod:`repro.analysis.distributions` — models for the loop-frequency
  variance term VAR(FREQ(u,l));
* :mod:`repro.analysis.interprocedural` — the call-graph-bottom-up
  driver implementing rule 2, with a geometric-closure extension for
  recursive procedures.
"""

from repro.analysis.freq import FrequencyAnalysis, compute_frequencies
from repro.analysis.time import compute_times
from repro.analysis.variance import VarianceResult, compute_variances
from repro.analysis.distributions import (
    LoopDistribution,
    distribution_loop_variance,
    profiled_loop_variance,
    zero_loop_variance,
)
from repro.analysis.interprocedural import (
    ProcedureAnalysis,
    ProgramAnalysis,
    analyze_program,
)
from repro.analysis.static_freq import (
    StaticOptions,
    hybrid_profile,
    static_profile,
)

__all__ = [
    "FrequencyAnalysis",
    "compute_frequencies",
    "compute_times",
    "VarianceResult",
    "compute_variances",
    "LoopDistribution",
    "zero_loop_variance",
    "distribution_loop_variance",
    "profiled_loop_variance",
    "ProcedureAnalysis",
    "ProgramAnalysis",
    "analyze_program",
    "StaticOptions",
    "static_profile",
    "hybrid_profile",
]
