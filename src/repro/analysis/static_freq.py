"""Compile-time frequency estimation (Section 3's other route).

"These frequency values may be determined by program analysis, or may
be obtained from an execution profile ... program analysis is feasible
for only a few restricted cases (e.g. a Fortran DO loop with constant
bounds and no conditional loop exits, an IF condition that can be
computed at compile-time, etc.), and should be complemented by
execution profile information wherever compile-time analysis is
unsuccessful."

This module implements exactly that:

* **exact** static frequencies where the paper says they are feasible —
  constant-trip DO loops and compile-time-constant IF conditions;
* **heuristic** frequencies elsewhere — an even split for data-driven
  branches, uniform dispatch for computed GOTOs, and a geometric
  model for data-driven loops (the per-iteration exit probability is
  propagated through the FCDG and inverted);
* :func:`hybrid_profile` — the paper's recommended combination: use
  measured counts where a procedure was actually executed, fall back
  to the static estimate where it was not.

The result is an ordinary :class:`ProgramProfile` (with synthetic
counts normalized to one invocation per procedure), so the TIME/VAR
machinery runs on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast
from repro.lang.symbols import CheckedProgram
from repro.cdg.fcdg import FCDG
from repro.cfg.graph import StmtKind, is_pseudo_label
from repro.profiling.database import ProcedureProfile, ProgramProfile
from repro.profiling.placement import _constant_trip


@dataclass(frozen=True)
class StaticOptions:
    """Tunables for the heuristic part of the estimator."""

    #: probability assigned to each side of a data-driven IF.
    branch_taken: float = 0.5
    #: assumed iterations for a data-driven loop when the geometric
    #: model cannot be applied (no exits found, or exit prob 0).
    default_loop_frequency: float = 10.0
    #: upper clamp on estimated loop frequencies.
    max_loop_frequency: float = 1_000.0


def _fold_condition(expr: ast.Expr, table) -> bool | None:
    """Evaluate a condition at compile time, if possible."""
    value = _fold(expr, table)
    return value if isinstance(value, bool) else None


def _fold(expr: ast.Expr, table):
    if isinstance(expr, (ast.IntLit, ast.RealLit, ast.LogicalLit)):
        return expr.value
    if isinstance(expr, ast.VarRef) and expr.name in table.constants:
        return table.constants[expr.name]
    if isinstance(expr, ast.Unary):
        inner = _fold(expr.operand, table)
        if inner is None:
            return None
        if expr.op is ast.UnOp.NEG:
            return -inner
        if expr.op is ast.UnOp.POS:
            return inner
        return not inner if isinstance(inner, bool) else None
    if isinstance(expr, ast.Binary):
        left = _fold(expr.left, table)
        right = _fold(expr.right, table)
        if left is None or right is None:
            return None
        op = expr.op
        try:
            if op is ast.BinOp.ADD:
                return left + right
            if op is ast.BinOp.SUB:
                return left - right
            if op is ast.BinOp.MUL:
                return left * right
            if op is ast.BinOp.DIV:
                return left / right if right else None
            if op is ast.BinOp.LT:
                return left < right
            if op is ast.BinOp.LE:
                return left <= right
            if op is ast.BinOp.GT:
                return left > right
            if op is ast.BinOp.GE:
                return left >= right
            if op is ast.BinOp.EQ:
                return left == right
            if op is ast.BinOp.NE:
                return left != right
            if op is ast.BinOp.AND:
                return left and right
            if op is ast.BinOp.OR:
                return left or right
        except TypeError:
            return None
    return None


class StaticEstimator:
    """Produces a synthetic profile for one procedure's FCDG."""

    def __init__(
        self,
        checked: CheckedProgram,
        fcdg: FCDG,
        options: StaticOptions = StaticOptions(),
    ):
        self.checked = checked
        self.fcdg = fcdg
        self.ecfg = fcdg.ecfg
        self.options = options
        self.table = checked.tables[self.ecfg.graph.name]
        self._branch_probs: dict[tuple[int, str], float] = {}
        self._loop_freqs: dict[int, float] = {}

    # -- branch probabilities ----------------------------------------------

    def _branch_probability(self, node_id: int, label: str) -> float:
        key = (node_id, label)
        if key not in self._branch_probs:
            self._assign_node_probabilities(node_id)
        return self._branch_probs.get(key, 0.0)

    def _assign_node_probabilities(self, node_id: int) -> None:
        graph = self.ecfg.graph
        node = graph.nodes[node_id]
        labels = graph.out_labels(node_id)
        opts = self.options
        if node.kind in (StmtKind.IF, StmtKind.WHILE_TEST):
            folded = _fold_condition(node.cond, self.table)
            if folded is True:
                probs = {"T": 1.0, "F": 0.0}
            elif folded is False:
                probs = {"T": 0.0, "F": 1.0}
            else:
                probs = {"T": opts.branch_taken, "F": 1.0 - opts.branch_taken}
        elif node.kind is StmtKind.DO_TEST:
            trip = _constant_trip(node.stmt, self.checked, graph.name)
            n = trip if trip is not None else opts.default_loop_frequency
            probs = {"T": n / (n + 1.0), "F": 1.0 / (n + 1.0)}
        elif node.kind is StmtKind.AIF:
            value = _fold(node.cond, self.table)
            if value is not None and not isinstance(value, bool):
                sign = "LT" if value < 0 else ("EQ" if value == 0 else "GT")
                probs = {l: (1.0 if l == sign else 0.0) for l in labels}
            else:
                probs = {l: 1.0 / len(labels) for l in labels}
        else:
            # computed GOTO and anything else: uniform over real labels.
            probs = {l: 1.0 / len(labels) for l in labels}
        for label in labels:
            self._branch_probs[(node_id, label)] = probs.get(
                label, 1.0 / len(labels)
            )

    # -- loop frequencies ----------------------------------------------------

    def _loop_frequency(self, header: int) -> float:
        """Average header executions per loop entry (FREQ(ph, U))."""
        if header in self._loop_freqs:
            return self._loop_freqs[header]
        opts = self.options
        graph = self.ecfg.graph
        node = graph.nodes[header]
        if node.kind is StmtKind.DO_TEST:
            trip = _constant_trip(node.stmt, self.checked, graph.name)
            if trip is not None:
                value = float(trip + 1)
                self._loop_freqs[header] = value
                return value
        # Geometric model: invert the per-iteration exit probability,
        # propagating branch probabilities through the iteration's
        # control dependences.
        exit_prob = self._iteration_exit_probability(header)
        if exit_prob <= 0.0:
            value = opts.default_loop_frequency
        else:
            value = min(1.0 / exit_prob, opts.max_loop_frequency)
        value = max(value, 1.0)
        self._loop_freqs[header] = value
        return value

    def _iteration_exit_probability(self, header: int) -> float:
        intervals = self.ecfg.intervals
        members = self.ecfg.interval_members(header)
        preheader = self.ecfg.preheader_of[header]
        # Per-iteration execution frequency of loop members: seeded by
        # the preheader's loop condition (1 per header execution).
        iter_freq: dict[int, float] = {n: 0.0 for n in members}
        for u in self.fcdg.topological_order():
            if u not in members:
                continue
            for edge in self.fcdg.parents(u):
                if edge.src == preheader and not is_pseudo_label(edge.label):
                    iter_freq[u] += 1.0
                elif edge.src in members and not is_pseudo_label(edge.label):
                    iter_freq[u] += iter_freq[
                        edge.src
                    ] * self._edge_probability(edge.src, edge.label)
        exit_prob = 0.0
        for edge in intervals.exit_edges(header):
            if edge.src not in iter_freq:
                continue
            exit_prob += iter_freq[edge.src] * self._edge_probability(
                edge.src, edge.label
            )
        return min(exit_prob, 1.0)

    def _edge_probability(self, node_id: int, label: str) -> float:
        graph = self.ecfg.graph
        if self.ecfg.is_preheader(node_id):
            # Nested loop: expected executions scale by its frequency
            # (computed innermost-first, so it is already available).
            return self._loop_frequency(self.ecfg.header_of[node_id])
        if len(graph.out_labels(node_id)) <= 1:
            return 1.0
        return self._branch_probability(node_id, label)

    # -- assembly ----------------------------------------------------------

    def estimate(self) -> ProcedureProfile:
        """The synthetic single-invocation profile of this procedure."""
        profile = ProcedureProfile(self.ecfg.graph.name)
        profile.invocations = 1.0
        # Loop frequencies innermost-first (nested loops feed outer
        # iteration propagation through _edge_probability).
        for header in reversed(self.ecfg.intervals.loop_headers):
            self._loop_frequency(header)

        node_freq: dict[int, float] = {n: 0.0 for n in self.fcdg.nodes}
        node_freq[self.ecfg.start] = 1.0
        for u in self.fcdg.topological_order():
            for label in self.fcdg.labels(u):
                if is_pseudo_label(label):
                    frequency = 0.0
                elif u == self.ecfg.start:
                    frequency = 1.0
                elif self.ecfg.is_preheader(u):
                    frequency = self._loop_frequency(self.ecfg.header_of[u])
                elif len(self.ecfg.graph.out_labels(u)) <= 1:
                    frequency = 1.0
                else:
                    frequency = self._branch_probability(u, label)
                for child in self.fcdg.children(u, label):
                    node_freq[child] += node_freq[u] * frequency
                if u != self.ecfg.start and not is_pseudo_label(label):
                    if self.ecfg.is_preheader(u):
                        header = self.ecfg.header_of[u]
                        profile.header_counts[header] = (
                            frequency * node_freq[u]
                        )
                    else:
                        profile.branch_counts[(u, label)] = (
                            frequency * node_freq[u]
                        )
        return profile


def static_profile(
    program, options: StaticOptions = StaticOptions()
) -> ProgramProfile:
    """Synthetic compile-time profile for a whole CompiledProgram."""
    profile = ProgramProfile(runs=1)
    for name in program.cfgs:
        estimator = StaticEstimator(
            program.checked, program.fcdgs[name], options
        )
        profile.procedures[name] = estimator.estimate()
    return profile


def hybrid_profile(
    program,
    measured: ProgramProfile,
    options: StaticOptions = StaticOptions(),
) -> ProgramProfile:
    """Measured counts where available, static estimates elsewhere.

    The paper's recommendation: compile-time analysis "should be
    complemented by execution profile information wherever
    compile-time analysis is unsuccessful" — and vice versa, a
    procedure the profiled runs never reached still gets an estimate.
    """
    combined = ProgramProfile(runs=max(1, measured.runs))
    for name in program.cfgs:
        measured_proc = measured.procedures.get(name)
        if measured_proc is not None and measured_proc.invocations > 0:
            combined.procedures[name] = measured_proc
        else:
            estimator = StaticEstimator(
                program.checked, program.fcdgs[name], options
            )
            combined.procedures[name] = estimator.estimate()
    return combined
