"""The bottom-up average-execution-time pass (Section 4).

``TIME(u) = COST(u) + Σ_{(u,v,l)} FREQ(u,l) × TIME(v)``

computed in one bottom-up (reverse topological) traversal of the FCDG.
``COST`` maps ECFG node ids to local costs; nodes absent from the
mapping (synthetic START/STOP/PREHEADER/POSTEXIT nodes) cost zero.
Interprocedural costs (rule 2) are folded into ``COST`` by the caller
— see :mod:`repro.analysis.interprocedural`.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.freq import FrequencyAnalysis
from repro.cdg.fcdg import FCDG


def compute_times(
    fcdg: FCDG,
    freqs: FrequencyAnalysis,
    costs: Mapping[int, float],
) -> dict[int, float]:
    """TIME(u) for every FCDG node; TIME(START) is the procedure total."""
    times: dict[int, float] = {}
    for u in fcdg.bottom_up_order():
        total = costs.get(u, 0.0)
        for label in fcdg.labels(u):
            frequency = freqs.freq[(u, label)]
            if frequency == 0.0:
                continue
            total += frequency * sum(
                times[child] for child in fcdg.children(u, label)
            )
        times[u] = total
    return times


def total_time(fcdg: FCDG, times: Mapping[int, float]) -> float:
    """TIME(START): the average execution time of the whole procedure."""
    return times[fcdg.ecfg.start]
