"""Interprocedural driver: rule 2 and the bottom-up call-graph order.

Rule 2 of Section 4: a call node's COST is the callee's TIME(START),
the same average for every call site.  Procedures are therefore
visited bottom-up in the call graph.  By analogy, a call node's
*cost variance* is the callee's VAR(START) (callee executions are
assumed independent), which propagates variance interprocedurally.

Recursion (which the paper defers to [Sar87, Sar89]) is handled by an
optional geometric-closure extension: the procedures of a call-graph
SCC are solved by fixpoint iteration of the linear TIME equations —
convergent exactly when the expected number of recursive calls per
invocation is below 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import AnalysisError
from repro.analysis.distributions import (
    LoopDistribution,
    LoopVariance,
    distribution_loop_variance,
    profiled_loop_variance,
    zero_loop_variance,
)
from repro.analysis.freq import FrequencyAnalysis, compute_frequencies
from repro.analysis.time import compute_times
from repro.analysis.variance import VarianceResult, compute_variances
from repro.callgraph import CallGraph, build_call_graph
from repro.cdg import FCDG, build_fcdg
from repro.cfg.graph import ControlFlowGraph
from repro.costs.estimate import CostEstimator, NodeCost
from repro.costs.model import MachineModel
from repro.ecfg import ExtendedCFG, build_ecfg
from repro.lang.symbols import CheckedProgram
from repro.profiling.database import ProgramProfile

#: How loop-frequency variance is modelled: the paper's zero default,
#: an assumed distribution, profiled second moments, or a callable.
LoopVarianceSpec = (
    str | LoopDistribution | Callable[[int, float], float] | None
)


@dataclass
class ProcedureAnalysis:
    """All per-procedure artifacts and results."""

    name: str
    cfg: ControlFlowGraph
    ecfg: ExtendedCFG
    fcdg: FCDG
    freqs: FrequencyAnalysis
    node_costs: dict[int, NodeCost]
    #: COST(u) with callee TIMEs folded in (what the TIME pass saw).
    effective_costs: dict[int, float] = field(default_factory=dict)
    times: dict[int, float] = field(default_factory=dict)
    variances: VarianceResult | None = None

    @property
    def time(self) -> float:
        """TIME(START): average execution time of one invocation."""
        return self.times[self.ecfg.start]

    @property
    def var(self) -> float:
        return self.variances.var[self.ecfg.start]

    @property
    def std_dev(self) -> float:
        return self.variances.std_dev(self.ecfg.start)


@dataclass
class ProgramAnalysis:
    """Program-wide results, keyed by procedure."""

    checked: CheckedProgram
    model: MachineModel
    call_graph: CallGraph
    procedures: dict[str, ProcedureAnalysis] = field(default_factory=dict)

    @property
    def main(self) -> ProcedureAnalysis:
        return self.procedures[self.checked.unit.main.name]

    @property
    def total_time(self) -> float:
        """Average execution time of one program run."""
        return self.main.time

    @property
    def total_var(self) -> float:
        return self.main.var

    @property
    def total_std_dev(self) -> float:
        return self.main.std_dev


def _resolve_loop_variance(
    spec: LoopVarianceSpec, fcdg: FCDG, profile
) -> LoopVariance:
    if spec is None or spec == "zero":
        return zero_loop_variance
    if spec == "profiled":
        return profiled_loop_variance(fcdg, profile)
    if isinstance(spec, LoopDistribution):
        return distribution_loop_variance(spec)
    if callable(spec):
        return spec
    raise AnalysisError(f"unknown loop variance spec {spec!r}")


def analyze_program(
    checked: CheckedProgram,
    cfgs: dict[str, ControlFlowGraph],
    profile: ProgramProfile,
    model: MachineModel,
    *,
    loop_variance: LoopVarianceSpec = "zero",
    artifacts: dict[str, tuple[ExtendedCFG, FCDG]] | None = None,
    estimator: CostEstimator | None = None,
    recursion_max_iter: int = 200,
    recursion_tol: float = 1e-9,
) -> ProgramAnalysis:
    """Compute TIME and VAR for every procedure of a program.

    ``artifacts`` may carry pre-built (ECFG, FCDG) pairs to avoid
    recomputation; ``loop_variance`` selects the VAR(FREQ) model;
    ``estimator`` may replace the default table-driven COST estimator
    (anything with a compatible ``cfg_costs``).
    """
    call_graph = build_call_graph(checked)
    if estimator is None:
        estimator = CostEstimator(checked, model)
    analysis = ProgramAnalysis(
        checked=checked, model=model, call_graph=call_graph
    )

    # Per-procedure structural prework (independent of the call graph).
    loop_var_fns: dict[str, LoopVariance] = {}
    for name, cfg in cfgs.items():
        if artifacts is not None and name in artifacts:
            ecfg, fcdg = artifacts[name]
        else:
            ecfg = build_ecfg(cfg)
            fcdg = build_fcdg(ecfg)
        proc_profile = profile.proc(name)
        freqs = compute_frequencies(fcdg, proc_profile)
        analysis.procedures[name] = ProcedureAnalysis(
            name=name,
            cfg=cfg,
            ecfg=ecfg,
            fcdg=fcdg,
            freqs=freqs,
            node_costs=estimator.cfg_costs(cfg, name),
        )
        loop_var_fns[name] = _resolve_loop_variance(
            loop_variance, fcdg, proc_profile
        )

    times: dict[str, float] = {}
    variances: dict[str, float] = {}

    def solve(name: str) -> None:
        proc = analysis.procedures[name]
        effective: dict[int, float] = {}
        cost_var: dict[int, float] = {}
        for node_id, node_cost in proc.node_costs.items():
            total = node_cost.local
            var_total = 0.0
            for callee in node_cost.calls:
                total += times.get(callee, 0.0)
                var_total += variances.get(callee, 0.0)
            effective[node_id] = total
            if var_total:
                cost_var[node_id] = var_total
        proc.effective_costs = effective
        proc.times = compute_times(proc.fcdg, proc.freqs, effective)
        proc.variances = compute_variances(
            proc.fcdg,
            proc.freqs,
            proc.times,
            cost_variance=cost_var,
            loop_variance=loop_var_fns[name],
        )
        times[name] = proc.time
        variances[name] = proc.var

    for scc in call_graph.sccs:
        recursive = len(scc) > 1 or scc[0] in call_graph.calls.get(scc[0], {})
        if not recursive:
            solve(scc[0])
            continue
        # Geometric-closure extension: fixpoint over the SCC.
        for name in scc:
            times[name] = 0.0
            variances[name] = 0.0
        previous_delta = float("inf")
        for _ in range(recursion_max_iter):
            delta = 0.0
            for name in scc:
                old_time = times[name]
                old_var = variances[name]
                solve(name)
                delta = max(
                    delta,
                    abs(times[name] - old_time),
                    abs(variances[name] - old_var),
                )
            if delta <= recursion_tol:
                break
            if delta > previous_delta * 1.0001 and delta > 1e6:
                raise AnalysisError(
                    f"recursive cost of {scc} diverges: the expected number "
                    "of recursive calls per invocation is >= 1"
                )
            previous_delta = delta
        else:
            raise AnalysisError(
                f"recursive cost of {scc} did not converge in "
                f"{recursion_max_iter} iterations"
            )
    return analysis
