"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Frontend errors carry a
source line number whenever one is available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SourceError(ReproError):
    """An error tied to a location in minifort source code."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised when the lexer encounters an invalid token."""


class ParseError(SourceError):
    """Raised when the parser encounters a malformed construct."""


class SemanticError(SourceError):
    """Raised on symbol/type errors (undeclared variable, bad arity, ...)."""


class CFGError(ReproError):
    """Raised for malformed control flow graphs (e.g. unknown labels)."""


class IrreducibleError(CFGError):
    """Raised when a CFG is irreducible and node splitting is disabled."""


class AnalysisError(ReproError):
    """Raised when an interval / control-dependence analysis invariant fails."""


class ProfilingError(ReproError):
    """Raised for invalid counter plans or unreconstructible profiles."""


class VerificationError(ReproError):
    """Raised when the artifact verifier finds broken invariants.

    Carries the full :class:`repro.checker.DiagnosticReport` so callers
    can inspect individual error codes.
    """

    def __init__(self, report):
        self.report = report
        codes = ", ".join(sorted(report.codes())) or "no codes"
        super().__init__(
            f"artifact verification failed ({codes}): "
            f"{report.summary()}"
        )


class InterpreterError(ReproError):
    """Raised for runtime errors during interpretation."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class InterpreterLimitError(InterpreterError):
    """Raised when an execution exceeds its step budget (runaway loop)."""
