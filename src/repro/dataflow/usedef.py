"""Scalar use/def extraction for the dataflow analyses.

Minifort passes every argument by reference, so a CALL (or a user
FUNCTION inside an expression) can read or write any scalar variable
it is handed.  The old syntactic linter treated *every* such argument
as a definition, which both suppressed genuine use-before-def
findings (a read-only callee "defines" nothing) and missed the read
the callee actually performs.  This module computes interprocedural
*parameter summaries* — for each procedure, which parameter positions
it may read and which it may write, closed over by-reference
forwarding through the call graph — and uses them to give every CFG
node a precise :class:`NodeFacts`:

* ``kills`` — scalars the node *definitely* overwrites (strong
  update: direct assignment targets and DO index/trip bookkeeping);
* ``clobbers`` — scalars the node *may* write through a reference
  (call arguments whose callee summary says the position is
  writable);
* ``uses_live`` — scalars whose current value the node may observe
  (expression reads plus by-reference arguments the callee may read);
  the liveness base;
* ``uses_rd`` — the stricter read set for the REP301 use-before-def
  lint: a by-reference argument counts as a read only when the callee
  is *read-only* in that position, so a write-then-read callee keeps
  its historical benefit of the doubt.

Arrays are not tracked (any array element write is invisible to the
scalar lattice); array *index* expressions are ordinary reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import StmtKind
from repro.lang import ast
from repro.lang.symbols import INTRINSICS, CheckedProgram


@dataclass
class ProcSummary:
    """Which parameter positions a procedure may read / may write."""

    reads: set[int] = field(default_factory=set)
    writes: set[int] = field(default_factory=set)


def _is_scalar(table, name: str) -> bool:
    info = table.lookup(name)
    return info is None or not info.is_array


def _is_array_name(checked: CheckedProgram, proc_name: str, name: str) -> bool:
    info = checked.tables[proc_name].lookup(name)
    return info is not None and info.is_array


def _is_user_call(checked: CheckedProgram, expr: ast.FuncCall, proc: str):
    """Classify a FuncCall: array indexing, intrinsic, or user callee."""
    if _is_array_name(checked, proc, expr.name):
        return "array"
    if (
        expr.name in INTRINSICS
        and expr.name not in checked.unit.procedures
    ):
        return "intrinsic"
    return "user"


def param_summaries(checked: CheckedProgram) -> dict[str, ProcSummary]:
    """Fixpoint of per-procedure parameter read/write summaries.

    By-reference forwarding (proc A passes its own parameter straight
    to proc B) makes this a monotone closure over the call graph;
    positions only ever gain the ``reads``/``writes`` facts, so plain
    iteration to a fixpoint terminates.  Unknown callees are treated
    as reading and writing every argument.
    """
    summaries = {
        name: ProcSummary() for name in checked.unit.procedures
    }

    def run_proc(name: str, proc: ast.Procedure) -> bool:
        table = checked.tables[name]
        positions = {p: i for i, p in enumerate(proc.params)}
        summary = summaries[name]
        before = (len(summary.reads), len(summary.writes))

        def note_read(var: str) -> None:
            if var in positions:
                summary.reads.add(positions[var])

        def note_write(var: str) -> None:
            if var in positions:
                summary.writes.add(positions[var])

        def visit_args(callee: str, args: list[ast.Expr]) -> None:
            callee_summary = summaries.get(callee)
            for j, arg in enumerate(args):
                if isinstance(arg, ast.VarRef):
                    if callee_summary is None:  # unknown: assume both
                        note_read(arg.name)
                        note_write(arg.name)
                    else:
                        if j in callee_summary.reads:
                            note_read(arg.name)
                        if j in callee_summary.writes:
                            note_write(arg.name)
                elif isinstance(arg, ast.ArrayRef):
                    # An element of a (possibly dummy) array: the callee
                    # may read/write through it; indices are plain reads.
                    if callee_summary is None or j in callee_summary.writes:
                        note_write(arg.name)
                    if callee_summary is None or j in callee_summary.reads:
                        note_read(arg.name)
                    for index in arg.indices:
                        visit_expr(index)
                else:
                    visit_expr(arg)

        def visit_expr(expr: ast.Expr | None) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.VarRef):
                note_read(expr.name)
            elif isinstance(expr, ast.Binary):
                visit_expr(expr.left)
                visit_expr(expr.right)
            elif isinstance(expr, ast.Unary):
                visit_expr(expr.operand)
            elif isinstance(expr, ast.ArrayRef):
                note_read(expr.name)
                for index in expr.indices:
                    visit_expr(index)
            elif isinstance(expr, ast.FuncCall):
                role = _is_user_call(checked, expr, name)
                if role == "array":
                    note_read(expr.name)
                    for arg in expr.args:
                        visit_expr(arg)
                elif role == "intrinsic":
                    for arg in expr.args:
                        visit_expr(arg)
                else:
                    visit_args(expr.name, expr.args)

        def visit_stmt(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Assign):
                visit_expr(stmt.value)
                target = stmt.target
                if isinstance(target, ast.VarRef):
                    if _is_scalar(table, target.name):
                        note_write(target.name)
                    else:
                        note_write(target.name)  # whole-array fill
                elif isinstance(target, ast.ArrayRef):
                    note_write(target.name)
                    for index in target.indices:
                        visit_expr(index)
            elif isinstance(stmt, ast.CallStmt):
                visit_args(stmt.name, stmt.args)
            elif isinstance(stmt, ast.PrintStmt):
                for item in stmt.items:
                    visit_expr(item)
            elif isinstance(stmt, ast.DoLoop):
                visit_expr(stmt.start)
                visit_expr(stmt.stop)
                visit_expr(stmt.step)
                note_write(stmt.var)
                note_read(stmt.var)  # the increment reads it back
            elif isinstance(stmt, ast.DoWhile):
                visit_expr(stmt.cond)
            elif isinstance(stmt, ast.LogicalIf):
                visit_expr(stmt.cond)
            elif isinstance(stmt, ast.ArithmeticIf):
                visit_expr(stmt.expr)
            elif isinstance(stmt, ast.IfBlock):
                for cond, _ in stmt.arms:
                    visit_expr(cond)
            elif isinstance(stmt, ast.ComputedGoto):
                visit_expr(stmt.selector)

        for stmt in proc.walk_statements():
            visit_stmt(stmt)
        return (len(summary.reads), len(summary.writes)) != before

    changed = True
    while changed:
        changed = False
        for name, proc in sorted(checked.unit.procedures.items()):
            if run_proc(name, proc):
                changed = True
    return summaries


@dataclass(frozen=True)
class NodeFacts:
    """Scalar effects of one CFG node (see module docstring)."""

    site: int = -2  # the CFG node id (a definition site)
    uses_live: frozenset[str] = frozenset()
    uses_rd: frozenset[str] = frozenset()
    kills: frozenset[str] = frozenset()
    clobbers: frozenset[str] = frozenset()
    has_call: bool = False  # CALL statement or user FUNCTION reference

    @property
    def defs(self) -> frozenset[str]:
        return self.kills | self.clobbers


class _FactCollector:
    def __init__(self, checked, proc_name, table, summaries):
        self.checked = checked
        self.proc_name = proc_name
        self.table = table
        self.summaries = summaries
        self.uses_live: set[str] = set()
        self.uses_rd: set[str] = set()
        self.kills: set[str] = set()
        self.clobbers: set[str] = set()
        self.has_call = False

    def read(self, expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.VarRef):
            if _is_scalar(self.table, expr.name):
                self.uses_live.add(expr.name)
                self.uses_rd.add(expr.name)
        elif isinstance(expr, ast.Binary):
            self.read(expr.left)
            self.read(expr.right)
        elif isinstance(expr, ast.Unary):
            self.read(expr.operand)
        elif isinstance(expr, ast.ArrayRef):
            for index in expr.indices:
                self.read(index)
        elif isinstance(expr, ast.FuncCall):
            role = _is_user_call(self.checked, expr, self.proc_name)
            if role in ("array", "intrinsic"):
                for arg in expr.args:
                    self.read(arg)
            else:
                self.call_args(expr.name, expr.args)

    def call_args(self, callee: str, args: list[ast.Expr]) -> None:
        self.has_call = True
        summary = self.summaries.get(callee)
        for j, arg in enumerate(args):
            if isinstance(arg, ast.VarRef) and _is_scalar(
                self.table, arg.name
            ):
                may_read = summary is None or j in summary.reads
                may_write = summary is None or j in summary.writes
                if may_write:
                    self.clobbers.add(arg.name)
                if may_read:
                    self.uses_live.add(arg.name)
                    if not may_write:
                        # Read-only position: a genuine read for REP301
                        # (a writable position keeps the historical
                        # benefit of the doubt — the callee may define
                        # the scalar before reading it).
                        self.uses_rd.add(arg.name)
            else:
                self.read(arg)


def node_facts(
    node,
    checked: CheckedProgram,
    proc_name: str,
    summaries: dict[str, ProcSummary],
) -> NodeFacts:
    """The scalar effects of one statement-level CFG node."""
    table = checked.tables[proc_name]
    c = _FactCollector(checked, proc_name, table, summaries)
    stmt = node.stmt

    if node.kind is StmtKind.ASSIGN and isinstance(stmt, ast.Assign):
        c.read(stmt.value)
        target = stmt.target
        if isinstance(target, ast.ArrayRef):
            for index in target.indices:
                c.read(index)
        elif isinstance(target, ast.VarRef) and _is_scalar(
            table, target.name
        ):
            c.kills.add(target.name)
    elif node.kind in (
        StmtKind.IF,
        StmtKind.WHILE_TEST,
        StmtKind.AIF,
        StmtKind.CGOTO,
    ):
        c.read(node.cond)
    elif node.kind is StmtKind.DO_INIT and isinstance(stmt, ast.DoLoop):
        c.read(stmt.start)
        c.read(stmt.stop)
        c.read(stmt.step)
        c.kills.add(stmt.var)
        if node.trip_var:
            c.kills.add(node.trip_var)
    elif node.kind is StmtKind.DO_INCR and isinstance(stmt, ast.DoLoop):
        # var += step; trip -= 1 (the hidden counter bookkeeping).
        c.read(stmt.step)
        c.uses_live.add(stmt.var)
        c.uses_rd.add(stmt.var)
        c.kills.add(stmt.var)
        if node.trip_var:
            c.uses_live.add(node.trip_var)
            c.uses_rd.add(node.trip_var)
            c.kills.add(node.trip_var)
    elif node.kind is StmtKind.DO_TEST:
        if node.trip_var:
            c.uses_live.add(node.trip_var)
            c.uses_rd.add(node.trip_var)
    elif node.kind is StmtKind.CALL and isinstance(stmt, ast.CallStmt):
        c.call_args(stmt.name, stmt.args)
    elif node.kind is StmtKind.PRINT and isinstance(stmt, ast.PrintStmt):
        for item in stmt.items:
            c.read(item)
    return NodeFacts(
        site=node.id,
        uses_live=frozenset(c.uses_live),
        uses_rd=frozenset(c.uses_rd),
        kills=frozenset(c.kills - c.clobbers),
        clobbers=frozenset(c.clobbers),
        has_call=c.has_call,
    )


def all_node_facts(
    cfg, checked: CheckedProgram, proc_name: str, summaries
) -> dict[int, NodeFacts]:
    return {
        node.id: node_facts(node, checked, proc_name, summaries)
        for node in cfg
    }


def referenced_names(facts: dict[int, NodeFacts]) -> frozenset[str]:
    """Every scalar some node reads, writes or clobbers.

    The analyses restrict their tracked state to this set: a scalar no
    statement touches can never influence a lint, a pruning decision
    or a bound, and every per-node fact operation is O(state size).
    """
    refs: set[str] = set()
    for f in facts.values():
        refs |= f.uses_live
        refs |= f.uses_rd
        refs |= f.kills
        refs |= f.clobbers
    return frozenset(refs)
