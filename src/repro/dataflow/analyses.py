"""The four production dataflow analyses.

All run on the :mod:`repro.dataflow.framework` solver over the
statement-level CFG:

* **reaching definitions** (forward, may): which definition sites can
  supply each scalar's value — the basis of the flow-sensitive REP301
  use-before-def lint;
* **liveness** (backward, may): which scalars may still be observed —
  the basis of REP306 dead-store detection and the codegen DCE pass.
  Observability is minifort-specific: the MAIN program exports every
  scalar into ``RunResult.main_vars``, any STOP ends the run with
  those exports, and a CALL can transitively STOP, so calls in MAIN
  keep everything alive;
* **conditional constant propagation** (SCCP-style, forward): per
  scalar TOP-less CONST/BOTTOM facts with branch-edge feasibility.
  Every scalar has a definite initial value (minifort zero-initializes
  locals), so the lattice needs no TOP: entry maps parameters to
  BOTTOM and everything else to its zero value.  Folding mirrors the
  reference interpreter *exactly* (truncating integer division,
  short-circuit ``.AND.``/``.OR.``, Fortran integer POW, store
  coercion); anything that could raise at runtime degrades to BOTTOM
  instead of folding — a folded branch label claims only "if this
  node completes, it takes this edge", which is exactly what the
  codegen optimizer needs;
* **value ranges** (forward, widening): per numeric scalar intervals,
  giving DO trip-count bounds for the static TIME/VAR envelopes.

SCCP's feasible-edge set can be fed back into the other analyses via
``edge_alive`` so they run on the feasible subgraph.

Each analysis accepts a ``corruption`` keyword from
:data:`ANALYSIS_CORRUPTIONS` (transfer-function defects for the
mutation-kill suite) in addition to the solver-level corruptions in
:data:`repro.dataflow.framework.SOLVER_CORRUPTIONS`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.cfg.graph import StmtKind
from repro.dataflow.framework import (
    DataflowProblem,
    OrientedGraph,
    Solution,
    oriented_graph,
    solve,
)
from repro.dataflow.usedef import (
    NodeFacts,
    ProcSummary,
    all_node_facts,
    param_summaries,
    referenced_names,
)
from repro.lang import ast

#: Seeded transfer-function defects for the mutation-kill suite.
ANALYSIS_CORRUPTIONS = (
    "sccp-const-meet",   # meet of two different constants keeps the first
    "sccp-taken-flip",   # a folded IF/WHILE branch marks the wrong arm
    "range-no-widen",    # widening disabled: loops never stabilize
    "live-kill-use",     # liveness kills after adding uses (wrong order)
    "rd-gen-drop",       # reaching defs forgets the gen set on kills
)

_ENTRY_SITE = -1  # pseudo definition site: "defined at procedure entry"


def _check_corruption(corruption: str | None) -> None:
    if corruption is not None and corruption not in ANALYSIS_CORRUPTIONS:
        raise ValueError(f"unknown analysis corruption {corruption!r}")


def _scalar_names(checked, proc_name: str) -> list[str]:
    table = checked.tables[proc_name]
    return sorted(
        name
        for name, info in table.variables.items()
        if not info.is_array and name not in table.constants
    )


def _zero_value(type_: ast.Type):
    if type_ is ast.Type.INTEGER:
        return 0
    if type_ is ast.Type.LOGICAL:
        return False
    return 0.0


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


class ReachingDefinitions(DataflowProblem):
    """var -> frozenset of CFG node ids that may have defined it.

    ``_ENTRY_SITE`` marks values available at procedure entry
    (parameters, PARAMETER constants and a FUNCTION's result slot —
    the same initial set the historical REP301 lint used, so plain
    zero-initialized locals still count as undefined for lint
    purposes).
    """

    direction = "forward"

    def __init__(
        self,
        checked,
        proc_name: str,
        facts: dict[int, NodeFacts],
        *,
        feasible: set[tuple[int, str]] | None = None,
        refs: frozenset[str] | None = None,
        corruption: str | None = None,
    ):
        _check_corruption(corruption)
        self.facts = facts
        self.feasible = feasible
        self.corruption = corruption
        proc = checked.unit.procedures[proc_name]
        table = checked.tables[proc_name]
        if refs is None:
            refs = referenced_names(facts)
        initial = set(proc.params) | (set(table.constants) & refs)
        if proc.kind is ast.ProcKind.FUNCTION:
            initial.add(proc.name)
        self._boundary = {
            name: frozenset([_ENTRY_SITE]) for name in sorted(initial)
        }
        self.passthrough_nodes = frozenset(
            nid
            for nid, f in facts.items()
            if not f.kills and not f.clobbers
        )

    def boundary(self, cfg):
        return dict(self._boundary)

    def join(self, values):
        if len(values) == 1:
            return values[0]  # transfer copies before mutating
        merged: dict[str, frozenset[int]] = dict(values[0])
        for value in values[1:]:
            for var, sites in value.items():
                prev = merged.get(var)
                if prev is None:
                    merged[var] = sites
                elif prev is not sites and prev != sites:
                    merged[var] = prev | sites
        return merged

    def transfer(self, node, value):
        return rd_transfer(value, self.facts[node], corruption=self.corruption)

    def edge_alive(self, src, label):
        return self.feasible is None or (src, label) in self.feasible

    def height(self, cfg):
        return len(cfg.nodes) + 2


def rd_transfer(value, facts: NodeFacts, *, corruption=None):
    if not facts.kills and not facts.clobbers:
        return value  # no scalar effects: facts pass through unchanged
    out = dict(value)
    site_set = frozenset([facts.site])
    for var in facts.kills:
        if corruption == "rd-gen-drop":
            out.pop(var, None)
        else:
            out[var] = site_set
    for var in facts.clobbers:
        prev = out.get(var)
        out[var] = site_set if prev is None else prev | site_set
    return out


# ---------------------------------------------------------------------------
# Liveness
# ---------------------------------------------------------------------------


class Liveness(DataflowProblem):
    """Backward may-analysis: the set of scalars still observable.

    The boundary (live at procedure exit) and the treatment of STOP
    and call-bearing nodes encode minifort observability — see the
    module docstring.  ``kills`` (strong updates) remove liveness;
    ``clobbers`` (by-reference may-writes) never do.
    """

    direction = "backward"

    def __init__(
        self,
        checked,
        proc_name: str,
        facts: dict[int, NodeFacts],
        cfg,
        *,
        feasible: set[tuple[int, str]] | None = None,
        refs: frozenset[str] | None = None,
        corruption: str | None = None,
    ):
        _check_corruption(corruption)
        self.facts = facts
        self.feasible = feasible
        self.corruption = corruption
        proc = checked.unit.procedures[proc_name]
        self.is_main = proc.kind is ast.ProcKind.PROGRAM
        if refs is None:
            refs = referenced_names(facts)
        self._refs = refs
        observable = set(proc.params)
        if proc.kind is ast.ProcKind.FUNCTION:
            observable.add(proc.name)
        if self.is_main:
            observable.update(
                n for n in _scalar_names(checked, proc_name) if n in refs
            )
        self._observable = frozenset(observable)
        self._stop_nodes = {
            node.id for node in cfg if node.kind is StmtKind.STOP
        }
        self.passthrough_nodes = frozenset(
            nid
            for nid, f in facts.items()
            if not f.uses_live
            and not f.kills
            and not f.has_call
            and nid not in self._stop_nodes
        )

    def boundary(self, cfg):
        return self._observable

    def join(self, values):
        if len(values) == 1:
            return values[0]
        merged = frozenset()
        for value in values:
            merged |= value
        return merged

    def transfer(self, node, value):
        facts = self.facts[node]
        uses = facts.uses_live
        if (
            not uses
            and not facts.kills
            and not facts.has_call
            and node not in self._stop_nodes
        ):
            return value  # no reads, writes or exports: pass through
        if node in self._stop_nodes or facts.has_call:
            # STOP ends the run with the observable set exported; a
            # call may transitively STOP, which observes the same set
            # (in MAIN every scalar, elsewhere the parameters whose
            # storage the caller chain can still see).
            uses = uses | self._observable
        if self.corruption == "live-kill-use":
            return (value | uses) - facts.kills
        return (value - facts.kills) | uses

    def edge_alive(self, src, label):
        return self.feasible is None or (src, label) in self.feasible

    def height(self, cfg):
        # Live sets only ever contain referenced scalars plus the
        # observable set, so their union bounds the chain height.
        return len(self._refs | self._observable) + 4


# ---------------------------------------------------------------------------
# Conditional constant propagation (SCCP-style)
# ---------------------------------------------------------------------------

_BOT = ("bot",)


def _const(value) -> tuple:
    # The type name keeps True distinct from 1 and 1 from 1.0 under ==.
    return ("c", type(value).__name__, value)


def _is_const(elem) -> bool:
    return elem[0] == "c"


def _const_value(elem):
    return elem[2]


def _meet(a, b, *, corruption=None):
    if a == b:
        return a
    if corruption == "sccp-const-meet" and _is_const(a) and _is_const(b):
        return a
    return _BOT


def _coerce_elem(elem, type_: ast.Type):
    """Mirror :func:`repro.interp.values.coerce`; errors become BOT."""
    if not _is_const(elem):
        return _BOT
    value = _const_value(elem)
    if type_ is ast.Type.INTEGER:
        if isinstance(value, bool):
            return _BOT  # runtime error path: never fold
        return _const(int(value))
    if type_ is ast.Type.REAL:
        if isinstance(value, bool):
            return _BOT
        return _const(float(value))
    if type_ is ast.Type.LOGICAL:
        if not isinstance(value, bool):
            return _BOT
        return _const(value)
    return _BOT


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


class ConstEvaluator:
    """Fold an expression over a constant-lattice state.

    The contract is *conditional soundness*: if the folded result is a
    constant, then whenever runtime evaluation of the expression
    completes, it yields exactly that value.  Anything whose runtime
    evaluation could error (division by a zero constant, ``.NOT.`` of
    a number, Fortran POW corner cases) folds to BOT rather than
    guessing; user function calls and array loads are always BOT.
    """

    def __init__(self, checked, proc_name: str, state: dict):
        self.table = checked.tables[proc_name]
        self.checked = checked
        self.proc_name = proc_name
        self.state = state

    def eval(self, expr: ast.Expr | None):
        if expr is None:
            return _BOT
        if isinstance(expr, ast.IntLit):
            return _const(expr.value)
        if isinstance(expr, ast.RealLit):
            return _const(expr.value)
        if isinstance(expr, ast.LogicalLit):
            return _const(expr.value)
        if isinstance(expr, ast.VarRef):
            if expr.name in self.table.constants:
                return _const(self.table.constants[expr.name])
            return self.state.get(expr.name, _BOT)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        return _BOT  # ArrayRef, FuncCall, StringLit: never folded

    def _unary(self, expr: ast.Unary):
        inner = self.eval(expr.operand)
        if not _is_const(inner):
            return _BOT
        value = _const_value(inner)
        if expr.op is ast.UnOp.NEG:
            return _const(-value)
        if expr.op is ast.UnOp.POS:
            return _const(value)  # the interpreter returns it untouched
        if not isinstance(value, bool):
            return _BOT  # .NOT. of a number raises
        return _const(not value)

    def _binary(self, expr: ast.Binary):
        op = expr.op
        if op in (ast.BinOp.AND, ast.BinOp.OR):
            return self._logical(expr)
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if not (_is_const(left) and _is_const(right)):
            return _BOT
        a, b = _const_value(left), _const_value(right)
        try:
            if op is ast.BinOp.ADD:
                return _const(a + b)
            if op is ast.BinOp.SUB:
                return _const(a - b)
            if op is ast.BinOp.MUL:
                return _const(a * b)
            if op is ast.BinOp.DIV:
                if b == 0:
                    return _BOT  # division by zero raises at runtime
                if isinstance(a, int) and isinstance(b, int):
                    return _const(_trunc_div(a, b))
                return _const(a / b)
            if op is ast.BinOp.POW:
                # Fold only the total integer case; the float corners
                # (negative bases, overflow) raise or drift.
                if (
                    isinstance(a, int)
                    and isinstance(b, int)
                    and not isinstance(a, bool)
                    and not isinstance(b, bool)
                    and 0 <= b <= 64
                ):
                    return _const(a**b)
                return _BOT
            if op is ast.BinOp.LT:
                return _const(a < b)
            if op is ast.BinOp.LE:
                return _const(a <= b)
            if op is ast.BinOp.GT:
                return _const(a > b)
            if op is ast.BinOp.GE:
                return _const(a >= b)
            if op is ast.BinOp.EQ:
                return _const(a == b)
            if op is ast.BinOp.NE:
                return _const(a != b)
        except Exception:
            return _BOT
        return _BOT

    def _logical(self, expr: ast.Binary):
        """Short-circuit ternary logic, exact wrt evaluation order.

        A constant must be an actual bool — a numeric operand raises at
        runtime, so it degrades the whole expression to BOT.
        """
        left = self.eval(expr.left)
        right = self.eval(expr.right)

        def as_bool(elem):
            if _is_const(elem) and isinstance(_const_value(elem), bool):
                return _const_value(elem)
            if _is_const(elem):
                return "error"  # non-LOGICAL operand: raises if reached
            return None  # unknown

        lv, rv = as_bool(left), as_bool(right)
        if lv == "error":
            return _BOT
        if expr.op is ast.BinOp.AND:
            if lv is False:
                return _const(False)
            if rv is False:
                # left unknown: if it completes it is a bool; both
                # branches then yield False (short-circuit or not).
                return _const(False)
            if lv is True and rv is True:
                return _const(True)
            return _BOT
        if lv is True:
            return _const(True)
        if rv is True:
            return _const(True)
        if lv is False and rv is False:
            return _const(False)
        return _BOT


class ConstantPropagation(DataflowProblem):
    """Dense SCCP: constant facts plus branch-edge feasibility."""

    direction = "forward"

    def __init__(
        self,
        checked,
        proc_name: str,
        facts: dict[int, NodeFacts],
        cfg,
        *,
        refs: frozenset[str] | None = None,
        corruption: str | None = None,
    ):
        _check_corruption(corruption)
        self.checked = checked
        self.proc_name = proc_name
        self.facts = facts
        self.corruption = corruption
        self.cfg = cfg
        self._edge_cache = None
        proc = checked.unit.procedures[proc_name]
        table = checked.tables[proc_name]
        params = set(proc.params)
        if refs is None:
            refs = referenced_names(facts)
        state = {}
        for name in _scalar_names(checked, proc_name):
            if name not in params and name not in refs:
                continue  # untouched scalar: can't influence anything
            info = table.variables[name]
            if name in params:
                state[name] = _BOT
            else:
                state[name] = _const(_zero_value(info.type))
        self._boundary = state
        self._ev = ConstEvaluator(checked, proc_name, {})
        self.passthrough_nodes = frozenset(
            nid
            for nid, f in facts.items()
            if not f.kills and not f.clobbers
        )
        self._nodes = {node.id: node for node in cfg}
        self._branch_nodes = {
            node.id
            for node in cfg
            if node.kind
            in (
                StmtKind.IF,
                StmtKind.WHILE_TEST,
                StmtKind.DO_TEST,
                StmtKind.AIF,
                StmtKind.CGOTO,
            )
        }

    def edge_transfer_nodes(self, cfg):
        # ``feasible_labels`` is None everywhere else, so only branch
        # nodes need a fact per out-edge.
        return self._branch_nodes

    def boundary(self, cfg):
        return dict(self._boundary)

    def join(self, values):
        if len(values) == 1:
            return values[0]  # transfer copies before mutating
        merged = dict(values[0])
        for value in values[1:]:
            for var, elem in value.items():
                prev = merged.get(var)
                if prev is None:
                    merged[var] = elem
                elif prev is not elem and prev != elem:
                    # Equal elements meet to themselves, for any seeded
                    # corruption too, so only disagreements pay _meet.
                    merged[var] = _meet(
                        prev, elem, corruption=self.corruption
                    )
        return merged

    # -- transfer --------------------------------------------------------

    def transfer(self, node_id, value):
        node = self._nodes[node_id]
        facts = self.facts[node_id]
        if not facts.kills and not facts.clobbers:
            return value  # no scalar writes: facts pass through
        out = dict(value)
        if facts.clobbers:
            # A user call may rewrite scalars mid-expression; evaluation
            # order makes folding around it unsound, so degrade every
            # write this node performs.
            for var in facts.clobbers | facts.kills:
                out[var] = _BOT
            return out
        ev = self._ev
        ev.state = value
        stmt = node.stmt
        kind = node.kind
        if kind is StmtKind.ASSIGN and isinstance(stmt, ast.Assign):
            target = stmt.target
            if isinstance(target, ast.VarRef) and target.name in out:
                info = ev.table.variables.get(target.name)
                elem = ev.eval(stmt.value)
                out[target.name] = (
                    _coerce_elem(elem, info.type) if info else _BOT
                )
        elif kind is StmtKind.DO_INIT and isinstance(stmt, ast.DoLoop):
            self._do_init(node, stmt, ev, out)
        elif kind is StmtKind.DO_INCR and isinstance(stmt, ast.DoLoop):
            self._do_incr(node, stmt, ev, out)
        return out

    def _do_init(self, node, stmt, ev, out):
        table = self.checked.tables[self.proc_name]
        start = ev.eval(stmt.start)
        stop = ev.eval(stmt.stop)
        step = ev.eval(stmt.step) if stmt.step is not None else _const(1)
        info = table.variables.get(stmt.var)
        out[stmt.var] = _coerce_elem(start, info.type) if info else _BOT
        trip = _BOT
        if _is_const(start) and _is_const(stop) and _is_const(step):
            s, e, p = (
                _const_value(start),
                _const_value(stop),
                _const_value(step),
            )
            if not any(isinstance(v, bool) for v in (s, e, p)) and p != 0:
                span = e - s + p
                if isinstance(span, int) and isinstance(p, int):
                    trip = _const(max(0, _trunc_div(span, p)))
                else:
                    trip = _const(max(0, int(span / p)))
        if node.trip_var:
            out[node.trip_var] = trip

    def _do_incr(self, node, stmt, ev, out):
        table = self.checked.tables[self.proc_name]
        step = ev.eval(stmt.step) if stmt.step is not None else _const(1)
        var = out.get(stmt.var, _BOT)
        if _is_const(var) and _is_const(step):
            info = table.variables.get(stmt.var)
            raw = _const(_const_value(var) + _const_value(step))
            out[stmt.var] = _coerce_elem(raw, info.type) if info else _BOT
        else:
            out[stmt.var] = _BOT
        if node.trip_var:
            trip = out.get(node.trip_var, _BOT)
            out[node.trip_var] = (
                _const(_const_value(trip) - 1) if _is_const(trip) else _BOT
            )

    # -- branch feasibility ---------------------------------------------

    def feasible_labels(self, node_id, value) -> set[str] | None:
        """The out-labels a node can take, or None for "all"."""
        node = self._nodes[node_id]
        facts = self.facts[node_id]
        kind = node.kind
        if facts.clobbers:
            return None  # calls in the condition: evaluation order bites
        if kind in (StmtKind.IF, StmtKind.WHILE_TEST):
            ev = self._ev
            ev.state = value
            elem = ev.eval(node.cond)
            if _is_const(elem) and isinstance(_const_value(elem), bool):
                taken = "T" if _const_value(elem) else "F"
                if self.corruption == "sccp-taken-flip":
                    taken = "F" if taken == "T" else "T"
                return {taken}
            return None
        if kind is StmtKind.DO_TEST:
            trip = value.get(node.trip_var, _BOT) if node.trip_var else _BOT
            if _is_const(trip):
                return {"T" if _const_value(trip) > 0 else "F"}
            return None
        if kind is StmtKind.AIF:
            ev = self._ev
            ev.state = value
            elem = ev.eval(node.cond)
            if _is_const(elem) and not isinstance(
                _const_value(elem), bool
            ):
                v = _const_value(elem)
                return {"LT" if v < 0 else ("EQ" if v == 0 else "GT")}
            return None
        if kind is StmtKind.CGOTO:
            ev = self._ev
            ev.state = value
            elem = ev.eval(node.cond)
            if _is_const(elem) and not isinstance(
                _const_value(elem), bool
            ):
                k = int(_const_value(elem))
                targets = getattr(node.stmt, "targets", [])
                return {f"C{k}" if 1 <= k <= len(targets) else "U"}
            return None
        return None

    def transfer_edge(self, node_id, value, label):
        # Branch nodes have no scalar effects (and DO_TEST's transfer
        # leaves the trip var untouched), so the output state handed to
        # this hook equals the input state the condition reads.  The
        # solver calls this once per out-edge with the same state
        # object, so the condition is evaluated once per visit.
        cache = self._edge_cache
        if cache is None or cache[0] != node_id or cache[1] is not value:
            cache = (node_id, value, self.feasible_labels(node_id, value))
            self._edge_cache = cache
        labels = cache[2]
        if labels is not None and label not in labels:
            return None
        return value

    def height(self, cfg):
        return 2 * (len(self._boundary) + 2)


@dataclass
class ConstantFacts:
    """Post-processed SCCP results for one procedure."""

    solution: Solution
    #: (src node id, label) pairs that can execute.
    feasible_edges: set[tuple[int, str]] = field(default_factory=set)
    #: node ids that can execute.
    executable: set[int] = field(default_factory=set)
    #: branch node id -> the single label it always takes.
    forced: dict[int, str] = field(default_factory=dict)


def solve_constants(
    checked,
    proc_name: str,
    cfg,
    facts: dict[int, NodeFacts],
    *,
    refs: frozenset[str] | None = None,
    corruption: str | None = None,
    solver_corruption: str | None = None,
    graph=None,
) -> ConstantFacts:
    """Run SCCP for one procedure and post-process feasibility."""
    problem = ConstantPropagation(
        checked, proc_name, facts, cfg, refs=refs, corruption=corruption
    )
    solution = solve(
        cfg, problem, corruption=solver_corruption, graph=graph
    )

    result = ConstantFacts(solution=solution)
    branchy = problem._branch_nodes
    for node in cfg:
        if solution.in_of.get(node.id) is None:
            continue
        result.executable.add(node.id)
        # ``feasible_labels`` is None off branch nodes by construction.
        labels = (
            problem.feasible_labels(node.id, solution.in_of[node.id])
            if node.id in branchy
            else None
        )
        out_labels = []
        seen = set()
        for edge in cfg.out_edges(node.id):
            if edge.label not in seen:
                seen.add(edge.label)
                out_labels.append(edge.label)
        for label in out_labels:
            if labels is None or label in labels:
                result.feasible_edges.add((node.id, label))
        if labels is not None and len(out_labels) > 1:
            alive = [lab for lab in out_labels if lab in labels]
            if len(alive) == 1:
                result.forced[node.id] = alive[0]
    return result


# ---------------------------------------------------------------------------
# Value ranges
# ---------------------------------------------------------------------------

_INF = math.inf
_FULL = (-_INF, _INF)


def _hull(a, b):
    return (min(a[0], b[0]), max(a[1], b[1]))


def _ivl_add(a, b):
    return (a[0] + b[0], a[1] + b[1])


def _ivl_sub(a, b):
    return (a[0] - b[1], a[1] - b[0])


def _ivl_neg(a):
    return (-a[1], -a[0])


def _mul_point(x, y):
    if x == 0 or y == 0:
        return 0  # 0 * inf = 0: a zero factor annihilates
    return x * y


def _ivl_mul(a, b):
    products = [
        _mul_point(a[0], b[0]),
        _mul_point(a[0], b[1]),
        _mul_point(a[1], b[0]),
        _mul_point(a[1], b[1]),
    ]
    return (min(products), max(products))


def _trunc_point(x):
    if math.isinf(x):
        return x
    return float(math.trunc(x)) if isinstance(x, float) else x


class RangeEvaluator:
    """Interval evaluation of numeric expressions."""

    def __init__(self, checked, proc_name: str, state: dict):
        self.table = checked.tables[proc_name]
        self.state = state

    def eval(self, expr: ast.Expr | None):
        if expr is None:
            return _FULL
        if isinstance(expr, ast.IntLit):
            return (expr.value, expr.value)
        if isinstance(expr, ast.RealLit):
            return (expr.value, expr.value)
        if isinstance(expr, ast.VarRef):
            if expr.name in self.table.constants:
                v = self.table.constants[expr.name]
                return (v, v)
            return self.state.get(expr.name, _FULL)
        if isinstance(expr, ast.Unary):
            if expr.op is ast.UnOp.NEG:
                return _ivl_neg(self.eval(expr.operand))
            if expr.op is ast.UnOp.POS:
                return self.eval(expr.operand)
            return _FULL
        if isinstance(expr, ast.Binary):
            if expr.op is ast.BinOp.ADD:
                return _ivl_add(self.eval(expr.left), self.eval(expr.right))
            if expr.op is ast.BinOp.SUB:
                return _ivl_sub(self.eval(expr.left), self.eval(expr.right))
            if expr.op is ast.BinOp.MUL:
                return _ivl_mul(self.eval(expr.left), self.eval(expr.right))
            return _FULL
        return _FULL


def trip_interval(start, stop, step):
    """Interval of ``max(0, trunc((stop - start + step) / step))``.

    The trip function is monotone in each operand once the step sign
    is fixed, so evaluating the eight interval corners is exact; a
    step interval straddling zero gives the unbounded [0, inf).
    """
    if step[0] <= 0 <= step[1]:
        return (0, _INF)

    def one(s, e, p):
        if math.isinf(s) or math.isinf(e) or math.isinf(p):
            span = float(e) - float(s) + float(p)
            if math.isnan(span):
                return None  # inf - inf: this corner is unconstrained
            if math.isinf(span):
                return _INF if (span > 0) == (p > 0) else 0
            return max(0, int(span / float(p))) if p else None
        span = e - s + p
        if isinstance(span, int) and isinstance(p, int):
            return max(0, _trunc_div(span, p))
        return max(0, int(span / p))

    corners = [one(s, e, p) for s in start for e in stop for p in step]
    if any(c is None for c in corners):
        return (0, _INF)
    return (min(corners), max(corners))


class ValueRanges(DataflowProblem):
    """Forward interval analysis over the numeric scalars.

    ``param_ranges`` optionally narrows the entry interval of named
    parameters (the static-bounds pass seeds it with the hull of the
    argument intervals over all call sites); parameters without an
    entry stay unconstrained.
    """

    direction = "forward"
    widen_after = 2

    def __init__(
        self,
        checked,
        proc_name: str,
        facts: dict[int, NodeFacts],
        cfg,
        *,
        feasible: set[tuple[int, str]] | None = None,
        param_ranges: dict[str, tuple] | None = None,
        refs: frozenset[str] | None = None,
        corruption: str | None = None,
    ):
        _check_corruption(corruption)
        self.checked = checked
        self.proc_name = proc_name
        self.facts = facts
        self.feasible = feasible
        self.corruption = corruption
        if corruption == "range-no-widen":
            self.widen_after = None
        table = checked.tables[proc_name]
        params = set(checked.unit.procedures[proc_name].params)
        if refs is None:
            refs = referenced_names(facts)
        state = {}
        for name in _scalar_names(checked, proc_name):
            if name not in params and name not in refs:
                continue  # untouched scalar: can't influence anything
            info = table.variables[name]
            if info.type is ast.Type.LOGICAL:
                continue
            if name in params:
                seeded = (param_ranges or {}).get(name, _FULL)
                state[name] = seeded
            else:
                z = _zero_value(info.type)
                state[name] = (z, z)
        self._boundary = state
        self._ev = RangeEvaluator(checked, proc_name, {})

        # Classify every node once so each visit dispatches on a
        # compact plan instead of re-inspecting AST shapes.
        def is_int(name: str) -> bool:
            info = table.variables.get(name)
            return info is not None and info.type is ast.Type.INTEGER

        plans: dict[int, tuple | None] = {}
        for node in cfg:
            f = facts[node.id]
            stmt = node.stmt
            kind = node.kind
            if not f.kills and not f.clobbers:
                plans[node.id] = None  # no scalar writes: pass through
            elif f.clobbers:
                plans[node.id] = ("clobber", tuple(f.clobbers | f.kills))
            elif (
                kind is StmtKind.ASSIGN
                and isinstance(stmt, ast.Assign)
                and isinstance(stmt.target, ast.VarRef)
            ):
                plans[node.id] = (
                    "assign",
                    stmt.target.name,
                    stmt.value,
                    is_int(stmt.target.name),
                )
            elif kind is StmtKind.DO_INIT and isinstance(stmt, ast.DoLoop):
                plans[node.id] = (
                    "do_init",
                    stmt.var,
                    stmt.start,
                    stmt.stop,
                    stmt.step,
                    node.trip_var,
                    is_int(stmt.var),
                )
            elif kind is StmtKind.DO_INCR and isinstance(stmt, ast.DoLoop):
                plans[node.id] = (
                    "do_incr",
                    stmt.var,
                    stmt.step,
                    node.trip_var,
                    is_int(stmt.var),
                )
            else:
                plans[node.id] = None  # kills without a handled shape
        self._plans = plans
        self.passthrough_nodes = frozenset(
            nid for nid, plan in plans.items() if plan is None
        )

    def boundary(self, cfg):
        return dict(self._boundary)

    def join(self, values):
        if len(values) == 1:
            return values[0]  # transfer/widen copy before mutating
        merged = dict(values[0])
        for value in values[1:]:
            for var, ivl in value.items():
                prev = merged.get(var)
                if prev is None:
                    merged[var] = ivl
                elif prev is not ivl and prev != ivl:
                    merged[var] = _hull(prev, ivl)
        return merged

    def widen(self, old, new):
        # Standard interval widening: keep a stable bound, blow an
        # unstable one to infinity.  The result must dominate *old* or
        # the iteration oscillates instead of climbing.  Copy lazily:
        # most calls widen nothing, and the solver never mutates what
        # we return.
        out = None
        for var, ivl in new.items():
            prev = old.get(var)
            if prev is None or prev is ivl or prev == ivl:
                continue
            lo = prev[0] if ivl[0] >= prev[0] else -_INF
            hi = prev[1] if ivl[1] <= prev[1] else _INF
            if (lo, hi) != ivl:
                if out is None:
                    out = dict(new)
                out[var] = (lo, hi)
        return new if out is None else out

    def transfer(self, node_id, value):
        plan = self._plans[node_id]
        if plan is None:
            return value  # no scalar writes: facts pass through
        op = plan[0]
        out = dict(value)
        if op == "clobber":
            for var in plan[1]:
                if var in out:
                    out[var] = _FULL
            return out
        ev = self._ev
        ev.state = value
        if op == "assign":
            _, name, expr, int_target = plan
            if name in out:
                ivl = ev.eval(expr)
                out[name] = (
                    (_trunc_point(ivl[0]), _trunc_point(ivl[1]))
                    if int_target
                    else ivl
                )
        elif op == "do_init":
            _, var, start_e, stop_e, step_e, trip_var, int_var = plan
            start = ev.eval(start_e)
            stop = ev.eval(stop_e)
            step = ev.eval(step_e) if step_e is not None else (1, 1)
            if var in out:
                out[var] = (
                    (_trunc_point(start[0]), _trunc_point(start[1]))
                    if int_var
                    else start
                )
            if trip_var:
                out[trip_var] = trip_interval(start, stop, step)
        else:  # do_incr
            _, var, step_e, trip_var, int_var = plan
            step = ev.eval(step_e) if step_e is not None else (1, 1)
            if var in out:
                ivl = _ivl_add(out[var], step)
                out[var] = (
                    (_trunc_point(ivl[0]), _trunc_point(ivl[1]))
                    if int_var
                    else ivl
                )
            if trip_var:
                trip = out.get(trip_var, _FULL)
                out[trip_var] = _ivl_sub(trip, (1, 1))
        return out

    def edge_alive(self, src, label):
        return self.feasible is None or (src, label) in self.feasible

    def height(self, cfg):
        return 8 * (len(self._boundary) + 2)


# ---------------------------------------------------------------------------
# Per-procedure bundle
# ---------------------------------------------------------------------------


@dataclass
class ProcDataflow:
    """Every dataflow fact for one procedure, solved on demand."""

    proc_name: str
    facts: dict[int, NodeFacts]
    constants: ConstantFacts
    reaching: Solution
    liveness: Solution
    ranges: Solution


def analyze_procedure(
    checked,
    proc_name: str,
    cfg,
    *,
    summaries: dict[str, ProcSummary] | None = None,
    feasibility: bool = True,
) -> ProcDataflow:
    """Solve all four analyses for one procedure's CFG."""
    if summaries is None:
        summaries = param_summaries(checked)
    facts = all_node_facts(cfg, checked, proc_name, summaries)
    refs = referenced_names(facts)
    # SCCP runs on the unfiltered forward orientation; when it proves
    # nothing infeasible (the common case) the same graph serves RD
    # and ranges, and liveness gets its cheap flip.  Building these
    # once is a large slice of total solver cost.
    forward_graph = OrientedGraph(cfg, True)
    constants = solve_constants(
        checked, proc_name, cfg, facts, refs=refs, graph=forward_graph
    )
    feasible = constants.feasible_edges if feasibility else None
    rd = ReachingDefinitions(
        checked, proc_name, facts, feasible=feasible, refs=refs
    )
    live = Liveness(
        checked, proc_name, facts, cfg, feasible=feasible, refs=refs
    )
    vr = ValueRanges(
        checked, proc_name, facts, cfg, feasible=feasible, refs=refs
    )
    all_pairs = {(edge.src, edge.label) for edge in cfg.edges}
    if feasible is None or feasible >= all_pairs:
        fwd = forward_graph
        bwd = forward_graph.flipped(cfg.exit)
    else:
        fwd = oriented_graph(cfg, rd)
        bwd = oriented_graph(cfg, live)
    reaching = solve(cfg, rd, graph=fwd)
    liveness = solve(cfg, live, graph=bwd)
    ranges = solve(cfg, vr, graph=fwd)
    return ProcDataflow(
        proc_name=proc_name,
        facts=facts,
        constants=constants,
        reaching=reaching,
        liveness=liveness,
        ranges=ranges,
    )
